"""Figure 4: the overlapped execution of the FEED/TRANSFER/GENERATE units.

Renders the simulated timeline at batch size 100 and reports the
utilization anchors the paper states: CPU almost never idle, GPU idle
~20% of each iteration, aggregate throughput ~0.07 GNumbers/s.
"""

from __future__ import annotations

from conftest import record

from repro.gpusim.pipeline import PipelineConfig, simulate_pipeline
from repro.hybrid.throughput import stage_times_ns


def test_fig4_overlap(benchmark):
    # N = 10M at S = 100 -> 100k threads (fully occupied), 100 iterations.
    cfg = PipelineConfig(total_numbers=10_000_000, batch_size=100)

    result = benchmark.pedantic(
        lambda: simulate_pipeline(cfg), rounds=1, iterations=1
    )

    feed, transfer, gen, init = stage_times_ns(cfg)
    lines = [
        result.timeline.render(width=68),
        "",
        f"per-iteration FEED     = {feed:12.0f} ns",
        f"per-iteration TRANSFER = {transfer:12.0f} ns",
        f"per-iteration GENERATE = {gen:12.0f} ns",
        f"FEED : TRANSFER ratio  = {feed / transfer:.1f}  (paper: 81.2/6.2 = 13.1)",
        f"CPU idle fraction      = {result.cpu_idle_fraction:6.1%} (paper: ~0%)",
        f"GPU idle fraction      = {result.gpu_idle_fraction:6.1%} (paper: ~20%)",
        f"throughput             = {result.throughput_gnumbers_s:.4f} GNumbers/s"
        " (paper: 0.07)",
    ]
    record("Figure 4", "\n".join(lines), data={
        "feed_ns": feed,
        "transfer_ns": transfer,
        "generate_ns": gen,
        "init_ns": init,
        "cpu_idle_fraction": result.cpu_idle_fraction,
        "gpu_idle_fraction": result.gpu_idle_fraction,
        "throughput_gnumbers_s": result.throughput_gnumbers_s,
    })

    assert result.cpu_idle_fraction < 0.08
    assert 0.10 < result.gpu_idle_fraction < 0.30
    assert abs(result.throughput_gnumbers_s - 0.07) < 0.01
