"""Local microbenchmarks of the hot kernels (pytest-benchmark, multi-round).

Not a paper figure -- these measure this repository's own NumPy kernels
so regressions in the vectorized inner loops are visible: walk stepping,
feed-chunk extraction, and each baseline generator's bulk path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import MT19937, Md5Rand, Mwc, Xorwow
from repro.bitsource import GlibcRandom, SplitMix64Source
from repro.core.expander import GabberGalilExpander
from repro.core.parallel import ParallelExpanderPRNG
from repro.core.walk import WalkEngine
from repro.resilience import SupervisedFeed

LANES = 1 << 15
N = 1 << 17


@pytest.fixture(scope="module")
def engine_state():
    eng = WalkEngine(GabberGalilExpander())
    state = eng.make_state(SplitMix64Source(1).words64(LANES))
    return eng, state


def test_walk_step_kernel(benchmark, engine_state):
    """One vectorized walk step across 32k lanes."""
    eng, state = engine_state
    src = SplitMix64Source(2)
    benchmark(lambda: eng.step(state, src))


def test_walk_64_steps(benchmark, engine_state):
    """A full GetNextRand round (64 steps, bulk chunk draw)."""
    eng, state = engine_state
    src = SplitMix64Source(3)
    benchmark(lambda: eng.walk(state, src, 64))


def test_chunks3_extraction(benchmark):
    src = SplitMix64Source(4)
    benchmark(lambda: src.chunks3(LANES * 64))


def test_hybrid_bulk_generation(benchmark):
    prng = ParallelExpanderPRNG(num_threads=LANES,
                                bit_source=SplitMix64Source(5))
    result = benchmark(lambda: prng.generate(LANES))
    assert result.size == LANES


def test_hybrid_bulk_generation_supervised(benchmark):
    """Same workload as test_hybrid_bulk_generation with the feed under
    a SupervisedFeed (no injection).  The supervision fast path is one
    attribute lookup plus a size check per draw; acceptance for the
    resilience work is <2% overhead versus the raw-source run above."""
    prng = ParallelExpanderPRNG(
        num_threads=LANES,
        bit_source=SupervisedFeed(SplitMix64Source(5)),
    )
    result = benchmark(lambda: prng.generate(LANES))
    assert result.size == LANES


def test_supervised_chunk_extraction(benchmark):
    """chunks3 through the supervised wrapper -- isolates the per-call
    supervision cost on the hottest feed primitive."""
    feed = SupervisedFeed(SplitMix64Source(4))
    benchmark(lambda: feed.chunks3(LANES * 64))


def test_glibc_bulk(benchmark):
    gen = GlibcRandom(1)
    benchmark(lambda: gen.rand_array(N))


@pytest.mark.parametrize(
    "make",
    [
        lambda: MT19937(1),
        lambda: Xorwow(seed=1, lanes=256),
        lambda: Mwc(seed=1, lanes=256),
        lambda: Md5Rand(seed=1),
    ],
    ids=["mt19937", "xorwow", "mwc", "md5"],
)
def test_baseline_bulk(benchmark, make):
    gen = make()
    out = benchmark(lambda: gen.u32_array(N))
    assert out.size == N
