"""Figure 8: Monte Carlo photon migration timings, 1M .. 256M photons.

Platform model: the original CUDAMCML-style MWC implementation vs the
hybrid-PRNG version (paper: ~20% overall speedup from removing staged
randomness traffic and weight clashes).  Plus a real functional run of
the vectorized simulator under both RNGs, verifying that the physics
(energy balance, output fractions) is RNG-independent.
"""

from __future__ import annotations

from common import quality_hybrid
from conftest import record

from repro.apps.photon import (
    MCPhotonMigration,
    figure8_series,
    photon_times_ms,
    three_layer_skin,
)
from repro.baselines import Mwc
from repro.utils.tables import format_series

PHOTONS_M = [1, 4, 16, 64, 128, 256]


def test_fig8_model(benchmark):
    series = benchmark.pedantic(
        lambda: figure8_series(PHOTONS_M), rounds=1, iterations=1
    )
    speedup = photon_times_ms(int(256e6))["speedup"]
    table = format_series(
        "Photons (M)",
        PHOTONS_M,
        {
            "Original (ms)": [round(v, 1) for v in series["Original (MWC)"]],
            "HybridResult (ms)": [round(v, 1) for v in series["Hybrid PRNG"]],
        },
        title=f"Figure 8 -- photon migration time (speedup {speedup:.2f}x)",
    )
    record("Figure 8", table)
    assert 1.1 < speedup < 1.35  # the paper's ~20%


def test_fig8_functional(benchmark):
    model = three_layer_skin()
    n = 40_000

    def run_both():
        mwc = MCPhotonMigration(model, Mwc(seed=3, lanes=64), batch_size=n)
        res_mwc = mwc.run(n)
        hyb = MCPhotonMigration(model, quality_hybrid(seed=3), batch_size=n)
        res_hyb = hyb.run(n)
        return res_mwc, res_hyb

    res_mwc, res_hyb = benchmark.pedantic(run_both, rounds=1, iterations=1)
    f_mwc = res_mwc.fractions()
    f_hyb = res_hyb.fractions()

    lines = [f"{'sink':22s} {'MWC':>10s} {'Hybrid':>10s}"]
    for key in ("specular", "diffuse_reflectance", "absorbed", "transmittance"):
        lines.append(f"{key:22s} {f_mwc[key]:10.4f} {f_hyb[key]:10.4f}")
    lines.append(
        f"energy balance error   {res_mwc.tally.energy_balance_error():10.2e}"
        f" {res_hyb.tally.energy_balance_error():10.2e}"
    )
    record("Figure 8 (functional)", "\n".join(lines))

    # Physics must agree between RNGs (they only change sampling noise).
    for key in ("diffuse_reflectance", "absorbed", "transmittance"):
        assert abs(f_mwc[key] - f_hyb[key]) < 0.02, key
    assert res_mwc.tally.energy_balance_error() < 1e-9
    assert res_hyb.tally.energy_balance_error() < 1e-9
