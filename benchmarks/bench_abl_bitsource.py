"""Ablation: how much does feed quality matter?

The paper's quality argument (Section IV-C) is that the expander walk
*amplifies* a weak CPU feed.  This ablation drives the generator with
feeds of very different quality -- glibc rand(), the 15-bit ANSI LCG,
SplitMix64, and a raw un-mixed counter -- and runs the same fast quality
probe on the output.
"""

from __future__ import annotations

from conftest import record

from repro.baselines.hybrid_adapter import HybridPRNG
from repro.bitsource import (
    AnsiCLcg,
    GlibcRandom,
    RawCounterSource,
    SplitMix64Source,
)
from repro.quality.crush import (
    autocorrelation_test,
    hamming_weight_test,
    serial_pairs_test,
)
from repro.quality.diehard import birthday_spacings
from repro.utils.tables import format_table

FEEDS = [
    ("glibc rand() (paper)", lambda: GlibcRandom(1)),
    ("ANSI C LCG (weak)", lambda: AnsiCLcg(1)),
    ("SplitMix64 (strong)", lambda: SplitMix64Source(1)),
    ("raw counter (worst)", lambda: RawCounterSource(1)),
]


def _probe(gen):
    tests = [
        birthday_spacings(gen, n_samples=120, bit_offsets=(0, 8)),
        serial_pairs_test(gen, n_pairs=300_000),
        autocorrelation_test(gen, n_bits=1_500_000),
        hamming_weight_test(gen, n_words=300_000),
    ]
    return tests


def test_ablation_bitsource(benchmark):
    def sweep():
        rows = []
        for label, make in FEEDS:
            gen = HybridPRNG(seed=1, num_threads=1 << 14, bit_source=make())
            tests = _probe(gen)
            passed = sum(t.passed for t in tests)
            worst = min(tests, key=lambda t: t.p_value)
            rows.append(
                [label, f"{passed}/4", worst.name, f"{worst.p_value:.3f}"]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["feed", "probe passed", "worst test", "worst p"],
        rows,
        title="Ablation -- output quality vs feed quality",
    )
    record("Ablation: bit source", table)

    by = {r[0]: r for r in rows}
    # The walk amplifies pseudorandom feeds: even the weak LCG feed yields
    # passing output.  A raw counter has almost no entropy per step and is
    # reported as measured (it may or may not pass the coarse probe).
    assert by["glibc rand() (paper)"][1] == "4/4"
    assert by["ANSI C LCG (weak)"][1] in {"3/4", "4/4"}
    assert by["SplitMix64 (strong)"][1] == "4/4"
