"""CI recovery gate: kill -9 a serving process mid-session, resume, compare.

The drill:

1. compute an *uninterrupted golden run* for every client session with
   an in-process :class:`~repro.serve.session.SessionStream`;
2. start ``repro serve --journal`` as a real subprocess, connect
   ``--clients`` sessions, and fetch part of each stream;
3. ``SIGKILL`` the server mid-stream (via
   :func:`repro.resilience.faults.kill_server` -- no drain, no shutdown
   marker, whatever the journal fsync'd is all that survives);
4. restart the server on the same journal, ``RESUME`` every client at
   its own received offset, and fetch the rest;
5. byte-compare every session's concatenated words against its golden
   run, and verify the journal recovered sessions and lacks a clean
   shutdown marker after the kill.

Any replayed word, skipped word, or diverging value exits non-zero so
the CI ``recovery`` job fails loudly.

Usage::

    PYTHONPATH=src python benchmarks/check_recovery_drill.py \
        --clients 4 --head 3000 --tail 2000
"""

from __future__ import annotations

import argparse
import os
import pathlib
import subprocess
import sys
import tempfile
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.resilience.faults import kill_server
from repro.serve import ServeClient, SessionStream, read_journal

MASTER_SEED = 2026
LANES = 32


def start_server(journal: str, port: int = 0) -> "tuple[subprocess.Popen, int]":
    """``repro serve --journal`` subprocess; returns (proc, bound port)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(pathlib.Path(__file__).parent.parent / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--seed", str(MASTER_SEED),
         "--lanes", str(LANES), "--journal", journal],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    deadline = time.monotonic() + 30
    line = ""
    while time.monotonic() < deadline:
        line = proc.stderr.readline()
        if "listening on" in line:
            break
    else:  # pragma: no cover - CI timeout path
        raise RuntimeError("server did not report listening within 30s")
    bound = int(line.split("listening on ")[1].split()[0].rsplit(":", 1)[1])
    return proc, bound


def run_variates_drill(clients: int, head: int, tail: int) -> int:
    """The kill -9 drill over the typed VARIATE path.

    Rejection sampling makes words-per-variate data-dependent, so the
    only thing a client can resume by is the *word offset* its VARIATES
    responses carried -- this drill proves that coordinate survives a
    SIGKILL: Gaussian variates fetched before the kill plus variates
    fetched after RESUME must be bit-identical to an uninterrupted
    in-process run (forward replay, never a seek through variate
    counts).
    """
    sessions = [f"vdrill-{i}" for i in range(clients)]
    golden = {}
    for sid in sessions:
        values, _ = SessionStream(
            sid, master_seed=MASTER_SEED, lanes=LANES
        ).variates("normal", head + tail, {"mean": 0.0, "std": 1.0})
        golden[sid] = values

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "serve.journal")

        proc, port = start_server(journal)
        conns = {}
        heads = {}
        word_marks = {}
        try:
            for sid in sessions:
                conns[sid] = ServeClient("127.0.0.1", port, session=sid)
                # Ragged fetch sizes, as in the raw drill: the variate
                # stream must not care how it was sliced pre-crash.
                a = conns[sid].fetch_variates("normal", head // 3)
                b = conns[sid].fetch_variates("normal", head - head // 3)
                heads[sid] = np.concatenate([a, b])
                word_marks[sid] = conns[sid].words_received
            kill_server(proc)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup path
                proc.kill()
                proc.wait(timeout=10)

        state = read_journal(journal)
        if state.clean_shutdown:
            print("VARIATES RECOVERY GATE FAILED: clean-shutdown marker "
                  "after SIGKILL", file=sys.stderr)
            return 1
        for sid in sessions:
            acked = state.sessions.get(sid, {}).get("offset")
            if acked != word_marks[sid]:
                print(f"VARIATES RECOVERY GATE FAILED: {sid} journaled "
                      f"word offset {acked} != delivered {word_marks[sid]}",
                      file=sys.stderr)
                return 1
        print(f"journal after kill -9: {len(state.sessions)} session(s) "
              f"acked at their delivered word offsets")

        proc2, port2 = start_server(journal)
        try:
            for sid in sessions:
                client = conns[sid]
                client.host, client.port = "127.0.0.1", port2
                ack = client.resume()  # at the word offset, not a count
                if ack.get("offset") != word_marks[sid]:
                    print(f"VARIATES RECOVERY GATE FAILED: {sid} resume "
                          f"ack {ack}", file=sys.stderr)
                    return 1
                tail_vals = client.fetch_variates("normal", tail)
                got = np.concatenate([heads[sid], tail_vals])
                if not np.array_equal(
                    got.view(np.uint64), golden[sid].view(np.uint64)
                ):
                    first = int(np.flatnonzero(
                        got.view(np.uint64) != golden[sid].view(np.uint64)
                    )[0])
                    print(f"VARIATES RECOVERY GATE FAILED: session {sid} "
                          f"diverges at variate {first} (kill after {head})",
                          file=sys.stderr)
                    return 1
                client.close()
        finally:
            proc2.terminate()
            proc2.wait(timeout=15)

    print(
        f"variates recovery gate passed: {clients} session(s) killed -9 "
        f"after {head} Gaussian variates, resumed by word offset, "
        f"{head + tail} variates bit-identical to the uninterrupted run"
    )
    return 0


def run_drill(clients: int, head: int, tail: int) -> int:
    sessions = [f"drill-{i}" for i in range(clients)]
    golden = {
        sid: SessionStream(
            sid, master_seed=MASTER_SEED, lanes=LANES
        ).generate(head + tail)
        for sid in sessions
    }

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "serve.journal")

        proc, port = start_server(journal)
        conns = {}
        heads = {}
        try:
            for sid in sessions:
                conns[sid] = ServeClient("127.0.0.1", port, session=sid)
                # Ragged fetch sizes: the crash must not care how the
                # stream was sliced before it.
                a = conns[sid].fetch(head // 3)
                b = conns[sid].fetch(head - head // 3)
                heads[sid] = np.concatenate([a, b])
            kill_server(proc)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup path
                proc.kill()
                proc.wait(timeout=10)

        state = read_journal(journal)
        if state.clean_shutdown:
            print("RECOVERY GATE FAILED: journal carries a clean-shutdown "
                  "marker after SIGKILL", file=sys.stderr)
            return 1
        if set(state.sessions) != set(sessions):
            print(f"RECOVERY GATE FAILED: journal recovered "
                  f"{sorted(state.sessions)} != {sessions}", file=sys.stderr)
            return 1
        print(f"journal after kill -9: {len(state.sessions)} session(s), "
              f"no shutdown marker, {state.truncated_bytes} torn byte(s)")

        proc2, port2 = start_server(journal)
        try:
            for sid in sessions:
                client = conns[sid]
                client.host, client.port = "127.0.0.1", port2
                ack = client.resume()  # at words_received = head
                if ack.get("offset") != head:
                    print(f"RECOVERY GATE FAILED: {sid} resume ack "
                          f"{ack}", file=sys.stderr)
                    return 1
                tail_vals = client.fetch(tail)
                got = np.concatenate([heads[sid], tail_vals])
                if not np.array_equal(got, golden[sid]):
                    first = int(np.flatnonzero(got != golden[sid])[0])
                    print(
                        f"RECOVERY GATE FAILED: session {sid} diverges "
                        f"from the uninterrupted run at word {first} "
                        f"(kill at {head})",
                        file=sys.stderr,
                    )
                    return 1
                client.close()
        finally:
            proc2.terminate()
            proc2.wait(timeout=15)

    print(
        f"recovery gate passed: {clients} session(s) killed -9 at word "
        f"{head}, resumed, {head + tail} words byte-identical to the "
        f"uninterrupted run"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client sessions in the drill")
    parser.add_argument("--head", type=int, default=3000,
                        help="words served per session before the kill")
    parser.add_argument("--tail", type=int, default=2000,
                        help="words served per session after recovery")
    parser.add_argument("--variates", action="store_true",
                        help="drill the typed VARIATE path (Gaussian "
                             "variates resumed by word offset) instead "
                             "of raw words")
    args = parser.parse_args(argv)
    if args.variates:
        return run_variates_drill(args.clients, args.head, args.tail)
    return run_drill(args.clients, args.head, args.tail)


if __name__ == "__main__":
    raise SystemExit(main())
