"""Table I: property comparison of the PRNGs.

Reproduces the paper's qualitative table (on-demand, scalable,
high-speed supply, quality) and derives the speed ranking two ways:

* **platform rank** -- from the calibrated platform timing models
  (what the paper measured on its testbed);
* **local ns/number** -- wall-clock of our vectorized implementations,
  as a secondary, environment-specific datapoint.
"""

from __future__ import annotations

import time

from conftest import record

from repro.baselines import make_generator
from repro.gpusim.pipeline import PipelineConfig
from repro.hybrid.throughput import curand_time_ns, hybrid_time_ns, mt_time_ns
from repro.utils.tables import format_table

# name -> (on_demand, scalable, high_speed, quality) per the paper's claims,
# with quality cross-checked by bench_table2.
_PROPERTIES = {
    "glibc rand()": ("yes", "no", "no", "low"),
    "CURAND": ("yes", "yes", "yes", "medium"),
    "CUDPP RAND": ("no", "yes", "yes", "high"),
    "Mersenne Twister": ("no", "yes", "yes", "high"),
    "Hybrid PRNG": ("yes", "yes", "yes", "high"),
}

_N_PLATFORM = 100_000_000
_N_LOCAL = 400_000


def _platform_time_ms(name: str) -> float:
    if name == "Hybrid PRNG":
        return hybrid_time_ns(
            PipelineConfig(total_numbers=_N_PLATFORM, batch_size=100)
        ) / 1e6
    if name == "Mersenne Twister":
        return mt_time_ns(_N_PLATFORM) / 1e6
    if name == "CURAND":
        return curand_time_ns(_N_PLATFORM) / 1e6
    if name == "CUDPP RAND":
        # CUDPP RAND sits between MT and CURAND in the paper's ranking.
        return 1.05 * curand_time_ns(_N_PLATFORM) / 1e6
    if name == "glibc rand()":
        from repro.hybrid.throughput import glibc_rand_time_ns

        return glibc_rand_time_ns(_N_PLATFORM) / 1e6
    raise KeyError(name)


def _local_ns_per_number(name: str) -> float:
    gen = make_generator(name, seed=3)
    gen.u32_array(1000)  # warm-up
    t0 = time.perf_counter()
    gen.u32_array(_N_LOCAL)
    return (time.perf_counter() - t0) / _N_LOCAL * 1e9


def test_table1_properties(benchmark):
    platform = {n: _platform_time_ms(n) for n in _PROPERTIES}
    ranks = {
        n: i + 1
        for i, n in enumerate(sorted(platform, key=lambda n: platform[n]))
    }

    local = {}
    for name in _PROPERTIES:
        local[name] = _local_ns_per_number(name)

    def build():
        rows = []
        for name, (od, sc, hs, q) in _PROPERTIES.items():
            rows.append(
                [
                    name,
                    od,
                    sc,
                    hs,
                    q,
                    ranks[name],
                    f"{platform[name]:.0f}",
                    f"{local[name]:.0f}",
                ]
            )
        rows.sort(key=lambda r: r[5], reverse=True)
        return format_table(
            [
                "PRNG",
                "On-Demand",
                "Scalable",
                "HighSpeed",
                "Quality",
                "SpeedRank",
                "platform ms/100M",
                "local ns/num",
            ],
            rows,
            title="Table I -- PRNG property comparison",
        )

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    record("Table I", table)
    assert ranks["Hybrid PRNG"] == 1  # the paper's headline ordering
    assert ranks["glibc rand()"] == 5
