"""Variate-sampling benchmark: DistStream samplers vs raw word output.

Measures, over the same :class:`ParallelExpanderPRNG` bank:

* **WORDS** -- raw ``generate`` throughput (the baseline everything else
  is a fraction of);
* **VARIATES** -- ``DistStream`` rates for uniform01, normal (all three
  methods), exponential, and Lemire bounded integers;
* **ADAPTER** -- ``np.random.Generator(ExpanderBitGen(...))``
  ``standard_normal``: the ctypes-trampoline compatibility path, always
  far slower than ``DistStream`` (measured so the tradeoff is visible,
  never gated).

The ``--min-ratio`` gate enforces that ziggurat Gaussian variates keep
at least that fraction of raw word throughput (default CI gate: 0.25;
the ziggurat needs ~2 words per variate, so 0.5 is the word-cost
ceiling).  Like the other benchmark gates it is only enforced on hosts
with >= 2 cores; the measurement is recorded regardless in
``benchmarks/results/BENCH_dist.json``.

Runs two ways:

* under pytest (tiny load; registers a report via ``record``);
* as a script (``python benchmarks/bench_dist.py [--quick]``), the CI
  benchmark mode.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import numpy as np

from repro.core.parallel import ParallelExpanderPRNG
from repro.dist import DistStream, ExpanderBitGen


def _rate(fn, amount: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` items/second of ``fn(amount)``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(amount)
        best = min(best, time.perf_counter() - t0)
    return amount / best


def _bank(lanes: int, seed: int = 0) -> ParallelExpanderPRNG:
    prng = ParallelExpanderPRNG(num_threads=lanes, seed=seed)
    prng.generate(lanes)  # warm scratch buffers and the feed
    return prng


def bench_words(lanes: int, numbers: int) -> dict:
    return {"words_per_s": _rate(_bank(lanes).generate, numbers)}


def bench_variates(lanes: int, numbers: int) -> dict:
    """One fresh bank per sampler so each measures from a warm start."""
    out = {}
    samplers = [
        ("uniform01", lambda ds, n: ds.uniform01(n)),
        ("normal_ziggurat", lambda ds, n: ds.normal(n)),
        ("normal_polar", lambda ds, n: ds.normal(n, method="polar")),
        ("normal_boxmuller",
         lambda ds, n: ds.normal(n, method="boxmuller")),
        ("exponential", lambda ds, n: ds.exponential(n)),
        ("integers", lambda ds, n: ds.integers(n, 0, 1000)),
    ]
    for name, sample in samplers:
        ds = DistStream(_bank(lanes))
        sample(ds, min(numbers, 4096))  # warm the transform path
        out[f"{name}_per_s"] = _rate(lambda n: sample(ds, n), numbers)
    return out


def bench_adapter(lanes: int, numbers: int) -> dict:
    """The NumPy Generator compatibility path (scalar trampoline)."""
    gen = np.random.Generator(ExpanderBitGen(seed=0, lanes=lanes))
    gen.standard_normal(256)  # warm the buffer
    return {"adapter_normal_per_s": _rate(gen.standard_normal, numbers)}


def run_dist_bench(
    lanes: int = 4096,
    numbers: int = 1 << 20,
    adapter_numbers: int = 1 << 14,
) -> dict:
    report = {
        "host_cpu_count": os.cpu_count() or 1,
        "lanes": lanes,
        "numbers": numbers,
        "adapter_numbers": adapter_numbers,
    }
    report.update(bench_words(lanes, numbers))
    print(f"WORDS:    {report['words_per_s'] / 1e6:8.3f} M words/s",
          flush=True)
    report.update(bench_variates(lanes, numbers))
    for key in sorted(report):
        if key.endswith("_per_s") and key not in (
            "words_per_s", "adapter_normal_per_s"
        ):
            name = key[: -len("_per_s")]
            ratio = report[key] / report["words_per_s"]
            report[f"{name}_ratio"] = ratio
            print(
                f"VARIATES: {name:17s} {report[key] / 1e6:8.3f} "
                f"M variates/s ({ratio:.2f}x of words)",
                flush=True,
            )
    report.update(bench_adapter(lanes, adapter_numbers))
    print(
        f"ADAPTER:  standard_normal  "
        f"{report['adapter_normal_per_s'] / 1e6:8.3f} M variates/s "
        f"(ctypes trampoline; use DistStream for bulk)",
        flush=True,
    )
    return report


def check_ratio(report: dict, min_ratio: float) -> int:
    """Gate: ziggurat Gaussians keep >= min_ratio of word throughput."""
    if min_ratio <= 0:
        return 0
    cores = report["host_cpu_count"]
    ratio = report["normal_ziggurat_ratio"]
    if cores < 2:
        print(
            f"NOTE: host has {cores} core(s); the {min_ratio}x gate is "
            f"recorded but not enforced (measured {ratio:.2f}x)."
        )
        return 0
    if ratio < min_ratio:
        print(
            f"DIST GATE FAILED: ziggurat normal throughput {ratio:.2f}x of "
            f"raw words < {min_ratio}x on a {cores}-core host",
            file=sys.stderr,
        )
        return 1
    print(f"dist gate passed: {ratio:.2f}x >= {min_ratio}x")
    return 0


def test_dist_bench_smoke():
    """Pytest-scale run: every measurement path, positive rates only."""
    from conftest import record

    report = run_dist_bench(lanes=64, numbers=4096, adapter_numbers=512)
    assert report["words_per_s"] > 0
    assert report["normal_ziggurat_per_s"] > 0
    assert report["adapter_normal_per_s"] > 0
    record("dist", "variate sampling smoke", data={
        k: round(v, 3) for k, v in report.items()
        if isinstance(v, (int, float))
    })


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--lanes", type=int, default=4096,
                        help="walker lanes of the measured bank")
    parser.add_argument("--numbers", type=int, default=1 << 20,
                        help="variates per measurement")
    parser.add_argument("--adapter-numbers", type=int, default=1 << 14,
                        help="variates for the (slow) adapter measurement")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (~8x smaller measurements)")
    parser.add_argument("--min-ratio", type=float, default=0.0,
                        help="fail unless ziggurat normal keeps this "
                             "fraction of word throughput (enforced on "
                             "hosts with >= 2 cores)")
    args = parser.parse_args(argv)
    if args.quick:
        args.numbers = min(args.numbers, 1 << 17)
        args.adapter_numbers = min(args.adapter_numbers, 1 << 12)
    report = run_dist_bench(
        lanes=args.lanes, numbers=args.numbers,
        adapter_numbers=args.adapter_numbers,
    )
    from common import emit_bench_record

    path = emit_bench_record("dist", fields={"report": "dist"}, metrics={
        k: round(v, 3) for k, v in report.items()
        if isinstance(v, (int, float))
    })
    print(f"wrote {path}")
    return check_ratio(report, args.min_ratio)


if __name__ == "__main__":
    raise SystemExit(main())
