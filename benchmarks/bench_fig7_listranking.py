"""Figure 7: list-ranking Phase I timings across list sizes.

Platform model: Pure-GPU Mersenne Twister vs Hybrid with pre-generated
glibc bits vs Hybrid with the on-demand PRNG (paper: ~40% faster than
the glibc variant).  Plus a real functional run that (a) checks ranks
against ground truth and (b) measures the bit waste the on-demand supply
avoids.
"""

from __future__ import annotations

import numpy as np

from conftest import record

from repro.apps.listranking import (
    OnDemandBits,
    PregeneratedBits,
    figure7_series,
    random_list,
    rank_list_hybrid,
    serial_ranks,
)
from repro.bitsource import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG
from repro.utils.tables import format_series

SIZES_M = [8, 16, 32, 64, 128]


def test_fig7_model(benchmark):
    series = benchmark.pedantic(
        lambda: figure7_series(SIZES_M), rounds=1, iterations=1
    )
    improvement = [
        1 - ours / glibc
        for ours, glibc in zip(
            series["Hybrid (our PRNG)"], series["Hybrid (glibc rand)"]
        )
    ]
    table = format_series(
        "List size (M)",
        SIZES_M,
        {
            "Pure GPU MT (ms)": [round(v, 1) for v in series["Pure GPU MT"]],
            "Hybrid glibc (ms)": [round(v, 1) for v in series["Hybrid (glibc rand)"]],
            "Hybrid our PRNG (ms)": [round(v, 1) for v in series["Hybrid (our PRNG)"]],
            "on-demand gain": [f"{i:.0%}" for i in improvement],
        },
        title="Figure 7 -- list ranking Phase I time",
    )
    record("Figure 7", table)
    assert all(0.30 < i < 0.55 for i in improvement)  # the paper's ~40%
    assert all(
        ours < mt
        for ours, mt in zip(series["Hybrid (our PRNG)"], series["Pure GPU MT"])
    )


def test_fig7_functional(benchmark):
    n = 300_000
    rng = np.random.Generator(np.random.PCG64(4))
    lst = random_list(n, rng)
    truth = serial_ranks(lst)

    def run_both():
        prng = ParallelExpanderPRNG(
            num_threads=1 << 14, bit_source=SplitMix64Source(5)
        )
        ondemand = OnDemandBits(prng)
        res_a = rank_list_hybrid(lst, ondemand)

        src = np.random.Generator(np.random.PCG64(6))
        pregen = PregeneratedBits(lambda k: src.random(k), initial_bound=n)
        res_b = rank_list_hybrid(lst, pregen)
        return res_a, ondemand, res_b, pregen

    res_a, ondemand, res_b, pregen = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert np.array_equal(res_a.ranks, truth)
    assert np.array_equal(res_b.ranks, truth)

    waste_pct = pregen.waste / pregen.bits_used
    record(
        "Figure 7 (functional)",
        "\n".join(
            [
                f"list size            : {n}",
                f"reduced size         : {res_a.reduced_size}"
                f"  (target n/log2 n = {int(n / np.log2(n))})",
                f"reduction rounds     : {res_a.trace.rounds}",
                f"on-demand bits       : {ondemand.bits_produced}",
                f"pre-generated bits   : {pregen.bits_produced}"
                f"  (waste {waste_pct:.0%} over on-demand)",
                "ranks verified against serial ground truth: OK",
            ]
        ),
    )
    assert pregen.bits_produced > ondemand.bits_produced
