"""Shard-pool scaling benchmark: bulk throughput vs worker count.

Builds a :class:`~repro.engine.ShardedEngine` at each shard count
(default 1/2/4/8), keeps the *total* lane count fixed so every
configuration generates the same amount of work per round, and measures
bulk-stream throughput.  The record lands in
``benchmarks/results/BENCH_engine.json`` with one ``numbers_per_s_<k>``
metric per shard count plus the ``speedup_1_to_4`` ratio the roadmap
tracks.

Scaling needs cores: on a single-core host (such as the reproduction
container) the decomposition is correct but cannot be faster, so the
``--min-speedup`` gate only enforces when the host has at least as many
cores as the largest shard count it judges (otherwise it records the
measurement and prints a note).  The CI ``engine`` job runs this on a
multi-core runner with ``--min-speedup`` set.

Runs two ways:

* under pytest (tiny load; registers a report via ``record``);
* as a script (``python benchmarks/bench_engine_scaling.py``), the CI
  benchmark mode.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.engine import EngineConfig, ShardedEngine

DEFAULT_SHARD_COUNTS = (1, 2, 4, 8)


def measure(shards: int, total_lanes: int, numbers: int,
            warmup: int, seed: int = 2026, backend=None,
            ring_burst=None) -> float:
    """Numbers per second of the bulk stream at ``shards`` workers."""
    from repro.engine import DEFAULT_RING_BURST

    lanes = max(1, total_lanes // shards)
    config = EngineConfig(
        seed=seed, shards=shards, lanes=lanes, backend=backend,
        ring_burst=DEFAULT_RING_BURST if ring_burst is None else ring_burst,
    )
    with ShardedEngine(config) as eng:
        eng.generate(warmup)  # spin up workers, fill the rings
        t0 = time.perf_counter()
        eng.generate(numbers)
        elapsed = time.perf_counter() - t0
    return numbers / elapsed


def run_scaling(
    shard_counts=DEFAULT_SHARD_COUNTS,
    total_lanes: int = 8192,
    numbers: int = 1 << 20,
    warmup: int = 1 << 16,
    backend=None,
    ring_burst=None,
) -> dict:
    """Measure every shard count; return the benchmark report."""
    from common import host_env
    from repro.engine import DEFAULT_RING_BURST

    report = {
        "total_lanes": total_lanes,
        "numbers": numbers,
        "ring_burst": (
            DEFAULT_RING_BURST if ring_burst is None else ring_burst
        ),
    }
    report.update(host_env(backend))
    print(
        f"host: backend {report['backend']}, "
        f"{report['host_cpu_count']} core(s), "
        f"{report['blas_threads']} BLAS thread(s), "
        f"ring burst {report['ring_burst']}",
        flush=True,
    )
    for k in shard_counts:
        rate = measure(k, total_lanes, numbers, warmup,
                       backend=backend, ring_burst=ring_burst)
        report[f"numbers_per_s_{k}"] = round(rate, 1)
        print(f"shards={k:2d}: {rate / 1e6:8.3f} M numbers/s", flush=True)
    if 1 in shard_counts and 4 in shard_counts:
        report["speedup_1_to_4"] = round(
            report["numbers_per_s_4"] / report["numbers_per_s_1"], 3
        )
    return report


def check_speedup(report: dict, min_speedup: float) -> int:
    """Enforce the 1->4 shard speedup gate where the host allows it."""
    if min_speedup <= 0 or "speedup_1_to_4" not in report:
        return 0
    cores = report["host_cpu_count"]
    speedup = report["speedup_1_to_4"]
    if cores < 4:
        print(
            f"NOTE: host has {cores} core(s); the {min_speedup}x gate "
            f"needs >= 4 to be meaningful (measured {speedup}x, recorded "
            "but not enforced)."
        )
        return 0
    if speedup < min_speedup:
        print(
            f"SCALING GATE FAILED: 1->4 shard speedup {speedup}x < "
            f"{min_speedup}x on a {cores}-core host",
            file=sys.stderr,
        )
        return 1
    print(f"scaling gate passed: {speedup}x >= {min_speedup}x")
    return 0


def test_engine_scaling_smoke():
    """Pytest-scale run: two shard counts, enough to catch regressions
    in the measurement path itself (not a performance assertion)."""
    from conftest import record

    report = run_scaling(
        shard_counts=(1, 2), total_lanes=64, numbers=4096, warmup=512
    )
    assert report["numbers_per_s_1"] > 0
    assert report["numbers_per_s_2"] > 0
    record("engine", "engine scaling smoke", data={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, nargs="+",
                        default=list(DEFAULT_SHARD_COUNTS),
                        help="shard counts to measure")
    parser.add_argument("--total-lanes", type=int, default=8192,
                        help="total walker lanes, split across shards")
    parser.add_argument("--numbers", type=int, default=1 << 20,
                        help="numbers generated per measurement")
    parser.add_argument("--warmup", type=int, default=1 << 16,
                        help="warmup numbers before timing")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless 1->4 shard speedup reaches this "
                             "(only enforced on hosts with >= 4 cores)")
    parser.add_argument("--backend", default=None,
                        help="array backend for the shard workers "
                             "(numpy, cupy, torch; default numpy)")
    parser.add_argument("--ring-burst", type=int, default=None,
                        help="rounds per ring slot (default: the "
                             "engine's DEFAULT_RING_BURST)")
    args = parser.parse_args(argv)
    report = run_scaling(
        shard_counts=tuple(args.shards),
        total_lanes=args.total_lanes,
        numbers=args.numbers,
        warmup=args.warmup,
        backend=args.backend,
        ring_burst=args.ring_burst,
    )
    from common import emit_bench_record

    path = emit_bench_record("engine", fields={
        "report": "engine", "backend": report["backend"],
    }, metrics={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })
    print(f"wrote {path}")
    return check_speedup(report, args.min_speedup)


if __name__ == "__main__":
    raise SystemExit(main())
