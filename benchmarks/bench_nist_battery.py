"""Extension table: NIST SP800-22 results for the paper's generators.

Not in the paper -- a third quality battery (alongside Table II's
DIEHARD and Table III's Crush tiers) using NIST's exact statistics.
Notable because the naive C-idiom adapters (glibc, ANSI) fail nearly
everything here, while the hybrid generator is indistinguishable from
Mersenne Twister.
"""

from __future__ import annotations

from common import quality_hybrid
from conftest import record

from repro.baselines import make_generator
from repro.quality.nist import run_nist
from repro.utils.tables import format_table

ROWS = [
    "Hybrid PRNG",
    "CUDPP RAND",
    "Mersenne Twister",
    "CURAND",
    "glibc rand()",
]

N_BITS = 1_000_000


def _generator(name):
    if name == "Hybrid PRNG":
        return quality_hybrid(seed=1)
    return make_generator(name, seed=1)


def test_nist_battery(benchmark):
    def run_all():
        return {name: run_nist(_generator(name), n_bits=N_BITS)
                for name in ROWS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in ROWS:
        res = results[name]
        fails = ", ".join(r.name for r in res.results if not r.passed) or "-"
        rows.append([name, res.pass_string, f"{res.ks_d:.3f}", fails])
    table = format_table(
        ["Algorithm", "NIST SP800-22 Passed", "KS D", "failed tests"],
        rows,
        title=f"Extension -- NIST SP800-22 battery ({N_BITS} bits/stream)",
    )
    record("Extension: NIST battery", table)

    assert results["Hybrid PRNG"].num_passed >= 13
    assert results["Mersenne Twister"].num_passed >= 13
    assert results["glibc rand()"].num_passed <= 8
