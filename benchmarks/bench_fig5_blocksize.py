"""Figure 5: runtime versus batch size ("block size") S.

The paper finds a U-shaped curve with the minimum near S = 100 numbers
per thread: below it the per-thread initialization overhead dominates;
above it the GPU runs out of resident threads and waits for bits.
"""

from __future__ import annotations

from conftest import record

from repro.gpusim.pipeline import PipelineConfig
from repro.hybrid.throughput import hybrid_time_ns, optimal_batch_size
from repro.utils.tables import format_series

BLOCK_SIZES = [1, 2, 5, 10, 20, 50, 100, 200, 500, 1000]
N = 10_000_000


def test_fig5_blocksize(benchmark):
    def sweep():
        return [
            hybrid_time_ns(PipelineConfig(total_numbers=N, batch_size=s)) / 1e6
            for s in BLOCK_SIZES
        ]

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    best = optimal_batch_size(N, candidates=BLOCK_SIZES)
    table = format_series(
        "Block size S",
        BLOCK_SIZES,
        {"Hybrid Time (ms)": [round(t, 1) for t in times]},
        title=f"Figure 5 -- runtime vs block size (N = 10M); optimum S = {best}",
    )
    record("Figure 5", table)

    assert best == 100  # the paper's empirical optimum
    i100 = BLOCK_SIZES.index(100)
    assert times[0] > times[i100]          # left arm of the U
    assert times[-1] > times[i100]         # right arm of the U
