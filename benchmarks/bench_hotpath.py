"""Hot-path benchmark: blocked FEED, fused GENERATE, zero-copy delivery.

Measures the three stages the paper times (Fig. 3/4) as implemented by
this reproduction, comparing the optimized fast path against the legacy
reference kernels **in the same run**:

* **FEED** -- ``GlibcRandom.words64`` throughput, blocked lag-3/lag-31
  kernel vs the one-window-at-a-time reference (``blocked=False``);
* **GENERATE** -- ``ParallelExpanderPRNG.generate`` numbers/s under all
  three neighbour-selection policies with the fused walk kernel, plus
  the pre-overhaul variant (``fused=False`` + unblocked feed) under the
  default ``reject`` policy for the end-to-end speedup;
* **DELIVERY** -- ``generate_into`` into a caller-owned buffer vs
  allocating ``generate``;
* **stage self-time** -- per-stage ``self_s`` from the obs tracer for
  the optimized end-to-end run (the Fig. 4 counterpart).

The record lands in ``benchmarks/results/BENCH_core.json`` via the
common exporter.  The ``--min-speedup`` gate enforces the blocked-FEED
microbenchmark ratio; like the engine scaling benchmark it only
enforces on hosts with enough cores (>= 2), recording the measurement
otherwise.

Runs two ways:

* under pytest (tiny load; registers a report via ``record``);
* as a script (``python benchmarks/bench_hotpath.py [--quick]``), the
  CI benchmark mode.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

import numpy as np

from repro import obs
from repro.bitsource.glibc import GlibcRandom
from repro.core.parallel import ParallelExpanderPRNG
from repro.core.walk import POLICIES


def _rate(fn, amount: int, repeats: int = 3) -> float:
    """Best-of-``repeats`` items/second of ``fn(amount)``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(amount)
        best = min(best, time.perf_counter() - t0)
    return amount / best


def bench_feed(words: int, seed: int = 1) -> dict:
    """FEED microbenchmark: blocked vs reference ``words64`` throughput."""
    legacy = GlibcRandom(seed, blocked=False)
    blocked = GlibcRandom(seed, blocked=True)
    legacy.words64(1 << 12)  # warm both paths (and the power cache)
    blocked.words64(1 << 12)
    out = {
        "feed_words_per_s_legacy": _rate(legacy.words64, words),
        "feed_words_per_s_blocked": _rate(blocked.words64, words),
    }
    out["feed_speedup"] = (
        out["feed_words_per_s_blocked"] / out["feed_words_per_s_legacy"]
    )
    return out


def bench_generate(
    lanes: int, numbers: int, seed: int = 0, backend=None
) -> dict:
    """GENERATE per policy (fused) plus the pre-overhaul reject variant."""
    out = {}
    for policy in POLICIES:
        prng = ParallelExpanderPRNG(
            num_threads=lanes, seed=seed, policy=policy, backend=backend
        )
        prng.generate(lanes)  # warm scratch buffers and the feed
        out[f"gen_numbers_per_s_{policy}"] = _rate(prng.generate, numbers)
    legacy = ParallelExpanderPRNG(
        num_threads=lanes,
        bit_source=GlibcRandom(seed, blocked=False),
        policy="reject",
        fused=False,
    )
    legacy.generate(lanes)
    out["gen_numbers_per_s_reject_legacy"] = _rate(legacy.generate, numbers)
    out["e2e_speedup_reject"] = (
        out["gen_numbers_per_s_reject"]
        / out["gen_numbers_per_s_reject_legacy"]
    )
    return out


def bench_delivery(
    lanes: int, numbers: int, seed: int = 0, backend=None
) -> dict:
    """Zero-copy ``generate_into`` vs allocating ``generate``."""
    prng = ParallelExpanderPRNG(
        num_threads=lanes, seed=seed, backend=backend
    )
    prng.generate(lanes)
    alloc_rate = _rate(prng.generate, numbers)
    buf = np.empty(numbers, dtype=np.uint64)
    into_rate = _rate(lambda _n: prng.generate_into(buf), numbers)
    return {
        "into_numbers_per_s": into_rate,
        "alloc_numbers_per_s": alloc_rate,
    }


def bench_stage_selftime(lanes: int, numbers: int, seed: int = 0) -> dict:
    """Per-stage self-time of one optimized end-to-end run (Fig. 4).

    The feed goes through a :class:`BufferedFeed` so the tracer sees the
    FEED stage as its own spans (same trick as ``repro generate
    --trace``); the feed is value-transparent, so the stream is the one
    the other measurements produce.
    """
    from repro.bitsource.buffered import BufferedFeed

    out = {}
    with obs.observed() as (_registry, tracer):
        prng = ParallelExpanderPRNG(
            num_threads=lanes,
            bit_source=BufferedFeed(GlibcRandom(seed), batch_words=1 << 15),
        )
        buf = np.empty(numbers, dtype=np.uint64)
        prng.generate_into(buf)
        for stage, total in tracer.stage_totals().items():
            out[f"self_s_{stage}"] = total.self_s
            out[f"total_s_{stage}"] = total.total_s
    return out


def run_hotpath(
    feed_words: int = 1 << 21,
    lanes: int = 4096,
    numbers: int = 1 << 20,
    backend=None,
) -> dict:
    from common import host_env

    report = {
        "feed_words": feed_words,
        "lanes": lanes,
        "numbers": numbers,
    }
    report.update(host_env(backend))
    print(
        f"HOST:     backend {report['backend']}, "
        f"{report['host_cpu_count']} core(s), "
        f"{report['blas_threads']} BLAS thread(s)",
        flush=True,
    )
    report.update(bench_feed(feed_words))
    print(
        f"FEED:     blocked {report['feed_words_per_s_blocked'] / 1e6:8.3f} "
        f"M words/s, legacy {report['feed_words_per_s_legacy'] / 1e6:8.3f} "
        f"M words/s ({report['feed_speedup']:.2f}x)",
        flush=True,
    )
    report.update(bench_generate(lanes, numbers, backend=backend))
    for policy in POLICIES:
        print(
            f"GENERATE: {policy:6s} "
            f"{report[f'gen_numbers_per_s_{policy}'] / 1e6:8.3f} M numbers/s",
            flush=True,
        )
    print(
        f"GENERATE: reject (pre-overhaul) "
        f"{report['gen_numbers_per_s_reject_legacy'] / 1e6:8.3f} M numbers/s"
        f" -> end-to-end speedup {report['e2e_speedup_reject']:.2f}x",
        flush=True,
    )
    report.update(bench_delivery(lanes, numbers, backend=backend))
    print(
        f"DELIVERY: generate_into "
        f"{report['into_numbers_per_s'] / 1e6:8.3f} M numbers/s, generate "
        f"{report['alloc_numbers_per_s'] / 1e6:8.3f} M numbers/s",
        flush=True,
    )
    report.update(bench_stage_selftime(lanes, numbers))
    for key, val in sorted(report.items()):
        if key.startswith("self_s_"):
            stage = key[len("self_s_"):]
            print(f"STAGE:    {stage:10s} self-time {val:8.3f} s", flush=True)
    return report


def check_speedup(report: dict, min_speedup: float) -> int:
    """Enforce the blocked-FEED speedup gate where the host allows it."""
    if min_speedup <= 0:
        return 0
    cores = report["host_cpu_count"]
    speedup = report["feed_speedup"]
    if cores < 2:
        print(
            f"NOTE: host has {cores} core(s); the {min_speedup}x gate is "
            f"recorded but not enforced (measured {speedup:.2f}x)."
        )
        return 0
    if speedup < min_speedup:
        print(
            f"HOTPATH GATE FAILED: blocked FEED speedup {speedup:.2f}x < "
            f"{min_speedup}x on a {cores}-core host",
            file=sys.stderr,
        )
        return 1
    print(f"hotpath gate passed: {speedup:.2f}x >= {min_speedup}x")
    return 0


def test_hotpath_smoke():
    """Pytest-scale run: exercises every measurement path, asserts the
    rates are positive (not a performance assertion)."""
    from conftest import record

    report = run_hotpath(feed_words=1 << 12, lanes=64, numbers=2048)
    assert report["feed_words_per_s_blocked"] > 0
    assert report["gen_numbers_per_s_reject"] > 0
    assert report["into_numbers_per_s"] > 0
    record("hotpath", "hot-path smoke", data={
        k: round(v, 3) for k, v in report.items()
        if isinstance(v, (int, float))
    })


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--feed-words", type=int, default=1 << 21,
                        help="64-bit words per FEED measurement")
    parser.add_argument("--lanes", type=int, default=4096,
                        help="walker lanes for the GENERATE measurements")
    parser.add_argument("--numbers", type=int, default=1 << 20,
                        help="numbers generated per measurement")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (~10x smaller measurements)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="fail unless the blocked FEED speedup reaches "
                             "this (only enforced on hosts with >= 2 cores)")
    parser.add_argument("--backend", default=None,
                        help="array backend for the GENERATE measurements "
                             "(numpy, cupy, torch; default numpy)")
    args = parser.parse_args(argv)
    if args.quick:
        args.feed_words = min(args.feed_words, 1 << 18)
        args.numbers = min(args.numbers, 1 << 17)
    report = run_hotpath(
        feed_words=args.feed_words, lanes=args.lanes, numbers=args.numbers,
        backend=args.backend,
    )
    from common import emit_bench_record

    path = emit_bench_record("core", fields={
        "report": "hotpath", "backend": report["backend"],
    }, metrics={
        k: round(v, 3) for k, v in report.items()
        if isinstance(v, (int, float))
    })
    print(f"wrote {path}")
    return check_speedup(report, args.min_speedup)


if __name__ == "__main__":
    raise SystemExit(main())
