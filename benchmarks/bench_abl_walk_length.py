"""Ablation: walk length l (the paper fixes l = 64).

Trade-off: feed bits and GPU steps scale linearly with l, while quality
saturates once the walk mixes.  Reports local throughput and a fast
quality probe (serial pairs + autocorrelation + hamming independence)
per walk length.
"""

from __future__ import annotations

import time

from conftest import record

from repro.baselines.hybrid_adapter import HybridPRNG
from repro.quality.crush import (
    autocorrelation_test,
    hamming_indep_test,
    serial_pairs_test,
)
from repro.utils.tables import format_table

WALK_LENGTHS = [8, 16, 32, 64, 128]
N = 200_000


def _probe(gen) -> tuple:
    tests = [
        serial_pairs_test(gen, n_pairs=200_000),
        autocorrelation_test(gen, n_bits=1_000_000),
        hamming_indep_test(gen, n_words=200_000),
    ]
    return sum(t.passed for t in tests), min(t.p_value for t in tests)


def test_ablation_walk_length(benchmark):
    def sweep():
        rows = []
        for l in WALK_LENGTHS:
            gen = HybridPRNG(seed=1, num_threads=1 << 14, walk_length=l)
            gen.u64_array(1 << 14)  # warm-up
            t0 = time.perf_counter()
            gen.u64_array(N)
            dt = time.perf_counter() - t0
            passed, min_p = _probe(gen)
            rows.append(
                [
                    l,
                    f"{N / dt / 1e3:.0f}",
                    3 * l,
                    f"{passed}/3",
                    f"{min_p:.3f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["walk length l", "Knumbers/s (local)", "bits/number", "probe passed",
         "min p"],
        rows,
        title="Ablation -- walk length vs throughput and quality",
    )
    record("Ablation: walk length", table)

    by_l = {r[0]: r for r in rows}
    # Throughput must decrease with l; quality probe passes from l=16 on.
    assert float(by_l[8][1]) > float(by_l[128][1])
    assert by_l[64][3] == "3/3"
