"""Shared helpers for the benchmark harness."""

from __future__ import annotations

from repro.baselines.hybrid_adapter import HybridPRNG
from repro.quality.stats import BatteryResult

#: Walker lanes for quality-grade hybrid runs (bulk-generation friendly).
QUALITY_THREADS = 1 << 16


def quality_hybrid(seed: int = 1) -> HybridPRNG:
    """The hybrid PRNG configured for high-volume battery runs."""
    return HybridPRNG(seed=seed, num_threads=QUALITY_THREADS)


def battery_row(result: BatteryResult) -> list:
    """One table row: generator, passed, KS D."""
    return [result.generator, result.pass_string, f"{result.ks_d:.4f}"]
