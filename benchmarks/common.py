"""Shared helpers for the benchmark harness."""

from __future__ import annotations

import os
import pathlib
from typing import Optional

from repro.baselines.hybrid_adapter import HybridPRNG
from repro.obs.export import write_json_record
from repro.quality.stats import BatteryResult

#: Walker lanes for quality-grade hybrid runs (bulk-generation friendly).
QUALITY_THREADS = 1 << 16

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def quality_hybrid(seed: int = 1) -> HybridPRNG:
    """The hybrid PRNG configured for high-volume battery runs."""
    return HybridPRNG(seed=seed, num_threads=QUALITY_THREADS)


def battery_row(result: BatteryResult) -> list:
    """One table row: generator, passed, KS D."""
    return [result.generator, result.pass_string, f"{result.ks_d:.4f}"]


def safe_name(name: str) -> str:
    """Filesystem-safe slug for a report/benchmark name."""
    return (
        name.lower().replace(" ", "_").replace("/", "-").replace(":", "")
        .replace("(", "").replace(")", "")
    )


def blas_thread_count() -> int:
    """Threads the BLAS pool will use for the blocked FEED matmuls.

    Resolution order: an actual pool introspection via ``threadpoolctl``
    when present, then the conventional env pins
    (``OMP_NUM_THREADS``/``OPENBLAS_NUM_THREADS``/``MKL_NUM_THREADS``),
    then the host's core count -- the default most BLAS builds use.
    """
    try:  # pragma: no cover - optional dependency
        from threadpoolctl import threadpool_info

        sizes = [
            info.get("num_threads", 0)
            for info in threadpool_info()
            if info.get("user_api") == "blas"
        ]
        if sizes:
            return max(sizes)
    except ImportError:
        pass
    for var in ("OMP_NUM_THREADS", "OPENBLAS_NUM_THREADS",
                "MKL_NUM_THREADS"):
        val = os.environ.get(var)
        if val:
            try:
                return int(val.split(",")[0])
            except ValueError:
                continue
    return os.cpu_count() or 1


def host_env(backend: Optional[str] = None) -> dict:
    """Provenance fields every benchmark record should carry.

    A throughput number is meaningless without the array backend it ran
    on, the cores it could use and the BLAS pool width behind the
    blocked FEED -- regressions diff these records across hosts.
    """
    from repro.backend import get_backend

    return {
        "backend": get_backend(backend).name,
        "host_cpu_count": os.cpu_count() or 1,
        "blas_threads": blas_thread_count(),
    }


def emit_bench_record(
    name: str,
    fields: Optional[dict] = None,
    metrics: Optional[dict] = None,
) -> pathlib.Path:
    """Write ``benchmarks/results/BENCH_<name>.json`` via the obs exporter.

    One JSON object per file, sharing the encoder (and therefore the
    schema conventions) of :mod:`repro.obs.export`'s JSONL events, so
    downstream tooling can consume run traces and benchmark records
    uniformly.  ``fields`` are free-form metadata; ``metrics`` is a flat
    name -> number dict.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    record = {"type": "bench", "name": name}
    if fields:
        record.update(fields)
    if metrics:
        record["metrics"] = dict(metrics)
    return write_json_record(
        RESULTS_DIR / f"BENCH_{safe_name(name)}.json", record
    )
