"""Ablation: neighbour-selection policy for the 3-bit draw.

The paper never says what its kernel does when the three feed bits read
111 (there is no neighbour 7).  Compares the three policies implemented
in :mod:`repro.core.walk`: unbiased rejection (default), branch-free
mod-7 (biased towards neighbour 0), and lazy (111 -> stay put).
Reports feed-bit overhead, local throughput, and the neighbour-index
bias each policy induces.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import record

from repro.bitsource import SplitMix64Source
from repro.core.expander import GabberGalilExpander
from repro.core.parallel import ParallelExpanderPRNG
from repro.core.walk import POLICIES, WalkEngine
from repro.utils.tables import format_table

N = 200_000


def _index_bias(policy: str) -> float:
    """Max relative deviation of neighbour-index frequency from 1/7."""
    eng = WalkEngine(GabberGalilExpander(), policy=policy)
    state = eng.make_state(SplitMix64Source(1).words64(64))
    ks = eng._draw_indices(700_000, SplitMix64Source(2), state)
    freq = np.bincount(ks, minlength=7) / ks.size
    return float(np.abs(freq * 7 - 1).max())


def test_ablation_bit_policy(benchmark):
    def sweep():
        rows = []
        for policy in POLICIES:
            prng = ParallelExpanderPRNG(
                num_threads=1 << 14,
                bit_source=SplitMix64Source(7),
                policy=policy,
            )
            prng.generate(1 << 14)  # warm-up
            before = prng.bits_consumed
            t0 = time.perf_counter()
            prng.generate(N)
            dt = time.perf_counter() - t0
            bits_per_number = (prng.bits_consumed - before) / N
            rows.append(
                [
                    policy,
                    f"{bits_per_number:.1f}",
                    f"{N / dt / 1e3:.0f}",
                    f"{_index_bias(policy):.4f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["policy", "feed bits/number", "Knumbers/s (local)", "index bias"],
        rows,
        title="Ablation -- neighbour-selection policy",
    )
    record("Ablation: bit policy", table)

    by = {r[0]: r for r in rows}
    # Rejection costs ~8/7 more bits but is unbiased.
    assert float(by["reject"][1]) > float(by["mod"][1])
    assert float(by["reject"][3]) < 0.02
    assert float(by["mod"][3]) > 0.5  # neighbour 0 gets twice the mass
