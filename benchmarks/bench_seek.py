"""Seek latency benchmark: jump-ahead cost must not grow with offset.

The crash-recovery story rests on one performance fact: ``seek(offset)``
is O(log offset) matrix-power composition, so resuming a stream that has
served a trillion words costs the same as resuming a fresh one.  This
benchmark measures the wall-clock latency of a cold seek at offsets from
2**10 to 2**48 -- for the glibc feed itself and for a full
:class:`~repro.core.parallel.AddressableExpanderPRNG` walker bank -- and
records the ratio ``t(2**40) / t(2**10)``.

The gate (CI ``recovery`` job): that ratio stays under 2x.  A replay
implementation would fail it by nine orders of magnitude; a logarithmic
one passes with room for timer noise.

For context the report also times *sequential replay* to a small offset,
the cost recovery used to pay per stream before direct seek existed.

Runs two ways:

* under pytest (tiny offsets; checks the measurement path);
* as a script (``python benchmarks/bench_seek.py``), the CI mode that
  writes ``benchmarks/results/BENCH_seek.json``.
"""

from __future__ import annotations

import argparse
import pathlib
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.bitsource.glibc import GlibcRandom
from repro.core.parallel import AddressableExpanderPRNG

DEFAULT_EXPONENTS = (10, 20, 30, 40, 48)
BANK_LANES = 64


def _median_seek_s(make, offset: int, repeats: int) -> float:
    """Median wall-clock of a cold ``seek(offset)`` + first word."""
    times = []
    for _ in range(repeats):
        obj = make()
        t0 = time.perf_counter()
        obj.seek(offset)
        obj.words64(1) if hasattr(obj, "words64") else obj.generate(1)
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


def _replay_s(offset: int) -> float:
    """Sequential replay to ``offset`` (what restart used to cost)."""
    src = GlibcRandom(2026)
    t0 = time.perf_counter()
    src.words64(offset)
    src.words64(1)
    return time.perf_counter() - t0


def run(exponents=DEFAULT_EXPONENTS, repeats: int = 9) -> dict:
    report = {"lanes": BANK_LANES, "repeats": repeats}
    for label, make in [
        ("feed", lambda: GlibcRandom(2026)),
        ("bank", lambda: AddressableExpanderPRNG(
            num_threads=BANK_LANES, bit_source=GlibcRandom(2026))),
    ]:
        for exp in exponents:
            t = _median_seek_s(make, 1 << exp, repeats)
            report[f"{label}_seek_us_2e{exp}"] = round(t * 1e6, 2)
            print(f"{label} seek(2**{exp:2d}): {t * 1e6:10.2f} us",
                  flush=True)
        lo, hi = min(exponents), max(e for e in exponents if e <= 40)
        report[f"{label}_ratio_2e{hi}_over_2e{lo}"] = round(
            report[f"{label}_seek_us_2e{hi}"]
            / max(report[f"{label}_seek_us_2e{lo}"], 1e-9), 3
        )
    # Context: what sequential replay costs at a *small* offset.
    replay_off = 1 << 22
    t = _replay_s(replay_off)
    report["replay_s_2e22"] = round(t, 4)
    print(f"replay to 2**22 (context): {t * 1e3:10.2f} ms", flush=True)
    return report


def check_flatness(report: dict, max_ratio: float) -> int:
    """Gate: seek at 2**40 within ``max_ratio`` of seek at 2**10."""
    if max_ratio <= 0:
        return 0
    failed = 0
    for label in ("feed", "bank"):
        key = next(
            (k for k in report if k.startswith(f"{label}_ratio_")), None
        )
        if key is None:
            continue
        ratio = report[key]
        if ratio > max_ratio:
            print(
                f"SEEK GATE FAILED: {label} {key} = {ratio}x > "
                f"{max_ratio}x (seek latency grows with offset)",
                file=sys.stderr,
            )
            failed = 1
        else:
            print(f"seek gate passed: {label} {ratio}x <= {max_ratio}x")
    return failed


def test_seek_latency_smoke():
    """Pytest-scale run: two offsets, correctness of the harness only."""
    from conftest import record

    report = run(exponents=(10, 20), repeats=3)
    assert report["feed_seek_us_2e10"] > 0
    assert report["bank_seek_us_2e20"] > 0
    record("seek", "seek latency smoke", data={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--exponents", type=int, nargs="+",
                        default=list(DEFAULT_EXPONENTS),
                        help="offsets measured as powers of two")
    parser.add_argument("--repeats", type=int, default=9,
                        help="repeats per offset (median is reported)")
    parser.add_argument("--max-ratio", type=float, default=0.0,
                        help="fail if seek(2**40) exceeds this multiple "
                             "of seek(2**10) (0: record only)")
    args = parser.parse_args(argv)
    report = run(exponents=tuple(args.exponents), repeats=args.repeats)
    from common import emit_bench_record

    path = emit_bench_record("seek", fields={"report": "seek"}, metrics={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })
    print(f"wrote {path}")
    return check_flatness(report, args.max_ratio)


if __name__ == "__main__":
    raise SystemExit(main())
