"""Table III: TestU01-style SmallCrush / Crush / BigCrush results.

Paper's rows (x/15 passed):

    CURAND        15/15, 14/15, 13/15
    M. Twister    15/15, 13/15, 13/15
    Hybrid PRNG   15/15, 14/15, 13/15

The reproduced batteries are scaled re-implementations (see
DESIGN.md): they preserve the tiered structure and the "all three
generators are comparable" conclusion; at our sample sizes the
borderline failures of real Crush/BigCrush do not trigger, so rows read
15/15 across (recorded as measured in EXPERIMENTS.md).
"""

from __future__ import annotations

from common import quality_hybrid
from conftest import record

from repro.baselines import make_generator
from repro.quality.crush import run_battery
from repro.utils.tables import format_table

ROWS = ["CURAND", "Mersenne Twister", "Hybrid PRNG"]

#: Battery -> size scale (BigCrush reduced to bound hybrid runtime).
BATTERY_SCALES = [("SmallCrush", 1.0), ("Crush", 1.0), ("BigCrush", 0.5)]


def _generator(name):
    if name == "Hybrid PRNG":
        return quality_hybrid(seed=1)
    return make_generator(name, seed=1)


def test_table3_testu01(benchmark):
    def run_all():
        results = {}
        for name in ROWS:
            for battery, scale in BATTERY_SCALES:
                results[(name, battery)] = run_battery(
                    battery, _generator(name), scale=scale
                )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in ROWS:
        for battery, _scale in BATTERY_SCALES:
            res = results[(name, battery)]
            fails = ", ".join(r.name for r in res.results if not r.passed) or "-"
            rows.append([name, battery, res.pass_string, fails])
    table = format_table(
        ["PRNG", "Test Suite", "Tests Passed", "failed tests"],
        rows,
        title="Table III -- TestU01-style battery results",
    )
    record("Table III", table)

    for name in ROWS:
        assert results[(name, "SmallCrush")].num_passed >= 14, name
        assert results[(name, "Crush")].num_passed >= 13, name
        assert results[(name, "BigCrush")].num_passed >= 13, name
