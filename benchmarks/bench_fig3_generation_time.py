"""Figure 3: time to generate N numbers, N = 5M .. 1000M.

Hybrid vs GPU Mersenne Twister vs CURAND on the simulated platform.
The paper's claim: the hybrid generator "outperforms both ... by a
factor of 2 in most cases".
"""

from __future__ import annotations

from conftest import record

from repro.gpusim.pipeline import PipelineConfig
from repro.hybrid.throughput import curand_time_ns, hybrid_time_ns, mt_time_ns
from repro.utils.tables import format_series

SIZES_M = [5, 10, 50, 100, 200, 500, 1000]


def _series():
    hybrid, mt, curand = [], [], []
    for m in SIZES_M:
        n = int(m * 1e6)
        hybrid.append(
            hybrid_time_ns(PipelineConfig(total_numbers=n, batch_size=100)) / 1e6
        )
        mt.append(mt_time_ns(n) / 1e6)
        curand.append(curand_time_ns(n) / 1e6)
    return hybrid, mt, curand


def test_fig3_generation_time(benchmark):
    hybrid, mt, curand = benchmark.pedantic(_series, rounds=1, iterations=1)
    speedups = [m / h for m, h in zip(mt, hybrid)]
    table = format_series(
        "Size (M)",
        SIZES_M,
        {
            "Hybrid Time (ms)": [round(v, 1) for v in hybrid],
            "Mersenne Twister (ms)": [round(v, 1) for v in mt],
            "CURAND (ms)": [round(v, 1) for v in curand],
            "MT/Hybrid": [round(s, 2) for s in speedups],
        },
        title="Figure 3 -- generation time vs stream size",
    )
    record("Figure 3", table)
    # Shape assertions: hybrid fastest everywhere, ~2x at large N.
    assert all(h < m and h < c for h, m, c in zip(hybrid, mt, curand))
    assert 1.7 < speedups[-1] < 2.3
