"""Table II: DIEHARD battery results + KS-test D for the five generators.

Paper's row order and results:

    Hybrid PRNG   15/15  D = 0.04
    CUDPP RAND    15/15  D = 0.04
    M. Twister    15/15  D = 0.03
    CURAND         8/15  D = 0.25
    glibc rand()   6/15  D = 0.35

Measured pass counts depend on battery scale; the reproduction targets
the *ordering*: hybrid/CUDPP/MT at the top with small D, glibc at the
bottom with large D.  (Our from-scratch XORWOW is statistically sound,
so unlike the paper's CURAND row it passes -- see EXPERIMENTS.md.)
"""

from __future__ import annotations

from common import quality_hybrid
from conftest import record

from repro.baselines import make_generator
from repro.quality.diehard import run_diehard
from repro.utils.tables import format_table

SCALE = 1.0

ROWS = [
    "Hybrid PRNG",
    "CUDPP RAND",
    "Mersenne Twister",
    "CURAND",
    "glibc rand()",
]


def _generator(name):
    if name == "Hybrid PRNG":
        return quality_hybrid(seed=1)
    return make_generator(name, seed=1)


def test_table2_diehard(benchmark):
    def run_all():
        results = {}
        for name in ROWS:
            results[name] = run_diehard(_generator(name), scale=SCALE)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in ROWS:
        res = results[name]
        fails = ", ".join(r.name for r in res.results if not r.passed) or "-"
        rows.append([name, res.pass_string, f"{res.ks_d:.3f}", fails])
    table = format_table(
        ["Algorithm", "DIEHARD Tests Passed", "KS-Test D", "failed tests"],
        rows,
        title="Table II -- DIEHARD quality results",
    )
    record("Table II", table)

    assert results["Hybrid PRNG"].num_passed >= 14
    assert results["Mersenne Twister"].num_passed >= 14
    assert results["CUDPP RAND"].num_passed >= 14
    # glibc tested as C applications use it: clearly worst, as in the paper.
    assert results["glibc rand()"].num_passed <= 10
    assert results["glibc rand()"].ks_d > results["Hybrid PRNG"].ks_d
