"""Benchmark-harness plumbing.

Reproduced tables/figures are registered with :func:`record` and echoed
in the terminal summary (so they survive pytest's output capture) as
well as written to ``benchmarks/results/<name>.txt`` for later diffing
against the paper.  Each registered report also emits a machine-readable
``BENCH_<name>.json`` record (through :func:`common.emit_bench_record`,
i.e. the :mod:`repro.obs.export` encoder) alongside the text, carrying
any structured ``data`` the benchmark attached.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from common import RESULTS_DIR, emit_bench_record, safe_name  # noqa: E402

_REPORTS: list = []


def record(name: str, text: str, data: dict | None = None) -> None:
    """Register a reproduced table/figure for the summary and on disk."""
    _REPORTS.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{safe_name(name)}.txt").write_text(text + "\n")
    emit_bench_record(name, fields={"report": name}, metrics=data)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)
