"""Benchmark-harness plumbing.

Reproduced tables/figures are registered with :func:`record` and echoed
in the terminal summary (so they survive pytest's output capture) as
well as written to ``benchmarks/results/<name>.txt`` for later diffing
against the paper.
"""

from __future__ import annotations

import pathlib

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_REPORTS: list = []


def record(name: str, text: str) -> None:
    """Register a reproduced table/figure for the summary and on disk."""
    _REPORTS.append((name, text))
    _RESULTS_DIR.mkdir(exist_ok=True)
    safe = (
        name.lower().replace(" ", "_").replace("/", "-").replace(":", "")
        .replace("(", "").replace(")", "")
    )
    (_RESULTS_DIR / f"{safe}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_sep("-", name)
        for line in text.splitlines():
            terminalreporter.write_line(line)
