"""CI determinism gate: the engine's stream survives re-runs and resizing.

Generates the same ``--numbers``-long prefix of the engine's bulk stream
twice, from two fresh shard pools, using two *different* fetch-size
patterns -- one steady, one ragged -- and byte-compares the results.
Any divergence (a fetch-size leak, a nondeterministic shard interleave,
a remainder bug) exits non-zero so the CI ``engine`` job fails loudly.

A third pass checks the named-stream serving path the same way.

Usage::

    PYTHONPATH=src python benchmarks/check_engine_determinism.py \
        --numbers 1000000
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.engine import EngineConfig, ShardedEngine


def fetch_pattern(generate, total: int, sizes) -> np.ndarray:
    """Drain ``total`` numbers with a repeating fetch-size pattern."""
    parts = []
    got = 0
    i = 0
    while got < total:
        n = min(sizes[i % len(sizes)], total - got)
        parts.append(generate(n))
        got += n
        i += 1
    return np.concatenate(parts)


def run_gate(numbers: int, seed: int, shards: int, lanes: int) -> int:
    config = EngineConfig(seed=seed, shards=shards, lanes=lanes)
    steady = [4096]
    ragged = [1, 65537, 300, 8191, 17]

    with ShardedEngine(config) as eng:
        a = fetch_pattern(eng.generate, numbers, steady)
    with ShardedEngine(config) as eng:
        b = fetch_pattern(eng.generate, numbers, ragged)
    if not np.array_equal(a, b):
        first = int(np.flatnonzero(a != b)[0])
        print(
            f"DETERMINISM GATE FAILED: bulk streams diverge at index "
            f"{first} ({numbers} numbers, fetch patterns {steady} vs "
            f"{ragged})",
            file=sys.stderr,
        )
        return 1
    print(f"bulk stream: {numbers} numbers byte-identical across "
          f"fetch patterns {steady} and {ragged}")

    stream_n = min(numbers, 1 << 16)
    with ShardedEngine(config) as eng:
        c = fetch_pattern(
            lambda n: eng.fetch_stream(7, 64, n), stream_n, [256]
        )
    with ShardedEngine(config) as eng:
        d = fetch_pattern(
            lambda n: eng.fetch_stream(7, 64, n), stream_n, [1, 999, 64]
        )
    if not np.array_equal(c, d):
        print(
            f"DETERMINISM GATE FAILED: named stream diverges "
            f"({stream_n} numbers)",
            file=sys.stderr,
        )
        return 1
    print(f"named stream: {stream_n} numbers byte-identical across "
          "fetch patterns")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--numbers", type=int, default=1_000_000,
                        help="bulk-stream prefix length to compare")
    parser.add_argument("--seed", type=int, default=2026)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--lanes", type=int, default=2048,
                        help="lanes per shard")
    args = parser.parse_args(argv)
    return run_gate(args.numbers, args.seed, args.shards, args.lanes)


if __name__ == "__main__":
    raise SystemExit(main())
