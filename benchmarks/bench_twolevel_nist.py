"""Extension table: two-level NIST testing (SP800-22 §4 methodology).

Runs the NIST battery over several independently seeded streams per
generator and evaluates, per test, the proportion of passing streams and
the uniformity of the p-values -- the hardened verdict a single battery
run cannot give.
"""

from __future__ import annotations

from common import quality_hybrid
from conftest import record

from repro.baselines import make_generator
from repro.quality.nist import run_nist
from repro.quality.twolevel import two_level_run
from repro.utils.tables import format_table

ROWS = ["Hybrid PRNG", "Mersenne Twister", "glibc rand()"]
STREAMS = 12
N_BITS = 250_000


def _generator(name):
    if name == "Hybrid PRNG":
        return quality_hybrid(seed=1)
    return make_generator(name, seed=1)


def test_twolevel_nist(benchmark):
    def run_all():
        return {
            name: two_level_run(
                _generator(name),
                lambda g: run_nist(g, n_bits=N_BITS),
                streams=STREAMS,
            )
            for name in ROWS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for name in ROWS:
        res = results[name]
        fails = ", ".join(v.name for v in res.verdicts if not v.passed) or "-"
        rows.append([name, res.pass_string, fails])
    table = format_table(
        ["Algorithm", f"tests passed ({STREAMS} streams)", "failed tests"],
        rows,
        title="Extension -- two-level NIST SP800-22",
    )
    record("Extension: two-level NIST", table)

    assert results["Hybrid PRNG"].num_passed >= 13
    assert results["Mersenne Twister"].num_passed >= 13
    assert results["glibc rand()"].num_passed <= 8
