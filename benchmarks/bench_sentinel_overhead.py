"""Served-throughput overhead of the statistical sentinel.

Runs the serving soak twice on identical load -- sentinel disabled, then
enabled at the default sampling rate (1 word in 16, 4096-word windows) --
and reports the throughput delta.  The tentpole guarantee is that the
tap + sentinel cost is marginal on the serving hot path: the CI gate
fails the job if the measured overhead exceeds ``--max-overhead-pct``
(default 5%).

Each configuration is measured ``--repeats`` times interleaved
(off/on/off/on...) and scored by its best run, which cancels most
scheduler and allocator noise on shared CI hosts.

Runs two ways:

* under pytest (tiny load, generous bound; registers a report via
  ``record``);
* as a script (``python benchmarks/bench_sentinel_overhead.py``), the CI
  gate mode -- exits non-zero when the overhead gate trips.

Either way the result lands in ``benchmarks/results/BENCH_sentinel.json``
through the shared bench exporter.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.serve import ServeClient, ServeConfig, serve_background


def _soak_once(
    sentinel: bool,
    clients: int,
    fetches: int,
    count: int,
    workers: int,
) -> dict:
    """One timed soak; returns wall time and throughput.

    Raises ``RuntimeError`` on any client failure so a broken
    configuration cannot masquerade as a fast one.
    """
    config = ServeConfig(
        master_seed=2026,
        workers=workers,
        max_global_queue=max(256, clients * 2),
        max_session_queue=16,
        sentinel=sentinel,
    )
    errors: list = []
    barrier = threading.Barrier(clients)

    def client_main(i: int) -> None:
        try:
            with ServeClient(
                handle.host, handle.port, session=f"ovh-{i}",
                retries=8, backoff_s=0.02,
            ) as client:
                barrier.wait(timeout=60)
                for _ in range(fetches):
                    values = client.fetch(count)
                    if values.size != count:
                        raise RuntimeError("short fetch")
        except Exception as exc:  # noqa: BLE001 - soak boundary
            errors.append(f"client {i}: {type(exc).__name__}: {exc}")

    with serve_background(config) as handle:
        threads = [
            threading.Thread(target=client_main, args=(i,), daemon=True)
            for i in range(clients)
        ]
        wall0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        wall = time.perf_counter() - wall0
        hung = [t.name for t in threads if t.is_alive()]
        status = None
        if not hung and not errors:
            with ServeClient(handle.host, handle.port) as c:
                status = c.status()

    if hung:
        raise RuntimeError(f"{len(hung)} client sessions hung")
    if errors:
        raise RuntimeError(f"{len(errors)} clients failed; first: {errors[0]}")
    if sentinel:
        summary = status["server"]["sentinel"]
        if not summary["enabled"]:
            raise RuntimeError("sentinel soak ran without a sentinel")
        if summary["worst"] != "STAT_OK":
            raise RuntimeError(
                f"sentinel flagged the canonical soak: {summary}"
            )
    total = clients * fetches * count
    return {"wall_s": wall, "numbers_per_s": total / wall}


def run_overhead(
    clients: int = 16,
    fetches: int = 8,
    count: int = 4096,
    workers: int = 4,
    repeats: int = 3,
) -> dict:
    """Interleaved off/on soaks; overhead from each side's best run."""
    best = {False: 0.0, True: 0.0}
    for _ in range(repeats):
        for sentinel in (False, True):
            result = _soak_once(sentinel, clients, fetches, count, workers)
            best[sentinel] = max(best[sentinel], result["numbers_per_s"])
    overhead_pct = 100.0 * (1.0 - best[True] / best[False])
    return {
        "clients": clients,
        "fetches_per_client": fetches,
        "count_per_fetch": count,
        "workers": workers,
        "repeats": repeats,
        "total_numbers_per_run": clients * fetches * count,
        "numbers_per_s_off": round(best[False], 1),
        "numbers_per_s_on": round(best[True], 1),
        "overhead_pct": round(overhead_pct, 2),
    }


def _format_report(report: dict) -> str:
    lines = ["sentinel serving overhead", "-" * 38]
    for key, value in report.items():
        lines.append(f"{key:22}: {value}")
    return "\n".join(lines)


def test_sentinel_overhead_smoke():
    """Pytest-scale: tiny load, so only a coarse sanity bound is
    enforced -- the 5% gate runs at CI-soak scale in script mode."""
    from conftest import record

    report = run_overhead(clients=4, fetches=4, count=2048, repeats=2)
    assert report["numbers_per_s_on"] > 0
    # Coarse guard against a pathological regression (e.g. sampling
    # every word or copying whole buffers); real gate is the CI script.
    assert report["overhead_pct"] < 30.0
    record("sentinel overhead", _format_report(report), data={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=16,
                        help="concurrent client sessions")
    parser.add_argument("--fetches", type=int, default=8,
                        help="fetches per client")
    parser.add_argument("--count", type=int, default=4096,
                        help="numbers per fetch")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker threads")
    parser.add_argument("--repeats", type=int, default=3,
                        help="interleaved repeats per configuration")
    parser.add_argument("--max-overhead-pct", type=float, default=5.0,
                        help="fail if sentinel overhead exceeds this")
    args = parser.parse_args(argv)
    try:
        report = run_overhead(
            clients=args.clients, fetches=args.fetches, count=args.count,
            workers=args.workers, repeats=args.repeats,
        )
    except RuntimeError as exc:
        print(f"OVERHEAD BENCH FAILED: {exc}", file=sys.stderr)
        return 1
    from common import emit_bench_record

    print(_format_report(report))
    path = emit_bench_record("sentinel", fields={"report": "sentinel"},
                             metrics={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })
    print(f"wrote {path}")
    if report["overhead_pct"] > args.max_overhead_pct:
        print(
            f"GATE FAILED: sentinel overhead {report['overhead_pct']}% "
            f"> {args.max_overhead_pct}%",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
