"""Figure 6: the generator on a multicore CPU versus serial glibc rand().

Two views:

* the calibrated platform model (6-core i7 980 running the OpenMP
  variant vs a serial ``rand()`` loop) -- the paper's figure;
* a real local measurement of this repository's vectorized CPU
  implementation against the vectorized glibc reimplementation, as an
  environment-specific sanity check (absolute numbers differ, the
  hybrid-scales-better shape is the claim).
"""

from __future__ import annotations

import time

from conftest import record

from repro.bitsource import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG
from repro.bitsource.glibc import GlibcRandom
from repro.hybrid.throughput import cpu_hybrid_time_ns, glibc_rand_time_ns
from repro.utils.tables import format_series

SIZES_M = [5, 10, 50, 100, 500, 1000]


def test_fig6_model(benchmark):
    def sweep():
        hybrid = [cpu_hybrid_time_ns(int(m * 1e6)) / 1e6 for m in SIZES_M]
        rand = [glibc_rand_time_ns(int(m * 1e6)) / 1e6 for m in SIZES_M]
        return hybrid, rand

    hybrid, rand = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "Size (M)",
        SIZES_M,
        {
            "Hybrid Time (ms)": [round(v, 1) for v in hybrid],
            "CPU Rand Time (ms)": [round(v, 1) for v in rand],
        },
        title="Figure 6 -- CPU-only generator vs glibc rand() (platform model)",
    )
    record("Figure 6 (model)", table)
    assert all(h < r for h, r in zip(hybrid, rand))


def test_fig6_local_measurement(benchmark):
    n = 1_000_000
    prng = ParallelExpanderPRNG(
        num_threads=1 << 16, bit_source=SplitMix64Source(3)
    )
    glibc = GlibcRandom(1)
    prng.generate(1 << 16)  # warm-up
    glibc.rand_array(1000)

    def measure():
        t0 = time.perf_counter()
        prng.generate(n)
        t_hybrid = time.perf_counter() - t0
        t0 = time.perf_counter()
        glibc.rand_array(n)
        t_glibc = time.perf_counter() - t0
        return t_hybrid, t_glibc

    t_hybrid, t_glibc = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "Figure 6 (local)",
        "\n".join(
            [
                "Local wall-clock, 1M numbers (this Python implementation):",
                f"  expander-walk CPU generator : {t_hybrid * 1e3:8.1f} ms"
                "  (64 walk steps per number)",
                f"  glibc rand() (vectorized)   : {t_glibc * 1e3:8.1f} ms"
                "  (1 additive-feedback step per number)",
                "NOTE: in pure Python the 64x work ratio dominates; the paper's",
                "crossover relies on multicore OpenMP scaling, reproduced by the",
                "platform model above.",
            ]
        ),
    )
    assert t_hybrid > 0 and t_glibc > 0
