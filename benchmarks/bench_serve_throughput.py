"""Serving-path soak/throughput benchmark: many concurrent sessions.

Boots an in-process :class:`~repro.serve.server.RNGServer` (daemon-thread
event loop, ephemeral port) and drives it with ``--clients`` concurrent
blocking clients, each fetching from its own session.  Verifies the
serving contract under load -- every fetch answered, zero cross-session
stream overlap, no hung sessions left behind -- and records throughput
plus client-observed latency percentiles.

Runs two ways:

* under pytest (small default load; registers a report via ``record``);
* as a script (``python benchmarks/bench_serve_throughput.py --clients
  100``), the CI soak mode.  Exits non-zero on any failed fetch, overlap,
  or hung session, so the serve CI job fails loudly.

Either way the result lands in ``benchmarks/results/BENCH_serve.json``
through the shared bench exporter.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.serve import ServeClient, ServeConfig, serve_background


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def run_soak(
    clients: int = 100,
    fetches: int = 5,
    count: int = 256,
    workers: int = 4,
    join_timeout_s: float = 120.0,
) -> dict:
    """Drive ``clients`` concurrent sessions; return the measured report.

    Raises ``RuntimeError`` on any client error, hung session, or
    cross-session overlap -- the CI soak turns that into a non-zero exit.
    """
    config = ServeConfig(
        master_seed=2026,
        workers=workers,
        max_global_queue=max(256, clients * 2),
        max_session_queue=16,
    )
    latencies: list = []
    errors: list = []
    sessions_values: dict = {}
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def client_main(i: int) -> None:
        try:
            with ServeClient(
                handle.host, handle.port, session=f"soak-{i}",
                retries=8, backoff_s=0.02,
            ) as client:
                barrier.wait(timeout=60)
                mine, lats = [], []
                for _ in range(fetches):
                    t0 = time.perf_counter()
                    values = client.fetch(count)
                    lats.append(time.perf_counter() - t0)
                    mine.append(values)
            with lock:
                sessions_values[i] = mine
                latencies.extend(lats)
        except Exception as exc:  # noqa: BLE001 - soak boundary
            with lock:
                errors.append(f"client {i}: {type(exc).__name__}: {exc}")

    with serve_background(config) as handle:
        threads = [
            threading.Thread(target=client_main, args=(i,), daemon=True)
            for i in range(clients)
        ]
        wall0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=join_timeout_s)
        wall = time.perf_counter() - wall0
        hung = [t.name for t in threads if t.is_alive()]
        status = None
        if not hung:
            with ServeClient(handle.host, handle.port) as c:
                status = c.status()

    if hung:
        raise RuntimeError(f"{len(hung)} client sessions hung: {hung[:5]}")
    if errors:
        raise RuntimeError(
            f"{len(errors)} clients failed; first: {errors[0]}"
        )

    # Zero cross-session overlap: the load-bearing serving guarantee.
    seen: set = set()
    for i, arrays in sessions_values.items():
        mine = set()
        for values in arrays:
            mine.update(int(v) for v in values)
        overlap = seen & mine
        if overlap:
            raise RuntimeError(
                f"cross-session overlap at client {i}: {len(overlap)} values"
            )
        seen |= mine

    total_numbers = clients * fetches * count
    latencies.sort()
    report = {
        "clients": clients,
        "fetches_per_client": fetches,
        "count_per_fetch": count,
        "workers": workers,
        "total_numbers": total_numbers,
        "wall_s": round(wall, 4),
        "numbers_per_s": round(total_numbers / wall, 1),
        "fetches_per_s": round(clients * fetches / wall, 1),
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "server_health": status["server"]["health"],
        "server_busy_total": status["server"]["busy_total"],
        "server_sessions": status["server"]["sessions"],
    }
    return report


def _format_report(report: dict) -> str:
    lines = ["serve throughput soak", "-" * 38]
    for key, value in report.items():
        lines.append(f"{key:22}: {value}")
    return "\n".join(lines)


def test_serve_soak():
    """Pytest-scale soak: 16 sessions, still checks every guarantee."""
    from conftest import record

    report = run_soak(clients=16, fetches=4, count=256)
    assert report["server_health"] == "OK"
    assert report["total_numbers"] == 16 * 4 * 256
    record("serve", _format_report(report), data={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=100,
                        help="concurrent client sessions")
    parser.add_argument("--fetches", type=int, default=5,
                        help="fetches per client")
    parser.add_argument("--count", type=int, default=256,
                        help="numbers per fetch")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker threads")
    args = parser.parse_args(argv)
    try:
        report = run_soak(
            clients=args.clients, fetches=args.fetches,
            count=args.count, workers=args.workers,
        )
    except RuntimeError as exc:
        print(f"SOAK FAILED: {exc}", file=sys.stderr)
        return 1
    from common import emit_bench_record

    text = _format_report(report)
    print(text)
    path = emit_bench_record("serve", fields={"report": "serve"}, metrics={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
