"""Serving-path soak/throughput benchmark: many concurrent sessions.

Boots an in-process :class:`~repro.serve.server.RNGServer` (daemon-thread
event loop, ephemeral port) and drives it with ``--clients`` concurrent
**asyncio** clients -- one task per session, so 1000 concurrent sessions
cost 1000 tasks, not 1000 OS threads.  Verifies the serving contract
under load -- every fetch answered, zero cross-session stream overlap,
no hung sessions left behind -- and records throughput plus
client-observed latency percentiles.

Runs two ways:

* under pytest (small default load; registers a report via ``record``);
* as a script (``python benchmarks/bench_serve_throughput.py --clients
  1000 --count 512 --min-numbers-per-s 500000 --max-p99-ms 50``), the
  CI soak/gate mode.  Exits non-zero on any failed fetch, overlap, hung
  session, or missed gate -- except that throughput/latency gates are
  *recorded but not enforced* on hosts with fewer than 4 cores (the
  fused cross-session round needs real parallelism to hit service-scale
  numbers; same escape hatch as ``bench_engine_scaling.py``).

Either way the result lands in ``benchmarks/results/BENCH_serve.json``
through the shared bench exporter.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import pathlib
import sys
import time

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from repro.serve import ServeConfig, serve_background
from repro.serve.client import AsyncServeClient

#: Cores below which the throughput/latency gates are recorded only.
GATE_MIN_CORES = 4


def _percentile(sorted_values, q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


async def _drive_clients(
    host: str, port: int, clients: int, fetches: int, count: int,
    timeout_s: float,
):
    """One asyncio task per session; returns (values, latencies, errors,
    hung, wall_s)."""
    start = asyncio.Event()
    latencies: list = []
    errors: list = []
    values: dict = {}

    async def client_main(i: int) -> None:
        client = await AsyncServeClient.connect(
            host, port, session=f"soak-{i}", retries=20, backoff_s=0.01,
        )
        try:
            await start.wait()
            mine, lats = [], []
            for _ in range(fetches):
                t0 = time.perf_counter()
                got = await client.fetch(count)
                lats.append(time.perf_counter() - t0)
                mine.append(got)
            values[i] = mine
            latencies.extend(lats)
        finally:
            await client.close()

    tasks = [
        asyncio.create_task(client_main(i), name=f"soak-{i}")
        for i in range(clients)
    ]
    # Let every session connect (and the server build its streams)
    # before the clock starts: this measures serving, not ramp-up.
    await asyncio.sleep(0.05)
    wall0 = time.perf_counter()
    start.set()
    done, pending = await asyncio.wait(tasks, timeout=timeout_s)
    wall = time.perf_counter() - wall0
    hung = [t.get_name() for t in pending]
    for t in pending:
        t.cancel()
    for t in done:
        if t.exception() is not None:
            exc = t.exception()
            errors.append(
                f"{t.get_name()}: {type(exc).__name__}: {exc}"
            )
    return values, latencies, errors, hung, wall


def run_soak(
    clients: int = 100,
    fetches: int = 5,
    count: int = 256,
    workers: int = 4,
    join_timeout_s: float = 240.0,
) -> dict:
    """Drive ``clients`` concurrent sessions; return the measured report.

    Raises ``RuntimeError`` on any client error, hung session, or
    cross-session overlap -- the CI soak turns that into a non-zero exit.
    """
    config = ServeConfig(
        master_seed=2026,
        workers=workers,
        max_global_queue=max(256, clients * 2),
        max_session_queue=16,
        max_batch=max(64, min(256, clients)),
    )

    with serve_background(config) as handle:
        values, latencies, errors, hung, wall = asyncio.run(
            _drive_clients(
                handle.host, handle.port, clients, fetches, count,
                join_timeout_s,
            )
        )
        status = None
        if not hung:
            client_status = asyncio.run(
                _status(handle.host, handle.port)
            )
            status = client_status

    if hung:
        raise RuntimeError(f"{len(hung)} client sessions hung: {hung[:5]}")
    if errors:
        raise RuntimeError(
            f"{len(errors)} clients failed; first: {errors[0]}"
        )
    if len(values) != clients:
        raise RuntimeError(
            f"only {len(values)}/{clients} sessions reported values"
        )

    # Zero cross-session overlap: the load-bearing serving guarantee.
    # All served words concatenated must be globally unique (64-bit
    # words; a birthday collision at soak scale is ~1e-7 noise, the
    # same assumption the serve suites already make).
    everything = np.concatenate(
        [v for arrays in values.values() for v in arrays]
    )
    unique = np.unique(everything).size
    if unique != everything.size:
        raise RuntimeError(
            f"cross-session overlap: {everything.size - unique} duplicate "
            f"values across {clients} sessions"
        )

    total_numbers = clients * fetches * count
    latencies.sort()
    report = {
        "clients": clients,
        "fetches_per_client": fetches,
        "count_per_fetch": count,
        "workers": workers,
        "host_cpu_count": os.cpu_count() or 1,
        "total_numbers": total_numbers,
        "wall_s": round(wall, 4),
        "numbers_per_s": round(total_numbers / wall, 1),
        "fetches_per_s": round(clients * fetches / wall, 1),
        "latency_p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "latency_p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "server_health": status["server"]["health"],
        "server_busy_total": status["server"]["busy_total"],
        "server_sessions": status["server"]["sessions"],
    }
    return report


async def _status(host: str, port: int) -> dict:
    client = await AsyncServeClient.connect(host, port, session="soak-status")
    try:
        return await client.status()
    finally:
        await client.close()


def check_gates(
    report: dict, min_numbers_per_s: float, max_p99_ms: float
) -> int:
    """Apply the serve gates; 0 = pass (or recorded-only host)."""
    if min_numbers_per_s <= 0 and max_p99_ms <= 0:
        return 0
    cores = report["host_cpu_count"]
    rate = report["numbers_per_s"]
    p99 = report["latency_p99_ms"]
    if cores < GATE_MIN_CORES:
        print(
            f"NOTE: host has {cores} core(s); the serve gates need "
            f">= {GATE_MIN_CORES} to be meaningful (measured "
            f"{rate} numbers/s, p99 {p99}ms; recorded but not enforced)."
        )
        return 0
    failed = False
    if min_numbers_per_s > 0 and rate < min_numbers_per_s:
        print(
            f"GATE FAILED: {rate} numbers/s < {min_numbers_per_s} "
            f"on a {cores}-core host",
            file=sys.stderr,
        )
        failed = True
    if max_p99_ms > 0 and p99 > max_p99_ms:
        print(
            f"GATE FAILED: p99 {p99}ms > {max_p99_ms}ms "
            f"on a {cores}-core host",
            file=sys.stderr,
        )
        failed = True
    if not failed:
        print(
            f"serve gates passed: {rate} numbers/s >= {min_numbers_per_s}, "
            f"p99 {p99}ms <= {max_p99_ms}ms"
        )
    return 1 if failed else 0


def _format_report(report: dict) -> str:
    lines = ["serve throughput soak", "-" * 38]
    for key, value in report.items():
        lines.append(f"{key:22}: {value}")
    return "\n".join(lines)


def test_serve_soak():
    """Pytest-scale soak: 16 sessions, still checks every guarantee."""
    from conftest import record

    report = run_soak(clients=16, fetches=4, count=256)
    assert report["server_health"] == "OK"
    assert report["total_numbers"] == 16 * 4 * 256
    record("serve", _format_report(report), data={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=100,
                        help="concurrent client sessions")
    parser.add_argument("--fetches", type=int, default=5,
                        help="fetches per client")
    parser.add_argument("--count", type=int, default=256,
                        help="numbers per fetch")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker threads")
    parser.add_argument("--min-numbers-per-s", type=float, default=0.0,
                        help="throughput gate (0 disables; recorded "
                             "only on <4-core hosts)")
    parser.add_argument("--max-p99-ms", type=float, default=0.0,
                        help="latency gate (0 disables; recorded only "
                             "on <4-core hosts)")
    args = parser.parse_args(argv)
    try:
        report = run_soak(
            clients=args.clients, fetches=args.fetches,
            count=args.count, workers=args.workers,
        )
    except RuntimeError as exc:
        print(f"SOAK FAILED: {exc}", file=sys.stderr)
        return 1
    from common import emit_bench_record

    text = _format_report(report)
    print(text)
    path = emit_bench_record("serve", fields={"report": "serve"}, metrics={
        k: v for k, v in report.items() if isinstance(v, (int, float))
    })
    print(f"wrote {path}")
    return check_gates(report, args.min_numbers_per_s, args.max_p99_ms)


if __name__ == "__main__":
    raise SystemExit(main())
