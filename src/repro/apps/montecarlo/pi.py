"""Monte Carlo pi: the canonical per-substream determinism demo.

Each substream ``i`` owns an independent expander walker bank seeded
with ``derive_seed(master_seed, i)`` and draws ``(x, y)`` points through
a stream-exact :class:`~repro.dist.DistStream`.  Two consequences worth
stating because they are exactly what the paper's on-demand model buys:

* **chunk invariance** -- a substream's hit count is identical whether
  its points are drawn in one call or a thousand, because ``uniform01``
  slices one well-defined variate sequence (fetch-split invariance);
* **schedule invariance** -- the estimate is a sum of per-substream hit
  counts, each a pure function of ``(master_seed, i, lanes)``, so it
  does not matter which worker runs which substream or in what order.

The estimator itself is the textbook quarter-circle one: ``x, y ~
U[0,1)``, a hit is ``x*x + y*y < 1``, and ``pi ~= 4 * hits / points``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.bitsource.counter import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG
from repro.core.streams import derive_seed
from repro.dist import DistStream
from repro.utils.checks import check_positive

__all__ = ["PI_STREAM_LANES", "PiResult", "estimate_pi", "stream_hits"]

#: Walker lanes per substream.  Lane count is part of a bank's stream
#: identity, so it is pinned here: changing it changes every draw.
PI_STREAM_LANES = 16

#: Points drawn per chunk when a caller does not choose one.
DEFAULT_CHUNK = 65536


@dataclass
class PiResult:
    """Estimate plus the per-substream evidence it was assembled from."""

    estimate: float
    hits: int
    points: int
    per_stream_hits: List[int]
    per_stream_points: List[int]

    @property
    def error(self) -> float:
        """Absolute error against ``math.pi`` (well, numpy's)."""
        return abs(self.estimate - float(np.pi))


def stream_hits(
    master_seed: int,
    stream_index: int,
    points: int,
    chunk: int = DEFAULT_CHUNK,
    lanes: int = PI_STREAM_LANES,
) -> int:
    """Quarter-circle hits of one substream (pure function of the args).

    ``chunk`` only bounds peak memory: the hit count is identical for
    any chunking of the same ``points`` because the underlying variate
    stream is stream-exact.
    """
    check_positive("points", points)
    check_positive("chunk", chunk)
    stream = DistStream(
        ParallelExpanderPRNG(
            num_threads=lanes,
            bit_source=SplitMix64Source(derive_seed(master_seed, stream_index)),
        )
    )
    hits = 0
    remaining = points
    while remaining:
        n = min(remaining, chunk)
        xy = stream.uniform01(2 * n)
        x, y = xy[0::2], xy[1::2]
        hits += int(np.count_nonzero(x * x + y * y < 1.0))
        remaining -= n
    return hits


def estimate_pi(
    points: int,
    master_seed: int = 0,
    substreams: int = 8,
    chunk: int = DEFAULT_CHUNK,
    lanes: int = PI_STREAM_LANES,
) -> PiResult:
    """Estimate pi from ``points`` samples split across ``substreams``.

    The first ``points % substreams`` substreams take one extra point,
    so every requested point is drawn and the split is deterministic.
    """
    check_positive("points", points)
    check_positive("substreams", substreams)
    base, extra = divmod(points, substreams)
    per_points = [base + (1 if i < extra else 0) for i in range(substreams)]
    per_hits = [
        stream_hits(master_seed, i, n, chunk=chunk, lanes=lanes) if n else 0
        for i, n in enumerate(per_points)
    ]
    hits = sum(per_hits)
    return PiResult(
        estimate=4.0 * hits / points,
        hits=hits,
        points=points,
        per_stream_hits=per_hits,
        per_stream_points=per_points,
    )
