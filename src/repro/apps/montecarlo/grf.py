"""Per-pencil Gaussian random field: the zeldovich-PLT seeding scenario.

Realizing a Gaussian random field means filling a Fourier grid with
complex Gaussian modes and inverse-transforming.  The naive
parallelization hazards are exactly the ones zeldovich-PLT's meta-RNG
notes walk through: one RNG shared by all threads is irreproducible,
one RNG *per thread* makes the field depend on the thread count, and
one RNG per ky-plane breaks **oversampling** (regenerating the same
field at higher resolution), because a longer pencil leaves the plane's
RNG in a different spot for the next pencil.

The fix reproduced here is **one stream per pencil** (all ``kx`` for a
given ``ky``), keyed by the *signed* ``ky`` frequency so the key does
not depend on the grid size, with modes drawn in ``kx``-increasing
order.  Then:

* the field is independent of how pencils are scheduled across
  workers (each pencil's stream is a pure function of
  ``(master_seed, ky)``);
* a ``2n`` grid reproduces the interior modes of the ``n`` grid
  bit-for-bit -- a longer pencil just reads further into the same
  stream, and new ``|ky|`` pencils get fresh streams.

Draws go through :class:`repro.dist.DistStream`'s stream-exact ziggurat
(mode ``kx`` always consumes variates ``2*kx`` and ``2*kx + 1`` of its
pencil, however the calls are chunked), over a per-pencil expander bank
seeded via :func:`repro.core.streams.derive_seed`.

This is a 2-D demo (real ``n x n`` field, ``rfft2`` half-plane); the
3-D version is the same story with ``(ky, kz)`` pencil keys.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.bitsource.counter import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG
from repro.core.streams import derive_seed
from repro.dist import DistStream
from repro.utils.checks import check_positive

__all__ = [
    "GRF_PENCIL_LANES",
    "gaussian_field_modes",
    "pencil_modes",
    "pencil_seed",
    "realize_field",
]

#: Walker lanes per pencil bank.  Part of every pencil's stream
#: identity (like the seed), so it is pinned as a module constant.
GRF_PENCIL_LANES = 16

#: Keeps pencil streams disjoint from other apps' ``derive_seed``
#: children of the same master seed (e.g. the pi substreams).
_PENCIL_SALT = 0x6772665F70656E63  # "grf_penc"


def _fold_ky(ky: int) -> int:
    """Signed frequency -> unique non-negative index (0,-1,1,-2,2...)."""
    return 2 * ky if ky >= 0 else -2 * ky - 1


def pencil_seed(master_seed: int, ky: int) -> int:
    """The feed seed of pencil ``ky`` (a *signed* frequency).

    Depends only on ``(master_seed, ky)`` -- never on the grid size --
    which is the whole oversampling story: the ``ky = 3`` pencil of a
    64-grid is the same stream as the ``ky = 3`` pencil of a 32-grid.
    """
    return derive_seed(derive_seed(master_seed, _PENCIL_SALT), _fold_ky(ky))


def pencil_modes(
    master_seed: int,
    ky: int,
    kx_count: int,
    lanes: int = GRF_PENCIL_LANES,
) -> np.ndarray:
    """The first ``kx_count`` unit complex Gaussian modes of a pencil.

    Mode ``kx`` is built from standard-normal variates ``2*kx`` and
    ``2*kx + 1`` of the pencil's stream as ``(re + 1j*im) / sqrt(2)``
    (unit variance per complex mode), so the result for a larger
    ``kx_count`` extends -- never reshuffles -- the result for a
    smaller one.
    """
    check_positive("kx_count", kx_count)
    stream = DistStream(
        ParallelExpanderPRNG(
            num_threads=lanes,
            bit_source=SplitMix64Source(pencil_seed(master_seed, ky)),
        )
    )
    z = stream.normal(2 * kx_count)
    return (z[0::2] + 1j * z[1::2]) / np.sqrt(2.0)


def gaussian_field_modes(n: int, master_seed: int = 0) -> np.ndarray:
    """Unit-variance mode grid for a real ``n x n`` field (rfft2 layout).

    Row ``r`` holds the pencil with signed frequency ``ky = r`` for
    ``r <= n//2`` and ``ky = r - n`` above; columns run ``kx = 0 ..
    n//2``.  The self-conjugate columns (``kx = 0`` and ``kx = n//2``)
    are Hermitian-symmetrized so the field is exactly real: negative-ky
    entries become conjugates of their positive-ky partners, and the
    four self-conjugate modes (DC and Nyquist corners) are projected to
    real with variance preserved.

    Oversampling: for ``m > n`` (both even), every mode with
    ``|ky| < n//2`` and ``kx < n//2`` of the ``m``-grid equals the
    corresponding mode of the ``n``-grid bit-for-bit; only the coarse
    grid's own Nyquist row/column (symmetrized there, interior here)
    differ.
    """
    check_positive("n", n)
    if n % 2:
        raise ValueError(f"grid size must be even, got {n}")
    half = n // 2
    modes = np.empty((n, half + 1), dtype=np.complex128)
    for r in range(n):
        ky = r if r <= half else r - n
        modes[r] = pencil_modes(master_seed, ky, half + 1)

    # Hermitian symmetry: F(-ky, kx) = conj(F(ky, kx)) on the two
    # self-conjugate columns; keep the positive-ky draw as authoritative
    # so the interior stays exactly what the pencils produced.
    for col in (0, half):
        for r in range(1, half):
            modes[n - r, col] = np.conj(modes[r, col])
        for r in (0, half):  # DC and Nyquist corners: real modes
            modes[r, col] = np.sqrt(2.0) * modes[r, col].real
    return modes


def realize_field(
    n: int,
    master_seed: int = 0,
    power: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """A real ``n x n`` Gaussian random field with spectrum ``power``.

    ``power`` maps an array of integer wavenumber magnitudes ``|k|`` to
    spectral power; the default is a ``P(k) = 1/k**2`` power law with
    ``P(0) = 0`` (zero-mean field).  Returns ``irfft2`` of the
    amplitude-scaled unit modes; no volume normalization is applied
    (this is a seeding demo, not a cosmology code).
    """
    modes = gaussian_field_modes(n, master_seed)
    ky = np.fft.fftfreq(n, d=1.0 / n)[:, None]
    kx = np.fft.rfftfreq(n, d=1.0 / n)[None, :]
    kmag = np.hypot(ky, kx)
    if power is None:
        amp = np.zeros_like(kmag)
        np.divide(1.0, kmag, out=amp, where=kmag > 0)
    else:
        amp = np.sqrt(np.maximum(power(kmag), 0.0))
        amp[kmag == 0] = 0.0
    return np.fft.irfft2(modes * amp, s=(n, n))
