"""Monte Carlo demos of per-substream determinism over typed variates.

Both apps are deliberately simple *numerically* so that the reproduction
property stays front and center: every random draw goes through a
:class:`repro.dist.DistStream` over a per-substream expander bank keyed
by :func:`repro.core.streams.derive_seed`, so results are a pure
function of ``(master_seed, structure)`` -- never of chunk sizes,
thread counts, or scheduling order.

* :mod:`~repro.apps.montecarlo.pi` -- embarrassingly parallel
  pi-estimation; per-substream hit counts are invariant to how the
  points are chunked.
* :mod:`~repro.apps.montecarlo.grf` -- a per-pencil Gaussian random
  field in the zeldovich-PLT style: one stream per Fourier pencil so a
  higher-resolution realization reproduces the interior modes of a
  lower-resolution one bit-for-bit (oversampling invariance).
"""

from repro.apps.montecarlo.grf import (
    GRF_PENCIL_LANES,
    gaussian_field_modes,
    pencil_modes,
    pencil_seed,
    realize_field,
)
from repro.apps.montecarlo.pi import PI_STREAM_LANES, PiResult, estimate_pi

__all__ = [
    "GRF_PENCIL_LANES",
    "PI_STREAM_LANES",
    "PiResult",
    "estimate_pi",
    "gaussian_field_modes",
    "pencil_modes",
    "pencil_seed",
    "realize_field",
]
