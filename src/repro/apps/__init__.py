"""The paper's applications: list ranking, photon migration, and the
connected-components companion from the same hybrid-algorithms line."""

from repro.apps.connectivity import CCResult, connected_components, random_graph_edges

__all__ = ["CCResult", "connected_components", "random_graph_edges"]
