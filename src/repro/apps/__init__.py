"""The paper's applications: list ranking, photon migration, the
connected-components companion from the same hybrid-algorithms line,
and the Monte Carlo per-substream determinism demos
(:mod:`repro.apps.montecarlo`)."""

from repro.apps.connectivity import CCResult, connected_components, random_graph_edges

__all__ = ["CCResult", "connected_components", "random_graph_edges"]
