"""Application II: Monte Carlo photon migration (Section VI)."""

from repro.apps.photon.layers import Layer, TissueModel, three_layer_skin
from repro.apps.photon.physics import (
    ROULETTE_CHANCE,
    WEIGHT_THRESHOLD,
    fresnel_reflectance,
    hg_cos_theta,
    roulette_survival,
    sample_step,
    spin,
)
from repro.apps.photon.profile import DepthProfile
from repro.apps.photon.simulate import MCPhotonMigration, SimulationResult
from repro.apps.photon.tally import Tally
from repro.apps.photon.timing_model import (
    MEAN_INTERACTIONS,
    PhotonCosts,
    figure8_series,
    photon_times_ms,
)

__all__ = [
    "Layer",
    "TissueModel",
    "three_layer_skin",
    "ROULETTE_CHANCE",
    "WEIGHT_THRESHOLD",
    "fresnel_reflectance",
    "hg_cos_theta",
    "roulette_survival",
    "sample_step",
    "spin",
    "DepthProfile",
    "MCPhotonMigration",
    "SimulationResult",
    "Tally",
    "MEAN_INTERACTIONS",
    "PhotonCosts",
    "figure8_series",
    "photon_times_ms",
]
