"""Tallies for photon-migration results: reflectance, absorption, transmission.

Accumulates the three weight sinks of the MCML scheme and checks the
energy balance ``R_specular + R_diffuse + A + T = 1`` (per launched
photon weight) -- the key physical invariant the tests enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Tally"]


@dataclass
class Tally:
    """Weight accounting for a photon-migration run."""

    num_layers: int
    photons_launched: int = 0
    specular: float = 0.0
    diffuse_reflectance: float = 0.0
    transmittance: float = 0.0
    absorbed_per_layer: np.ndarray = field(default=None)
    #: Weight destroyed by roulette (statistical noise term; ~0 on average
    #: because survivors are boosted).
    roulette_net: float = 0.0

    def __post_init__(self):
        if self.num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {self.num_layers}")
        if self.absorbed_per_layer is None:
            self.absorbed_per_layer = np.zeros(self.num_layers)

    # -- accumulation ---------------------------------------------------

    def add_launch(self, n: int, specular_fraction: float) -> None:
        self.photons_launched += n
        self.specular += n * specular_fraction

    def add_absorption(self, layer_idx: np.ndarray, amounts: np.ndarray) -> None:
        np.add.at(self.absorbed_per_layer, layer_idx, amounts)

    def add_reflectance(self, weights: np.ndarray) -> None:
        self.diffuse_reflectance += float(np.sum(weights))

    def add_transmittance(self, weights: np.ndarray) -> None:
        self.transmittance += float(np.sum(weights))

    def add_roulette_loss(self, killed: float, boosted: float) -> None:
        self.roulette_net += killed - boosted

    # -- results ----------------------------------------------------------

    @property
    def total_absorbed(self) -> float:
        return float(self.absorbed_per_layer.sum())

    def fractions(self) -> dict:
        """Per-launched-photon weight fractions of each sink."""
        n = max(self.photons_launched, 1)
        return {
            "specular": self.specular / n,
            "diffuse_reflectance": self.diffuse_reflectance / n,
            "absorbed": self.total_absorbed / n,
            "transmittance": self.transmittance / n,
            "roulette_net": self.roulette_net / n,
        }

    def energy_balance_error(self) -> float:
        """|1 - sum of sinks| per launched photon (should be ~0)."""
        f = self.fractions()
        total = (
            f["specular"]
            + f["diffuse_reflectance"]
            + f["absorbed"]
            + f["transmittance"]
            + f["roulette_net"]
        )
        return abs(1.0 - total)
