"""Algorithm 4: multi-layer Monte Carlo photon migration, vectorized.

One NumPy lane per photon packet, mirroring the thread-per-photon CUDA
kernel of [1].  The simulation consumes uniforms from any object with a
``uniform(n)`` method (all :class:`repro.baselines.base.PRNG` subclasses
and :class:`repro.bitsource.base.BitSource` qualify) -- each iteration
requests exactly as many numbers as there are surviving photons, which
is the on-demand supply pattern the hybrid PRNG exists to serve.

Weight bookkeeping is exact: specular + diffuse reflectance + absorption
+ transmittance + roulette residue = launched weight, enforced in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.photon.layers import TissueModel
from repro.apps.photon.physics import (
    WEIGHT_THRESHOLD,
    fresnel_reflectance,
    hg_cos_theta,
    roulette_survival,
    sample_step,
    spin,
)
from repro.apps.photon.tally import Tally
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.checks import check_positive

__all__ = ["MCPhotonMigration", "SimulationResult"]


@dataclass
class SimulationResult:
    """Tally plus run metadata."""

    tally: Tally
    iterations: int
    uniforms_consumed: int

    def fractions(self) -> dict:
        return self.tally.fractions()


class MCPhotonMigration:
    """Monte Carlo photon migration through a layered tissue model."""

    def __init__(self, model: TissueModel, rng, batch_size: int = 65_536,
                 max_iterations: int = 10_000, depth_profile=None):
        check_positive("batch_size", batch_size)
        self.model = model
        self.rng = rng
        self.batch_size = int(batch_size)
        self.max_iterations = int(max_iterations)
        self._props = model.arrays()
        self.uniforms_consumed = 0
        #: Optional :class:`repro.apps.photon.profile.DepthProfile` that
        #: receives every interior weight deposition.
        self.depth_profile = depth_profile

    def _uniform(self, n: int) -> np.ndarray:
        self.uniforms_consumed += n
        return self.rng.uniform(n)

    # ------------------------------------------------------------------

    def run(self, n_photons: int) -> SimulationResult:
        """Simulate ``n_photons`` packets (in batches) and tally."""
        check_positive("n_photons", n_photons)
        tally = Tally(num_layers=self.model.num_layers)
        iterations = 0
        remaining = n_photons
        consumed_before = self.uniforms_consumed
        with span("photon.run", photons=n_photons):
            while remaining > 0:
                batch = min(self.batch_size, remaining)
                iterations += self._run_batch(batch, tally)
                remaining -= batch
        obs_metrics.counter(
            "repro_photon_packets_total", "Photon packets launched"
        ).inc(n_photons)
        obs_metrics.counter(
            "repro_photon_iterations_total", "Photon propagation iterations"
        ).inc(iterations)
        obs_metrics.counter(
            "repro_photon_uniforms_total", "Uniforms drawn by the photon app"
        ).inc(self.uniforms_consumed - consumed_before)
        return SimulationResult(
            tally=tally,
            iterations=iterations,
            uniforms_consumed=self.uniforms_consumed,
        )

    # ------------------------------------------------------------------

    def _run_batch(self, n: int, tally: Tally) -> int:
        props = self._props
        rsp = self.model.specular_reflectance()
        tally.add_launch(n, rsp)
        if self.depth_profile is not None:
            self.depth_profile.add_photons(n)

        # Pencil beam at the origin, straight down, post-specular weight.
        z = np.zeros(n)
        ux = np.zeros(n)
        uy = np.zeros(n)
        uz = np.ones(n)
        weight = np.full(n, 1.0 - rsp)
        layer = np.zeros(n, dtype=np.int64)
        alive = np.ones(n, dtype=bool)

        iterations = 0
        while alive.any() and iterations < self.max_iterations:
            iterations += 1
            idx = np.nonzero(alive)[0]
            m = idx.size

            mut = props["mut"][layer[idx]]
            step = sample_step(self._uniform(m), mut)

            # Distance to the layer boundary along the flight direction.
            zi = z[idx]
            uzi = uz[idx]
            z_top = props["z_top"][layer[idx]]
            z_bot = props["z_bot"][layer[idx]]
            going_down = uzi > 1e-12
            going_up = uzi < -1e-12
            db = np.full(m, np.inf)
            db[going_down] = (z_bot[going_down] - zi[going_down]) / uzi[going_down]
            db[going_up] = (z_top[going_up] - zi[going_up]) / uzi[going_up]
            db = np.maximum(db, 0.0)

            hits = step > db
            # --- boundary interaction ---------------------------------
            if hits.any():
                h = idx[hits]
                z[h] = z[h] + db[hits] * uz[h]
                self._boundary(h, tally, z, ux, uy, uz, weight, layer, alive)

            # --- interior hop + drop + spin ---------------------------
            inside = ~hits
            if inside.any():
                t = idx[inside]
                z[t] = z[t] + step[inside] * uz[t]
                lt = layer[t]
                mua = props["mua"][lt]
                mutt = props["mut"][lt]
                dw = weight[t] * mua / mutt
                tally.add_absorption(lt, dw)
                if self.depth_profile is not None:
                    self.depth_profile.add(z[t], dw)
                weight[t] = weight[t] - dw

                cos_t = hg_cos_theta(self._uniform(t.size), props["g"][lt])
                nux, nuy, nuz = spin(
                    ux[t], uy[t], uz[t], cos_t, self._uniform(t.size)
                )
                ux[t], uy[t], uz[t] = nux, nuy, nuz

                # Roulette for faint photons.
                low = weight[t] < WEIGHT_THRESHOLD
                if low.any():
                    lidx = t[low]
                    before = float(weight[lidx].sum())
                    survive, new_w = roulette_survival(
                        weight[lidx], self._uniform(lidx.size)
                    )
                    weight[lidx] = np.where(survive, new_w, 0.0)
                    after = float(weight[lidx].sum())
                    tally.add_roulette_loss(before, after)
                    alive[lidx[~survive]] = False
        # Any photons still alive at the iteration cap leak weight; record
        # it as roulette residue so the balance stays exact.
        if alive.any():
            tally.add_roulette_loss(float(weight[alive].sum()), 0.0)
        return iterations

    def _boundary(self, h, tally, z, ux, uy, uz, weight, layer, alive):
        """Fresnel reflect/transmit photons that reached a boundary."""
        props = self._props
        lh = layer[h]
        downward = uz[h] > 0
        n1 = props["n"][lh]
        # Medium beyond the boundary.
        last = self.model.num_layers - 1
        n2 = np.where(
            downward,
            np.where(lh == last, self.model.n_below,
                     props["n"][np.minimum(lh + 1, last)]),
            np.where(lh == 0, self.model.n_above,
                     props["n"][np.maximum(lh - 1, 0)]),
        )
        r = fresnel_reflectance(n1, n2, uz[h])
        reflect = self._uniform(h.size) < r

        # Reflected: flip the z direction, stay in the layer.
        rb = h[reflect]
        uz[rb] = -uz[rb]

        # Transmitted.
        tb = h[~reflect]
        if tb.size == 0:
            return
        t_down = uz[tb] > 0
        lt = layer[tb]
        exits_bottom = t_down & (lt == last)
        exits_top = ~t_down & (lt == 0)
        inside = ~(exits_bottom | exits_top)

        if exits_top.any():
            e = tb[exits_top]
            tally.add_reflectance(weight[e])
            weight[e] = 0.0
            alive[e] = False
        if exits_bottom.any():
            e = tb[exits_bottom]
            tally.add_transmittance(weight[e])
            weight[e] = 0.0
            alive[e] = False
        if inside.any():
            e = tb[inside]
            n1e = n1[~reflect][inside]
            n2e = n2[~reflect][inside]
            # Snell refraction: scale the transverse components, keep the
            # sign of uz, renormalize.
            ratio = n1e / n2e
            sin2 = np.minimum((ux[e] ** 2 + uy[e] ** 2) * ratio**2, 1.0 - 1e-12)
            ux[e] = ux[e] * ratio
            uy[e] = uy[e] * ratio
            uz[e] = np.sign(uz[e]) * np.sqrt(1.0 - sin2)
            layer[e] = np.where(uz[e] > 0, layer[e] + 1, layer[e] - 1)
            # Nudge off the interface to avoid zero-length rehits.
            z[e] = z[e] + np.sign(uz[e]) * 1e-12
