"""Layered tissue models for Monte Carlo photon migration (Section VI).

Follows the MCML conventions of the original CUDAMCML code ([1],
Alerstam et al.): a stack of slabs, each with refractive index ``n``,
absorption ``mua`` (1/cm), scattering ``mus`` (1/cm), anisotropy ``g``
and thickness (cm), sandwiched between ambient media.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

__all__ = ["Layer", "TissueModel", "three_layer_skin"]


@dataclass(frozen=True)
class Layer:
    """One homogeneous slab."""

    n: float          # refractive index
    mua: float        # absorption coefficient, 1/cm
    mus: float        # scattering coefficient, 1/cm
    g: float          # scattering anisotropy (Henyey-Greenstein)
    thickness: float  # cm

    def __post_init__(self):
        if self.n < 1.0:
            raise ValueError(f"refractive index must be >= 1, got {self.n}")
        if self.mua < 0 or self.mus < 0:
            raise ValueError("mua and mus must be non-negative")
        if not -1.0 < self.g < 1.0:
            raise ValueError(f"anisotropy must be in (-1, 1), got {self.g}")
        if self.thickness <= 0:
            raise ValueError(f"thickness must be positive, got {self.thickness}")

    @property
    def mut(self) -> float:
        """Total interaction coefficient ``mua + mus``."""
        return self.mua + self.mus

    @property
    def albedo(self) -> float:
        """Scattering albedo ``mus / mut`` (1 when the layer is inert)."""
        return self.mus / self.mut if self.mut > 0 else 1.0


@dataclass(frozen=True)
class TissueModel:
    """A stack of layers with ambient media above and below."""

    layers: tuple
    n_above: float = 1.0
    n_below: float = 1.0

    def __post_init__(self):
        if not self.layers:
            raise ValueError("need at least one layer")
        object.__setattr__(self, "layers", tuple(self.layers))

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def boundaries(self) -> np.ndarray:
        """Depths of the layer interfaces: z_0 = 0 .. z_L = total depth."""
        t = np.array([layer.thickness for layer in self.layers])
        return np.concatenate([[0.0], np.cumsum(t)])

    @property
    def total_thickness(self) -> float:
        return float(sum(layer.thickness for layer in self.layers))

    def specular_reflectance(self) -> float:
        """Fresnel specular reflection at normal incidence on the surface."""
        n1, n2 = self.n_above, self.layers[0].n
        return ((n1 - n2) / (n1 + n2)) ** 2

    def arrays(self) -> dict:
        """Per-layer property arrays for vectorized kernels."""
        return {
            "n": np.array([l.n for l in self.layers]),
            "mua": np.array([l.mua for l in self.layers]),
            "mus": np.array([l.mus for l in self.layers]),
            "mut": np.array([l.mut for l in self.layers]),
            "g": np.array([l.g for l in self.layers]),
            "z_top": self.boundaries[:-1],
            "z_bot": self.boundaries[1:],
        }


def three_layer_skin() -> TissueModel:
    """The three-layer model the paper's experiment simulates.

    Epidermis / dermis / subcutaneous fat with standard optical
    coefficients (cf. the MCML sample files).
    """
    return TissueModel(
        layers=(
            Layer(n=1.37, mua=1.0, mus=100.0, g=0.90, thickness=0.01),
            Layer(n=1.37, mua=1.0, mus=10.0, g=0.90, thickness=0.02),
            Layer(n=1.37, mua=2.0, mus=10.0, g=0.70, thickness=0.20),
        ),
        n_above=1.0,
        n_below=1.4,
    )
