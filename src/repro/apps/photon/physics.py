"""Photon transport physics kernels (MCML variance-reduction scheme).

Vectorized over photon packets: step-size sampling, Henyey-Greenstein
scattering, Fresnel boundary interaction and the Russian-roulette
termination -- the "rules of photon migration" of Section VI expressed as
array operations.  Every kernel consumes uniforms handed in by the
caller, so the PRNG-consumption pattern (on-demand, variable amounts per
iteration) is explicit.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sample_step",
    "hg_cos_theta",
    "spin",
    "fresnel_reflectance",
    "roulette_survival",
    "WEIGHT_THRESHOLD",
    "ROULETTE_CHANCE",
]

#: MCML defaults: roulette below this weight, survive with chance 1/10.
WEIGHT_THRESHOLD = 1e-4
ROULETTE_CHANCE = 0.1


def sample_step(u: np.ndarray, mut: np.ndarray) -> np.ndarray:
    """Free path length ``s = -ln(U) / mut`` (cm)."""
    u = np.clip(u, 1e-300, 1.0)
    return -np.log(u) / mut


def hg_cos_theta(u: np.ndarray, g: np.ndarray) -> np.ndarray:
    """Sample cos(theta) from the Henyey-Greenstein phase function."""
    g = np.broadcast_to(np.asarray(g, dtype=np.float64), u.shape)
    iso = np.abs(g) < 1e-6
    out = np.empty_like(u, dtype=np.float64)
    # Isotropic limit.
    out[iso] = 2.0 * u[iso] - 1.0
    if (~iso).any():
        gg = g[~iso]
        uu = u[~iso]
        frac = (1.0 - gg * gg) / (1.0 - gg + 2.0 * gg * uu)
        out[~iso] = (1.0 + gg * gg - frac * frac) / (2.0 * gg)
    return np.clip(out, -1.0, 1.0)


def spin(ux, uy, uz, cos_t, u_phi):
    """Rotate direction vectors by polar angle theta and azimuth phi.

    Standard MCML direction update; handles the near-vertical singular
    case separately.  ``u_phi`` is a uniform used for phi = 2 pi U.
    """
    sin_t = np.sqrt(np.maximum(0.0, 1.0 - cos_t * cos_t))
    phi = 2.0 * np.pi * u_phi
    cos_p, sin_p = np.cos(phi), np.sin(phi)

    near_vertical = np.abs(uz) > 0.99999
    denom = np.sqrt(np.maximum(1e-30, 1.0 - uz * uz))

    nux = np.where(
        near_vertical,
        sin_t * cos_p,
        sin_t * (ux * uz * cos_p - uy * sin_p) / denom + ux * cos_t,
    )
    nuy = np.where(
        near_vertical,
        sin_t * sin_p,
        sin_t * (uy * uz * cos_p + ux * sin_p) / denom + uy * cos_t,
    )
    nuz = np.where(
        near_vertical,
        np.sign(uz) * cos_t,
        -denom * sin_t * cos_p + uz * cos_t,
    )
    # Renormalize against accumulated float error.
    norm = np.sqrt(nux * nux + nuy * nuy + nuz * nuz)
    return nux / norm, nuy / norm, nuz / norm


def fresnel_reflectance(n1, n2, cos_i: np.ndarray) -> np.ndarray:
    """Unpolarized Fresnel reflectance for incidence cosine ``cos_i``.

    Total internal reflection returns 1.  ``n1`` is the medium the photon
    is in, ``n2`` the medium beyond the boundary.
    """
    cos_i = np.clip(np.abs(cos_i), 0.0, 1.0)
    n1 = np.broadcast_to(np.asarray(n1, dtype=np.float64), cos_i.shape)
    n2 = np.broadcast_to(np.asarray(n2, dtype=np.float64), cos_i.shape)

    sin_i = np.sqrt(np.maximum(0.0, 1.0 - cos_i * cos_i))
    sin_t = n1 / n2 * sin_i
    tir = sin_t >= 1.0
    sin_t = np.clip(sin_t, 0.0, 1.0 - 1e-12)
    cos_t = np.sqrt(np.maximum(0.0, 1.0 - sin_t * sin_t))

    rs = ((n1 * cos_i - n2 * cos_t) / (n1 * cos_i + n2 * cos_t)) ** 2
    rp = ((n1 * cos_t - n2 * cos_i) / (n1 * cos_t + n2 * cos_i)) ** 2
    r = 0.5 * (rs + rp)
    matched = np.abs(n1 - n2) < 1e-12
    r = np.where(matched, 0.0, r)
    return np.where(tir, 1.0, np.clip(r, 0.0, 1.0))


def roulette_survival(weight: np.ndarray, u: np.ndarray) -> tuple:
    """Russian roulette on low-weight photons.

    Returns ``(alive_mask, new_weight)``: photons below the threshold
    survive with probability :data:`ROULETTE_CHANCE` and have their
    weight boosted by its inverse (unbiased).
    """
    low = weight < WEIGHT_THRESHOLD
    survive = ~low | (u < ROULETTE_CHANCE)
    new_weight = np.where(low & survive, weight / ROULETTE_CHANCE, weight)
    return survive, new_weight
