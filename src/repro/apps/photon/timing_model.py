"""Simulated platform timings for photon migration (Figure 8).

Two GPU implementations are modeled:

* **Original (MWC, [1])** -- each thread owns an MWC generator but the
  implementation pre-generates initialization randomness into global
  memory and pays extra global-memory traffic per interaction; weight
  clashes between identically-seeded photons serialize atomic updates.
* **Hybrid (this paper)** -- random numbers arrive on the fly from the
  overlapped CPU feed: no staging arrays (less global-memory traffic)
  and better-decorrelated initial weights (fewer atomic clashes).

The paper attributes its ~20% speedup to exactly those two effects
(Section VI-A); the model encodes them as a per-interaction memory
surcharge and an atomic-serialization surcharge on the original code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.utils.checks import check_positive

__all__ = ["PhotonCosts", "photon_times_ms", "figure8_series"]

#: Mean photon-tissue interactions per photon in the 3-layer model
#: (measured from the functional simulator; see tests).
MEAN_INTERACTIONS = 12.0


@dataclass(frozen=True)
class PhotonCosts:
    """Per-interaction GPU costs (ns) for the two implementations."""

    #: Physics arithmetic per interaction (step, drop, spin).
    compute_ns: float = 1.1
    #: RNG state update per interaction (MWC or walk step consumption).
    rng_ns: float = 0.25
    #: Extra global-memory traffic per interaction for staged randomness
    #: (the "reduced memory transaction overhead" of Section VI-A).
    staging_ns: float = 0.22
    #: Atomic-update serialization surcharge per interaction when initial
    #: weights clash (the "lesser clashes" effect).
    clash_ns: float = 0.08
    #: Fixed setup per launch.
    setup_ns: float = 1.0e6

    def __post_init__(self):
        check_positive("compute_ns", self.compute_ns)


def photon_times_ms(
    n_photons: int,
    costs: Optional[PhotonCosts] = None,
    mean_interactions: float = MEAN_INTERACTIONS,
) -> dict:
    """Simulated run time (ms) of both implementations."""
    check_positive("n_photons", n_photons)
    c = costs or PhotonCosts()
    interactions = n_photons * mean_interactions
    base = interactions * (c.compute_ns + c.rng_ns)
    original = c.setup_ns + base + interactions * (c.staging_ns + c.clash_ns)
    hybrid = c.setup_ns + base
    return {
        "Original (MWC)": original / 1e6,
        "Hybrid PRNG": hybrid / 1e6,
        "speedup": original / hybrid,
    }


def figure8_series(photon_counts_m: Sequence[float],
                   costs: Optional[PhotonCosts] = None) -> dict:
    """Figure 8: time (ms) vs photons simulated (in millions)."""
    out = {"Original (MWC)": [], "Hybrid PRNG": []}
    for m in photon_counts_m:
        t = photon_times_ms(int(m * 1e6), costs)
        out["Original (MWC)"].append(t["Original (MWC)"])
        out["Hybrid PRNG"].append(t["Hybrid PRNG"])
    return out
