"""Depth-resolved absorption profiles (the MCML ``A_z`` output).

The flat per-layer tally answers the paper's experiment; real photon-
migration studies also want absorption as a function of depth.
:class:`DepthProfile` accumulates deposited weight into uniform z-bins
and converts to the standard MCML quantities (absorbed fraction per bin,
fluence given the local absorption coefficient).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.photon.layers import TissueModel
from repro.utils.checks import check_positive

__all__ = ["DepthProfile"]


@dataclass
class DepthProfile:
    """Uniform-grid absorption profile over the tissue depth."""

    model: TissueModel
    n_bins: int = 100
    weight: np.ndarray = field(default=None)
    photons: int = 0

    def __post_init__(self):
        check_positive("n_bins", self.n_bins)
        self.dz = self.model.total_thickness / self.n_bins
        if self.weight is None:
            self.weight = np.zeros(self.n_bins)

    def add(self, z: np.ndarray, amounts: np.ndarray) -> None:
        """Deposit ``amounts`` of weight at depths ``z`` (cm)."""
        bins = np.clip((z / self.dz).astype(np.int64), 0, self.n_bins - 1)
        np.add.at(self.weight, bins, amounts)

    def add_photons(self, n: int) -> None:
        self.photons += int(n)

    # ------------------------------------------------------------------

    @property
    def z_centers(self) -> np.ndarray:
        """Bin-center depths (cm)."""
        return (np.arange(self.n_bins) + 0.5) * self.dz

    def absorbed_fraction(self) -> np.ndarray:
        """Absorbed weight per bin per launched photon (A_z * dz)."""
        n = max(self.photons, 1)
        return self.weight / n

    def absorption_density(self) -> np.ndarray:
        """A(z) in 1/cm: absorbed fraction per unit depth."""
        return self.absorbed_fraction() / self.dz

    def fluence(self) -> np.ndarray:
        """Fluence phi(z) = A(z) / mua(z) (MCML convention), in cm^-2 x cm^2."""
        mua = np.empty(self.n_bins)
        props = self.model.arrays()
        for i, z in enumerate(self.z_centers):
            layer = int(np.searchsorted(props["z_bot"], z, side="right"))
            layer = min(layer, self.model.num_layers - 1)
            mua[i] = max(props["mua"][layer], 1e-12)
        return self.absorption_density() / mua

    def total_absorbed(self) -> float:
        """Total absorbed fraction (must match the flat tally)."""
        return float(self.absorbed_fraction().sum())
