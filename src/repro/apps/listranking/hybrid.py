"""The full three-phase hybrid list-ranking algorithm (Section V).

Phase I  -- :func:`repro.apps.listranking.reduce.reduce_list` shrinks the
            list to ~n/log2(n) nodes using on-demand random bits;
Phase II -- Helman-JaJa ranks the reduced weighted list;
Phase III-- removed nodes are reinserted batch-by-batch in reverse order
            (``rank[v] = rank[succ at removal] + weight``).

Random bits can come from any provider; the three provider constructors
mirror the paper's Figure 7 comparison (pure-GPU Mersenne Twister,
hybrid glibc with pre-generated upper bounds, hybrid on-demand PRNG) and
instrument how many random bits each strategy actually produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.listranking.helman_jaja import helman_jaja_weighted_ranks
from repro.apps.listranking.linkedlist import NIL, LinkedList
from repro.apps.listranking.reduce import ReductionTrace, reduce_list
from repro.core.parallel import ParallelExpanderPRNG
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span

__all__ = [
    "rank_list_hybrid",
    "OnDemandBits",
    "PregeneratedBits",
    "RankingResult",
]


class OnDemandBits:
    """Bit provider backed by the hybrid PRNG: exactly k bits on request."""

    def __init__(self, prng: ParallelExpanderPRNG):
        self.prng = prng
        self.bits_produced = 0

    def __call__(self, k: int) -> np.ndarray:
        self.bits_produced += k
        obs_metrics.counter(
            "repro_listranking_bits_total", "On-demand bits drawn for Phase I"
        ).inc(k)
        return self.prng.random_bits(k)


class PregeneratedBits:
    """Provider that pre-generates a safe upper bound per round.

    Models the strategy of [3]: before each round the CPU generates bits
    for the *upper bound* on surviving nodes (the full previous count),
    regardless of how many are actually needed.  ``waste`` measures the
    overshoot that the on-demand PRNG avoids.
    """

    def __init__(self, uniform_source, initial_bound: int,
                 shrink_factor: float = 1.0):
        if not 0 < shrink_factor <= 1.0:
            raise ValueError(f"shrink_factor must be in (0,1], got {shrink_factor}")
        self._source = uniform_source
        self._bound = int(initial_bound)
        self._shrink = float(shrink_factor)
        self.bits_produced = 0
        self.bits_used = 0

    def __call__(self, k: int) -> np.ndarray:
        bound = max(int(self._bound * self._shrink), k)
        batch = (self._source(bound) < 0.5).astype(np.uint8)
        self.bits_produced += bound
        self.bits_used += k
        self._bound = bound
        return batch[:k]

    @property
    def waste(self) -> int:
        return self.bits_produced - self.bits_used


@dataclass
class RankingResult:
    """Output of the hybrid ranking plus Phase I instrumentation."""

    ranks: np.ndarray
    trace: ReductionTrace
    reduced_size: int


def _reinsert(ranks: np.ndarray, trace: ReductionTrace) -> None:
    """Phase III: reinsert removed batches in reverse order, in place."""
    for batch in reversed(trace.batches):
        ranks[batch.nodes] = ranks[batch.succ_at_removal] + batch.weight_to_succ


def rank_list_hybrid(
    lst: LinkedList,
    bit_provider,
    num_splitters: int = 16,
) -> RankingResult:
    """Rank ``lst`` (distance to tail) with the three-phase algorithm."""
    with span("listranking.reduce", n=lst.num_nodes):
        active, succ, pred, wsucc, trace = reduce_list(lst, bit_provider)

    # The reduced chain's head: the surviving node with NIL predecessor.
    sub_pred = pred[active]
    heads = active[sub_pred == NIL]
    if heads.size != 1:
        raise RuntimeError("reduced list lost its head")
    head = int(heads[0])

    with span("listranking.rank", reduced=int(active.size)):
        ranks = helman_jaja_weighted_ranks(
            active, succ, wsucc, head, num_splitters=num_splitters
        )
    with span("listranking.reinsert"):
        _reinsert(ranks, trace)
    obs_metrics.counter(
        "repro_listranking_nodes_total", "List nodes ranked"
    ).inc(lst.num_nodes)
    return RankingResult(ranks=ranks, trace=trace, reduced_size=active.size)
