"""Helman-JaJa list ranking for the reduced list (Phase II, after [10]).

Splits the list at ``s`` random splitters into sublists, ranks each
sublist locally by sequential traversal (the per-processor work of the
SMP algorithm), ranks the splitters by walking the sublist chain, and
broadcasts the offsets.  Works on the *weighted* reduced lists produced
by Phase I: ranks are weighted distances to the tail.
"""

from __future__ import annotations

import numpy as np

from repro.apps.listranking.linkedlist import NIL

__all__ = ["helman_jaja_weighted_ranks"]


def helman_jaja_weighted_ranks(
    node_ids: np.ndarray,
    succ: np.ndarray,
    wsucc: np.ndarray,
    head: int,
    num_splitters: int = 16,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Weighted rank (distance to tail) of every node in the sublist.

    Parameters
    ----------
    node_ids : array of the list's node ids (any order).
    succ, wsucc : full-size arrays (indexed by node id) describing the
        weighted chain restricted to ``node_ids``.
    head : the first node of the chain.
    num_splitters : sublist count (including the head).
    rng : generator for splitter choice (deterministic default).

    Returns
    -------
    Full-size int64 array ``ranks`` with entries defined for ``node_ids``.
    """
    if node_ids.size == 0:
        raise ValueError("empty list")
    n = node_ids.size
    rng = rng or np.random.Generator(np.random.PCG64(0))
    ranks = np.zeros(succ.size, dtype=np.int64)

    if n == 1:
        return ranks

    # --- choose splitters: the head plus random distinct nodes ---------
    k = int(min(max(1, num_splitters), n))
    others = node_ids[node_ids != head]
    extra = rng.choice(others, size=min(k - 1, others.size), replace=False) \
        if k > 1 and others.size else np.empty(0, dtype=np.int64)
    splitters = np.concatenate([[head], np.asarray(extra, dtype=np.int64)])
    is_splitter = np.zeros(succ.size, dtype=bool)
    is_splitter[splitters] = True

    # --- local pass: walk each sublist to the next splitter ------------
    # dist_to_next[s] = weighted length from splitter s to the next
    # splitter (or to the tail); local[v] = weighted distance from the
    # owning splitter to v.
    local = np.zeros(succ.size, dtype=np.int64)
    next_splitter = np.full(splitters.size, NIL, dtype=np.int64)
    dist_to_next = np.zeros(splitters.size, dtype=np.int64)
    for i, s0 in enumerate(splitters):
        d = 0
        v = int(s0)
        while True:
            local[v] = d
            nxt = int(succ[v])
            if nxt == NIL:
                next_splitter[i] = NIL
                dist_to_next[i] = d  # d is distance to the tail here
                break
            d += int(wsucc[v])
            if is_splitter[nxt]:
                next_splitter[i] = nxt
                dist_to_next[i] = d
                break
            v = nxt

    # --- rank the splitter chain ---------------------------------------
    index_of = {int(s): i for i, s in enumerate(splitters)}
    splitter_rank = np.zeros(splitters.size, dtype=np.int64)
    # Walk from the head accumulating distance; then rank = total - dist.
    order = []
    i = index_of[head]
    dist = 0
    prefix = {}
    while True:
        order.append(i)
        prefix[i] = dist
        nxt = next_splitter[i]
        if nxt == NIL:
            total = dist + dist_to_next[i]
            break
        dist += dist_to_next[i]
        i = index_of[int(nxt)]
    for i in order:
        splitter_rank[i] = total - prefix[i]

    # --- broadcast: rank[v] = rank(owning splitter) - local[v] ---------
    owner_rank = np.zeros(succ.size, dtype=np.int64)
    for i, s0 in enumerate(splitters):
        v = int(s0)
        while True:
            owner_rank[v] = splitter_rank[i]
            nxt = int(succ[v])
            if nxt == NIL or is_splitter[nxt]:
                break
            v = nxt
    ranks[node_ids] = owner_rank[node_ids] - local[node_ids]
    return ranks
