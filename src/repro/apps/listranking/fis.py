"""Fractional independent set selection (Section V, after [12]).

Every active node ``v`` draws one random bit ``b(v)``; ``v`` joins the
FIS iff ``b(v) = 1`` and neither its predecessor nor its successor drew 1.
No two FIS nodes are ever adjacent, so they can all be spliced out of the
list simultaneously.  In expectation a constant fraction (1/8 of interior
nodes) is selected, which is what drives the O(log log n) reduction
rounds of Algorithm 3.
"""

from __future__ import annotations

import numpy as np

from repro.apps.listranking.linkedlist import NIL

__all__ = ["select_fis"]


def select_fis(
    active: np.ndarray,
    succ: np.ndarray,
    pred: np.ndarray,
    bits: np.ndarray,
) -> np.ndarray:
    """FIS members among ``active`` nodes given one bit per active node.

    Parameters
    ----------
    active : int64 array
        Ids of currently active (not yet removed) nodes.
    succ, pred : int64 arrays over all node ids
        Current splice state (NIL at the ends).
    bits : uint8/bool array aligned with ``active``
        The random bit ``b(v)`` of each active node.

    Returns
    -------
    Boolean mask over ``active``: True where the node enters the FIS.
    Head and tail nodes (NIL neighbour) never enter -- removing them
    would complicate reinsertion for no measurable gain.
    """
    if active.size != bits.size:
        raise ValueError(
            f"need one bit per active node: {active.size} nodes, {bits.size} bits"
        )
    bit_of = np.zeros(succ.size, dtype=np.uint8)
    bit_of[active] = bits.astype(np.uint8)

    s = succ[active]
    p = pred[active]
    interior = (s != NIL) & (p != NIL)
    chosen = bits.astype(bool) & interior
    # Neighbour bits; NIL-guarded via the interior mask above.
    s_safe = np.where(s == NIL, 0, s)
    p_safe = np.where(p == NIL, 0, p)
    return chosen & (bit_of[s_safe] == 0) & (bit_of[p_safe] == 0)
