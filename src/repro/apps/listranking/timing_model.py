"""Simulated platform timings for the list-ranking comparison (Figure 7).

Three implementations of Phase I are modeled on the calibrated hybrid
platform; all do the same splice work on the GPU, they differ only in how
random bits are produced:

* **Pure GPU MT** -- a batch Mersenne Twister kernel generates each
  round's bits on the GPU before the splice kernel runs (serialized:
  generation blocks the round), paying per-round launch overheads twice.
* **Hybrid (glibc, pre-generated)** -- the approach of [3]: the CPU
  produces bits for a pre-determined *upper bound* on surviving nodes
  (the previous round's count) and streams them over PCIe; transfer
  overlaps the previous round's kernel but the CPU must produce more
  bits than needed.
* **Hybrid (on-demand PRNG)** -- this paper: the CPU feeds exactly the
  surviving count, overlapped with the GPU kernel.

The surviving-node profile per round comes from the FIS recursion
(``n_{i+1} ~ (1 - 1/8) n_i`` for random bits), or from a measured
:class:`~repro.apps.listranking.reduce.ReductionTrace`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.gpusim.calibration import BaselineCosts, PipelineCosts
from repro.utils.checks import check_positive

__all__ = ["ListRankingCosts", "survivor_profile", "phase1_times_ms",
           "figure7_series"]

#: Interior FIS selection probability: P(b=1, pred=0, succ=0) = 1/8.
FIS_REMOVAL_FRACTION = 1.0 / 8.0

#: The *guaranteed* per-round removal fraction (the paper cites "at least
#: n/c nodes for c >= 24" from [12]) -- all a predetermined bound can use.
GUARANTEED_REMOVAL = 1.0 / 24.0


@dataclass(frozen=True)
class ListRankingCosts:
    """Per-node and per-round costs (ns) for the Phase I models."""

    #: GPU splice work per surviving node per round (random-list memory
    #: access pattern; calibrated so the on-demand variant improves on the
    #: pre-generated hybrid by the paper's ~40%).
    splice_ns: float = 5.0
    #: GPU Mersenne Twister batch generation per number.
    mt_generate_ns: float = BaselineCosts().mersenne_twister_ns
    #: CPU glibc feed per number (bits for one node).
    glibc_feed_ns: float = 4.0
    #: Hybrid PRNG on-demand feed per number.
    ondemand_feed_ns: float = 4.0
    #: PCIe per-node transfer (one bit-carrying byte amortized).
    transfer_ns: float = 0.14
    #: Fixed per-round cost (kernel launches, sync).
    round_overhead_ns: float = 25_000.0

    def __post_init__(self):
        check_positive("splice_ns", self.splice_ns)


def survivor_profile(
    n: int,
    trace=None,
    removal_fraction: float = FIS_REMOVAL_FRACTION,
) -> List[int]:
    """Active-node count at the start of each Phase I round.

    Uses a measured :class:`ReductionTrace` when given; otherwise the
    expected geometric decay down to ``n / log2 n``.
    """
    check_positive("n", n)
    if trace is not None:
        return list(trace.bits_requested)
    target = max(2, int(n / max(math.log2(n), 1.0)))
    profile = []
    active = n
    while active > target:
        profile.append(int(active))
        active = int(active * (1.0 - removal_fraction))
        if len(profile) > 500:
            break
    return profile


def phase1_times_ms(
    n: int,
    costs: Optional[ListRankingCosts] = None,
    trace=None,
) -> dict:
    """Phase I completion time (ms) for the three Figure 7 variants."""
    c = costs or ListRankingCosts()
    profile = survivor_profile(n, trace)

    pure_gpu_mt = 0.0
    hybrid_glibc = 0.0
    hybrid_ondemand = 0.0
    for i, active in enumerate(profile):
        splice = active * c.splice_ns
        # Pure GPU MT: generation kernel then splice kernel, serialized.
        pure_gpu_mt += active * c.mt_generate_ns + splice + 2 * c.round_overhead_ns

        # Hybrid glibc: the bound must be *predetermined*, so it can only
        # use the guaranteed removal fraction (>= n/24 per round, cf. the
        # c >= 24 of [12]), not the observed ~n/8: the CPU produces bits
        # for n * (23/24)^i nodes in round i.
        bound = max(float(active), n * (1.0 - GUARANTEED_REMOVAL) ** i)
        feed = bound * (c.glibc_feed_ns + c.transfer_ns)
        hybrid_glibc += max(feed, splice) + c.round_overhead_ns

        # Hybrid on-demand: feed exactly `active`, overlapped.
        feed = active * (c.ondemand_feed_ns + c.transfer_ns)
        hybrid_ondemand += max(feed, splice) + c.round_overhead_ns

    return {
        "Pure GPU MT": pure_gpu_mt / 1e6,
        "Hybrid (glibc rand)": hybrid_glibc / 1e6,
        "Hybrid (our PRNG)": hybrid_ondemand / 1e6,
        "rounds": len(profile),
    }


def figure7_series(list_sizes_m, costs: Optional[ListRankingCosts] = None
                   ) -> dict:
    """Figure 7: Phase I time (ms) for list sizes given in millions."""
    out = {"Pure GPU MT": [], "Hybrid (glibc rand)": [], "Hybrid (our PRNG)": []}
    for m in list_sizes_m:
        times = phase1_times_ms(int(m * 1e6), costs)
        for key in out:
            out[key].append(times[key])
    return out
