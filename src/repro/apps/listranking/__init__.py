"""Application I: hybrid list ranking with on-demand randomness (Section V)."""

from repro.apps.listranking.fis import select_fis
from repro.apps.listranking.helman_jaja import helman_jaja_weighted_ranks
from repro.apps.listranking.hybrid import (
    OnDemandBits,
    PregeneratedBits,
    RankingResult,
    rank_list_hybrid,
)
from repro.apps.listranking.linkedlist import (
    NIL,
    LinkedList,
    ordered_list,
    random_list,
    serial_ranks,
)
from repro.apps.listranking.reduce import ReductionTrace, reduce_list
from repro.apps.listranking.timing_model import (
    FIS_REMOVAL_FRACTION,
    GUARANTEED_REMOVAL,
    ListRankingCosts,
    figure7_series,
    phase1_times_ms,
    survivor_profile,
)
from repro.apps.listranking.wyllie import wyllie_ranks

__all__ = [
    "select_fis",
    "helman_jaja_weighted_ranks",
    "OnDemandBits",
    "PregeneratedBits",
    "RankingResult",
    "rank_list_hybrid",
    "NIL",
    "LinkedList",
    "ordered_list",
    "random_list",
    "serial_ranks",
    "ReductionTrace",
    "reduce_list",
    "FIS_REMOVAL_FRACTION",
    "GUARANTEED_REMOVAL",
    "ListRankingCosts",
    "figure7_series",
    "phase1_times_ms",
    "survivor_profile",
    "wyllie_ranks",
]
