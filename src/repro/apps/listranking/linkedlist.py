"""Array-based linked lists for the list-ranking application (Section V).

A list of ``n`` nodes is stored as a successor array (``succ[v]`` is the
next node, ``-1`` at the tail) plus the derived predecessor array.  The
paper experiments on **random lists** -- successor permutations laid out
randomly in memory -- "the most difficult to rank due to their irregular
memory access patterns"; ordered lists are provided as the easy case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.checks import check_positive

__all__ = ["LinkedList", "random_list", "ordered_list", "serial_ranks"]

NIL = -1


@dataclass
class LinkedList:
    """A singly linked list over nodes ``0..n-1`` in array form."""

    succ: np.ndarray
    head: int

    def __post_init__(self):
        self.succ = np.asarray(self.succ, dtype=np.int64)
        n = self.succ.size
        if not 0 <= self.head < n:
            raise ValueError(f"head {self.head} out of range for {n} nodes")

    @property
    def num_nodes(self) -> int:
        return self.succ.size

    @property
    def pred(self) -> np.ndarray:
        """Predecessor array (NIL at the head), derived on demand."""
        pred = np.full(self.num_nodes, NIL, dtype=np.int64)
        has_succ = self.succ != NIL
        pred[self.succ[has_succ]] = np.nonzero(has_succ)[0]
        return pred

    @property
    def tail(self) -> int:
        """The unique node with no successor."""
        tails = np.nonzero(self.succ == NIL)[0]
        if tails.size != 1:
            raise ValueError(f"list has {tails.size} tails; expected 1")
        return int(tails[0])

    def validate(self) -> None:
        """Raise if this is not a single chain covering all nodes."""
        n = self.num_nodes
        succ = self.succ
        if int((succ == NIL).sum()) != 1:
            raise ValueError("list must have exactly one tail")
        targets = succ[succ != NIL]
        if np.unique(targets).size != targets.size:
            raise ValueError("a node has two predecessors")
        if self.head in targets:
            raise ValueError("head must have no predecessor")
        # Walk the chain; it must visit every node exactly once.
        count = 0
        v = self.head
        while v != NIL:
            count += 1
            if count > n:
                raise ValueError("cycle detected")
            v = int(succ[v])
        if count != n:
            raise ValueError(f"chain covers {count} of {n} nodes")

    def to_order(self) -> np.ndarray:
        """Node ids in list order (head first)."""
        order = np.empty(self.num_nodes, dtype=np.int64)
        v = self.head
        for i in range(self.num_nodes):
            order[i] = v
            v = int(self.succ[v])
        return order


def random_list(n: int, rng: np.random.Generator) -> LinkedList:
    """A random list: node ids assigned to list positions by permutation."""
    check_positive("n", n)
    perm = rng.permutation(n)
    succ = np.full(n, NIL, dtype=np.int64)
    succ[perm[:-1]] = perm[1:]
    return LinkedList(succ=succ, head=int(perm[0]))


def ordered_list(n: int) -> LinkedList:
    """The easy case: node ``i`` is at position ``i``."""
    check_positive("n", n)
    succ = np.arange(1, n + 1, dtype=np.int64)
    succ[-1] = NIL
    return LinkedList(succ=succ, head=0)


def serial_ranks(lst: LinkedList) -> np.ndarray:
    """Ground truth: rank = distance to the tail (tail has rank 0)."""
    order = lst.to_order()
    ranks = np.empty(lst.num_nodes, dtype=np.int64)
    ranks[order] = np.arange(lst.num_nodes - 1, -1, -1, dtype=np.int64)
    return ranks
