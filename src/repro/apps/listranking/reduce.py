"""Algorithm 3: ReduceList -- shrink the list to ~n / log2(n) nodes.

Repeatedly selects a fractional independent set using *on-demand* random
bits (one per surviving node per round -- the exact consumption pattern
that motivates the paper's PRNG) and splices the selected nodes out with
weighted links, recording enough bookkeeping to reinsert them in Phase
III.

The number of bits each round needs equals the number of *surviving*
nodes, which is unknowable in advance; callers can observe the actual
demand through :attr:`ReductionTrace.bits_requested`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.apps.listranking.fis import select_fis
from repro.apps.listranking.linkedlist import NIL, LinkedList

__all__ = ["ReductionTrace", "reduce_list", "BitProvider"]

#: Callable giving ``k`` on-demand random bits (uint8 0/1 array).
BitProvider = Callable[[int], np.ndarray]


@dataclass
class RemovalBatch:
    """One round's spliced-out nodes and their reinsertion data."""

    nodes: np.ndarray          # removed node ids
    succ_at_removal: np.ndarray  # their successor at removal time
    weight_to_succ: np.ndarray   # link weight to that successor


@dataclass
class ReductionTrace:
    """Everything Phase III needs, plus instrumentation."""

    batches: List[RemovalBatch] = field(default_factory=list)
    #: Random bits requested per round (the on-demand profile).
    bits_requested: List[int] = field(default_factory=list)
    rounds: int = 0

    @property
    def total_bits(self) -> int:
        return int(sum(self.bits_requested))

    @property
    def total_removed(self) -> int:
        return int(sum(batch.nodes.size for batch in self.batches))


def reduce_list(
    lst: LinkedList,
    bit_provider: BitProvider,
    target_fraction: float | None = None,
    max_rounds: int = 200,
) -> tuple:
    """Run Algorithm 3 until at most ``n / log2 n`` nodes remain.

    Returns ``(active_ids, succ, pred, wsucc, trace)`` where ``succ`` /
    ``pred`` / ``wsucc`` describe the reduced, weighted list over the
    surviving nodes.
    """
    n = lst.num_nodes
    if target_fraction is None:
        target = max(2, int(n / max(np.log2(n), 1.0)))
    else:
        if not 0 < target_fraction <= 1:
            raise ValueError(f"target_fraction must be in (0, 1], got {target_fraction}")
        target = max(2, int(n * target_fraction))

    succ = lst.succ.copy()
    pred = lst.pred.copy()
    wsucc = np.where(succ != NIL, 1, 0).astype(np.int64)
    active = np.arange(n, dtype=np.int64)
    trace = ReductionTrace()

    while active.size > target and trace.rounds < max_rounds:
        bits = bit_provider(active.size)
        trace.bits_requested.append(int(active.size))
        trace.rounds += 1

        in_fis = select_fis(active, succ, pred, bits)
        if not in_fis.any():
            continue
        removed = active[in_fis]
        p = pred[removed]
        s = succ[removed]
        w_vs = wsucc[removed]

        trace.batches.append(
            RemovalBatch(
                nodes=removed.copy(),
                succ_at_removal=s.copy(),
                weight_to_succ=w_vs.copy(),
            )
        )

        # Splice: p -> s with combined weight.  FIS nodes are never
        # adjacent and are interior, so p and s are valid and distinct
        # from other removed nodes.
        wsucc[p] = wsucc[p] + w_vs
        succ[p] = s
        pred[s] = p

        active = active[~in_fis]

    return active, succ, pred, wsucc, trace
