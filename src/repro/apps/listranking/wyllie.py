"""Wyllie's pointer-jumping list ranking -- the classic PRAM baseline.

Each round every node adds its successor's accumulated rank to its own
and jumps its pointer to its successor's successor; after ``ceil(log2 n)``
rounds all pointers reach the tail and the ranks are distances to the
tail.  O(n log n) work, perfectly vectorizable: this is the algorithm the
paper credits to Wyllie [31] as the origin of the problem.
"""

from __future__ import annotations

import numpy as np

from repro.apps.listranking.linkedlist import NIL, LinkedList

__all__ = ["wyllie_ranks"]


def wyllie_ranks(lst: LinkedList) -> np.ndarray:
    """Rank every node (distance to tail) by pointer jumping."""
    n = lst.num_nodes
    succ = lst.succ.copy()
    # rank starts at 1 for every node with a successor, 0 for the tail.
    rank = (succ != NIL).astype(np.int64)
    while True:
        has = succ != NIL
        if not has.any():
            break
        idx = np.nonzero(has)[0]
        nxt = succ[idx]
        rank[idx] += rank[nxt]
        succ[idx] = succ[nxt]
        # All chains at least halve each round; log2(n) + 1 rounds max.
    return rank
