"""Graph connected components by random-mate contraction.

The hybrid-algorithms line of work the paper builds on ([3], Banerjee &
Kothapalli HiPC 2011) covers list ranking *and graph connected
components*; both consume per-element random coin flips whose count per
round is unknowable in advance -- the on-demand pattern.  This module
implements the classic random-mate (Reif) contraction algorithm:

1. every live vertex flips a coin: heads -> "parent", tails -> "child";
2. every edge from a child to a parent hooks the child's component onto
   the parent's (grafting stars);
3. pointer-jump to re-flatten, drop internal edges, repeat.

Expected O(log n) rounds; each round needs exactly one random bit per
*live* component, supplied by any bit provider (the hybrid PRNG's
:class:`~repro.apps.listranking.hybrid.OnDemandBits` fits directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

import numpy as np

from repro.utils.checks import check_positive

__all__ = ["connected_components", "CCResult", "random_graph_edges"]


@dataclass
class CCResult:
    """Labels plus instrumentation of the contraction."""

    labels: np.ndarray
    rounds: int
    bits_requested: List[int] = field(default_factory=list)

    @property
    def num_components(self) -> int:
        return int(np.unique(self.labels).size)

    @property
    def total_bits(self) -> int:
        return int(sum(self.bits_requested))


def _flatten(parent: np.ndarray) -> np.ndarray:
    """Pointer-jump until every vertex points at its root."""
    while True:
        grand = parent[parent]
        if np.array_equal(grand, parent):
            return parent
        parent = grand


def connected_components(
    n: int,
    edges: np.ndarray,
    bit_provider: Callable[[int], np.ndarray],
    max_rounds: int = 200,
) -> CCResult:
    """Label the components of an undirected graph by random mating.

    Parameters
    ----------
    n : int
        Vertex count (vertices are 0..n-1).
    edges : (m, 2) int array
        Undirected edges; self-loops and duplicates are tolerated.
    bit_provider : callable(k) -> uint8 array
        On-demand coin flips, one per live component per round.

    Returns
    -------
    CCResult with ``labels[v]`` = component representative of ``v``.
    """
    check_positive("n", n)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoint out of range")

    parent = np.arange(n, dtype=np.int64)
    live_edges = edges[edges[:, 0] != edges[:, 1]]
    result = CCResult(labels=parent, rounds=0)

    while live_edges.size and result.rounds < max_rounds:
        result.rounds += 1
        roots = np.unique(parent)
        # One on-demand coin per live component -- the count shrinks
        # geometrically and is unknown before the previous round ends.
        coins = np.zeros(n, dtype=np.uint8)
        flips = np.asarray(bit_provider(roots.size), dtype=np.uint8)
        result.bits_requested.append(int(roots.size))
        coins[roots] = flips

        u = parent[live_edges[:, 0]]
        v = parent[live_edges[:, 1]]
        # Hook child (tails) onto parent (heads) along each edge; ties
        # are broken arbitrarily by the scatter order, which is safe:
        # every hook links a tails-root under a heads-root, so no cycles.
        child_u = (coins[u] == 0) & (coins[v] == 1)
        child_v = (coins[v] == 0) & (coins[u] == 1)
        parent[u[child_u]] = v[child_u]
        parent[v[child_v]] = u[child_v]

        parent = _flatten(parent)
        u = parent[live_edges[:, 0]]
        v = parent[live_edges[:, 1]]
        live_edges = live_edges[u != v]

    result.labels = _flatten(parent)
    return result


def random_graph_edges(
    n: int, m: int, rng: np.random.Generator
) -> np.ndarray:
    """``m`` uniform random undirected edges over ``n`` vertices."""
    check_positive("n", n)
    check_positive("m", m)
    return rng.integers(0, n, size=(m, 2), dtype=np.int64)
