"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   emit random numbers from the hybrid PRNG (optionally with
               a span trace and a metrics dump); ``--dist`` emits typed
               variates (uniform01/normal/exponential/integers) drawn
               stream-exactly off the same word stream;
``quality``    run a statistical battery against any registered generator;
``platform``   simulate a generation workload on the paper's CPU+GPU
               platform and print timing/utilization;
``figures``    print the platform-model reproduction of a paper figure;
``stats``      run the real hybrid pipeline under full observability and
               print a structured run report (measured vs predicted
               stage shares, feed counters, metrics);
``chaos``      run generation under a named fault-injection profile
               (resilience drill): exits 0 when the retry budget and
               failover chain absorb the faults, 1 with a
               ``FeedFailedError`` diagnosis when they cannot;
``serve``      run the on-demand RNG service (asyncio TCP server,
               per-session expander streams, batching, backpressure,
               per-session statistical sentinels);
``fetch``      fetch numbers from a running server (or query its
               ``STATUS`` document with ``--status``); ``--dist``
               fetches typed variates through the ``VARIATE`` op;
``sentinel``   statistical health checks: watch a live generation run
               through the sentinel tap (optionally under an injected
               fault profile) and/or run the offline pair detectors
               (substream cross-correlation, weak-seed screening,
               glibc lag-structure leakage); exits 1 when anything is
               flagged.

``repro --version`` reports the installed package version, so deployed
servers and clients can say what they run.

``generate`` and ``quality`` accept ``--trace <file.jsonl>`` (JSONL span
and metric events) and ``--metrics`` (Prometheus-style text dump on
stderr); both are off by default, in which case observability costs
nothing.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys

import numpy as np

from repro import obs
from repro.baselines import available_generators, make_generator
from repro.baselines.hybrid_adapter import HybridPRNG
from repro.bitsource.buffered import BufferedFeed
from repro.bitsource.glibc import GlibcRandom
from repro.gpusim.pipeline import PipelineConfig, simulate_pipeline
from repro.hybrid.throughput import (
    cpu_hybrid_time_ns,
    curand_time_ns,
    glibc_rand_time_ns,
    hybrid_time_ns,
    mt_time_ns,
)
from repro.resilience.faults import PROFILES
from repro.utils.tables import format_series

__all__ = ["main", "build_parser", "package_version"]

#: Numbers formatted and written per flush in ``generate`` (streaming).
GENERATE_CHUNK = 1 << 14


def package_version() -> str:
    """The installed package version (metadata first, source fallback)."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not installed (e.g. PYTHONPATH=src): use source
        from repro import __version__

        return __version__


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="On-demand expander-walk PRNG (IPDPS-W 2012 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_obs_flags(p):
        p.add_argument(
            "--trace", metavar="FILE.jsonl", default=None,
            help="write spans and metrics as JSON lines to FILE",
        )
        p.add_argument(
            "--metrics", action="store_true",
            help="print a Prometheus-style metrics dump to stderr",
        )

    gen = sub.add_parser("generate", help="emit random numbers")
    gen.add_argument("-n", type=int, default=10, help="how many numbers")
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument(
        "--format", choices=["hex", "int", "float"], default="hex"
    )
    gen.add_argument("--threads", type=int, default=4096)
    gen.add_argument(
        "--shards", type=int, default=1,
        help="worker processes: > 1 generates on a ShardedEngine pool "
             "(a different, also-reproducible stream for the same seed)",
    )
    gen.add_argument(
        "--dist", default=None,
        choices=["uniform01", "normal", "exponential", "integers"],
        help="emit typed variates instead of raw words (stream-exact "
             "samplers over the same word stream; --format is ignored: "
             "floats print as %%.17g, integers as decimals)",
    )
    gen.add_argument(
        "--params", default=None, metavar="K=V[,K=V...]",
        help="distribution parameters, e.g. 'mean=0,std=2' (normal), "
             "'rate=1.5' (exponential), 'lo=0,hi=100' (integers)",
    )
    gen.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend for the hot kernels (numpy, cupy, torch; "
             "default: numpy or $REPRO_BACKEND).  Correct backends are "
             "bit-identical on raw words",
    )
    add_obs_flags(gen)

    qual = sub.add_parser("quality", help="run a statistical battery")
    qual.add_argument(
        "--generator", default="Hybrid PRNG", choices=available_generators()
    )
    qual.add_argument(
        "--battery",
        default="diehard",
        choices=["diehard", "smallcrush", "crush", "bigcrush", "nist"],
    )
    qual.add_argument("--scale", type=float, default=0.5)
    qual.add_argument("--seed", type=int, default=1)
    add_obs_flags(qual)

    plat = sub.add_parser("platform", help="simulate the hybrid platform")
    plat.add_argument("-n", type=int, default=100_000_000)
    plat.add_argument("--batch-size", type=int, default=100)

    figs = sub.add_parser("figures", help="print a paper figure (model)")
    figs.add_argument("which", choices=["fig3", "fig5", "fig6"])

    stats = sub.add_parser(
        "stats",
        help="run the hybrid pipeline under observability; print a report",
    )
    stats.add_argument("-n", type=int, default=100_000)
    stats.add_argument("--batch-size", type=int, default=None)
    stats.add_argument("--seed", type=int, default=1)
    stats.add_argument(
        "--async-feed", action="store_true",
        help="produce feed batches on a real background thread",
    )
    stats.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    stats.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="additionally write the raw span/metric events to FILE",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run generation under injected faults (resilience drill)",
    )
    chaos.add_argument(
        "--profile", default="flaky", choices=sorted(PROFILES),
        help="named fault-injection profile",
    )
    chaos.add_argument("-n", type=int, default=100_000)
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--threads", type=int, default=4096)
    chaos.add_argument(
        "--async-feed", action="store_true",
        help="inject into a real background producer thread",
    )
    chaos.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    chaos.add_argument(
        "--trace", metavar="FILE.jsonl", default=None,
        help="additionally write the raw span/metric events to FILE",
    )

    serve = sub.add_parser(
        "serve",
        help="run the on-demand RNG service (asyncio TCP server)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8731,
        help="listening port (0 picks an ephemeral port)",
    )
    serve.add_argument("--seed", type=int, default=1, help="master seed")
    serve.add_argument(
        "--lanes", type=int, default=64,
        help="walker lanes per session stream",
    )
    serve.add_argument(
        "--max-session-queue", type=int, default=8,
        help="in-flight FETCHes per session before BUSY",
    )
    serve.add_argument(
        "--max-global-queue", type=int, default=256,
        help="queued requests server-wide before BUSY",
    )
    serve.add_argument(
        "--rate", type=float, default=None,
        help="per-session token-bucket refill (numbers/second)",
    )
    serve.add_argument(
        "--burst", type=float, default=None,
        help="per-session token-bucket capacity (numbers)",
    )
    serve.add_argument(
        "--batch-window-ms", type=float, default=2.0,
        help="how long to wait for requests to coalesce into a batch",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="worker threads executing batches",
    )
    serve.add_argument(
        "--duration", type=float, default=None,
        help="serve for this many seconds, then exit (default: forever)",
    )
    serve.add_argument(
        "--engine-shards", type=int, default=0,
        help="back sessions with a shard pool of this many worker "
             "processes (0: in-process sessions; values are identical)",
    )
    serve.add_argument(
        "--no-sentinel", action="store_true",
        help="disable the per-session statistical sentinels",
    )
    serve.add_argument(
        "--sentinel-sample", type=int, default=16,
        help="sentinel sampling: keep one served word in this many",
    )
    serve.add_argument(
        "--sentinel-window", type=int, default=4096,
        help="sampled words per evaluated sentinel window",
    )
    serve.add_argument(
        "--journal", default=None, metavar="PATH",
        help="durable session journal: recover sessions from PATH at "
             "startup and append every delivered offset (crash-safe "
             "resume; see docs/serving.md)",
    )
    serve.add_argument(
        "--no-journal-fsync", action="store_true",
        help="skip fsync on journal appends (faster, weaker durability)",
    )
    serve.add_argument(
        "--backend", default=None, metavar="NAME",
        help="array backend for session banks and engine workers "
             "(numpy, cupy, torch; default: numpy or $REPRO_BACKEND)",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=8 << 20,
        help="budget of the engine-span response cache (0 disables); "
             "hits skip whole engine round-trips, byte-identically",
    )
    add_obs_flags(serve)

    sent = sub.add_parser(
        "sentinel",
        help="statistical health checks (live watch + pair detectors)",
    )
    sent.add_argument(
        "--check", default="all",
        choices=["watch", "pairs", "weak-seeds", "lag", "all"],
        help="which detector(s) to run",
    )
    sent.add_argument("--seed", type=int, default=1, help="master seed")
    sent.add_argument(
        "-n", type=int, default=1 << 16,
        help="words generated for the watch and lag checks",
    )
    sent.add_argument("--threads", type=int, default=4096)
    sent.add_argument(
        "--profile", default=None, choices=sorted(PROFILES),
        help="inject a named fault profile into the watch feed "
             "(e.g. 'biased' demonstrates a detection)",
    )
    sent.add_argument(
        "--sample-every", type=int, default=1,
        help="watch sampling: keep one generated word in this many",
    )
    sent.add_argument(
        "--window-words", type=int, default=4096,
        help="sampled words per evaluated watch window",
    )
    sent.add_argument(
        "--streams", type=int, default=8,
        help="derive_seed substreams for the pairs check",
    )
    sent.add_argument(
        "--words", type=int, default=4096,
        help="words per substream for the pairs check",
    )
    sent.add_argument(
        "--json", action="store_true", help="emit results as JSON"
    )

    fetch = sub.add_parser(
        "fetch",
        help="fetch numbers from a running repro serve instance",
    )
    fetch.add_argument("--host", default="127.0.0.1")
    fetch.add_argument("--port", type=int, default=8731)
    fetch.add_argument("-n", type=int, default=10, help="how many numbers")
    fetch.add_argument(
        "--session", default=None,
        help="session id (stream identity; default: random one-off)",
    )
    fetch.add_argument(
        "--format", choices=["hex", "int", "float"], default="hex"
    )
    fetch.add_argument(
        "--retries", type=int, default=5,
        help="retry budget when the server answers BUSY",
    )
    fetch.add_argument(
        "--status", action="store_true",
        help="print the server's STATUS document instead of fetching",
    )
    fetch.add_argument(
        "--dist", default=None,
        choices=["uniform01", "normal", "exponential", "integers"],
        help="fetch typed variates through the VARIATE op instead of "
             "raw words (--format is ignored: floats print as %%.17g, "
             "integers as decimals)",
    )
    fetch.add_argument(
        "--params", default=None, metavar="K=V[,K=V...]",
        help="distribution parameters, e.g. 'mean=0,std=2' (normal), "
             "'rate=1.5' (exponential), 'lo=0,hi=100' (integers)",
    )
    return parser


def parse_dist_params(dist: str, spec) -> dict:
    """``--params 'k=v,k=v'`` -> typed param dict, validated per dist.

    Raises ``ValueError`` on unknown keys, malformed pairs, or values of
    the wrong kind (``integers`` takes ints, the rest take floats), so
    both CLI paths reject bad specs before touching a stream or socket.
    """
    from repro.dist import SERVE_DISTRIBUTIONS

    allowed = SERVE_DISTRIBUTIONS[dist]
    params = {}
    if spec:
        for pair in spec.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            if not sep or not key:
                raise ValueError(
                    f"malformed --params entry {pair!r} (expected k=v)"
                )
            if key not in allowed:
                raise ValueError(
                    f"unknown parameter {key!r} for --dist {dist} "
                    f"(takes {', '.join(allowed) or 'no parameters'})"
                )
            if dist == "integers":
                params[key] = int(value, 0)
            else:
                params[key] = float(value)
    if dist == "integers" and not ("lo" in params and "hi" in params):
        raise ValueError("--dist integers requires --params lo=..,hi=..")
    return params


@contextlib.contextmanager
def _obs_session(args):
    """Enable observability when ``--trace``/``--metrics`` asked for it.

    Yields ``(registry, tracer)`` while enabled (``None`` otherwise); on
    the way out writes the JSONL trace and/or the Prometheus dump, then
    restores the no-op defaults.
    """
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    if not trace_path and not want_metrics:
        yield None
        return
    with obs.observed() as (registry, tracer):
        try:
            yield registry, tracer
        finally:
            if trace_path:
                obs.export_jsonl(
                    trace_path, registry, tracer,
                    meta={"command": args.command},
                )
            if want_metrics:
                sys.stderr.write(obs.prometheus_text(registry))


def _emit_variates(out, stream, dist: str, params: dict, n: int) -> None:
    """Stream ``n`` typed variates to ``out`` in :data:`GENERATE_CHUNK`\\ s.

    Chunking is invisible in the output: the samplers are stream-exact,
    so any chunk size prints the same variate sequence.  Floats print as
    ``%.17g`` (round-trip exact), integer dtypes as decimals.
    """
    written = 0
    while written < n:
        k = min(GENERATE_CHUNK, n - written)
        values = stream.sample(dist, k, params)
        if values.dtype.kind == "f":
            lines = [f"{v:.17g}" for v in values]
        else:
            lines = [str(int(v)) for v in values]
        out.write("\n".join(lines))
        out.write("\n")
        out.flush()
        written += k


def _cmd_generate_sharded(args) -> int:
    """``generate --shards N``: stream from a ShardedEngine pool."""
    from repro.engine import EngineConfig, ShardedEngine

    config = EngineConfig(
        seed=args.seed,
        shards=args.shards,
        lanes=max(1, args.threads // args.shards),
        source_factory=GlibcRandom,  # the paper's feed, per shard
        backend=args.backend,
    )
    out = sys.stdout
    with _obs_session(args), ShardedEngine(config) as engine:
        if args.dist is not None:
            from repro.dist import DistStream

            def draw(n: int) -> np.ndarray:
                words = np.empty(n, dtype=np.uint64)
                engine.generate_into(words)
                return words

            _emit_variates(
                out, DistStream(draw), args.dist, args.dist_params, args.n
            )
            return 0
        written = 0
        # One pooled buffer for the whole run: rounds are written into
        # it straight from the shard rings (no per-chunk arrays).
        buf = np.empty(GENERATE_CHUNK, dtype=np.uint64)
        while written < args.n:
            k = min(GENERATE_CHUNK, args.n - written)
            values = buf[:k]
            engine.generate_into(values)
            if args.format == "float":
                floats = (values >> np.uint64(11)).astype(np.float64) \
                    * (1.0 / 9007199254740992.0)
                lines = [f"{v:.17f}" for v in floats]
            elif args.format == "hex":
                lines = [f"{int(v):#018x}" for v in values]
            else:
                lines = [str(int(v)) for v in values]
            out.write("\n".join(lines))
            out.write("\n")
            out.flush()
            written += k
    return 0


def _cmd_generate(args) -> int:
    args.dist_params = None
    if args.dist is not None:
        try:
            args.dist_params = parse_dist_params(args.dist, args.params)
        except ValueError as exc:
            print(f"repro generate: error: {exc}", file=sys.stderr)
            return 2
    elif args.params is not None:
        print("repro generate: error: --params requires --dist",
              file=sys.stderr)
        return 2
    if args.backend is not None:
        # Validate eagerly (a typo or missing device library should be
        # a CLI error, not a late crash) and make it the process
        # default so every in-process kernel picks it up.
        from repro.backend import BackendUnavailableError, \
            set_default_backend

        try:
            set_default_backend(args.backend)
        except BackendUnavailableError as exc:
            print(f"repro generate: error: {exc}", file=sys.stderr)
            return 2
    if args.shards > 1:
        return _cmd_generate_sharded(args)
    with _obs_session(args) as session:
        if session is not None:
            # Route the feed through a BufferedFeed so the trace covers
            # all three pipeline stages (feed/transfer/generate).  The
            # feed is value-transparent, so output is identical to the
            # direct path for the same seed.
            feed = BufferedFeed(GlibcRandom(args.seed), batch_words=1 << 15)
            gen = HybridPRNG(
                seed=args.seed, num_threads=args.threads, bit_source=feed
            )
        else:
            gen = HybridPRNG(seed=args.seed, num_threads=args.threads)
        if args.dist is not None:
            from repro.dist import DistStream

            _emit_variates(
                sys.stdout, DistStream(gen.u64_array),
                args.dist, args.dist_params, args.n,
            )
            return 0
        # Stream in chunks through one pooled buffer: large -n must not
        # buffer the whole run in memory, output must flush as it goes,
        # and rounds are written straight into the pool (no per-chunk
        # arrays).  The float path derives uniform53's exact values
        # from the same 64-bit words.
        out = sys.stdout
        written = 0
        buf = np.empty(GENERATE_CHUNK, dtype=np.uint64)
        while written < args.n:
            k = min(GENERATE_CHUNK, args.n - written)
            values = buf[:k]
            gen.u64_into(values)
            if args.format == "float":
                floats = (values >> np.uint64(11)).astype(np.float64) \
                    * (1.0 / 9007199254740992.0)
                lines = [f"{v:.17f}" for v in floats]
            elif args.format == "hex":
                lines = [f"{int(v):#018x}" for v in values]
            else:
                lines = [str(int(v)) for v in values]
            out.write("\n".join(lines))
            out.write("\n")
            out.flush()
            written += k
    return 0


def _cmd_quality(args) -> int:
    from repro.quality.crush import run_battery
    from repro.quality.diehard import run_diehard

    if args.generator == "Hybrid PRNG":
        gen = HybridPRNG(seed=args.seed, num_threads=1 << 16)
    else:
        gen = make_generator(args.generator, seed=args.seed)
    progress = lambda name: print(f"  running {name} ...", file=sys.stderr)
    with _obs_session(args):
        if args.battery == "diehard":
            result = run_diehard(gen, scale=args.scale, progress=progress)
        elif args.battery == "nist":
            from repro.quality.nist import run_nist

            result = run_nist(
                gen, n_bits=max(150_000, int(1_000_000 * args.scale)),
                progress=progress,
            )
        else:
            battery = {"smallcrush": "SmallCrush", "crush": "Crush",
                       "bigcrush": "BigCrush"}[args.battery]
            result = run_battery(battery, gen, scale=args.scale,
                                 progress=progress)
    print(result.summary_table())
    return 0 if result.num_passed == result.num_tests else 1


def _cmd_stats(args) -> int:
    from repro.hybrid.scheduler import HybridScheduler
    from repro.obs import sentinel as sentinel_mod

    guard = sentinel_mod.StreamSentinel(
        sentinel_mod.SentinelConfig(
            window_words=1024, sample_every=1, seed=args.seed
        ),
        name="stats",
    )
    with obs.observed() as (registry, tracer):
        with sentinel_mod.tapped(guard), HybridScheduler(
            seed=args.seed, async_feed=args.async_feed
        ) as sched:
            _values, plan, prediction = sched.run(args.n, args.batch_size)
            report = sched.report(plan=plan, prediction=prediction)
        report.add_section("sentinel", guard.summary())
        if args.trace:
            obs.export_jsonl(
                args.trace, registry, tracer, meta={"command": "stats"}
            )
    print(report.to_json(indent=2) if args.json else report.render())
    return 0


def _cmd_sentinel(args) -> int:
    from repro.obs import sentinel as sentinel_mod
    from repro.obs.sentinel import pairs as pair_checks

    checks = (
        ["watch", "pairs", "weak-seeds", "lag"]
        if args.check == "all"
        else [args.check]
    )
    results = {}
    flagged = []

    if "watch" in checks or "lag" in checks:
        source = GlibcRandom(args.seed)
        if args.profile:
            from repro.resilience.faults import FaultyBitSource

            source = FaultyBitSource(source, args.profile)
        guard = sentinel_mod.StreamSentinel(
            sentinel_mod.SentinelConfig(
                window_words=args.window_words,
                sample_every=args.sample_every,
                seed=args.seed,
            ),
            name="watch",
        )
        gen = HybridPRNG(
            seed=args.seed, num_threads=args.threads, bit_source=source
        )
        buf = np.empty(GENERATE_CHUNK, dtype=np.uint64)
        lag_words = []
        with sentinel_mod.tapped(guard):
            remaining = args.n
            while remaining > 0:
                k = min(GENERATE_CHUNK, remaining)
                gen.u64_into(buf[:k])
                if "lag" in checks:
                    lag_words.append(buf[:k].copy())
                remaining -= k
        if "watch" in checks:
            results["watch"] = guard.state()
            if guard.verdict is not sentinel_mod.Verdict.STAT_OK:
                flagged.append(f"watch: {guard.verdict.name}")
        if "lag" in checks:
            # Screen the generator's primary 31-bit output field for the
            # glibc feed's additive-feedback lattice; the raw feed is the
            # positive control proving the detector fires.
            outputs = np.concatenate(lag_words) >> np.uint64(33)
            leak = pair_checks.lag_structure(outputs)
            control = pair_checks.glibc_lag_reference(args.seed, n=4096)
            results["lag"] = {
                "output_field": leak,
                "feed_control": control,
            }
            if leak["leaky"]:
                flagged.append("lag: feed structure leaks into outputs")
            if not control["leaky"]:
                flagged.append("lag: positive control failed to fire")

    if "pairs" in checks:
        corr = pair_checks.substream_correlation(
            args.seed, streams=args.streams, words=args.words
        )
        results["pairs"] = corr
        if not corr["ok"]:
            flagged.append(f"pairs: {len(corr['flagged'])} correlated")

    if "weak-seeds" in checks:
        weak = pair_checks.weak_seed_screen(
            args.seed, streams=max(64, args.streams)
        )
        results["weak_seeds"] = weak
        if not weak["ok"]:
            flagged.append(f"weak-seeds: {len(weak['flagged'])} collisions")

    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    else:
        for name, result in sorted(results.items()):
            print(f"== {name} ==")
            print(json.dumps(result, indent=2, sort_keys=True))
    if flagged:
        for reason in flagged:
            print(f"repro sentinel: FLAGGED {reason}", file=sys.stderr)
        return 1
    print("repro sentinel: all checks clean", file=sys.stderr)
    return 0


def _cmd_chaos(args) -> int:
    from repro.resilience.chaos import run_chaos

    result = run_chaos(
        args.profile, n=args.n, seed=args.seed, num_threads=args.threads,
        async_feed=args.async_feed,
    )
    report = result.report
    print(report.to_json(indent=2) if args.json else report.render())
    if args.trace:
        obs.export_jsonl(
            args.trace, report.registry, report.tracer,
            meta={"command": "chaos", "profile": args.profile},
        )
    resilience = report.sections.get("resilience", {})
    if result.survived:
        print(
            f"repro chaos: survived profile {args.profile!r}: "
            f"{resilience.get('retries', 0)} retries, "
            f"{resilience.get('failovers', 0)} failovers, "
            f"health {resilience.get('health', '?')}",
            file=sys.stderr,
        )
    else:
        print(
            f"repro chaos: FAILED under profile {args.profile!r} "
            f"({type(result.error).__name__}): {result.error}",
            file=sys.stderr,
        )
    return result.exit_code


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve.server import RNGServer, ServeConfig

    if args.backend is not None:
        from repro.backend import BackendUnavailableError, \
            set_default_backend

        try:
            # In-process session banks resolve the process default;
            # engine workers get the name through the picklable config.
            set_default_backend(args.backend)
        except BackendUnavailableError as exc:
            print(f"repro serve: error: {exc}", file=sys.stderr)
            return 2

    config = ServeConfig(
        host=args.host,
        port=args.port,
        master_seed=args.seed,
        lanes=args.lanes,
        max_session_queue=args.max_session_queue,
        max_global_queue=args.max_global_queue,
        rate=args.rate,
        burst=args.burst,
        batch_window_s=args.batch_window_ms / 1000.0,
        workers=args.workers,
        engine_shards=args.engine_shards,
        sentinel=not args.no_sentinel,
        sentinel_sample=args.sentinel_sample,
        sentinel_window=args.sentinel_window,
        journal_path=args.journal,
        journal_fsync=not args.no_journal_fsync,
        backend=args.backend,
        cache_bytes=args.cache_bytes,
    )

    async def run() -> None:
        server = RNGServer(config)
        await server.start()
        print(
            f"repro serve: listening on {config.host}:{server.port} "
            f"(master seed {config.master_seed}, {config.lanes} lanes/session)",
            file=sys.stderr,
        )
        if config.journal_path is not None:
            print(
                f"repro serve: journal {config.journal_path} "
                f"recovered {server.recovered_sessions} session(s)",
                file=sys.stderr,
            )
        sys.stderr.flush()
        # Graceful drain on SIGTERM: stop accepting, finish in-flight
        # batches, stamp the journal's clean-shutdown marker.  SIGKILL
        # skips all of this by design -- recovery does not need it.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except NotImplementedError:  # non-POSIX event loops
            pass
        try:
            waits = [asyncio.ensure_future(stop.wait())]
            if args.duration is not None:
                waits.append(asyncio.ensure_future(
                    asyncio.sleep(args.duration)
                ))
            else:
                waits.append(asyncio.ensure_future(server.serve_forever()))
            done, pending = await asyncio.wait(
                waits, return_when=asyncio.FIRST_COMPLETED
            )
            for fut in pending:
                fut.cancel()
            for fut in done:
                if not fut.cancelled() and fut.exception() is not None:
                    raise fut.exception()
        finally:
            await server.aclose()
            print(
                f"repro serve: stopped after {server.requests_total} "
                f"requests, {server.numbers_total} numbers, "
                f"{server.busy_total} busy, health {server.health}",
                file=sys.stderr,
            )

    with _obs_session(args):
        try:
            asyncio.run(run())
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_fetch(args) -> int:
    from repro.serve.client import ConnectError, ServeClient
    from repro.serve.protocol import ServeError

    params = {}
    if args.dist is not None:
        try:
            params = parse_dist_params(args.dist, args.params)
        except ValueError as exc:
            print(f"repro fetch: error: {exc}", file=sys.stderr)
            return 2
    elif args.params is not None:
        print("repro fetch: error: --params requires --dist",
              file=sys.stderr)
        return 2
    try:
        with ServeClient(
            args.host, args.port, session=args.session, retries=args.retries
        ) as client:
            if args.status:
                print(json.dumps(client.status(), indent=2, sort_keys=True))
                return 0
            if args.dist is not None:
                values = client.fetch_variates(args.dist, args.n, **params)
                if values.dtype.kind == "f":
                    lines = [f"{v:.17g}" for v in values]
                else:
                    lines = [str(int(v)) for v in values]
                print("\n".join(lines))
                return 0
            if args.format == "float":
                lines = [f"{v:.17f}" for v in client.random(args.n)]
            else:
                values = client.fetch(args.n)
                if args.format == "hex":
                    lines = [f"{int(v):#018x}" for v in values]
                else:
                    lines = [str(int(v)) for v in values]
            print("\n".join(lines))
    except ConnectError as exc:
        # Connection-level failures exit 2; server-side rejections exit 3.
        print(f"repro fetch: error: {exc}", file=sys.stderr)
        return 2
    except ServeError as exc:
        print(f"repro fetch: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 3
    return 0


def _cmd_platform(args) -> int:
    res = simulate_pipeline(
        PipelineConfig(total_numbers=args.n, batch_size=args.batch_size)
    )
    print(f"numbers      : {args.n}")
    print(f"batch size S : {args.batch_size}")
    print(f"time         : {res.time_ms:.2f} ms")
    print(f"throughput   : {res.throughput_gnumbers_s:.4f} GNumbers/s")
    print(f"CPU idle     : {res.cpu_idle_fraction:.1%}")
    print(f"GPU idle     : {res.gpu_idle_fraction:.1%}")
    return 0


def _cmd_figures(args) -> int:
    if args.which == "fig3":
        sizes = [5, 10, 50, 100, 500, 1000]
        print(format_series(
            "Size (M)", sizes,
            {
                "Hybrid (ms)": [
                    round(hybrid_time_ns(PipelineConfig(
                        total_numbers=int(m * 1e6), batch_size=100)) / 1e6, 1)
                    for m in sizes
                ],
                "MT (ms)": [round(mt_time_ns(int(m * 1e6)) / 1e6, 1)
                            for m in sizes],
                "CURAND (ms)": [round(curand_time_ns(int(m * 1e6)) / 1e6, 1)
                                for m in sizes],
            },
            title="Figure 3 (platform model)",
        ))
    elif args.which == "fig5":
        blocks = [1, 5, 10, 50, 100, 200, 500, 1000]
        print(format_series(
            "S", blocks,
            {"Hybrid (ms)": [
                round(hybrid_time_ns(PipelineConfig(
                    total_numbers=10_000_000, batch_size=s)) / 1e6, 1)
                for s in blocks
            ]},
            title="Figure 5 (platform model, N = 10M)",
        ))
    else:
        sizes = [5, 10, 50, 100, 500, 1000]
        print(format_series(
            "Size (M)", sizes,
            {
                "Hybrid CPU (ms)": [
                    round(cpu_hybrid_time_ns(int(m * 1e6)) / 1e6, 1)
                    for m in sizes
                ],
                "glibc rand() (ms)": [
                    round(glibc_rand_time_ns(int(m * 1e6)) / 1e6, 1)
                    for m in sizes
                ],
            },
            title="Figure 6 (platform model)",
        ))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "quality":
            return _cmd_quality(args)
        if args.command == "platform":
            return _cmd_platform(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "sentinel":
            return _cmd_sentinel(args)
        if args.command == "fetch":
            return _cmd_fetch(args)
        return _cmd_figures(args)
    except BrokenPipeError:
        # Downstream closed early (e.g. ``| head``): normal termination.
        # Point stdout at devnull so the interpreter's exit-time flush
        # does not raise again.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except OSError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
