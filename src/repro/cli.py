"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``   emit random numbers from the hybrid PRNG;
``quality``    run a statistical battery against any registered generator;
``platform``   simulate a generation workload on the paper's CPU+GPU
               platform and print timing/utilization;
``figures``    print the platform-model reproduction of a paper figure.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.baselines import available_generators, make_generator
from repro.baselines.hybrid_adapter import HybridPRNG
from repro.gpusim.pipeline import PipelineConfig, simulate_pipeline
from repro.hybrid.throughput import (
    cpu_hybrid_time_ns,
    curand_time_ns,
    glibc_rand_time_ns,
    hybrid_time_ns,
    mt_time_ns,
)
from repro.utils.tables import format_series

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="On-demand expander-walk PRNG (IPDPS-W 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="emit random numbers")
    gen.add_argument("-n", type=int, default=10, help="how many numbers")
    gen.add_argument("--seed", type=int, default=1)
    gen.add_argument(
        "--format", choices=["hex", "int", "float"], default="hex"
    )
    gen.add_argument("--threads", type=int, default=4096)

    qual = sub.add_parser("quality", help="run a statistical battery")
    qual.add_argument(
        "--generator", default="Hybrid PRNG", choices=available_generators()
    )
    qual.add_argument(
        "--battery",
        default="diehard",
        choices=["diehard", "smallcrush", "crush", "bigcrush", "nist"],
    )
    qual.add_argument("--scale", type=float, default=0.5)
    qual.add_argument("--seed", type=int, default=1)

    plat = sub.add_parser("platform", help="simulate the hybrid platform")
    plat.add_argument("-n", type=int, default=100_000_000)
    plat.add_argument("--batch-size", type=int, default=100)

    figs = sub.add_parser("figures", help="print a paper figure (model)")
    figs.add_argument("which", choices=["fig3", "fig5", "fig6"])
    return parser


def _cmd_generate(args) -> int:
    gen = HybridPRNG(seed=args.seed, num_threads=args.threads)
    if args.format == "float":
        for v in gen.uniform53(args.n):
            print(f"{v:.17f}")
    else:
        values = gen.u64_array(args.n)
        for v in values:
            print(f"{int(v):#018x}" if args.format == "hex" else int(v))
    return 0


def _cmd_quality(args) -> int:
    from repro.quality.crush import run_battery
    from repro.quality.diehard import run_diehard

    if args.generator == "Hybrid PRNG":
        gen = HybridPRNG(seed=args.seed, num_threads=1 << 16)
    else:
        gen = make_generator(args.generator, seed=args.seed)
    progress = lambda name: print(f"  running {name} ...", file=sys.stderr)
    if args.battery == "diehard":
        result = run_diehard(gen, scale=args.scale, progress=progress)
    elif args.battery == "nist":
        from repro.quality.nist import run_nist

        result = run_nist(
            gen, n_bits=max(150_000, int(1_000_000 * args.scale)),
            progress=progress,
        )
    else:
        battery = {"smallcrush": "SmallCrush", "crush": "Crush",
                   "bigcrush": "BigCrush"}[args.battery]
        result = run_battery(battery, gen, scale=args.scale,
                             progress=progress)
    print(result.summary_table())
    return 0 if result.num_passed == result.num_tests else 1


def _cmd_platform(args) -> int:
    res = simulate_pipeline(
        PipelineConfig(total_numbers=args.n, batch_size=args.batch_size)
    )
    print(f"numbers      : {args.n}")
    print(f"batch size S : {args.batch_size}")
    print(f"time         : {res.time_ms:.2f} ms")
    print(f"throughput   : {res.throughput_gnumbers_s:.4f} GNumbers/s")
    print(f"CPU idle     : {res.cpu_idle_fraction:.1%}")
    print(f"GPU idle     : {res.gpu_idle_fraction:.1%}")
    return 0


def _cmd_figures(args) -> int:
    if args.which == "fig3":
        sizes = [5, 10, 50, 100, 500, 1000]
        print(format_series(
            "Size (M)", sizes,
            {
                "Hybrid (ms)": [
                    round(hybrid_time_ns(PipelineConfig(
                        total_numbers=int(m * 1e6), batch_size=100)) / 1e6, 1)
                    for m in sizes
                ],
                "MT (ms)": [round(mt_time_ns(int(m * 1e6)) / 1e6, 1)
                            for m in sizes],
                "CURAND (ms)": [round(curand_time_ns(int(m * 1e6)) / 1e6, 1)
                                for m in sizes],
            },
            title="Figure 3 (platform model)",
        ))
    elif args.which == "fig5":
        blocks = [1, 5, 10, 50, 100, 200, 500, 1000]
        print(format_series(
            "S", blocks,
            {"Hybrid (ms)": [
                round(hybrid_time_ns(PipelineConfig(
                    total_numbers=10_000_000, batch_size=s)) / 1e6, 1)
                for s in blocks
            ]},
            title="Figure 5 (platform model, N = 10M)",
        ))
    else:
        sizes = [5, 10, 50, 100, 500, 1000]
        print(format_series(
            "Size (M)", sizes,
            {
                "Hybrid CPU (ms)": [
                    round(cpu_hybrid_time_ns(int(m * 1e6)) / 1e6, 1)
                    for m in sizes
                ],
                "glibc rand() (ms)": [
                    round(glibc_rand_time_ns(int(m * 1e6)) / 1e6, 1)
                    for m in sizes
                ],
            },
            title="Figure 6 (platform model)",
        ))
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "quality":
        return _cmd_quality(args)
    if args.command == "platform":
        return _cmd_platform(args)
    return _cmd_figures(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
