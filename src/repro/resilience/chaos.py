"""Chaos harness: run the hybrid generator under an injection profile.

One entry point, :func:`run_chaos`, wires the full resilient pipeline --
``FaultyBitSource`` (injection) under a :class:`SupervisedFeed`
(retries + failover) under a hardened
:class:`~repro.bitsource.buffered.BufferedFeed` (no-hang delivery) under
:class:`~repro.core.parallel.ParallelExpanderPRNG` -- generates ``n``
numbers with full observability on, and returns a
:class:`~repro.obs.report.RunReport` describing what was injected, what
was absorbed (retries/failovers), and what, if anything, finally failed.

The ``repro chaos`` CLI subcommand and the chaos CI job are thin
wrappers over this module, so "the failure drill we test" and "the
failure drill we can run by hand" are the same code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro import obs
from repro.bitsource.base import BitSource
from repro.bitsource.buffered import BufferedFeed
from repro.bitsource.counter import SplitMix64Source, splitmix64
from repro.bitsource.glibc import GlibcRandom
from repro.bitsource.os_entropy import OsEntropySource
from repro.core.parallel import ParallelExpanderPRNG
from repro.obs.report import RunReport
from repro.resilience.errors import FeedFailedError
from repro.resilience.faults import FaultProfile, FaultyBitSource, get_profile
from repro.resilience.supervised import RetryPolicy, SupervisedFeed

__all__ = ["ChaosResult", "build_chaos_feed", "run_chaos"]

#: Backoff shape used by chaos runs: same budget as the default policy
#: but millisecond-scale waits, so drills stay fast while still
#: exercising the backoff code path.
CHAOS_POLICY = RetryPolicy(max_retries=3, backoff_base_s=0.001,
                           backoff_cap_s=0.01)


@dataclass
class ChaosResult:
    """Outcome of one chaos run."""

    profile: str
    numbers: int
    report: RunReport
    error: Optional[FeedFailedError] = None

    @property
    def survived(self) -> bool:
        """True when the failover chain absorbed every injected fault."""
        return self.error is None

    @property
    def exit_code(self) -> int:
        return 0 if self.survived else 1


def build_chaos_feed(
    profile: "FaultProfile | str",
    seed: int = 1,
    policy: Optional[RetryPolicy] = None,
    sleep=None,
) -> SupervisedFeed:
    """The chaos chain for ``profile``: faulty primary, healthy fallbacks.

    The primary is the paper's ``GlibcRandom`` wrapped in a
    :class:`FaultyBitSource`; fallbacks are an independent SplitMix64
    substream and OS entropy.  The ``fatal`` profile (``error_rate
    1.0``) wraps *every* chain member so the budget provably exhausts;
    every other profile injects into the primary only, so the chain can
    absorb a hard death by switching.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    fallback_seed = int(splitmix64(np.uint64((seed + 1) & (2**64 - 1))))
    chain: List[BitSource] = [
        FaultyBitSource(GlibcRandom(seed), profile, fault_seed=seed,
                        sleep=sleep),
        SplitMix64Source(fallback_seed),
        OsEntropySource(),
    ]
    if profile.error_rate >= 1.0 and profile.fail_after is None:
        # Total-outage drill: no healthy source anywhere in the chain.
        chain = [
            chain[0],
            FaultyBitSource(SplitMix64Source(fallback_seed), profile,
                            fault_seed=seed + 1, sleep=sleep),
        ]
    return SupervisedFeed(chain, policy=policy or CHAOS_POLICY,
                          jitter_seed=seed, sleep=sleep)


def run_chaos(
    profile: str = "flaky",
    n: int = 100_000,
    seed: int = 1,
    num_threads: int = 4096,
    async_feed: bool = False,
    policy: Optional[RetryPolicy] = None,
    batch_words: int = 1 << 14,
    sleep=None,
) -> ChaosResult:
    """Generate ``n`` numbers under ``profile`` and report what happened.

    Observability is enabled for the duration of the run; the returned
    report carries feed stats, supervisor stats (retries, failovers,
    switch points, health), injected-fault counts, and -- when the
    chain could not absorb the faults -- the terminal
    :class:`FeedFailedError` diagnosis.
    """
    prof = get_profile(profile) if isinstance(profile, str) else profile
    with obs.observed() as (registry, tracer):
        supervised = build_chaos_feed(prof, seed=seed, policy=policy,
                                      sleep=sleep)
        feed = BufferedFeed(
            supervised, batch_words=batch_words, prefetch=2,
            async_producer=async_feed,
        )
        error: Optional[FeedFailedError] = None
        produced = 0
        try:
            prng = ParallelExpanderPRNG(
                num_threads=num_threads, bit_source=feed
            )
            values = prng.generate(n)
            produced = int(values.size)
        except FeedFailedError as exc:
            error = exc
        finally:
            feed.close()
        report = RunReport(registry, tracer, meta={
            "component": "chaos",
            "profile": prof.name,
            "seed": seed,
            "requested_numbers": n,
        })
        report.add_feed_stats(feed.stats)
        faulty = [s for s in supervised.chain
                  if isinstance(s, FaultyBitSource)]
        resilience = supervised.stats.snapshot()
        resilience["health"] = supervised.health.name
        resilience["active_source"] = supervised.active_source.name
        resilience["faults_injected"] = {
            src.name: src.injected() for src in faulty
        }
        report.add_section("resilience", resilience)
        if error is not None:
            report.add_section("failure", {
                "error": type(error).__name__,
                "message": str(error),
                "numbers_produced": produced,
            })
    return ChaosResult(
        profile=prof.name, numbers=produced, report=report, error=error
    )
