"""Deterministic fault injection for bit sources.

:class:`FaultyBitSource` wraps any
:class:`~repro.bitsource.base.BitSource` and injects configurable
failure modes -- raised exceptions, added latency, short reads, and bit
corruption -- so every failure path in the pipeline is testable on
demand.  Injection decisions are driven by a private SplitMix64 stream
over the wrapper's call counter, so a given ``(fault_seed, profile)``
pair replays the *same* fault schedule on every run regardless of
wall-clock time or interleaving: chaos tests are as reproducible as the
generator itself.

The module also defines the named :data:`PROFILES` used by the ``repro
chaos`` CLI subcommand and the chaos CI job.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

import numpy as np

from repro.bitsource.base import BitSource
from repro.bitsource.counter import splitmix64
from repro.obs import metrics as obs_metrics
from repro.resilience.errors import InjectedFault
from repro.utils.checks import check_probability

__all__ = ["FaultProfile", "FaultyBitSource", "PROFILES", "RECOVERY_FAULTS",
           "get_profile", "scaled", "tear_journal", "kill_server"]


@dataclass(frozen=True)
class FaultProfile:
    """Rates and parameters for the four injectable failure modes.

    All rates are per-``words64``-call probabilities in ``[0, 1]``.
    ``fail_after`` optionally makes the source *permanently* fail from
    the given call index onward (deterministic hard death, used to
    exercise failover), independent of ``error_rate``.
    """

    name: str = "custom"
    #: Probability a call raises :class:`InjectedFault`.
    error_rate: float = 0.0
    #: Probability a call sleeps ``latency_s`` before answering.
    latency_rate: float = 0.0
    latency_s: float = 0.0
    #: Probability a call returns fewer words than requested.
    short_read_rate: float = 0.0
    #: Probability one bit of the returned batch is flipped.
    corrupt_rate: float = 0.0
    #: Calls >= this index always raise (None: never).  0 kills the
    #: source outright, modelling a producer that is dead on arrival.
    fail_after: Optional[int] = None
    #: AND-mask every returned word with this value (None: off).  This
    #: is the *silent degradation* mode: nothing raises, health stays
    #: OK, but the entropy of the data plane collapses -- only a
    #: statistical watcher (the sentinel) can see it.  The mask must
    #: clear bits, never set them: an all-ones feed chunk maps to the
    #: expander's rejected chunk 7 and would spin the reject policy
    #: forever, so OR-style bias is deliberately not offered.
    bias_and: Optional[int] = None

    def __post_init__(self):
        check_probability("error_rate", self.error_rate)
        check_probability("latency_rate", self.latency_rate)
        check_probability("short_read_rate", self.short_read_rate)
        check_probability("corrupt_rate", self.corrupt_rate)
        if self.latency_s < 0:
            raise ValueError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.fail_after is not None and self.fail_after < 0:
            raise ValueError(f"fail_after must be >= 0, got {self.fail_after}")
        if self.bias_and is not None and not (
            0 <= self.bias_and < 2**64
        ):
            raise ValueError(
                f"bias_and must be a 64-bit mask, got {self.bias_and}"
            )

    @property
    def benign(self) -> bool:
        """True when this profile can never inject anything."""
        return (
            self.error_rate == 0.0
            and self.latency_rate == 0.0
            and self.short_read_rate == 0.0
            and self.corrupt_rate == 0.0
            and self.fail_after is None
            and self.bias_and is None
        )


#: Named injection profiles shared by the ``chaos`` fixture, the
#: ``repro chaos`` CLI subcommand, and the chaos CI job.
PROFILES: Dict[str, FaultProfile] = {
    # Control group: the wrapper is installed but inert.
    "none": FaultProfile(name="none"),
    # Transient errors a retry budget should absorb without failover.
    "flaky": FaultProfile(name="flaky", error_rate=0.25),
    # Slow-but-alive producer plus occasional truncated batches.
    "lossy": FaultProfile(
        name="lossy",
        latency_rate=0.10,
        latency_s=0.002,
        short_read_rate=0.30,
    ),
    # Data-plane corruption: batches arrive, bits are wrong.
    "corrupt": FaultProfile(name="corrupt", corrupt_rate=0.5),
    # Hard death after a few good calls: forces a failover.
    "failover": FaultProfile(name="failover", fail_after=2),
    # Nothing works, ever: the whole chain must exhaust.
    "fatal": FaultProfile(name="fatal", error_rate=1.0),
    # Silent degradation: the feed answers promptly with all-zero words,
    # so supervision sees a healthy source while every walker is pinned
    # to the expander's identity map.  Only the statistical sentinel
    # (repro.obs.sentinel) catches this one.
    "biased": FaultProfile(name="biased", bias_and=0x0),
}


def get_profile(name: str) -> FaultProfile:
    """Look up a named profile (:data:`PROFILES`), with a helpful error."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ValueError(f"unknown fault profile {name!r}; known: {known}") \
            from None


class FaultyBitSource(BitSource):
    """Wrap a source and deterministically inject faults into it.

    Parameters
    ----------
    source : BitSource
        The wrapped (healthy) source; untouched calls pass straight
        through, so with the ``none`` profile the wrapper is
        value-transparent.
    profile : FaultProfile or str
        What to inject and how often (a string looks up
        :data:`PROFILES`).
    fault_seed : int
        Seed of the private decision stream.  Deliberately separate from
        the wrapped source's seed: the same data stream can be replayed
        under different fault schedules and vice versa.
    sleep : callable, optional
        Injected-latency sleeper (monkeypatch point for tests; defaults
        to :func:`time.sleep`).
    """

    def __init__(
        self,
        source: BitSource,
        profile: "FaultProfile | str" = "none",
        fault_seed: int = 0,
        sleep=None,
    ):
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.source = source
        self.profile = profile
        self.fault_seed = int(fault_seed)
        self.name = f"faulty({source.name}:{profile.name})"
        self._calls = 0
        self._injected = {
            "errors": 0, "latencies": 0, "short_reads": 0, "corruptions": 0,
            "biases": 0,
        }
        if sleep is None:
            import time

            sleep = time.sleep
        self._sleep = sleep

    # ------------------------------------------------------------------
    # Decision stream
    # ------------------------------------------------------------------

    def _roll(self, call_index: int, channel: int) -> float:
        """Uniform [0,1) decision for (call, failure-mode channel)."""
        x = np.uint64(
            (self.fault_seed * 0x1000003 + call_index * 8 + channel)
            & 0xFFFFFFFFFFFFFFFF
        )
        return int(splitmix64(x)) / 2.0**64

    def injected(self) -> dict:
        """Counts of faults injected so far, by mode (plain dict copy)."""
        return dict(self._injected)

    @property
    def seekable(self) -> bool:
        return self.source.seekable

    def seek(self, word_offset: int) -> None:
        """Delegate to the wrapped source.

        The fault schedule is *call*-indexed, not word-indexed, so a
        seek changes which words future faults land on but keeps the
        fault sequence itself deterministic.
        """
        self.source.seek(word_offset)

    # ------------------------------------------------------------------
    # BitSource API
    # ------------------------------------------------------------------

    def words64(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        call = self._calls
        self._calls += 1
        prof = self.profile
        if prof.fail_after is not None and call >= prof.fail_after:
            self._note("errors")
            raise InjectedFault(
                f"{self.name}: dead since call {prof.fail_after}",
                call_index=call,
            )
        if prof.error_rate and self._roll(call, 0) < prof.error_rate:
            self._note("errors")
            raise InjectedFault(
                f"{self.name}: injected error on call {call}", call_index=call
            )
        if prof.latency_rate and self._roll(call, 1) < prof.latency_rate:
            self._note("latencies")
            self._sleep(prof.latency_s)
        take = n
        if (
            n > 1
            and prof.short_read_rate
            and self._roll(call, 2) < prof.short_read_rate
        ):
            self._note("short_reads")
            # Return between 1 and n-1 words, deterministically.
            take = 1 + int(self._roll(call, 3) * (n - 1))
        out = self.source.words64(take)
        if (
            out.size
            and prof.corrupt_rate
            and self._roll(call, 4) < prof.corrupt_rate
        ):
            self._note("corruptions")
            out = out.copy()
            word = int(self._roll(call, 5) * out.size)
            bit = int(self._roll(call, 6) * 64)
            out[word] ^= np.uint64(1) << np.uint64(bit)
        if prof.bias_and is not None and out.size:
            self._note("biases")
            out = out & np.uint64(prof.bias_and)
        return out

    def reseed(self, seed: int) -> None:
        """Reseed the wrapped source; the fault schedule restarts too."""
        self.source.reseed(seed)
        self._calls = 0

    def _note(self, mode: str) -> None:
        self._injected[mode] += 1
        obs_metrics.counter(
            "repro_faults_injected_total", "Faults injected by FaultyBitSource"
        ).inc()


# ----------------------------------------------------------------------
# Recovery faults: crash-path injection for the serving layer
# ----------------------------------------------------------------------
#
# The bit-source profiles above attack the *data plane*; these two
# attack the *durability plane* -- the session journal and the server
# process itself -- so the crash-recovery paths (torn-tail truncation,
# journal replay, RESUME) are drillable on demand, from the chaos
# fixture and the recovery CI job alike.


def tear_journal(
    path: str,
    drop_bytes: Optional[int] = None,
    garbage_bytes: int = 0,
    fault_seed: int = 0,
) -> int:
    """Tear the tail of a journal file, as a mid-append crash would.

    Truncates ``drop_bytes`` from the end (deterministically derived
    from ``fault_seed`` when not given: 1..16 bytes, never the whole
    file) and then optionally appends ``garbage_bytes`` of deterministic
    junk -- the two shapes a real torn write takes (a short final
    ``write`` and a final ``write`` of the wrong bytes).  Returns the
    number of bytes removed.  Recovery must survive both by truncating
    the tail and replaying every intact record before it.
    """
    import os

    size = os.path.getsize(path)
    if drop_bytes is None:
        roll = int(splitmix64(np.uint64(fault_seed * 31 + size)))
        drop_bytes = 1 + roll % 16
    drop_bytes = min(drop_bytes, max(size - 1, 0))
    with open(path, "r+b") as fh:
        fh.truncate(size - drop_bytes)
        if garbage_bytes:
            fh.seek(0, os.SEEK_END)
            junk = bytes(
                int(splitmix64(np.uint64(fault_seed * 131 + i))) & 0xFF
                for i in range(garbage_bytes)
            )
            fh.write(junk)
    obs_metrics.counter(
        "repro_faults_injected_total", "Faults injected by FaultyBitSource"
    ).inc()
    return drop_bytes


def kill_server(process, timeout_s: float = 10.0) -> None:
    """SIGKILL a server process and wait for it to die.

    ``process`` is anything with ``pid`` (``subprocess.Popen``,
    ``multiprocessing.Process``); SIGKILL -- never SIGTERM -- because
    the point of the drill is that *no* shutdown code runs: the journal
    keeps whatever was fsync'd and nothing else.
    """
    import os
    import signal
    import subprocess

    os.kill(process.pid, signal.SIGKILL)
    if isinstance(process, subprocess.Popen):
        process.wait(timeout=timeout_s)
    elif hasattr(process, "join"):
        process.join(timeout=timeout_s)
    obs_metrics.counter(
        "repro_faults_injected_total", "Faults injected by FaultyBitSource"
    ).inc()


#: Named recovery faults, the durability-plane sibling of
#: :data:`PROFILES` (callables, not rate profiles: each is a single
#: deterministic crash event, not a per-call probability).
RECOVERY_FAULTS = {
    "torn_journal": tear_journal,
    "kill_server": kill_server,
}


def scaled(profile: FaultProfile, factor: float) -> FaultProfile:
    """A copy of ``profile`` with every rate multiplied by ``factor``.

    Convenience for chaos sweeps (rates clamp to 1.0).
    """
    clamp = lambda r: min(1.0, r * factor)
    return replace(
        profile,
        error_rate=clamp(profile.error_rate),
        latency_rate=clamp(profile.latency_rate),
        short_read_rate=clamp(profile.short_read_rate),
        corrupt_rate=clamp(profile.corrupt_rate),
    )
