"""Resilience: fault injection, supervised feeds, graceful degradation.

The hybrid pipeline's concurrency (CPU FEED / PCIe TRANSFER / GPU
GENERATE overlapped, Sections II-III of the paper) is only production-
worthy if a failing stage is *detected, retried, and degraded
gracefully* -- never a silent hang.  This package supplies that story in
three layers:

* :mod:`repro.resilience.faults`     -- :class:`FaultyBitSource`, a
  deterministic seed-driven injector of errors, latency, short reads and
  bit corruption into any :class:`~repro.bitsource.base.BitSource`, with
  the named :data:`PROFILES` shared by tests, CLI, and CI;
* :mod:`repro.resilience.supervised` -- :class:`SupervisedFeed`, an
  ordered failover chain with per-source retry budgets, exponential
  backoff with deterministic jitter, and the ``OK -> DEGRADED ->
  FAILED`` :class:`FeedHealth` machine exported through
  :mod:`repro.obs`;
* :mod:`repro.resilience.chaos`      -- :func:`run_chaos`, the drill
  harness behind ``repro chaos --profile <name>``.

Structured failures live in :mod:`repro.resilience.errors`
(:class:`FeedFailedError` and friends) so every layer of the repo can
agree on what "the feed is gone" looks like.
"""

from repro.resilience.errors import (
    FeedFailedError,
    FeedTimeoutError,
    InjectedFault,
    ResilienceError,
    WorkerFailedError,
)
from repro.resilience.faults import (
    PROFILES,
    RECOVERY_FAULTS,
    FaultProfile,
    FaultyBitSource,
    get_profile,
    kill_server,
    scaled,
    tear_journal,
)
from repro.resilience.supervised import (
    FeedHealth,
    RetryPolicy,
    SupervisedFeed,
    SupervisorStats,
    default_failover_chain,
)

__all__ = [
    "FeedFailedError",
    "FeedTimeoutError",
    "InjectedFault",
    "ResilienceError",
    "WorkerFailedError",
    "FaultProfile",
    "FaultyBitSource",
    "PROFILES",
    "RECOVERY_FAULTS",
    "get_profile",
    "kill_server",
    "scaled",
    "tear_journal",
    "FeedHealth",
    "RetryPolicy",
    "SupervisedFeed",
    "SupervisorStats",
    "default_failover_chain",
]
