"""Exception taxonomy for the resilience layer.

Failure handling in the hybrid pipeline follows one rule: a fault is
either *absorbed* (retried, or survived by failing over to the next
source in the chain) or *surfaced* as a structured exception that says
what broke and what had already been tried.  Nothing hangs and nothing
disappears into a bare pool traceback.

This module has no dependencies so that any layer (bit sources, the
buffered feed, the scheduler, the multiprocessing variant) can raise and
catch these types without import cycles.
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "ResilienceError",
    "FeedFailedError",
    "FeedTimeoutError",
    "InjectedFault",
    "WorkerFailedError",
]


class ResilienceError(RuntimeError):
    """Base class for structured pipeline-failure exceptions."""


class FeedFailedError(ResilienceError):
    """The bit feed can no longer produce words.

    Raised by a :class:`~repro.bitsource.buffered.BufferedFeed` consumer
    when the producer thread died, and by a
    :class:`~repro.resilience.supervised.SupervisedFeed` when the retry
    budget is exhausted on the last source of the failover chain.  The
    original failure is attached both as ``cause`` and as the standard
    ``__cause__`` chain.
    """

    def __init__(self, message: str, cause: Optional[BaseException] = None):
        super().__init__(message)
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause


class FeedTimeoutError(FeedFailedError):
    """A consumer wait on the feed exceeded its configured deadline.

    Distinct from :class:`FeedFailedError` proper because the producer
    may still be alive (merely too slow); callers that want to treat
    "dead" and "late" differently can catch this subclass first.
    """


class InjectedFault(ResilienceError):
    """A deliberate failure raised by :class:`FaultyBitSource`.

    Carries the injection site so tests and reports can distinguish
    injected faults from organic ones.
    """

    def __init__(self, message: str, call_index: int = -1):
        super().__init__(message)
        self.call_index = call_index


class WorkerFailedError(ResilienceError):
    """A multiprocessing worker failed even after its retry.

    Attributes
    ----------
    worker_index : int
        Position of the failed job in the worker-major decomposition.
    attempts : int
        Total attempts made (initial + retries).
    cause : BaseException
        The last exception raised inside the worker.
    """

    def __init__(
        self,
        message: str,
        worker_index: int = -1,
        attempts: int = 1,
        cause: Optional[BaseException] = None,
    ):
        super().__init__(message)
        self.worker_index = worker_index
        self.attempts = attempts
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause
