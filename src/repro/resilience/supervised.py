"""Supervised bit feeds: retries, failover chains, and a health machine.

The paper's pipeline assumes the CPU FEED stage always delivers; this
module is what makes that assumption safe to rely on.  A
:class:`SupervisedFeed` fronts an ordered *failover chain* of
:class:`~repro.bitsource.base.BitSource` instances (e.g. ``GlibcRandom
-> SplitMix64Source -> OsEntropySource``) and guarantees that
``words64(n)`` either returns ``n`` words or raises a structured
:class:`~repro.resilience.errors.FeedFailedError` -- never hangs, never
silently truncates.

Per request, the active source gets ``RetryPolicy.max_retries`` retries
with exponential backoff and *deterministic* jitter (a SplitMix64 stream
over the retry counter, so backoff schedules replay exactly).  When the
budget is exhausted the feed fails over to the next source in the chain
and records the switch point; when the chain is exhausted it transitions
to ``FAILED`` and raises.

Health is a three-state machine exported through :mod:`repro.obs`:

``OK``        never needed a retry;
``DEGRADED``  absorbed at least one fault (sticky -- the stream already
              contains a discontinuity or a delay);
``FAILED``    the whole chain is exhausted; every further request raises.

With no faults occurring the feed is value-transparent: the fast path is
one delegated call, so output is byte-identical to the unwrapped primary
source (guarded by tests and `bench_core_throughput`).
"""

from __future__ import annotations

import enum
import threading
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.bitsource.base import BitSource
from repro.bitsource.counter import SplitMix64Source, splitmix64
from repro.bitsource.glibc import GlibcRandom
from repro.bitsource.os_entropy import OsEntropySource
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience.errors import FeedFailedError

__all__ = [
    "FeedHealth",
    "RetryPolicy",
    "SupervisorStats",
    "SupervisedFeed",
    "default_failover_chain",
]


class FeedHealth(enum.IntEnum):
    """Health state machine of a supervised feed (exported as a gauge)."""

    OK = 0
    DEGRADED = 1
    FAILED = 2


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff shape for one source of the chain.

    ``max_retries`` is the per-request budget on the *active* source:
    after that many consecutive failed attempts the feed fails over.
    Backoff for attempt ``k`` (1-based) is
    ``min(cap, base * 2**(k-1))`` scaled by ``1 + jitter * (u - 0.5)``
    with ``u`` drawn from a deterministic SplitMix64 stream.
    """

    max_retries: int = 3
    backoff_base_s: float = 0.005
    backoff_cap_s: float = 0.25
    jitter: float = 0.5

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff times must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, attempt: int, u: float) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered by ``u``."""
        base = min(self.backoff_cap_s, self.backoff_base_s * 2 ** (attempt - 1))
        return base * (1.0 + self.jitter * (u - 0.5))


@dataclass
class SupervisorStats:
    """Counters and the event log of one :class:`SupervisedFeed`."""

    requests: int = 0
    words_served: int = 0
    retries: int = 0
    failovers: int = 0
    short_reads: int = 0

    def __post_init__(self):
        self._lock = threading.Lock()
        #: One dict per failover: which source died, which took over,
        #: at which output word index, and why.
        self.failover_events: List[dict] = []

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "requests": self.requests,
                "words_served": self.words_served,
                "retries": self.retries,
                "failovers": self.failovers,
                "short_reads": self.short_reads,
                "failover_events": [dict(e) for e in self.failover_events],
            }


class SupervisedFeed(BitSource):
    """Failover chain of bit sources behind one never-hanging interface.

    Parameters
    ----------
    sources : BitSource or sequence of BitSource
        The failover chain, primary first.  A single source means
        "retries only, no failover".
    policy : RetryPolicy, optional
        Per-source retry budget and backoff shape.
    jitter_seed : int
        Seed of the deterministic backoff-jitter stream.
    sleep : callable, optional
        Backoff sleeper; tests inject a recorder to assert the schedule
        without waiting for it.

    Notes
    -----
    Retrying re-issues the full remainder of the request against the
    active source, so a source whose ``words64`` failed *after* advancing
    internal state may skip words across the retry -- acceptable for a
    randomness feed (and deterministic for :class:`FaultyBitSource`,
    which decides faults before delegating).  After a failover the
    stream continues from the *next* source's state: reproducibility is
    per-source, and :attr:`stats` records the switch point.
    """

    def __init__(
        self,
        sources: "BitSource | Sequence[BitSource]",
        policy: Optional[RetryPolicy] = None,
        jitter_seed: int = 0,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if isinstance(sources, BitSource):
            sources = [sources]
        chain = list(sources)
        if not chain:
            raise ValueError("failover chain needs at least one source")
        for src in chain:
            if not isinstance(src, BitSource):
                raise TypeError(f"not a BitSource: {src!r}")
        self._chain = chain
        self.policy = policy or RetryPolicy()
        self.stats = SupervisorStats()
        self._active = 0
        self._health = FeedHealth.OK
        self._jitter_seed = int(jitter_seed)
        self._jitter_calls = 0
        self._sleep = sleep if sleep is not None else time.sleep
        self.name = "supervised(" + ">".join(s.name for s in chain) + ")"
        self._set_health(FeedHealth.OK)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def health(self) -> FeedHealth:
        return self._health

    @property
    def active_source(self) -> BitSource:
        """The source currently serving requests."""
        return self._chain[min(self._active, len(self._chain) - 1)]

    @property
    def chain(self) -> List[BitSource]:
        return list(self._chain)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _set_health(self, health: FeedHealth) -> None:
        self._health = health
        obs_metrics.gauge(
            "repro_feed_health",
            "Supervised feed health (0 OK, 1 DEGRADED, 2 FAILED)",
        ).set(int(health))

    def _degrade(self) -> None:
        if self._health is FeedHealth.OK:
            self._set_health(FeedHealth.DEGRADED)

    def _jitter_u(self) -> float:
        """Next deterministic uniform [0,1) for backoff jitter."""
        self._jitter_calls += 1
        x = np.uint64(
            (self._jitter_seed * 0x9E3779B9 + self._jitter_calls)
            & 0xFFFFFFFFFFFFFFFF
        )
        return int(splitmix64(x)) / 2.0**64

    def _record_retry(self, attempt: int) -> None:
        with self.stats._lock:
            self.stats.retries += 1
        obs_metrics.counter(
            "repro_feed_retries_total", "Supervised feed retry attempts"
        ).inc()
        self._degrade()
        backoff = self.policy.backoff_s(attempt, self._jitter_u())
        if backoff > 0:
            with span("feed-retry", attempt=attempt, backoff_s=backoff):
                self._sleep(backoff)

    def _record_failover(self, served: int, exc: BaseException) -> None:
        old = self._chain[self._active].name
        self._active += 1
        new = self._chain[self._active].name
        with self.stats._lock:
            self.stats.failovers += 1
            self.stats.failover_events.append({
                "from": old,
                "to": new,
                "at_word": self.stats.words_served + served,
                "error": f"{type(exc).__name__}: {exc}",
            })
        obs_metrics.counter(
            "repro_feed_failovers_total", "Supervised feed source switches"
        ).inc()
        self._degrade()
        with span("feed-failover", source=new):
            pass

    def _fail(self, exc: BaseException) -> "FeedFailedError":
        self._set_health(FeedHealth.FAILED)
        snap = self.stats.snapshot()
        return FeedFailedError(
            f"{self.name}: all {len(self._chain)} source(s) exhausted "
            f"after {snap['retries']} retries and {snap['failovers']} "
            f"failovers (last error: {type(exc).__name__}: {exc})",
            cause=exc,
        )

    # ------------------------------------------------------------------
    # BitSource API
    # ------------------------------------------------------------------

    def words64(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        if self._health is FeedHealth.FAILED:
            raise FeedFailedError(f"{self.name}: feed already FAILED")
        stats = self.stats
        with stats._lock:
            stats.requests += 1
        # Fast path: one delegated call, no bookkeeping beyond counters,
        # so a healthy supervised feed is value-transparent and cheap.
        try:
            out = self._chain[self._active].words64(n)
            if out.size == n:
                with stats._lock:
                    stats.words_served += n
                return out
        except Exception as exc:
            return self._words64_slow(n, None, 1, exc)
        return self._words64_slow(n, out, 0, None)

    def _words64_slow(
        self,
        n: int,
        partial: Optional[np.ndarray],
        attempt: int,
        exc: Optional[BaseException],
    ) -> np.ndarray:
        """Assemble ``n`` words across retries, short reads and failovers."""
        parts: List[np.ndarray] = []
        served = 0
        if partial is not None and partial.size:
            parts.append(partial)
            served = int(partial.size)
            with self.stats._lock:
                self.stats.short_reads += 1
            self._degrade()
        if exc is not None:
            if attempt > self.policy.max_retries:
                self._maybe_failover(served, exc)  # raises when exhausted
                attempt = 0
            else:
                self._record_retry(attempt)
        while served < n:
            try:
                chunk = self._chain[self._active].words64(n - served)
            except Exception as err:  # noqa: BLE001 - supervisor boundary
                attempt += 1
                if attempt > self.policy.max_retries:
                    self._maybe_failover(served, err)
                    attempt = 0
                    continue
                self._record_retry(attempt)
                continue
            if chunk.size == 0:
                # A source that returns nothing forever must not spin:
                # treat an empty read as a failed attempt.
                attempt += 1
                if attempt > self.policy.max_retries:
                    self._maybe_failover(
                        served, FeedFailedError("source returned 0 words")
                    )
                    attempt = 0
                    continue
                self._record_retry(attempt)
                continue
            if chunk.size < n - served:
                with self.stats._lock:
                    self.stats.short_reads += 1
                self._degrade()
            else:
                attempt = 0
            parts.append(chunk)
            served += int(chunk.size)
        with self.stats._lock:
            self.stats.words_served += n
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    def _maybe_failover(self, served: int, exc: BaseException):
        """Advance the chain or raise; returns only if a failover happened."""
        if self._active + 1 >= len(self._chain):
            raise self._fail(exc)
        self._record_failover(served, exc)

    @property
    def seekable(self) -> bool:
        return self.active_source.seekable

    def seek(self, word_offset: int) -> None:
        """Delegate the jump to the active source.

        Offsets name positions in the *active* source's stream.  Before
        any failover that is the supervised stream itself; after a
        failover the stream identity has already changed (health is
        DEGRADED) and seeks address the fallback's stream instead --
        callers that need reproducible offsets should reseed to restore
        the primary.
        """
        self.active_source.seek(word_offset)

    def reseed(self, seed: int) -> None:
        """Reseed every source (per-source derived seeds), reset the chain.

        Source ``i`` is reseeded with ``splitmix64(seed + i)`` for
        ``i > 0`` and ``seed`` itself for the primary, so chain members
        never share a stream.  Health returns to ``OK`` and the primary
        becomes active again.
        """
        for i, src in enumerate(self._chain):
            src.reseed(seed if i == 0 else int(splitmix64(np.uint64(
                (seed + i) & 0xFFFFFFFFFFFFFFFF))))
        self._active = 0
        self._jitter_calls = 0
        self._set_health(FeedHealth.OK)


def default_failover_chain(seed: int = 1) -> List[BitSource]:
    """The stock chain: paper-faithful primary, fast fallback, OS entropy.

    ``GlibcRandom(seed)`` (the paper's feed) backed by an independent
    ``SplitMix64Source`` substream, with ``OsEntropySource`` as the last
    resort (non-deterministic, but the run report records the switch).
    """
    fallback_seed = int(splitmix64(np.uint64((seed + 1) & 0xFFFFFFFFFFFFFFFF)))
    return [
        GlibcRandom(seed),
        SplitMix64Source(fallback_seed),
        OsEntropySource(),
    ]
