"""repro.engine: the stream-exact, process-sharded generation core.

The engine is the hot path behind
:class:`~repro.core.parallel.ParallelExpanderPRNG` at scale: worker
shards own disjoint lane ranges of one virtual walker bank, stream
whole rounds through shared-memory rings, and answer named stream
fetches for ``repro.serve`` -- all without changing a single value
relative to the in-process generators (see
:func:`~repro.engine.sharded.serial_reference`).
"""

from repro.engine.ring import RingHandle, RingWriter, SharedRing
from repro.engine.sharded import (
    DEFAULT_ENGINE_LANES,
    DEFAULT_RING_BURST,
    DEFAULT_RING_SLOTS,
    ENGINE_RETRY_POLICY,
    EngineConfig,
    ShardedEngine,
    serial_reference,
)

__all__ = [
    "DEFAULT_ENGINE_LANES",
    "DEFAULT_RING_BURST",
    "DEFAULT_RING_SLOTS",
    "ENGINE_RETRY_POLICY",
    "EngineConfig",
    "RingHandle",
    "RingWriter",
    "SharedRing",
    "ShardedEngine",
    "serial_reference",
]
