"""Process-sharded generation behind one canonical stream.

:class:`ShardedEngine` runs ``shards`` worker processes.  Worker ``i``
owns a :class:`~repro.core.parallel.ParallelExpanderPRNG` walker bank --
the lane range ``[i * lanes, (i + 1) * lanes)`` of a virtual global
bank -- fed by the master seed's substream ``derive_seed(seed, i)``, so
shards are exactly as independent as any two
:func:`~repro.core.streams.spawn_streams` substreams.  Each worker
writes whole rounds into its own shared-memory
:class:`~repro.engine.ring.SharedRing`; the parent assembles the
engine's **bulk stream** by consuming one round from every ring in
shard order:

    round 0: shard 0 lanes, shard 1 lanes, ..., round 1: shard 0, ...

That stream is a pure function of ``(seed, shards, lanes, walk_length,
policy)`` -- :func:`serial_reference` produces the identical values in
process, and ``generate`` buffers round remainders so fetch sizing
cannot change it (the same stream contract the core obeys).

Workers also answer **named stream fetches** (the serving path): a
fetch names a ``(stream_seed, lanes)`` stream, is routed to the shard
``stream_seed % shards``, and is served from a per-stream walker bank
inside that worker -- byte-identical to running the same bank in
process, which is what lets ``repro.serve`` sessions move onto the
shard pool without changing a single client-visible value.  Banks are
:class:`~repro.core.parallel.AddressableExpanderPRNG` streams (the
engine requires a fixed-consumption policy), and every fetch carries
the stream's **absolute word offset**: a worker whose bank is at a
different position seeks there directly -- O(log offset) via the feed
jump-ahead -- so respawn cost is independent of stream age and
``fetch_stream(..., offset=...)`` serves any slice without replay.

Health follows :mod:`repro.resilience`: worker feeds run behind
:class:`~repro.resilience.supervised.SupervisedFeed` failover chains, a
dead worker surfaces as
:class:`~repro.resilience.errors.WorkerFailedError` (or is respawned
when ``auto_restart`` is on, with the engine reporting ``DEGRADED``),
and ``repro_engine_*`` metrics/spans flow through :mod:`repro.obs`.

NOTE: wall-clock speedup requires actual cores; on a single-core
container (such as the reproduction environment) the decomposition is
correct but not faster -- ``benchmarks/bench_engine_scaling.py``
measures the scaling where cores exist.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue as queue_mod
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.bitsource.base import BitSource
from repro.bitsource.counter import SplitMix64Source
from repro.bitsource.os_entropy import OsEntropySource
from repro.core.generator import DEFAULT_WALK_LENGTH
from repro.core.parallel import AddressableExpanderPRNG
from repro.core.streams import derive_seed
from repro.core.walk import FIXED_CONSUMPTION_POLICIES
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience.errors import WorkerFailedError
from repro.resilience.supervised import RetryPolicy, SupervisedFeed
from repro.utils.checks import check_positive

from repro.engine.ring import RingHandle, SharedRing

__all__ = [
    "DEFAULT_ENGINE_LANES",
    "DEFAULT_RING_BURST",
    "DEFAULT_RING_SLOTS",
    "ENGINE_RETRY_POLICY",
    "EngineConfig",
    "ShardedEngine",
    "serial_reference",
]

#: Lanes per shard: big enough to stay vectorized, small enough that a
#: round is quick to assemble and the rings stay compact.
DEFAULT_ENGINE_LANES = 4096

#: Rounds buffered per shard ring; the writer stalls when all are full,
#: which is the engine's built-in backpressure.
DEFAULT_RING_SLOTS = 4

#: Rounds packed into one ring slot (the burst width): one
#: semaphore/notify pair and one fused multi-round launch per burst,
#: instead of per round.  Bursts are transport framing only -- the
#: reader hands rounds out one at a time and restart positions stay
#: round-granular -- so the bulk stream is unchanged for any value.
DEFAULT_RING_BURST = 8

#: Fast, bounded supervision budget for worker feeds (mirrors serving).
ENGINE_RETRY_POLICY = RetryPolicy(
    max_retries=2, backoff_base_s=0.001, backoff_cap_s=0.01
)

#: Worker poll interval while idle (ring full, no pending requests).
_IDLE_POLL_S = 0.02

#: Word cap for one fused worker round: bounds the pickled response (a
#: full message is ~16 MiB of uint64) without limiting batch size --
#: overflow just becomes another round on the same shard.
MAX_ROUND_WORDS = 1 << 21


@dataclass(frozen=True)
class EngineConfig:
    """Everything that identifies a shard pool *and* its streams.

    ``(seed, shards, lanes, walk_length, policy)`` are part of the bulk
    stream's identity; the rest is operational.
    """

    seed: int = 0
    shards: int = 2
    lanes: int = DEFAULT_ENGINE_LANES
    walk_length: int = DEFAULT_WALK_LENGTH
    #: Walk policy; must be fixed-consumption ('mod'/'lazy') -- engine
    #: streams are offset-addressable, which 'reject' cannot be.
    policy: str = "lazy"
    #: Rounds buffered per shard; ``0`` disables the bulk stream (a
    #: serve-only pool answers stream fetches but assembles no rounds).
    ring_slots: int = DEFAULT_RING_SLOTS
    #: Rounds per ring slot (burst width); the effective value is capped
    #: so one burst never exceeds :data:`MAX_ROUND_WORDS` words.
    #: Transport framing only -- never part of the stream's identity.
    ring_burst: int = DEFAULT_RING_BURST
    #: Array backend name for worker walk kernels (``None`` = process
    #: default, i.e. NumPy).  The stream is bit-identical on every
    #: backend; a string (not a Backend instance) so configs stay
    #: picklable for worker processes.
    backend: Optional[str] = None
    #: Wrap worker feeds in a SupervisedFeed failover chain.  Value-
    #: transparent while healthy, so it never changes the stream.
    supervised: bool = True
    #: Deadline for one round / one fetch response before the engine
    #: inspects the worker (dead -> restart or WorkerFailedError).
    fetch_timeout_s: float = 60.0
    #: Respawn dead workers (deterministic seek to the dead shard's
    #: position) instead of raising; the engine reports DEGRADED afterwards.
    auto_restart: bool = False
    #: Picklable ``seed -> BitSource`` override for the *primary* feed
    #: of every worker bank and stream (fault injection in tests).
    source_factory: Optional[Callable[[int], BitSource]] = None

    def __post_init__(self):
        check_positive("shards", self.shards)
        check_positive("lanes", self.lanes)
        check_positive("walk_length", self.walk_length)
        if self.policy not in FIXED_CONSUMPTION_POLICIES:
            raise ValueError(
                f"engine streams are offset-addressable and need a "
                f"fixed-consumption policy {FIXED_CONSUMPTION_POLICIES}, "
                f"got {self.policy!r}"
            )
        if self.ring_slots < 0:
            raise ValueError(
                f"ring_slots must be >= 0, got {self.ring_slots}"
            )
        check_positive("ring_burst", self.ring_burst)
        if self.fetch_timeout_s <= 0:
            raise ValueError(
                f"fetch_timeout_s must be > 0, got {self.fetch_timeout_s}"
            )


def _effective_burst(config: EngineConfig) -> int:
    """Rounds per ring slot, capped so a burst stays under the word cap."""
    return max(1, min(config.ring_burst, MAX_ROUND_WORDS // config.lanes))


# ----------------------------------------------------------------------
# Bank construction (shared by workers and the serial reference)
# ----------------------------------------------------------------------

def _make_feed(config: EngineConfig, feed_seed: int) -> BitSource:
    factory = config.source_factory or SplitMix64Source
    primary = factory(feed_seed)
    if not config.supervised:
        return primary
    return SupervisedFeed(
        [
            primary,
            SplitMix64Source(derive_seed(feed_seed, 1)),
            OsEntropySource(),
        ],
        policy=ENGINE_RETRY_POLICY,
        jitter_seed=feed_seed,
    )


def _make_bank(config: EngineConfig, shard_index: int) -> AddressableExpanderPRNG:
    """Shard ``shard_index``'s bulk walker bank (offset-addressable)."""
    return AddressableExpanderPRNG(
        num_threads=config.lanes,
        bit_source=_make_feed(config, derive_seed(config.seed, shard_index)),
        walk_length=config.walk_length,
        policy=config.policy,
        backend=config.backend,
    )


def _make_stream(config: EngineConfig, stream_seed: int,
                 lanes: int) -> AddressableExpanderPRNG:
    """A named stream's walker bank (identical to an in-process one)."""
    return AddressableExpanderPRNG(
        num_threads=lanes,
        bit_source=_make_feed(config, stream_seed),
        walk_length=config.walk_length,
        policy=config.policy,
        backend=config.backend,
    )


def serial_reference(config: EngineConfig, n: int) -> np.ndarray:
    """The exact bulk stream the shard pool produces, single-process.

    Used by tests to prove the decomposition changes nothing: round
    ``r`` of the engine is shard 0's round ``r``, then shard 1's, ...
    """
    check_positive("n", n)
    banks = [_make_bank(config, i) for i in range(config.shards)]
    parts: List[np.ndarray] = []
    total = 0
    while total < n:
        for bank in banks:
            vals = bank.next_round()
            parts.append(vals)
            total += vals.size
    return np.concatenate(parts)[:n]


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _picklable(exc: BaseException):
    """The exception itself if it survives pickling, else a string."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:
        return f"{type(exc).__name__}: {exc}"


def _serve_fetch_round(span_reqs,
                       streams: Dict[Tuple[int, int], AddressableExpanderPRNG],
                       config: EngineConfig, resp_q) -> None:
    """One fused round: every span is generated into a single output
    buffer, back to back, and shipped in one response.  Spans are
    independent streams, so a failed span is recorded in ``metas``
    (its slot in the buffer is simply not filled) and the rest of
    the round still succeeds.  Always puts exactly one response."""
    try:
        buf = np.empty(sum(s[3] for s in span_reqs), dtype=np.uint64)
        metas: list = []
        pos = 0
        for stream_seed, lanes, offset, n in span_reqs:
            try:
                key = (stream_seed, lanes)
                prng = streams.get(key)
                if prng is None:
                    prng = streams[key] = _make_stream(
                        config, stream_seed, lanes
                    )
                if prng.tell() != offset:
                    # Fresh worker behind a long-lived stream (post-
                    # restart), or an explicit-offset fetch: jump
                    # straight there -- O(log offset), never a replay
                    # of the already-served prefix.
                    prng.seek(offset)
                if n:
                    prng.generate_into(buf[pos:pos + n])
                metas.append(n)
                pos += n
            except Exception as exc:  # noqa: BLE001 - shipped per span
                metas.append(_picklable(exc))
        resp_q.put(("okv", (buf[:pos] if pos != buf.size else buf, metas)))
    except Exception as exc:  # noqa: BLE001 - shipped to the caller
        try:
            resp_q.put(("err", exc))
        except Exception:  # unpicklable exception: degrade to a string
            resp_q.put(("err", f"{type(exc).__name__}: {exc}"))


def _serve_request(req, streams: Dict[Tuple[int, int], AddressableExpanderPRNG],
                   config: EngineConfig, resp_q) -> None:
    """Handle one request message.

    A ``fetchv`` message batches *all* of the caller's rounds for this
    shard in one queue put (one pickle/wakeup instead of one per
    round); responses still go back one per round so no single pickle
    exceeds the :data:`MAX_ROUND_WORDS` response-size budget.
    """
    op = req[0]
    if op == "ping":
        resp_q.put(("ok", None))
        return
    if op != "fetchv":
        resp_q.put(("err", f"unknown engine request {op!r}"))
        return
    for span_reqs in req[1]:
        _serve_fetch_round(span_reqs, streams, config, resp_q)


def _shard_main(config: EngineConfig, shard_index: int,
                ring_handle: Optional[RingHandle], req_q, resp_q,
                stop, resume_rounds: int, ready) -> None:
    """Worker body: produce ring rounds, answer stream fetches.

    ``resume_rounds`` > 0 means this process replaces a dead shard: the
    bank seeks straight to that round boundary -- O(log offset), so a
    respawn costs the same whether the shard died in round 3 or round
    3 billion -- and the ring resumes at exactly the round the reader
    expects.
    """
    bank = _make_bank(config, shard_index) if ring_handle is not None else None
    if bank is not None and resume_rounds:
        bank.seek(resume_rounds * config.lanes)
    writer = ring_handle.attach() if ring_handle is not None else None
    streams: Dict[Tuple[int, int], AddressableExpanderPRNG] = {}
    ready.set()
    try:
        while not stop.is_set():
            produced = False
            if writer is not None:
                slot = writer.try_reserve()
                if slot is not None:
                    # One fused multi-round launch fills the whole
                    # burst in place (zero-alloc: the slot is a view
                    # into shared memory), then one notify publishes
                    # every round in it.
                    bank.generate_into(slot)
                    writer.commit()
                    produced = True
            try:
                if produced:
                    req = req_q.get(False)
                else:
                    req = req_q.get(True, _IDLE_POLL_S)
            except queue_mod.Empty:
                continue
            if req is None:
                break
            _serve_request(req, streams, config, resp_q)
    finally:
        if writer is not None:
            writer.close()


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

class ShardedEngine:
    """A pool of generation shards behind one stream-exact interface.

    Use as a context manager, or call :meth:`close` explicitly; worker
    processes and shared-memory rings are real OS resources.
    """

    def __init__(self, config: Optional[EngineConfig] = None, **overrides):
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise TypeError("pass either a config or keyword overrides")
        self.config = config
        self._ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context("spawn")
        )
        self._stop = self._ctx.Event()
        n = config.shards
        self._procs: List[Optional[mp.Process]] = [None] * n
        self._rings: List[Optional[SharedRing]] = [None] * n
        self._req_qs: List = [None] * n
        self._resp_qs: List = [None] * n
        #: Rounds of each shard the reader has consumed -- the restart
        #: seek target (a respawned worker jumps straight there).
        self._rounds_consumed = [0] * n
        #: Rounds per ring slot (burst width), after the word cap.
        self._burst = _effective_burst(config)
        #: Read cursor inside each shard's current burst.  Reset on
        #: respawn: a fresh ring's first burst starts at exactly
        #: ``_rounds_consumed[i]``, so the partially-read burst that
        #: died with the old ring is regenerated from its unread round.
        self._burst_pos = [0] * n
        #: Next word offset per (stream_seed, lanes) -- where a fetch
        #: without an explicit ``offset`` continues from.
        self._stream_words: Dict[Tuple[int, int], int] = {}
        self._shard_locks = [threading.Lock() for _ in range(n)]
        self._gen_lock = threading.Lock()
        self._remainder = np.empty(0, dtype=np.uint64)
        self.rounds_assembled = 0
        self.restarts = 0
        self._closed = False
        obs_metrics.gauge(
            "repro_engine_shards", "Worker shards in the generation engine"
        ).set(n)
        try:
            for i in range(n):
                self._spawn(i, resume_rounds=0)
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------

    def _spawn(self, i: int, resume_rounds: int) -> None:
        cfg = self.config
        ring = (
            SharedRing(cfg.ring_slots, cfg.lanes, self._ctx,
                       rounds_per_slot=self._burst)
            if cfg.ring_slots
            else None
        )
        self._burst_pos[i] = 0
        req_q = self._ctx.Queue()
        resp_q = self._ctx.Queue()
        ready = self._ctx.Event()
        proc = self._ctx.Process(
            target=_shard_main,
            args=(cfg, i, ring.handle() if ring else None, req_q, resp_q,
                  self._stop, resume_rounds, ready),
            daemon=True,
            name=f"repro-engine-shard-{i}",
        )
        proc.start()
        self._rings[i], self._req_qs[i], self._resp_qs[i] = ring, req_q, resp_q
        self._procs[i] = proc
        if not ready.wait(cfg.fetch_timeout_s) or not proc.is_alive():
            alive = proc.is_alive()
            self._reap(i)
            raise WorkerFailedError(
                f"engine shard {i} "
                + ("timed out during startup"
                   if alive else "died during startup")
                + f" (resume_rounds={resume_rounds})",
                worker_index=i,
                attempts=1,
            )

    def _reap(self, i: int) -> None:
        """Tear down shard ``i``'s process, ring, and queues."""
        proc = self._procs[i]
        if proc is not None:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5)
        if self._rings[i] is not None:
            self._rings[i].close(unlink=True)
        for q in (self._req_qs[i], self._resp_qs[i]):
            if q is not None:
                try:
                    q.close()
                    q.cancel_join_thread()
                except Exception:  # pragma: no cover - platform quirks
                    pass
        self._procs[i] = self._rings[i] = None
        self._req_qs[i] = self._resp_qs[i] = None

    def _revive(self, i: int) -> None:
        """Replace a dead shard with a deterministic respawn."""
        obs_metrics.counter(
            "repro_engine_restarts_total", "Engine shards respawned"
        ).inc()
        self.restarts += 1
        self._reap(i)
        with span("engine.restart", shard=i,
                  resume_rounds=self._rounds_consumed[i]):
            self._spawn(i, resume_rounds=self._rounds_consumed[i])

    def _shard_down(self, i: int, doing: str) -> None:
        """A shard missed a deadline: revive it or raise, never hang."""
        proc = self._procs[i]
        if proc is not None and proc.is_alive():
            raise WorkerFailedError(
                f"engine shard {i} timed out {doing} after "
                f"{self.config.fetch_timeout_s}s (process alive but "
                f"unresponsive); no partial results were returned",
                worker_index=i,
                attempts=1,
            )
        if self.config.auto_restart:
            self._revive(i)
            return
        raise WorkerFailedError(
            f"engine shard {i} died {doing} (exitcode="
            f"{proc.exitcode if proc is not None else '?'}); "
            f"no partial results were returned",
            worker_index=i,
            attempts=1,
        )

    def close(self) -> None:
        """Stop all workers and release rings/queues (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        for q in self._req_qs:
            if q is not None:
                try:
                    q.put_nowait(None)
                except Exception:  # pragma: no cover - full/closed queue
                    pass
        for i in range(self.config.shards):
            self._reap(i)

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    # -- bulk stream ---------------------------------------------------

    def _peek_round(self) -> list:
        """Zero-copy ring views of every shard's next round, shard-major.

        Blocks (reviving dead shards) until *all* shards have a round
        ready; nothing is consumed, so a failure mid-peek leaves every
        ring intact (the no-partial-results contract).
        """
        cfg = self.config
        lanes = cfg.lanes
        parts = []
        for i in range(cfg.shards):
            while True:
                ring = self._rings[i]
                view = (
                    ring.peek(timeout=cfg.fetch_timeout_s)
                    if ring is not None else None
                )
                if view is not None:
                    break
                self._shard_down(i, "producing a round")
            # The slot holds a burst; hand out this shard's next unread
            # round of it.  Peek is idempotent, so re-peeking the same
            # slot just re-slices at the same cursor.
            pos = self._burst_pos[i]
            parts.append(view[pos * lanes:(pos + 1) * lanes])
        return parts

    def _consume_round(self) -> None:
        """Release the round returned by the last :meth:`_peek_round`.

        The underlying ring slot is only handed back to the writer once
        every round of its burst has been consumed.
        """
        for i in range(self.config.shards):
            self._burst_pos[i] += 1
            if self._burst_pos[i] >= self._burst:
                self._rings[i].consume()
                self._burst_pos[i] = 0
            self._rounds_consumed[i] += 1
        self.rounds_assembled += 1
        obs_metrics.counter(
            "repro_engine_rounds_total", "Engine rounds assembled"
        ).inc()

    def _next_round(self) -> np.ndarray:
        """Assemble one engine round: every shard's round, shard-major."""
        parts = self._peek_round()
        out = np.concatenate(parts)  # one copy, straight from the rings
        self._consume_round()
        return out

    def generate_into(self, out: np.ndarray) -> None:
        """Fill ``out`` with the next ``out.size`` numbers of the stream.

        Zero-copy variant of :meth:`generate`: full rounds are copied
        straight from the shards' ring views into the caller's buffer
        (no intermediate round array); only a trailing partial round
        goes through the remainder buffer.  ``out`` must be a
        one-dimensional, C-contiguous, writeable ``uint64`` array.
        """
        if not isinstance(out, np.ndarray):
            raise TypeError(f"out must be a numpy array, got {type(out)!r}")
        if out.dtype != np.uint64:
            raise TypeError(f"out must have dtype uint64, got {out.dtype}")
        if out.ndim != 1:
            raise ValueError(f"out must be one-dimensional, got shape {out.shape}")
        if not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        if not out.flags.writeable:
            raise ValueError("out must be writeable")
        if not self.config.ring_slots:
            raise RuntimeError(
                "bulk stream disabled: this engine was built with "
                "ring_slots=0 (serve-only)"
            )
        n = out.size
        round_size = self.config.shards * self.config.lanes
        with self._gen_lock:
            with span("engine.generate", n=n, shards=self.config.shards):
                pos = 0
                if self._remainder.size:
                    take = min(self._remainder.size, n)
                    out[:take] = self._remainder[:take]
                    self._remainder = self._remainder[take:]
                    pos = take
                while n - pos >= round_size:
                    for view in self._peek_round():
                        out[pos : pos + view.size] = view
                        pos += view.size
                    self._consume_round()
                if pos < n:
                    vals = self._next_round()
                    take = n - pos
                    out[pos:] = vals[:take]
                    self._remainder = vals[take:].copy()
            obs_metrics.counter(
                "repro_engine_numbers_total", "Numbers served (bulk stream)"
            ).inc(n)

    def generate(self, n: int) -> np.ndarray:
        """The next ``n`` numbers of the engine's bulk stream.

        Fetch-size transparent: remainders of assembled rounds are
        buffered, so any split of ``n`` across calls yields the same
        stream (equal to :func:`serial_reference`).
        """
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        out = np.empty(n, dtype=np.uint64)
        self.generate_into(out)
        return out

    # -- named streams (the serving path) ------------------------------

    def stream_shard(self, stream_seed: int) -> int:
        """Which shard owns the stream seeded ``stream_seed``."""
        return stream_seed % self.config.shards

    def fetch_spans(
        self, spans: List[Tuple[int, int, Optional[int], int]]
    ) -> List[object]:
        """Serve many named-stream spans in a handful of fused rounds.

        ``spans`` is a sequence of ``(stream_seed, lanes, offset,
        count)`` tuples (``offset=None`` continues where the previous
        fetch of that stream left off).  Spans are grouped by owning
        shard, packed into per-shard ``fetchv`` rounds capped at
        :data:`MAX_ROUND_WORDS` words, dispatched to **all** shards
        up front (so shards generate concurrently), and collected in
        order.  Returns a list aligned with ``spans``: a ``uint64``
        array per served span, or an ``Exception`` instance for a span
        that failed -- callers decide whether a partial batch is fatal.

        Every dispatched span carries an absolute word offset, so a
        shard revived mid-batch just re-serves its unanswered rounds
        byte-identically (the no-partial-results contract per span).
        Thread-safe: shard locks are taken in ascending shard order,
        the same total order every other engine entry point uses.
        """
        spans = list(spans)
        results: List[object] = [None] * len(spans)
        if not spans:
            return results
        for stream_seed, lanes, offset, n in spans:
            if n < 0:
                raise ValueError(f"count must be non-negative, got {n}")
            check_positive("lanes", lanes)
            if offset is not None and offset < 0:
                raise ValueError(
                    f"offset must be non-negative, got {offset}"
                )
        by_shard: Dict[int, List[int]] = {}
        for idx, sp in enumerate(spans):
            by_shard.setdefault(self.stream_shard(sp[0]), []).append(idx)
        shard_ids = sorted(by_shard)
        total_words = sum(sp[3] for sp in spans)
        acquired: List[int] = []
        try:
            for i in shard_ids:
                self._shard_locks[i].acquire()
                acquired.append(i)
            with span("engine.fetch_spans", shards=len(shard_ids),
                      spans=len(spans), words=total_words):
                # Resolve continuation offsets and pack each shard's
                # spans into rounds under the word cap.  ``cursor``
                # makes two offset=None spans of the same stream in one
                # batch contiguous.
                cursor: Dict[Tuple[int, int], int] = {}
                messages: Dict[int, List[list]] = {}
                for i in shard_ids:
                    msgs: List[list] = []
                    cur: list = []
                    cur_words = 0
                    for idx in by_shard[i]:
                        stream_seed, lanes, offset, n = spans[idx]
                        key = (stream_seed, lanes)
                        start = (
                            offset if offset is not None
                            else cursor.get(
                                key, self._stream_words.get(key, 0)
                            )
                        )
                        cursor[key] = start + n
                        if cur and cur_words + n > MAX_ROUND_WORDS:
                            msgs.append(cur)
                            cur, cur_words = [], 0
                        cur.append((idx, (stream_seed, lanes, start, n)))
                        cur_words += n
                    if cur:
                        msgs.append(cur)
                    messages[i] = msgs
                # Dispatch first -- shards run their fused walks
                # concurrently -- then collect in the same order.  All
                # of a shard's rounds travel in ONE queue put (one
                # pickle + one wakeup); the worker still acknowledges
                # round by round, keeping responses under the word cap.
                for i in shard_ids:
                    if messages[i]:
                        self._req_qs[i].put(
                            ("fetchv",
                             [[sp for _, sp in msg] for msg in messages[i]])
                        )
                    obs_metrics.counter(
                        "repro_engine_fused_rounds_total",
                        "Fused multi-span worker rounds dispatched",
                    ).inc(len(messages[i]))
                for i in shard_ids:
                    msgs = messages[i]
                    answered = 0
                    while answered < len(msgs):
                        try:
                            status, payload = self._resp_qs[i].get(
                                timeout=self.config.fetch_timeout_s
                            )
                        except queue_mod.Empty:
                            try:
                                self._shard_down(i, "serving a fused fetch")
                            except WorkerFailedError as exc:
                                for msg in msgs[answered:]:
                                    for idx, _ in msg:
                                        results[idx] = exc
                                answered = len(msgs)
                                continue
                            # Revived: the old queues died with the
                            # worker, so re-dispatch every unanswered
                            # round -- again as one batched put
                            # (absolute offsets make the retry
                            # byte-exact).
                            self._req_qs[i].put(
                                ("fetchv",
                                 [[sp for _, sp in msg]
                                  for msg in msgs[answered:]])
                            )
                            continue
                        msg = msgs[answered]
                        answered += 1
                        if status == "err":
                            exc = (
                                payload
                                if isinstance(payload, BaseException)
                                else WorkerFailedError(
                                    f"engine shard {i} failed a fused "
                                    f"fetch: {payload}",
                                    worker_index=i,
                                    attempts=1,
                                )
                            )
                            for idx, _ in msg:
                                results[idx] = exc
                            continue
                        buf, metas = payload
                        pos = 0
                        for (idx, (stream_seed, lanes, start, n)), meta \
                                in zip(msg, metas):
                            if isinstance(meta, int):
                                results[idx] = buf[pos:pos + meta]
                                pos += meta
                                self._stream_words[(stream_seed, lanes)] \
                                    = start + n
                            elif isinstance(meta, BaseException):
                                results[idx] = meta
                            else:
                                results[idx] = WorkerFailedError(
                                    f"engine shard {i} failed a span: "
                                    f"{meta}",
                                    worker_index=i,
                                    attempts=1,
                                )
        finally:
            for i in reversed(acquired):
                self._shard_locks[i].release()
        served = sum(
            r.size for r in results if isinstance(r, np.ndarray)
        )
        obs_metrics.counter(
            "repro_engine_fetch_words_total",
            "Numbers served to named streams",
        ).inc(served)
        return results

    def fetch_stream(self, stream_seed: int, lanes: int, n: int,
                     offset: Optional[int] = None) -> np.ndarray:
        """``n`` numbers of the named stream (thread-safe).

        Byte-identical to ``AddressableExpanderPRNG(num_threads=lanes,
        bit_source=<same feed chain>(stream_seed)).generate(...)`` run
        in process, regardless of fetch sizing or worker restarts.

        ``offset`` names the absolute word offset to serve from; the
        default continues where the previous fetch of this stream left
        off.  Every request ships an absolute offset to the worker, so
        an arbitrary slice -- including one before the current position
        -- costs one O(log offset) seek, never a replay.  A single-span
        :meth:`fetch_spans` round under the hood.
        """
        [result] = self.fetch_spans([(stream_seed, lanes, offset, n)])
        if isinstance(result, BaseException):
            raise result
        return result

    def ping(self, shard: int) -> bool:
        """Round-trip a no-op through a shard (health probe)."""
        with self._shard_locks[shard]:
            self._req_qs[shard].put(("ping",))
            try:
                status, _ = self._resp_qs[shard].get(
                    timeout=self.config.fetch_timeout_s
                )
                return status == "ok"
            except queue_mod.Empty:
                return False

    # -- introspection -------------------------------------------------

    @property
    def shards_alive(self) -> List[bool]:
        return [p is not None and p.is_alive() for p in self._procs]

    @property
    def health(self) -> str:
        """``OK`` / ``DEGRADED`` / ``FAILED`` in the resilience idiom:
        dead shard -> FAILED (DEGRADED if auto_restart will revive it);
        any past restart is sticky DEGRADED."""
        alive = self.shards_alive
        if not all(alive):
            return "DEGRADED" if self.config.auto_restart else "FAILED"
        return "DEGRADED" if self.restarts else "OK"

    def describe(self) -> dict:
        """STATUS-op view of the pool (no seed material exposed)."""
        return {
            "shards": self.config.shards,
            "lanes_per_shard": self.config.lanes,
            "policy": self.config.policy,
            "ring_burst": self._burst,
            "backend": self.config.backend or "numpy",
            "rounds_assembled": self.rounds_assembled,
            "streams": len(self._stream_words),
            "restarts": self.restarts,
            "alive": self.shards_alive,
            "health": self.health,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ShardedEngine(shards={self.config.shards}, "
            f"lanes={self.config.lanes}, health={self.health})"
        )
