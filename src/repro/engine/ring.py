"""Shared-memory SPSC rings: the shard pool's zero-copy output transport.

Each worker shard owns exactly one :class:`SharedRing` and is its only
*writer*; the engine's reader thread in the parent process is the only
*consumer*.  A ring is a fixed number of equally sized ``uint64``
records living in a :mod:`multiprocessing.shared_memory` segment,
guarded by two counting semaphores.  A record is a **burst** of
``rounds_per_slot`` consecutive walker-bank rounds (default 1): the
writer fills a whole burst with one fused multi-round launch and pays
one semaphore/notify pair for all of them, so per-round IPC cost is
amortized ``rounds_per_slot``-fold.  Bursts are transport framing
only -- the reader still hands rounds out one at a time, and the
stream is defined round-by-round, never burst-by-burst.

``free``
    Slots the writer may fill.  Starts at ``slots``; the writer blocks
    (or skips, with a zero timeout) when the reader falls behind --
    that is the engine's backpressure.
``filled``
    Committed records the reader may consume, in FIFO order.

The reader *peeks* a record as a NumPy view straight into the shared
segment -- no pickling, no socket, no copy until the caller slices the
values it wants -- and *consumes* it to hand the slot back.

Ownership: the parent creates the ring (and later unlinks the segment);
workers attach by name through the picklable :class:`RingHandle`.  The
attach path unregisters the segment from the child's
``resource_tracker`` so a dying worker cannot unlink memory the parent
still reads.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

from repro.utils.checks import check_positive

__all__ = ["SharedRing", "RingHandle", "RingWriter"]


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    ``SharedMemory(name=...)`` registers the segment with the caller's
    resource tracker even on plain attach (CPython gh-82300), which
    would let a worker's exit unlink memory the parent still reads (and
    double-unregister under fork, where the tracker is shared).  The
    parent owns the segment; suppress registration for the attach.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class RingHandle:
    """Picklable description of a ring, for handing to a worker process."""

    def __init__(self, name: str, slots: int, record_size: int,
                 free, filled, rounds_per_slot: int = 1):
        self.name = name
        self.slots = slots
        self.record_size = record_size
        self.rounds_per_slot = rounds_per_slot
        self.free = free
        self.filled = filled

    def attach(self) -> "RingWriter":
        """Open the writer end inside the worker process."""
        return RingWriter(self)


class RingWriter:
    """The single-producer end of a ring (lives in the worker)."""

    def __init__(self, handle: RingHandle):
        self._shm = _attach_untracked(handle.name)
        rps = getattr(handle, "rounds_per_slot", 1)
        self.rounds_per_slot = rps
        self._buf = np.ndarray(
            (handle.slots, rps * handle.record_size),
            dtype=np.uint64,
            buffer=self._shm.buf,
        )
        self._free = handle.free
        self._filled = handle.filled
        self._slots = handle.slots
        self._widx = 0
        self._reserved = False

    def try_reserve(self, timeout: float = 0.0) -> Optional[np.ndarray]:
        """A writable view of the next slot (one whole burst of
        ``rounds_per_slot * record_size`` words), or ``None`` if the
        ring is full for ``timeout`` seconds (backpressure)."""
        if self._reserved:
            raise RuntimeError("previous reservation was never committed")
        ok = self._free.acquire(True, timeout) if timeout > 0 \
            else self._free.acquire(False)
        if not ok:
            return None
        self._reserved = True
        return self._buf[self._widx]

    def commit(self) -> None:
        """Publish the reserved slot to the reader."""
        if not self._reserved:
            raise RuntimeError("no reservation to commit")
        self._reserved = False
        self._widx = (self._widx + 1) % self._slots
        self._filled.release()

    def close(self) -> None:
        self._buf = None
        self._shm.close()


class SharedRing:
    """Owner/reader end of a ring (lives in the parent process).

    Parameters
    ----------
    slots : int
        Records the ring buffers; the writer stalls once all are full.
    record_size : int
        ``uint64`` values per round (the shard's lane count).
    ctx : multiprocessing context, optional
        Supplies the semaphores (must match the worker start method).
    rounds_per_slot : int
        Rounds packed into one slot/semaphore cycle (the burst width).
    """

    def __init__(self, slots: int, record_size: int, ctx=None,
                 rounds_per_slot: int = 1):
        check_positive("slots", slots)
        check_positive("record_size", record_size)
        check_positive("rounds_per_slot", rounds_per_slot)
        ctx = ctx or mp.get_context()
        self.slots = slots
        self.record_size = record_size
        self.rounds_per_slot = rounds_per_slot
        slot_words = rounds_per_slot * record_size
        self._shm = shared_memory.SharedMemory(
            create=True, size=slots * slot_words * 8
        )
        self._buf = np.ndarray(
            (slots, slot_words), dtype=np.uint64, buffer=self._shm.buf
        )
        self._free = ctx.Semaphore(slots)
        self._filled = ctx.Semaphore(0)
        self._ridx = 0
        self._peeked = False
        self._closed = False

    def handle(self) -> RingHandle:
        """The picklable writer-side handle for the worker process."""
        return RingHandle(
            self._shm.name, self.slots, self.record_size,
            self._free, self._filled, self.rounds_per_slot,
        )

    def peek(self, timeout: Optional[float] = None) -> Optional[np.ndarray]:
        """View of the oldest committed record (zero-copy, the whole
        burst), or ``None`` if nothing is committed within ``timeout``
        seconds.

        Peeking is idempotent until :meth:`consume` is called; the view
        stays valid exactly that long.
        """
        if not self._peeked:
            if not self._filled.acquire(True, timeout):
                return None
            self._peeked = True
        return self._buf[self._ridx]

    def consume(self) -> None:
        """Release the peeked record's slot back to the writer."""
        if not self._peeked:
            raise RuntimeError("consume() without a successful peek()")
        self._peeked = False
        self._ridx = (self._ridx + 1) % self.slots
        self._free.release()

    def close(self, unlink: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self._buf = None
        self._shm.close()
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
