"""``DistStream``: stateful, stream-exact variate sampling over words.

The repo's stream contract says a stream is *one* well-defined sequence
and fetches merely slice it -- ``generate(4); generate(4)`` equals
``generate(8)`` byte-for-byte.  This module lifts that contract from
uniform words to derived variates: for every sampler here,

    ``normal(4); normal(4)  ==  normal(8)``       (bit-identical)

no matter how requests are sized, because the variate sequence is a pure
function of the underlying word sequence.  Two mechanisms make that
true:

* **atomic attempts** -- each sampler consumes words in fixed-cost
  attempts processed in stream order (see
  :mod:`repro.dist.transforms`), so blocking never splits an attempt;
* **carry buffers** -- when an attempt yields more variates than the
  current request still needs (only possible for the pair-emitting
  Gaussian methods), the surplus is buffered on the stream, keyed by
  ``(distribution, method)``, and delivered first on the next request
  of the same kind.

Draws are *conservative*: a refill requests exactly
``ceil(remaining / max_yield)`` attempts, so yield-<=-1 samplers
(ziggurat, exponential, uniforms, bounded integers) can never overdraw
-- their carry is empty after **every** call.  That matters to serving:
the word offset after a ``VARIATE`` op is then a clean resume boundary,
and the existing words-consumed session journal needs no new record
types (see ``docs/serving.md``).

The word source is anything with the repo's ``generate(n) -> uint64``
shape (:class:`~repro.core.parallel.ParallelExpanderPRNG`,
:class:`~repro.core.parallel.AddressableExpanderPRNG`, a session draw
hook, ...) or a bare callable ``n -> uint64 array``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.dist import transforms as tr
from repro.utils.checks import check_positive

__all__ = ["DistStream", "SERVE_DISTRIBUTIONS"]

#: Distributions the serve layer exposes through the VARIATE op.  All of
#: them are zero-carry (yield <= 1 per attempt under conservative
#: drawing), so a session's word offset is a clean journal/resume
#: boundary after every op.  Maps name -> required parameter names.
SERVE_DISTRIBUTIONS = {
    "uniform01": (),
    "normal": ("mean", "std"),
    "exponential": ("rate",),
    "integers": ("lo", "hi"),
}

#: Refill loops can only stall if the word source misbehaves (e.g.
#: returns constant words every ziggurat wedge rejects); bound them so
#: that surfaces as a loud error instead of a spin.
_MAX_REFILLS = 10_000

_EMPTY_F64 = np.empty(0, dtype=np.float64)


def _check_out(out: np.ndarray, dtype: np.dtype, what: str) -> None:
    """PR 6 ``*_into`` conventions: 1-D, C-contiguous, writable, typed."""
    if not isinstance(out, np.ndarray):
        raise TypeError(f"{what} must be a numpy array, got {type(out)!r}")
    if out.dtype != dtype:
        raise TypeError(f"{what} must have dtype {dtype}, got {out.dtype}")
    if out.ndim != 1:
        raise ValueError(f"{what} must be 1-D, got {out.ndim}-D")
    if not out.flags.c_contiguous:
        raise ValueError(f"{what} must be C-contiguous")
    if not out.flags.writeable:
        raise ValueError(f"{what} must be writable")


class DistStream:
    """Stream-exact variate sampling bound to one word stream.

    Parameters
    ----------
    source :
        The word stream: an object with ``generate(n) -> uint64 array``
        or a callable ``n -> uint64 array``.  The stream identity (and
        therefore every variate) is the source's; two ``DistStream``\\ s
        over byte-identical word streams produce byte-identical
        variates, whichever kernel variant produced the words.

    Notes
    -----
    Not thread-safe by itself; the serve layer serializes access per
    session exactly as it does for raw fetches.
    """

    def __init__(self, source: Union[Callable[[int], np.ndarray], object]):
        if callable(source) and not hasattr(source, "generate"):
            self._draw_words = source
        elif hasattr(source, "generate"):
            self._draw_words = source.generate
        else:
            raise TypeError(
                "source must provide generate(n) or be callable, got "
                f"{type(source)!r}"
            )
        #: Words drawn from the source through this stream.
        self.words_consumed = 0
        # Surplus variates per (distribution, method) key, delivered
        # before any new words are drawn for that key.
        self._carry: Dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _draw(self, n: int) -> np.ndarray:
        words = self._draw_words(n)
        self.words_consumed += n
        return words

    def reset_carry(self) -> None:
        """Drop all buffered surplus variates.

        Used when the underlying word stream is repositioned (seek /
        RESUME): buffered variates describe the pre-seek stream.
        """
        self._carry.clear()

    def carry_size(self, key: tuple) -> int:
        """Buffered variates for a ``(distribution, ...)`` key (tests)."""
        buf = self._carry.get(key)
        return 0 if buf is None else buf.size

    def _fill(
        self,
        out: np.ndarray,
        key: tuple,
        words_per_attempt: int,
        max_yield: int,
        kernel: Callable[[np.ndarray], np.ndarray],
    ) -> None:
        """Serve ``out`` from the carry, then conservative refills.

        Attempts arrive in stream order and every computed variate is
        either delivered or buffered -- never dropped -- which is the
        whole fetch-size-invariance argument in one sentence.
        """
        n = out.size
        pos = 0
        buf = self._carry.get(key)
        if buf is not None and buf.size:
            take = min(buf.size, n)
            out[:take] = buf[:take]
            self._carry[key] = buf[take:]
            pos = take
        refills = 0
        while pos < n:
            remaining = n - pos
            attempts = -(-remaining // max_yield)  # ceil
            vals = kernel(self._draw(attempts * words_per_attempt))
            take = min(vals.size, remaining)
            out[pos:pos + take] = vals[:take]
            if vals.size > take:
                self._carry[key] = vals[take:].copy()
            pos += take
            refills += 1
            if refills > _MAX_REFILLS:
                raise RuntimeError(
                    f"{key[0]} sampler made no progress after "
                    f"{_MAX_REFILLS} refills; word source is degenerate"
                )

    # ------------------------------------------------------------------
    # Uniform doubles
    # ------------------------------------------------------------------

    def uniform01_into(self, out: np.ndarray) -> np.ndarray:
        """Fill ``out`` with doubles in [0, 1) (53 bits; 1 word each)."""
        _check_out(out, np.dtype(np.float64), "out")
        if out.size:
            tr_out = tr.uniform53(self._draw(out.size))
            out[:] = tr_out
        return out

    def uniform01(self, n: int) -> np.ndarray:
        """``n`` doubles uniform in [0, 1)."""
        check_positive("n", n)
        return self.uniform01_into(np.empty(n, dtype=np.float64))

    # ------------------------------------------------------------------
    # Gaussian
    # ------------------------------------------------------------------

    def normal_into(
        self,
        out: np.ndarray,
        mean: float = 0.0,
        std: float = 1.0,
        method: str = "ziggurat",
    ) -> np.ndarray:
        """Fill ``out`` with N(mean, std**2) variates.

        ``method`` selects the kernel -- ``"ziggurat"`` (default;
        2 words/attempt, yield <= 1, zero carry), ``"polar"`` or
        ``"boxmuller"`` (pair emitters; may buffer one variate).  The
        method is part of the variate stream's identity: different
        methods consume the same word stream differently.
        """
        _check_out(out, np.dtype(np.float64), "out")
        if std < 0:
            raise ValueError(f"std must be non-negative, got {std}")
        kernels = {
            "ziggurat": tr.ziggurat_normal,
            "polar": tr.polar_normal,
            "boxmuller": tr.boxmuller_normal,
        }
        if method not in kernels:
            raise ValueError(
                f"unknown normal method {method!r}; "
                f"choose from {sorted(kernels)}"
            )
        if out.size:
            self._fill(
                out,
                key=("normal", method),
                words_per_attempt=tr.WORDS_PER_ATTEMPT[f"{method}_normal"],
                max_yield=tr.MAX_YIELD[f"{method}_normal"],
                kernel=kernels[method],
            )
            # Scale in place after filling: the carry always holds
            # *standard* variates, so interleaved (mean, std) requests
            # on one stream stay exact.
            if std != 1.0:
                out *= std
            if mean != 0.0:
                out += mean
        return out

    def normal(
        self,
        n: int,
        mean: float = 0.0,
        std: float = 1.0,
        method: str = "ziggurat",
    ) -> np.ndarray:
        """``n`` Gaussian variates (see :meth:`normal_into`)."""
        check_positive("n", n)
        return self.normal_into(
            np.empty(n, dtype=np.float64), mean=mean, std=std, method=method
        )

    # ------------------------------------------------------------------
    # Exponential
    # ------------------------------------------------------------------

    def exponential_into(
        self, out: np.ndarray, rate: float = 1.0
    ) -> np.ndarray:
        """Fill ``out`` with Exp(rate) variates (inversion; 1 word each)."""
        _check_out(out, np.dtype(np.float64), "out")
        check_positive("rate", rate)
        if out.size:
            out[:] = tr.exponential_inverse(self._draw(out.size))
            if rate != 1.0:
                out /= rate
        return out

    def exponential(self, n: int, rate: float = 1.0) -> np.ndarray:
        """``n`` Exp(rate) variates by exact inversion."""
        check_positive("n", n)
        return self.exponential_into(np.empty(n, dtype=np.float64), rate=rate)

    # ------------------------------------------------------------------
    # Bounded integers
    # ------------------------------------------------------------------

    @staticmethod
    def _integers_dtype(lo: int, hi: int) -> np.dtype:
        """Result dtype rules shared with ``ParallelExpanderPRNG.integers``."""
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        if hi - lo > 2**64:
            raise ValueError(f"range [{lo}, {hi}) spans more than 2**64 values")
        if lo >= 0 and hi > 2**63:
            return np.dtype(np.uint64)
        if lo >= -(2**63) and hi <= 2**63:
            return np.dtype(np.int64)
        raise ValueError(f"range [{lo}, {hi}) fits neither int64 nor uint64")

    def integers_into(self, out: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Fill ``out`` with unbiased integers in ``[lo, hi)``.

        Lemire's multiply-shift bound (1 word/attempt, yield <= 1): no
        modulo bias, no rejection at all for power-of-two spans, and
        zero carry -- the serve layer's bounded-integer path.  ``out``
        must be int64 or uint64 matching the range's natural dtype.
        """
        dtype = self._integers_dtype(lo, hi)
        _check_out(out, dtype, "out")
        if not out.size:
            return out
        span = hi - lo
        offset = np.uint64(lo & (2**64 - 1))
        view = out.view(np.uint64)
        self._fill(
            view,
            key=("integers", lo, hi),
            words_per_attempt=1,
            max_yield=1,
            kernel=lambda w: tr.lemire_bounded(w, span),
        )
        if lo != 0:
            with np.errstate(over="ignore"):
                view += offset  # two's-complement wrap is intended
        return out

    def integers(self, n: int, lo: int, hi: int) -> np.ndarray:
        """``n`` unbiased integers uniform in ``[lo, hi)``."""
        check_positive("n", n)
        return self.integers_into(
            np.empty(n, dtype=self._integers_dtype(lo, hi)), lo, hi
        )

    # ------------------------------------------------------------------
    # Serve-facing dispatch
    # ------------------------------------------------------------------

    def sample(
        self, dist: str, n: int, params: Optional[dict] = None
    ) -> np.ndarray:
        """Named-distribution dispatch used by the VARIATE serve op.

        Only :data:`SERVE_DISTRIBUTIONS` are reachable here -- all
        zero-carry, so the word offset after this call is a clean resume
        boundary.  Unknown names or parameters raise ``ValueError``.
        """
        check_positive("n", n)
        params = dict(params or {})
        if dist not in SERVE_DISTRIBUTIONS:
            raise ValueError(
                f"unknown distribution {dist!r}; "
                f"choose from {sorted(SERVE_DISTRIBUTIONS)}"
            )
        allowed = set(SERVE_DISTRIBUTIONS[dist])
        unknown = set(params) - allowed
        if unknown:
            raise ValueError(
                f"{dist} takes parameters {sorted(allowed)}, "
                f"got unknown {sorted(unknown)}"
            )
        if dist == "uniform01":
            return self.uniform01(n)
        if dist == "normal":
            return self.normal(
                n,
                mean=float(params.get("mean", 0.0)),
                std=float(params.get("std", 1.0)),
                method="ziggurat",
            )
        if dist == "exponential":
            return self.exponential(n, rate=float(params.get("rate", 1.0)))
        lo = int(params.get("lo", 0))
        hi = int(params.get("hi", 2**63))
        return self.integers(n, lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        pending = {k: v.size for k, v in self._carry.items() if v.size}
        return (
            f"DistStream(words_consumed={self.words_consumed}, "
            f"carry={pending})"
        )
