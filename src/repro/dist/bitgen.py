"""``ExpanderBitGen``: plug the expander-walk PRNG into NumPy's Generator.

NumPy's ``np.random.Generator`` accepts any object exposing a
``capsule`` wrapping a C ``bitgen_t`` struct plus a ``lock`` -- that is
the whole BitGenerator contract (see NumPy's "Extending" docs).  This
module builds that struct **in pure Python with ctypes**: the four
``next_*`` function pointers are ``CFUNCTYPE`` trampolines into a
buffered word stream from :class:`~repro.core.parallel
.ParallelExpanderPRNG`, and the capsule is created through
``PyCapsule_New`` with the ``"BitGenerator"`` name NumPy looks for.  No
compiled extension, no new dependency:

    >>> import numpy as np
    >>> from repro.dist import ExpanderBitGen
    >>> gen = np.random.Generator(ExpanderBitGen(seed=42))
    >>> gen.standard_normal(10**6)          # doctest: +SKIP

Two caveats, both documented in ``docs/distributions.md``:

* every ``next_uint64`` call crosses the C->Python trampoline, so this
  path trades speed for ecosystem compatibility -- bulk variate work
  should use :class:`~repro.dist.stream.DistStream`, which is
  vectorized end to end;
* NumPy's own samplers (its ziggurat tables, its bounded-integer
  algorithm) consume words their own way, so ``Generator`` output is
  *not* the repo's canonical variate stream -- it is simply correct.
  The canonical, serve-journaled variate stream is ``DistStream``'s.

:func:`expander_generator` returns ``np.random.Generator`` on the
capsule when the host NumPy accepts it and falls back to
:class:`ExpanderGenerator` -- a pure-Python object with the same core
method names backed by ``DistStream`` -- otherwise.
"""

from __future__ import annotations

import ctypes
import threading
from typing import Optional

import numpy as np

from repro.core.parallel import ParallelExpanderPRNG
from repro.dist.stream import DistStream

__all__ = ["ExpanderBitGen", "ExpanderGenerator", "expander_generator"]

#: Words fetched per refill of the trampoline buffer: one vectorized
#: bank call amortized over many scalar next_uint64() callbacks.
DEFAULT_BUFFER_WORDS = 4096

#: Lanes of the default word source (part of the stream identity).
DEFAULT_LANES = 64

_NEXT_U64 = ctypes.CFUNCTYPE(ctypes.c_uint64, ctypes.c_void_p)
_NEXT_U32 = ctypes.CFUNCTYPE(ctypes.c_uint32, ctypes.c_void_p)
_NEXT_DOUBLE = ctypes.CFUNCTYPE(ctypes.c_double, ctypes.c_void_p)


class _BitGenStruct(ctypes.Structure):
    """Mirror of NumPy's C ``bitgen_t`` (numpy/random/bit_generator.h)."""

    _fields_ = [
        ("state", ctypes.c_void_p),
        ("next_uint64", _NEXT_U64),
        ("next_uint32", _NEXT_U32),
        ("next_double", _NEXT_DOUBLE),
        ("next_raw", _NEXT_U64),
    ]


class ExpanderBitGen:
    """A NumPy-compatible BitGenerator over the expander-walk PRNG.

    Parameters
    ----------
    seed : int
        Feed seed of the word source.
    lanes : int
        Walker lanes of the bank (stream identity, like everywhere else
        in the repo).
    buffer_words : int
        Words per vectorized refill of the trampoline buffer.
    prng : optional
        Pre-built word source with ``generate(n)``; overrides
        ``seed``/``lanes``.

    The produced word stream is exactly
    ``ParallelExpanderPRNG(num_threads=lanes, seed=seed)``'s stream;
    ``random_raw(n)`` exposes it for parity tests.
    """

    def __init__(
        self,
        seed: int = 1,
        lanes: int = DEFAULT_LANES,
        buffer_words: int = DEFAULT_BUFFER_WORDS,
        prng=None,
    ):
        if buffer_words < 1:
            raise ValueError(
                f"buffer_words must be positive, got {buffer_words}"
            )
        self.seed = seed
        self.lanes = lanes
        self.buffer_words = int(buffer_words)
        self.prng = prng if prng is not None else ParallelExpanderPRNG(
            num_threads=lanes, seed=seed
        )
        #: Generator serializes through this lock (NumPy contract).
        self.lock = threading.Lock()
        # Buffered words as plain Python ints: .tolist() once per refill
        # is far cheaper than one ndarray scalar coercion per callback.
        self._buf: list = []
        self._pos = 0
        self._half: Optional[int] = None  # spare 32 bits for next_uint32
        # The CFUNCTYPE objects MUST outlive the capsule: ctypes does
        # not hold them, and a collected trampoline is a segfault.
        self._c_next64 = _NEXT_U64(self._next64)
        self._c_next32 = _NEXT_U32(self._next32)
        self._c_nextdouble = _NEXT_DOUBLE(self._nextdouble)
        self._c_nextraw = _NEXT_U64(self._next64)
        self._struct = _BitGenStruct(
            state=None,
            next_uint64=self._c_next64,
            next_uint32=self._c_next32,
            next_double=self._c_nextdouble,
            next_raw=self._c_nextraw,
        )
        self.capsule = self._make_capsule()

    def _make_capsule(self):
        new = ctypes.pythonapi.PyCapsule_New
        new.restype = ctypes.py_object
        new.argtypes = (ctypes.c_void_p, ctypes.c_char_p, ctypes.c_void_p)
        return new(
            ctypes.cast(ctypes.byref(self._struct), ctypes.c_void_p),
            b"BitGenerator",
            None,
        )

    # -- trampolines ---------------------------------------------------

    def _next64(self, _state) -> int:
        if self._pos >= len(self._buf):
            self._buf = self.prng.generate(self.buffer_words).tolist()
            self._pos = 0
        word = self._buf[self._pos]
        self._pos += 1
        return word

    def _next32(self, _state) -> int:
        # Split each word into two 32-bit halves, low half first, so no
        # entropy is discarded (matches NumPy's own splitting pattern).
        if self._half is not None:
            half, self._half = self._half, None
            return half
        word = self._next64(None)
        self._half = word >> 32
        return word & 0xFFFFFFFF

    def _nextdouble(self, _state) -> float:
        return (self._next64(None) >> 11) * (1.0 / 9007199254740992.0)

    # -- introspection / tests -----------------------------------------

    def random_raw(self, n: int) -> np.ndarray:
        """The next ``n`` raw words (uint64), through the same buffer."""
        with self.lock:
            return np.array(
                [self._next64(None) for _ in range(n)], dtype=np.uint64
            )

    @property
    def state(self) -> dict:
        """Debug view (not a restorable state; streams restart by seed)."""
        return {
            "bit_generator": type(self).__name__,
            "seed": self.seed,
            "lanes": self.lanes,
            "buffered": len(self._buf) - self._pos,
            "words_generated": getattr(self.prng, "numbers_generated", None),
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ExpanderBitGen(seed={self.seed}, lanes={self.lanes})"


class ExpanderGenerator:
    """Pure-Python fallback with ``np.random.Generator``'s core methods.

    Backed by :class:`DistStream` (vectorized, stream-exact), so it is
    both the no-capsule fallback *and* the fast path for bulk variates.
    Implements the methods the repo's apps and docs rely on --
    ``random``, ``uniform``, ``standard_normal``, ``normal``,
    ``standard_exponential``, ``exponential``, ``integers`` -- with
    NumPy-style ``size=None`` scalar returns.
    """

    def __init__(
        self, seed: int = 1, lanes: int = DEFAULT_LANES, prng=None
    ):
        self.seed = seed
        self.lanes = lanes
        self.prng = prng if prng is not None else ParallelExpanderPRNG(
            num_threads=lanes, seed=seed
        )
        self.dist = DistStream(self.prng)
        self.lock = threading.Lock()

    @staticmethod
    def _size(size) -> tuple[int, bool]:
        if size is None:
            return 1, True
        n = int(np.prod(size)) if np.iterable(size) else int(size)
        return n, False

    def _shaped(self, flat: np.ndarray, size, scalar: bool):
        if scalar:
            return flat[0]
        return flat.reshape(size) if np.iterable(size) else flat

    def random(self, size=None) -> np.ndarray:
        n, scalar = self._size(size)
        with self.lock:
            flat = self.dist.uniform01(n)
        return self._shaped(flat, size, scalar)

    def uniform(self, low=0.0, high=1.0, size=None):
        n, scalar = self._size(size)
        with self.lock:
            flat = self.dist.uniform01(n)
        flat = low + (high - low) * flat
        return self._shaped(flat, size, scalar)

    def standard_normal(self, size=None):
        n, scalar = self._size(size)
        with self.lock:
            flat = self.dist.normal(n)
        return self._shaped(flat, size, scalar)

    def normal(self, loc=0.0, scale=1.0, size=None):
        n, scalar = self._size(size)
        with self.lock:
            flat = self.dist.normal(n, mean=loc, std=scale)
        return self._shaped(flat, size, scalar)

    def standard_exponential(self, size=None):
        n, scalar = self._size(size)
        with self.lock:
            flat = self.dist.exponential(n)
        return self._shaped(flat, size, scalar)

    def exponential(self, scale=1.0, size=None):
        n, scalar = self._size(size)
        with self.lock:
            flat = self.dist.exponential(n, rate=1.0 / scale)
        return self._shaped(flat, size, scalar)

    def integers(self, low, high=None, size=None):
        if high is None:
            low, high = 0, low
        n, scalar = self._size(size)
        with self.lock:
            flat = self.dist.integers(n, int(low), int(high))
        return self._shaped(flat, size, scalar)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ExpanderGenerator(seed={self.seed}, lanes={self.lanes})"


def expander_generator(
    seed: int = 1, lanes: int = DEFAULT_LANES
):
    """``np.random.Generator`` over the expander stream, or the fallback.

    Tries the ctypes capsule first (works on every NumPy with the
    documented BitGenerator interface); if the host NumPy rejects it,
    returns an :class:`ExpanderGenerator` with the same core methods.
    """
    try:
        return np.random.Generator(ExpanderBitGen(seed=seed, lanes=lanes))
    except (TypeError, ValueError, SystemError):  # pragma: no cover
        return ExpanderGenerator(seed=seed, lanes=lanes)
