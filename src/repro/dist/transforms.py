"""Stateless, vectorized variate kernels over raw 64-bit words.

Every kernel here maps a block of uint64 words to variates with **no
internal state**: the stateful stream contract (carry buffers, word
accounting, fetch-size invariance) lives in
:class:`repro.dist.stream.DistStream`; this module is the pure math.

The invariance story rests on one structural rule: each kernel consumes
its words in **atomic attempts of fixed word cost**, processes attempts
in stream order, and either emits or rejects each attempt wholesale.
Because an attempt never straddles a block boundary and emitted variates
keep attempt order, the variate sequence is a pure function of the word
sequence -- independent of how the words were blocked into calls.

Backends: each kernel resolves the array backend that owns its input
(:func:`repro.backend.backend_of`) and computes in that namespace, so
device-resident word blocks transform device-side.  Integer kernels
(``lemire_bounded``, ``mulhilo64``) are exact on every backend; float
kernels may differ by ULPs across devices (libm variance) and are only
bit-pinned on the host backend.

Kernels
-------
``uniform53``            1 word  -> 1 double in [0, 1) (53 bits);
``uniform53_nonzero``    1 word  -> 1 double in (0, 1];
``exponential_inverse``  1 word  -> 1 Exp(1) variate (inversion);
``ziggurat_normal``      2 words -> 0 or 1 N(0,1) variate (256-layer
                         ziggurat; the tail is sampled by *exact
                         inversion* of the normal survival function, so
                         an attempt entering the tail always emits --
                         required for attempt-discard exactness);
``polar_normal``         2 words -> 0 or 2 N(0,1) variates (Marsaglia
                         polar; ~78.5% of attempts emit a pair);
``boxmuller_normal``     2 words -> exactly 2 N(0,1) variates;
``lemire_bounded``       1 word  -> 0 or 1 integer in [0, span)
                         (Lemire's multiply-shift with the unbiasing
                         rejection, via 128-bit products built from
                         32-bit limbs).
"""

from __future__ import annotations

import math

from repro.backend import backend_of, host_np as np
from repro.dist.tables import ZIG_RATIO, ZIG_TAIL_SF, ZIG_X, ZIG_Y

__all__ = [
    "WORDS_PER_ATTEMPT",
    "MAX_YIELD",
    "uniform53",
    "uniform53_nonzero",
    "exponential_inverse",
    "ziggurat_normal",
    "polar_normal",
    "boxmuller_normal",
    "mulhilo64",
    "lemire_bounded",
]

_U53_SCALE = 1.0 / 9007199254740992.0  # 2**-53
_MASK32 = 0xFFFFFFFF

#: Words one atomic attempt consumes, per kernel name.
WORDS_PER_ATTEMPT = {
    "uniform53": 1,
    "exponential_inverse": 1,
    "ziggurat_normal": 2,
    "polar_normal": 2,
    "boxmuller_normal": 2,
    "lemire_bounded": 1,
}

#: Most variates one attempt can emit, per kernel name.
MAX_YIELD = {
    "uniform53": 1,
    "exponential_inverse": 1,
    "ziggurat_normal": 1,
    "polar_normal": 2,
    "boxmuller_normal": 2,
    "lemire_bounded": 1,
}


def uniform53(words: np.ndarray) -> np.ndarray:
    """Top 53 bits of each word -> double in [0, 1); 1 word, 1 variate."""
    be = backend_of(words)
    return be.astype_f64(be.rshift_u64(words, 11)) * _U53_SCALE


def uniform53_nonzero(words: np.ndarray) -> np.ndarray:
    """Doubles in (0, 1] -- the log-safe complement of :func:`uniform53`."""
    return 1.0 - uniform53(words)


def exponential_inverse(words: np.ndarray) -> np.ndarray:
    """Exp(1) by inversion: ``-log(1 - u)``; 1 word, 1 variate, exact."""
    # -log1p(-u) keeps full precision for small u where 1-u rounds.
    xp = backend_of(words).xp
    return -xp.log1p(-uniform53(words))


def ziggurat_normal(words: np.ndarray) -> np.ndarray:
    """N(0,1) via the 256-layer ziggurat; 2 words/attempt, yield <= 1.

    Word 1 of an attempt supplies the layer index (low 8 bits), the sign
    (bit 8) and the 53-bit position uniform (bits 11..63 -- disjoint from
    the index/sign bits).  Word 2 supplies the wedge/tail uniform.  The
    base-layer tail is sampled by exact inversion (``ndtri`` on the tail
    slice of the survival function), so every attempt that reaches the
    tail emits -- wedge rejections discard the whole attempt, which is
    distributionally identical to the classic "goto start" retry.
    """
    be = backend_of(words)
    xp = be.xp
    zig_x = be.constant(ZIG_X)
    zig_y = be.constant(ZIG_Y)
    zig_ratio = be.constant(ZIG_RATIO)
    w = words.reshape(-1, 2)
    layer = be.astype_index(w[:, 0] & 0xFF)
    negative = (w[:, 0] & 0x100) != 0
    u1 = uniform53(w[:, 0])
    x = u1 * zig_x[layer]
    accept = u1 < zig_ratio[layer]
    slow = ~accept
    if slow.any():
        u2 = uniform53(w[slow, 1])
        idx = layer[slow]
        tail = idx == 0
        wedge = ~tail
        slow_accept = be.zeros_bool(int(idx.shape[0]))
        if wedge.any():
            iw = idx[wedge]
            xw = x[slow][wedge]
            y = zig_y[iw] + u2[wedge] * (zig_y[iw + 1] - zig_y[iw])
            slow_accept[wedge] = y < xp.exp(-0.5 * xw * xw)
        if tail.any():
            # Exact inversion within the tail mass: u2 in [0,1) maps
            # 1-u2 into (0,1], so the isf argument never hits 0.
            xt = -be.ndtri(ZIG_TAIL_SF * (1.0 - u2[tail]))
            xs = x[slow]
            xs[tail] = xt
            x[slow] = xs
            slow_accept[tail] = True
        accept[slow] = slow_accept
    signed = xp.where(negative, -x, x)
    return signed[accept]


def polar_normal(words: np.ndarray) -> np.ndarray:
    """N(0,1) pairs via the Marsaglia polar method; 2 words/attempt.

    Each attempt maps its two words to a point in the square
    ``[-1, 1)^2`` and emits a pair of variates iff the point lands
    strictly inside the unit disk (excluding the origin); ~78.5% of
    attempts emit.  Emitted pairs keep attempt order and in-pair order.
    """
    xp = backend_of(words).xp
    w = words.reshape(-1, 2)
    u = 2.0 * uniform53(w[:, 0]) - 1.0
    v = 2.0 * uniform53(w[:, 1]) - 1.0
    s = u * u + v * v
    ok = (s < 1.0) & (s > 0.0)
    u, v, s = u[ok], v[ok], s[ok]
    m = xp.sqrt(-2.0 * xp.log(s) / s)
    out = xp.empty(2 * int(s.shape[0]), dtype=np.float64)
    out[0::2] = u * m
    out[1::2] = v * m
    return out


def boxmuller_normal(words: np.ndarray) -> np.ndarray:
    """N(0,1) pairs via Box-Muller; 2 words/attempt, always emits 2."""
    xp = backend_of(words).xp
    w = words.reshape(-1, 2)
    r = xp.sqrt(-2.0 * xp.log(uniform53_nonzero(w[:, 0])))
    theta = (2.0 * math.pi) * uniform53(w[:, 1])
    out = xp.empty(int(w.shape[0]) * 2, dtype=np.float64)
    out[0::2] = r * xp.cos(theta)
    out[1::2] = r * xp.sin(theta)
    return out


def mulhilo64(a: np.ndarray, b: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-element 64x64 -> 128-bit product as ``(hi, lo)`` uint64 arrays.

    NumPy has no 128-bit integers, so the product is assembled from
    32-bit limbs entirely in (logical) uint64 arithmetic, all wraps
    intended.  Right shifts go through the backend so int64-storage
    backends still shift logically.
    """
    be = backend_of(a)
    bv = b & (2**64 - 1)
    b_lo = bv & _MASK32
    b_hi = bv >> 32
    a_lo = a & _MASK32
    a_hi = be.rshift_u64(a, 32)
    with np.errstate(over="ignore"):
        ll = a_lo * b_lo
        lh = a_lo * b_hi
        hl = a_hi * b_lo
        hh = a_hi * b_hi
        carry = be.rshift_u64(ll, 32) + (lh & _MASK32) + (hl & _MASK32)
        lo = (ll & _MASK32) | (carry << 32)
        hi = (
            hh
            + be.rshift_u64(lh, 32)
            + be.rshift_u64(hl, 32)
            + be.rshift_u64(carry, 32)
        )
    return hi, lo


def lemire_bounded(words: np.ndarray, span: int) -> np.ndarray:
    """Unbiased integers in ``[0, span)``; 1 word/attempt, yield <= 1.

    Lemire's multiply-shift: ``hi(w * span)`` is uniform on ``[0, span)``
    once the ``2**64 mod span`` smallest low-halves are rejected.  When
    ``span`` is a power of two no word is ever rejected.  Returns uint64.
    """
    if not 1 <= span <= 2**64:
        raise ValueError(f"span must be in [1, 2**64], got {span}")
    be = backend_of(words)
    if span == 2**64:
        return be.copy_u64(words)
    hi, lo = mulhilo64(words, span)
    threshold = (2**64 - span) % span  # == 2**64 mod span
    if threshold:
        # Unsigned compare via the backend: int64-storage backends need
        # the sign-bit flip, uint64 backends compare directly.
        return hi[be.ge_u64(lo, threshold)]
    return hi
