"""Ziggurat tables for the standard normal, computed at import time.

The classic Marsaglia--Tsang construction with ``N = 256`` layers: the
area under the (unnormalized) half-normal density ``g(x) = exp(-x^2/2)``
is covered by 255 stacked rectangles plus one base region (the widest
rectangle joined with the entire tail beyond ``R``), every piece having
the same area ``V``.  The published constants for 256 layers are

    R = 3.6541528853610088   (the rightmost layer edge)
    V = 0.00492867323399     (area per piece)

and the layer edges follow from the recurrence
``x_{i+1} = sqrt(-2 ln(V / x_i + g(x_i)))`` downward from ``x_1 = R``.

Tables are derived here (deterministically, ~256 iterations of the
recurrence) instead of pasted as 256-entry literals so the construction
is reviewable; a self-check at import verifies the areas close to within
float tolerance.

Exports
-------
``ZIG_X``      widths ``x_0 .. x_256`` (``x_0`` is the *virtual* base
               width ``V / g(R) > R``; ``x_256 = 0``);
``ZIG_Y``      heights ``g(x_i)`` (``ZIG_Y[0] = 0`` as the base floor);
``ZIG_RATIO``  ``x_{i+1} / x_i`` -- the no-wedge fast-accept threshold;
``ZIG_R``      the tail edge ``R``;
``ZIG_TAIL_SF`` the survival ``P(X > R)`` of the standard normal, used
               by the exact inversion tail sampler in ``transforms``.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtr

__all__ = [
    "ZIG_LAYERS",
    "ZIG_R",
    "ZIG_V",
    "ZIG_X",
    "ZIG_Y",
    "ZIG_RATIO",
    "ZIG_TAIL_SF",
]

#: Number of equal-area pieces (255 rectangles + the base/tail region).
ZIG_LAYERS = 256

#: Rightmost rectangle edge for 256 layers (Marsaglia & Tsang, 2000).
ZIG_R = 3.6541528853610088

#: Common area of each piece for 256 layers.
ZIG_V = 0.00492867323399


def _density(x: np.ndarray | float) -> np.ndarray | float:
    """Unnormalized standard normal density ``exp(-x^2/2)``."""
    return np.exp(-0.5 * np.square(x))


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    x = np.zeros(ZIG_LAYERS + 1, dtype=np.float64)
    x[1] = ZIG_R
    # Virtual base width: the base piece (widest rectangle + whole tail)
    # has area V, so treating it as a rectangle of height g(R) gives it
    # an effective width V / g(R) > R.  Candidates past R fall to the
    # tail sampler.
    x[0] = ZIG_V / _density(ZIG_R)
    for i in range(1, ZIG_LAYERS):
        arg = ZIG_V / x[i] + _density(x[i])
        # The topmost edge closes the stack at the mode: the recurrence
        # argument crosses 1 exactly when the remaining area fits under
        # the density cap, which the published (R, V) pair guarantees
        # happens at i = N - 1 only.
        x[i + 1] = np.sqrt(-2.0 * np.log(arg)) if arg < 1.0 else 0.0
    y = _density(x)
    y[0] = 0.0  # base floor sits on the axis
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(x[:-1] > 0, x[1:] / x[:-1], 0.0)
    return x, y, ratio


ZIG_X, ZIG_Y, ZIG_RATIO = _build_tables()

#: Exact tail mass P(X > R); the tail sampler inverts within this slice.
ZIG_TAIL_SF = float(1.0 - ndtr(ZIG_R))


def _self_check() -> None:
    # Every rectangle layer i = 1..N-1 must have area V ...
    areas = ZIG_X[1:-1] * np.diff(ZIG_Y[1:])
    if not np.allclose(areas, ZIG_V, rtol=1e-9):
        raise AssertionError("ziggurat rectangle areas do not close to V")
    # ... the base region (rect to R + exact tail mass) as well ...
    base = ZIG_R * _density(ZIG_R) + ZIG_TAIL_SF * np.sqrt(2.0 * np.pi)
    if abs(base - ZIG_V) > 1e-7:
        raise AssertionError("ziggurat base + tail area does not close to V")
    # ... and the stack must terminate exactly at the mode.
    if ZIG_X[ZIG_LAYERS] != 0.0 or ZIG_X[ZIG_LAYERS - 1] <= 0.0:
        raise AssertionError("ziggurat edge recurrence did not terminate")


_self_check()
