"""repro.dist: stream-exact variates over the expander-walk word stream.

The paper's PRNG emits uniform 64-bit words on demand; this package is
the distributions layer that turns those words into the variates Monte
Carlo consumers actually ask for -- without ever giving up the repo's
stream contract.  Every sampler is **stream-exact**: the variate
sequence is a pure function of the word sequence, so it is invariant to
request sizing (``normal(4); normal(4) == normal(8)``, bit-for-bit) and
byte-identical across every kernel variant that produces the same words
(blocked/scalar x fused/unfused).

Modules
-------
:mod:`repro.dist.tables`      ziggurat layer tables (derived at import,
                              self-checked);
:mod:`repro.dist.transforms`  stateless vectorized kernels (atomic
                              fixed-word-cost attempts);
:mod:`repro.dist.stream`      :class:`DistStream` -- the stateful
                              sampler with per-distribution carry
                              buffers and ``*_into`` zero-copy variants;
:mod:`repro.dist.bitgen`      :class:`ExpanderBitGen`, the NumPy
                              ``BitGenerator`` adapter (ctypes capsule,
                              no compiled code), the pure-Python
                              :class:`ExpanderGenerator` fallback, and
                              :func:`expander_generator`.

See ``docs/distributions.md`` for the sampler catalog and the
stream-contract semantics, and ``docs/serving.md`` for the typed
``VARIATE`` op that serves these over the wire.
"""

from repro.dist.bitgen import (
    ExpanderBitGen,
    ExpanderGenerator,
    expander_generator,
)
from repro.dist.stream import SERVE_DISTRIBUTIONS, DistStream

__all__ = [
    "DistStream",
    "ExpanderBitGen",
    "ExpanderGenerator",
    "SERVE_DISTRIBUTIONS",
    "expander_generator",
]
