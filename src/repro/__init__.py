"""repro -- reproduction of "An On-Demand Fast Parallel Pseudo Random
Number Generator with Applications" (Banerjee, Bahl, Kothapalli; IPDPS
Workshops 2012).

Quick start::

    from repro import ExpanderWalkPRNG, ParallelExpanderPRNG

    prng = ExpanderWalkPRNG(seed=42)
    value = prng.get_next_rand()        # one 64-bit number, on demand

    bank = ParallelExpanderPRNG(num_threads=4096, seed=42)
    values = bank.generate(1_000_000)   # bulk generation, one lane/thread

Sub-packages:

* :mod:`repro.core`       -- the expander-walk PRNG itself;
* :mod:`repro.bitsource`  -- CPU-side bit feeds (glibc rand() et al.);
* :mod:`repro.baselines`  -- MT19937, XORWOW/CURAND, MWC, MD5/CUDPP, LCGs;
* :mod:`repro.gpusim`     -- discrete-event model of the CPU+GPU platform;
* :mod:`repro.hybrid`     -- pipeline scheduling and throughput models;
* :mod:`repro.quality`    -- DIEHARD and Crush statistical batteries;
* :mod:`repro.apps`       -- list ranking and photon migration;
* :mod:`repro.obs`        -- metrics, stage tracing, and run reports;
* :mod:`repro.resilience` -- fault injection and supervised feeds;
* :mod:`repro.serve`      -- the on-demand network RNG service
  (per-session expander streams, batching, backpressure).
"""

from repro.core import (
    ExpanderWalkPRNG,
    GabberGalilExpander,
    ParallelExpanderPRNG,
)
from repro.core.api import rand, randint, random, srand

__version__ = "1.0.0"

__all__ = [
    "ExpanderWalkPRNG",
    "GabberGalilExpander",
    "ParallelExpanderPRNG",
    "rand",
    "randint",
    "random",
    "srand",
    "__version__",
]
