"""Structured run reports: metrics + spans + feed stats in one dict.

:class:`RunReport` is the aggregation point the CLI's ``repro stats``
prints and tests assert against.  It merges

* the metrics registry snapshot,
* the tracer's per-stage wall-time breakdown (total and self time),
* a :class:`~repro.bitsource.buffered.FeedStats` snapshot, and
* optionally a :mod:`repro.gpusim` pipeline prediction for the same
  plan, enabling a predicted-vs-measured comparison of the paper's
  FEED/TRANSFER/GENERATE work-unit shares (Figure 4).

The prediction is accepted by duck type (anything with ``total_ns`` and
a ``timeline`` exposing ``busy_time(device)``), so this module has no
dependency on the simulator.
"""

from __future__ import annotations

import json
from typing import Dict, Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.export import _dumps

__all__ = ["RunReport", "STAGE_DEVICES"]

#: Trace stage name -> simulated device carrying that work unit.
STAGE_DEVICES = {"feed": "CPU", "transfer": "PCIe", "generate": "GPU"}


class RunReport:
    """Aggregates one run's observability data into a structured report."""

    def __init__(self, registry=None, tracer=None, meta: Optional[dict] = None):
        self.registry = registry if registry is not None else _metrics.get_registry()
        self.tracer = tracer if tracer is not None else _trace.get_tracer()
        self.meta = dict(meta or {})
        self.feed: Optional[dict] = None
        self.prediction: Optional[dict] = None
        self.sections: Dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def add_feed_stats(self, stats) -> None:
        """Attach a FeedStats (or plain dict) snapshot."""
        self.feed = stats.snapshot() if hasattr(stats, "snapshot") else dict(stats)

    def add_prediction(self, result) -> None:
        """Attach a simulated pipeline result for the same plan."""
        timeline = result.timeline
        self.prediction = {
            "total_ns": float(result.total_ns),
            "stage_busy_ns": {
                stage: float(timeline.busy_time(device))
                for stage, device in STAGE_DEVICES.items()
            },
        }

    def add_section(self, name: str, data: dict) -> None:
        """Attach an arbitrary named sub-dict (plan, app stats, ...)."""
        self.sections[name] = dict(data)

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def stage_breakdown(self) -> Dict[str, dict]:
        """Measured per-stage wall time from the recorded spans."""
        totals = self.tracer.stage_totals()
        return {
            name: {
                "count": agg.count,
                "total_s": agg.total_s,
                "self_s": agg.self_s,
            }
            for name, agg in sorted(totals.items())
        }

    def stage_shares(self) -> Dict[str, dict]:
        """Measured vs predicted share of each pipeline stage's work.

        Shares are normalized over the stages present in *both* the trace
        and the prediction (or all traced pipeline stages if there is no
        prediction), so the two columns are directly comparable even
        though one is NumPy wall time and the other simulated GPU time.
        """
        measured_raw = {
            name: agg.self_ns
            for name, agg in self.tracer.stage_totals().items()
            if name in STAGE_DEVICES
        }
        predicted_raw = (
            dict(self.prediction["stage_busy_ns"]) if self.prediction else {}
        )
        stages = sorted(
            set(measured_raw) & set(predicted_raw)
            if predicted_raw else set(measured_raw)
        )
        m_total = sum(measured_raw.get(s, 0) for s in stages) or 1
        p_total = sum(predicted_raw.get(s, 0) for s in stages) or 1
        out = {}
        for stage in stages:
            entry = {"measured": measured_raw.get(stage, 0) / m_total}
            if predicted_raw:
                entry["predicted"] = predicted_raw.get(stage, 0) / p_total
            out[stage] = entry
        return out

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        out = {
            "meta": self.meta,
            "metrics": self.registry.snapshot(),
            "stages": self.stage_breakdown(),
            "stage_shares": self.stage_shares(),
            "spans": len(self.tracer.spans),
        }
        if self.feed is not None:
            out["feed"] = self.feed
        if self.prediction is not None:
            out["prediction"] = self.prediction
        if self.sections:
            out.update(self.sections)
        return out

    def to_json(self, indent: Optional[int] = None) -> str:
        if indent is None:
            return _dumps(self.to_dict())
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def render(self) -> str:
        """Human-readable report (stage table + feed + key metrics)."""
        from repro.utils.tables import format_table

        parts = []
        shares = self.stage_shares()
        breakdown = self.stage_breakdown()
        if breakdown:
            rows = []
            for name, entry in breakdown.items():
                share = shares.get(name, {})
                rows.append([
                    name,
                    str(entry["count"]),
                    f"{entry['total_s'] * 1e3:.2f}",
                    f"{entry['self_s'] * 1e3:.2f}",
                    f"{share['measured']:.1%}" if "measured" in share else "-",
                    f"{share['predicted']:.1%}" if "predicted" in share else "-",
                ])
            parts.append(format_table(
                ["stage", "spans", "total ms", "self ms",
                 "measured share", "predicted share"],
                rows,
                title="pipeline stages",
            ))
        if self.feed:
            rows = [[k, str(v)] for k, v in self.feed.items()]
            parts.append(format_table(["feed counter", "value"], rows,
                                      title="buffered feed"))
        for name, data in self.sections.items():
            rows = []
            for key, value in data.items():
                if isinstance(value, (list, dict)):
                    value = json.dumps(value, default=str)
                    if len(value) > 72:
                        value = value[:69] + "..."
                rows.append([key, str(value)])
            if rows:
                parts.append(format_table(["field", "value"], rows,
                                          title=name))
        metric_rows = []
        for name, value in self.registry.snapshot().items():
            if isinstance(value, dict):
                mean = value["sum"] / value["count"] if value["count"] else 0.0
                shown = f"count={value['count']} mean={mean:.4g}"
            else:
                shown = str(value)
            metric_rows.append([name, shown])
        if metric_rows:
            parts.append(format_table(["metric", "value"], metric_rows,
                                      title="metrics"))
        if not parts:
            return "(no observability data recorded)"
        return "\n\n".join(parts)
