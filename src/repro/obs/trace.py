"""Span-based stage tracing for the FEED -> TRANSFER -> GENERATE pipeline.

A *span* is a named wall-clock interval; spans nest per thread, so a
``generate`` span that internally draws from a :class:`BufferedFeed`
contains ``transfer`` and ``feed`` child spans.  From the recorded tree
the tracer derives two numbers per stage name:

* **total** time -- sum of span durations (children included);
* **self** time -- total minus time spent in child spans, i.e. the time
  genuinely attributable to that stage.

Self times are what correspond to the paper's Figure 4 work-unit costs:
for a real :meth:`repro.hybrid.scheduler.HybridScheduler.run` they give
the same FEED/TRANSFER/GENERATE breakdown the :mod:`repro.gpusim`
timeline predicts, and the two can be compared stage by stage.

Like the metrics registry, the process-global tracer defaults to a
:class:`NullTracer` whose :meth:`~NullTracer.span` returns one shared
no-op context manager, so ``with span("generate"):`` costs almost
nothing until tracing is enabled.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = [
    "SpanRecord",
    "StageTotal",
    "Tracer",
    "NullTracer",
    "span",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
]


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    start_ns: int
    end_ns: int
    span_id: int
    parent_id: Optional[int]
    thread: str
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> dict:
        out = {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out


@dataclass
class StageTotal:
    """Aggregated wall time for one span name."""

    name: str
    count: int = 0
    total_ns: int = 0
    self_ns: int = 0

    @property
    def total_s(self) -> float:
        return self.total_ns / 1e9

    @property
    def self_s(self) -> float:
        return self.self_ns / 1e9


class Tracer:
    """Collects spans from any thread; nesting is tracked per thread."""

    enabled = True

    def __init__(self):
        self._spans: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs):
        """Record a named wall-clock interval; nestable and thread-safe."""
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        span_id = next(self._ids)
        parent_id = stack[-1] if stack else None
        stack.append(span_id)
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            end = time.perf_counter_ns()
            stack.pop()
            record = SpanRecord(
                name=name,
                start_ns=start,
                end_ns=end,
                span_id=span_id,
                parent_id=parent_id,
                thread=threading.current_thread().name,
                attrs=attrs,
            )
            with self._lock:
                self._spans.append(record)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def spans(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def stage_totals(self) -> Dict[str, StageTotal]:
        """Per-name totals with self time (child durations subtracted)."""
        spans = self.spans
        child_ns: Dict[int, int] = {}
        for rec in spans:
            if rec.parent_id is not None:
                child_ns[rec.parent_id] = (
                    child_ns.get(rec.parent_id, 0) + rec.duration_ns
                )
        totals: Dict[str, StageTotal] = {}
        for rec in spans:
            agg = totals.get(rec.name)
            if agg is None:
                agg = totals[rec.name] = StageTotal(rec.name)
            agg.count += 1
            agg.total_ns += rec.duration_ns
            agg.self_ns += max(rec.duration_ns - child_ns.get(rec.span_id, 0), 0)
        return totals


_NULL_CM = nullcontext()


class NullTracer(Tracer):
    """Tracer that records nothing (zero-cost disabled mode)."""

    enabled = False

    def __init__(self):
        super().__init__()

    def span(self, name: str, **attrs):  # type: ignore[override]
        return _NULL_CM


_NULL_TRACER = NullTracer()
_tracer: Tracer = _NULL_TRACER


def get_tracer() -> Tracer:
    """The process-global tracer (a no-op unless enabled)."""
    return _tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as the default; ``None`` restores the no-op."""
    global _tracer
    _tracer = tracer if tracer is not None else _NULL_TRACER
    return _tracer


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Turn span recording on; returns the now-active tracer."""
    return set_tracer(tracer or Tracer())


def disable_tracing() -> None:
    """Turn span recording off (restore the shared no-op tracer)."""
    set_tracer(None)


def tracing_enabled() -> bool:
    return _tracer.enabled


def span(name: str, **attrs):
    """Open a span on the default tracer (no-op while tracing is off)."""
    return _tracer.span(name, **attrs)
