"""Lightweight, dependency-free observability for the hybrid pipeline.

The paper's whole performance argument is about *where time goes* in the
FEED -> TRANSFER -> GENERATE pipeline (Figures 3-5); this package makes
the real (non-simulated) reproduction observable the same way:

* :mod:`repro.obs.metrics` -- thread-safe counters, gauges and
  fixed-bucket histograms behind a process-global registry;
* :mod:`repro.obs.trace`   -- nestable ``span("feed")`` /
  ``span("transfer")`` / ``span("generate")`` context managers recording
  wall time per pipeline stage;
* :mod:`repro.obs.export`  -- JSONL event logs and Prometheus-style text
  exposition;
* :mod:`repro.obs.report`  -- :class:`RunReport`, merging metrics, stage
  breakdowns and :class:`~repro.bitsource.buffered.FeedStats` into one
  structured dict (with predicted-vs-measured stage shares when a
  :mod:`repro.gpusim` prediction is attached).

Everything is **off by default and free when off**: the default registry
and tracer are shared no-ops, so instrumented hot paths pay a method
call at batch granularity and nothing more.  Turn collection on with
:func:`observed`::

    from repro import obs

    with obs.observed() as (registry, tracer):
        values, plan, prediction = scheduler.run(10**6)
    print(obs.RunReport(registry, tracer).render())
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.obs.export import export_jsonl, prometheus_text, write_json_record
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    counter,
    disable,
    enable,
    gauge,
    get_registry,
    histogram,
    metrics_enabled,
    set_registry,
)
from repro.obs.report import RunReport
from repro.obs.trace import (
    NullTracer,
    SpanRecord,
    StageTotal,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "RunReport",
    "SpanRecord",
    "StageTotal",
    "Tracer",
    "counter",
    "disable",
    "disable_tracing",
    "enable",
    "enable_tracing",
    "export_jsonl",
    "gauge",
    "get_registry",
    "get_tracer",
    "histogram",
    "metrics_enabled",
    "observed",
    "prometheus_text",
    "set_registry",
    "set_tracer",
    "span",
    "tracing_enabled",
    "write_json_record",
]


@contextmanager
def observed(
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
):
    """Enable metrics and tracing for a block; restore previous state after.

    Yields ``(registry, tracer)`` so the caller can export or build a
    :class:`RunReport` from exactly what the block recorded.
    """
    prev_registry = get_registry()
    prev_tracer = get_tracer()
    registry = registry or MetricsRegistry()
    tracer = tracer or Tracer()
    set_registry(registry)
    set_tracer(tracer)
    try:
        yield registry, tracer
    finally:
        set_registry(prev_registry if prev_registry.enabled else None)
        set_tracer(prev_tracer if prev_tracer.enabled else None)
