"""Continuous quality sentinel: streaming statistical health of streams.

The offline batteries (:mod:`repro.quality`) certify a generator before
deployment; the sentinel watches it *while serving*.  A read-only tap on
the generation hot path (:mod:`~repro.obs.sentinel.tap`) feeds sampled
windows to incremental detectors (:mod:`~repro.obs.sentinel.online`),
and :class:`StreamSentinel` turns window p-values into a sticky
STAT_OK / STAT_SUSPECT / STAT_BAD verdict with a bounded lifetime
false-alarm budget (:mod:`~repro.obs.sentinel.verdict`).  Offline
pair-level checks (cross-correlation, weak seeds, glibc lag leakage)
live in :mod:`~repro.obs.sentinel.pairs` behind the ``repro sentinel``
CLI.

Typical in-process use::

    from repro.obs import sentinel

    guard = sentinel.StreamSentinel(name="bulk")
    with sentinel.tapped(guard):
        prng.generate_into(out)          # tap observes, stream untouched
    print(guard.verdict.name, guard.state())

The serve layer instead creates one sentinel per session and folds its
verdict into session/server health (see :mod:`repro.serve.session`).

This package is imported by ``repro.core.parallel`` (the tap hook), so
its ``__init__`` must only pull in modules that never import
``repro.core``; the pair detectors defer their core imports for the
same reason.
"""

from repro.obs.sentinel.tap import (
    get_tap,
    install_tap,
    maybe_observe,
    tapped,
    uninstall_tap,
)
from repro.obs.sentinel.verdict import (
    SENTINEL_P_BUCKETS,
    SentinelConfig,
    StreamSentinel,
    Verdict,
)

__all__ = [
    "Verdict",
    "SentinelConfig",
    "StreamSentinel",
    "SENTINEL_P_BUCKETS",
    "install_tap",
    "uninstall_tap",
    "get_tap",
    "maybe_observe",
    "tapped",
]
