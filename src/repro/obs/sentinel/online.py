"""Streaming statistical detectors over windows of 64-bit words.

Each detector reduces one sampled window to a p-value under the null
hypothesis "the words are i.i.d. uniform on ``[0, 2**64)``"; the
:class:`~repro.obs.sentinel.verdict.StreamSentinel` turns those p-values
into a sticky verdict with an alpha-spending schedule.  The detectors
are window-local (monobit, runs, byte chi-square) except the KS drift
check, which runs on a reservoir accumulated across windows.

SciPy is imported lazily inside the evaluation calls so installing a
tap on the generation hot path never forces ``scipy`` into the import
graph of ``repro.core``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "popcount",
    "monobit_pvalue",
    "runs_pvalue",
    "byte_chi2_pvalue",
    "entropy_rate",
    "ks_drift_pvalue",
    "evaluate_window",
]

#: Bits set per byte value; vectorized popcount via a uint8 view.
_POPCOUNT_LUT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint16
)

#: Mask clearing bit 63 (``x ^ (x >> 1)`` has a spurious MSB).
_MASK63 = np.uint64((1 << 63) - 1)


def popcount(words: np.ndarray) -> int:
    """Total set bits across a uint64 array."""
    if words.size == 0:
        return 0
    return int(_POPCOUNT_LUT[words.view(np.uint8)].sum())


def monobit_pvalue(words: np.ndarray) -> float:
    """NIST frequency (monobit) test over the window's bits.

    ``z = (2 * ones - bits) / sqrt(bits)`` is standard normal under H0;
    the returned p-value is two-sided.
    """
    bits = 64 * words.size
    if bits == 0:
        return 1.0
    ones = popcount(words)
    z = (2.0 * ones - bits) / math.sqrt(bits)
    return math.erfc(abs(z) / math.sqrt(2.0))


def runs_pvalue(words: np.ndarray) -> Optional[float]:
    """NIST runs test over the window's bit sequence (MSB-first words).

    Counts bit transitions vectorized: within-word via
    ``popcount((x ^ (x >> 1)) & ~2**63)``, across word boundaries by
    comparing each word's LSB with the next word's MSB.  Returns ``None``
    when the monobit precondition ``|pi - 1/2| >= 2 / sqrt(n)`` fails --
    the frequency test has already caught that window.
    """
    n = 64 * words.size
    if n < 128:
        return None
    pi = popcount(words) / n
    tau = 2.0 / math.sqrt(n)
    if abs(pi - 0.5) >= tau:
        return None  # precondition failed; monobit owns this window
    transitions = popcount((words ^ (words >> np.uint64(1))) & _MASK63)
    if words.size > 1:
        boundary = (words[:-1] & np.uint64(1)) ^ (
            words[1:] >> np.uint64(63)
        )
        transitions += int(boundary.sum())
    v = transitions + 1
    denom = 2.0 * math.sqrt(2.0 * n) * pi * (1.0 - pi)
    return math.erfc(abs(v - 2.0 * n * pi * (1.0 - pi)) / denom)


def byte_chi2_pvalue(words: np.ndarray) -> float:
    """Chi-square goodness of fit of the window's byte histogram.

    255 degrees of freedom against the uniform byte distribution; the
    decision statistic behind the entropy-rate gauge.
    """
    if words.size == 0:
        return 1.0
    hist = np.bincount(words.view(np.uint8), minlength=256)
    expected = hist.sum() / 256.0
    stat = float(((hist - expected) ** 2 / expected).sum())
    from repro.quality.stats import chi2_pvalue

    return chi2_pvalue(stat, 255)


def entropy_rate(words: np.ndarray) -> float:
    """Plug-in Shannon entropy of the window's bytes, in bits/byte.

    Informational (exported as a gauge): the plug-in estimator is biased
    low by roughly ``255 / (2 * ln(2) * n_bytes)`` bits, so it is not a
    test statistic -- :func:`byte_chi2_pvalue` is the decision.
    """
    if words.size == 0:
        return 0.0
    hist = np.bincount(words.view(np.uint8), minlength=256)
    probs = hist[hist > 0] / hist.sum()
    return float(-(probs * np.log2(probs)).sum())


def ks_drift_pvalue(samples: Sequence[float]) -> Optional[float]:
    """KS p-value of reservoir-held uniform samples against U(0, 1).

    ``None`` when the reservoir is too small to be meaningful.
    """
    arr = np.asarray(samples, dtype=np.float64)
    if arr.size < 20:
        return None
    from repro.quality.stats import ks_uniform

    _d, p = ks_uniform(arr)
    return p


def evaluate_window(words: np.ndarray) -> dict:
    """All window-local detectors at once: name -> p-value (or ``None``).

    The caller owns combining these (Bonferroni within the window) and
    any cross-window state; this function is pure.
    """
    return {
        "monobit": monobit_pvalue(words),
        "runs": runs_pvalue(words),
        "byte_chi2": byte_chi2_pvalue(words),
    }
