"""Sticky statistical verdicts over a sampled stream: the sentinel core.

A :class:`StreamSentinel` watches one logical stream through the
read-only tap (:mod:`repro.obs.sentinel.tap`), samples one word in
``sample_every`` into a private window buffer, and evaluates the
:mod:`online <repro.obs.sentinel.online>` detectors whenever a window
fills.  The verdict is **sticky** -- once a stream has looked bad it
stays flagged until the sentinel is reset -- mirroring how the
resilience layer's ``FeedHealth`` never silently un-degrades.

False positives are controlled with an **alpha-spending schedule**: the
failure threshold of window ``k`` (0-based) is::

    alpha_k = alpha_budget * 6 / (pi**2 * (k + 1)**2)

which sums to at most ``alpha_budget`` over an *unbounded* run, so a
healthy stream served forever still has probability < ``alpha_budget``
of ever leaving STAT_OK.  Within a window, the minimum detector p-value
is Bonferroni-corrected by the number of detectors evaluated.

Escalation:

* corrected ``p < alpha_k``     -> one *failure*; the verdict becomes
  STAT_SUSPECT, and STAT_BAD after ``bad_after`` cumulative failures;
* corrected ``p < p_bad``       -> STAT_BAD immediately (a stream of
  zeros should not need two windows to be condemned).

Verdicts are exported through :mod:`repro.obs.metrics` and a
``sentinel`` trace span per evaluated window, and map onto the
resilience health scale via :meth:`StreamSentinel.health_name`
(STAT_SUSPECT -> DEGRADED, STAT_BAD -> FAILED) so serve health checks
fail on statistically-bad streams.
"""

from __future__ import annotations

import enum
import math
import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.sentinel import online
from repro.obs.trace import span

__all__ = ["Verdict", "SentinelConfig", "StreamSentinel",
           "SENTINEL_P_BUCKETS"]

#: p-value histogram bounds for sentinel windows (log-ish low tail).
SENTINEL_P_BUCKETS = (
    1e-12, 1e-9, 1e-6, 1e-4, 0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 1.0
)


class Verdict(enum.IntEnum):
    """Statistical health of a stream; ordered so ``max`` is 'worst'."""

    STAT_OK = 0
    STAT_SUSPECT = 1
    STAT_BAD = 2


#: Verdict -> resilience ``FeedHealth`` name (kept as strings so the
#: sentinel never imports the resilience layer).
_HEALTH_NAME = {
    Verdict.STAT_OK: "OK",
    Verdict.STAT_SUSPECT: "DEGRADED",
    Verdict.STAT_BAD: "FAILED",
}


@dataclass(frozen=True)
class SentinelConfig:
    """Sampling and decision parameters of one sentinel."""

    #: Sampled words per evaluated window.
    window_words: int = 4096
    #: Keep one word in this many (1 = observe everything).
    sample_every: int = 16
    #: Uniform samples retained across windows for the KS drift check.
    reservoir: int = 256
    #: Run the KS drift check every this many completed windows.
    ks_every: int = 4
    #: Total false-alarm probability over an unbounded run.
    alpha_budget: float = 1e-4
    #: Immediate STAT_BAD when a corrected window p-value is below this.
    p_bad: float = 1e-12
    #: Cumulative window failures before STAT_SUSPECT becomes STAT_BAD.
    bad_after: int = 2
    #: Keys the deterministic reservoir-replacement decisions.
    seed: int = 0

    def __post_init__(self):
        if self.window_words < 64:
            raise ValueError(
                f"window_words must be >= 64, got {self.window_words}"
            )
        if self.sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {self.sample_every}"
            )
        if self.reservoir < 0:
            raise ValueError(f"reservoir must be >= 0, got {self.reservoir}")
        if self.ks_every < 1:
            raise ValueError(f"ks_every must be >= 1, got {self.ks_every}")
        if not 0.0 < self.alpha_budget < 1.0:
            raise ValueError(
                f"alpha_budget must be in (0, 1), got {self.alpha_budget}"
            )
        if not 0.0 < self.p_bad < 1.0:
            raise ValueError(f"p_bad must be in (0, 1), got {self.p_bad}")
        if self.bad_after < 1:
            raise ValueError(f"bad_after must be >= 1, got {self.bad_after}")


def _mix64(x: int) -> int:
    """SplitMix64 finalizer (local copy; keeps this module core-free)."""
    x = (x + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


class StreamSentinel:
    """Streaming statistical health of one stream; thread-safe, sticky.

    ``observe(values)`` is the whole write API: hand it every generated
    batch (the tap does this) and read ``verdict`` / ``state()`` back.
    ``observe`` treats its argument as read-only and copies the sampled
    words, so callers may reuse or byte-swap their buffers freely
    afterwards -- the non-consuming guarantee golden streams rely on.
    """

    def __init__(
        self,
        config: Optional[SentinelConfig] = None,
        name: str = "stream",
    ):
        self.config = config or SentinelConfig()
        self.name = name
        self._lock = threading.Lock()
        self._window = np.empty(self.config.window_words, dtype=np.uint64)
        self._fill = 0
        self._seen = 0       # raw words observed (pre-sampling)
        self._sampled = 0    # words copied into windows
        self._windows = 0    # completed (evaluated) windows
        self._failures = 0   # windows that failed their alpha share
        self._verdict = Verdict.STAT_OK
        self._worst_p = 1.0
        self._last: dict = {}
        self._entropy_rate = float("nan")
        self._ks_p: Optional[float] = None
        self._reservoir = np.empty(self.config.reservoir, dtype=np.float64)
        self._reservoir_fill = 0
        self._reservoir_seen = 0

    # ------------------------------------------------------------------
    # Observation (hot path)
    # ------------------------------------------------------------------

    def observe(self, values) -> None:
        """Sample a freshly generated batch into the current window.

        Sampling keeps a persistent phase across calls (word ``i`` of
        the *stream* is kept iff ``i % sample_every == 0``), so how a
        client sizes its fetches cannot change which words the sentinel
        sees -- the same slicing invariance the stream itself has.
        """
        if values is None:
            return
        arr = np.asarray(values)
        if arr.size == 0 or arr.dtype != np.uint64 or arr.ndim != 1:
            return
        k = self.config.sample_every
        with self._lock:
            start = (-self._seen) % k
            self._seen += arr.size
            if start >= arr.size:
                return
            # Copy: the caller may byte-swap/reuse this buffer next.
            sampled = arr[start::k].copy() if k > 1 else arr.copy()
            self._sampled += sampled.size
            pos = 0
            while pos < sampled.size:
                take = min(
                    sampled.size - pos, self._window.size - self._fill
                )
                self._window[self._fill : self._fill + take] = (
                    sampled[pos : pos + take]
                )
                self._fill += take
                pos += take
                if self._fill == self._window.size:
                    self._evaluate_window()
                    self._fill = 0

    # ------------------------------------------------------------------
    # Window evaluation (holds the lock; called from observe)
    # ------------------------------------------------------------------

    def _alpha(self, k: int) -> float:
        """Window ``k``'s share of the alpha budget (sums to the budget)."""
        return self.config.alpha_budget * 6.0 / (math.pi**2 * (k + 1) ** 2)

    def _evaluate_window(self) -> None:
        cfg = self.config
        k = self._windows
        window = self._window
        p_values = online.evaluate_window(window)
        self._entropy_rate = online.entropy_rate(window)
        self._update_reservoir(window)
        if cfg.reservoir and (k + 1) % cfg.ks_every == 0:
            self._ks_p = online.ks_drift_pvalue(
                self._reservoir[: self._reservoir_fill]
            )
            p_values["ks_drift"] = self._ks_p
        evaluated = {n: p for n, p in p_values.items() if p is not None}
        self._last = dict(evaluated)
        self._windows += 1
        # Bonferroni within the window, alpha-spending across windows.
        m = max(1, len(evaluated))
        p_min = min(evaluated.values(), default=1.0)
        corrected = min(1.0, p_min * m)
        self._worst_p = min(self._worst_p, corrected)
        threshold = self._alpha(k)
        failed = corrected < threshold
        if failed:
            self._failures += 1
            if corrected < cfg.p_bad or self._failures >= cfg.bad_after:
                verdict = Verdict.STAT_BAD
            else:
                verdict = Verdict.STAT_SUSPECT
            self._verdict = max(self._verdict, verdict)
        self._export(k, corrected, failed)

    def _update_reservoir(self, window: np.ndarray) -> None:
        """Deterministic reservoir of uniform samples across windows.

        Uses Algorithm R with SplitMix64-keyed replacement decisions, so
        the same stream always yields the same reservoir (the sentinel
        stays as replayable as the generator it watches).  One candidate
        per window head keeps the cost per window O(1)-ish.
        """
        size = self.config.reservoir
        if size == 0 or window.size == 0:
            return
        # Thin the window: at most 16 candidates per window keeps the
        # reservoir slow-moving (drift detection, not window detection).
        step = max(1, window.size // 16)
        for value in window[::step]:
            u = float(value) / 2.0**64
            j = self._reservoir_seen
            self._reservoir_seen += 1
            if self._reservoir_fill < size:
                self._reservoir[self._reservoir_fill] = u
                self._reservoir_fill += 1
                continue
            r = _mix64(self.config.seed ^ j) % (j + 1)
            if r < size:
                self._reservoir[r] = u

    def _export(self, k: int, corrected: float, failed: bool) -> None:
        """Metrics + one trace span per evaluated window."""
        obs_metrics.counter(
            "repro_sentinel_windows_total", "Sentinel windows evaluated"
        ).inc()
        if failed:
            obs_metrics.counter(
                "repro_sentinel_failures_total",
                "Sentinel windows outside their alpha share",
            ).inc()
        obs_metrics.gauge(
            "repro_sentinel_verdict",
            "Worst sentinel verdict (0=OK, 1=SUSPECT, 2=BAD)",
        ).set(int(self._verdict))
        obs_metrics.gauge(
            "repro_sentinel_entropy_rate",
            "Plug-in byte entropy of the last window (bits/byte)",
        ).set(self._entropy_rate)
        obs_metrics.histogram(
            "repro_sentinel_window_p_values", SENTINEL_P_BUCKETS,
            "Bonferroni-corrected minimum p-value per sentinel window",
        ).observe(corrected)
        with span(
            "sentinel",
            stream=self.name,
            window=k,
            p=corrected,
            verdict=self._verdict.name,
        ):
            pass

    # ------------------------------------------------------------------
    # Read API
    # ------------------------------------------------------------------

    @property
    def verdict(self) -> Verdict:
        with self._lock:
            return self._verdict

    def health_name(self) -> str:
        """Verdict on the resilience scale: OK / DEGRADED / FAILED."""
        return _HEALTH_NAME[self.verdict]

    def state(self) -> dict:
        """JSON-ready nested view (the serve STATUS payload shape)."""
        with self._lock:
            return {
                "verdict": self._verdict.name,
                "windows": self._windows,
                "failures": self._failures,
                "words_seen": self._seen,
                "words_sampled": self._sampled,
                "worst_p": self._worst_p,
                "entropy_rate": (
                    None
                    if math.isnan(self._entropy_rate)
                    else round(self._entropy_rate, 4) + 0.0
                ),
                "last_window": {
                    name: float(p) for name, p in self._last.items()
                },
                "sample_every": self.config.sample_every,
                "window_words": self.config.window_words,
            }

    def summary(self) -> dict:
        """Flat view for :class:`repro.obs.report.RunReport` sections."""
        state = self.state()
        out = {
            "verdict": state["verdict"],
            "windows": state["windows"],
            "failures": state["failures"],
            "words_seen": state["words_seen"],
            "words_sampled": state["words_sampled"],
            "worst_p": state["worst_p"],
            "entropy_rate": state["entropy_rate"],
        }
        for name, p in state["last_window"].items():
            out[f"p_{name}"] = p
        return out

    def reset(self) -> None:
        """Forget everything, including the sticky verdict."""
        with self._lock:
            self._fill = 0
            self._seen = 0
            self._sampled = 0
            self._windows = 0
            self._failures = 0
            self._verdict = Verdict.STAT_OK
            self._worst_p = 1.0
            self._last = {}
            self._entropy_rate = float("nan")
            self._ks_p = None
            self._reservoir_fill = 0
            self._reservoir_seen = 0

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"StreamSentinel(name={self.name!r}, "
            f"verdict={self.verdict.name}, windows={self._windows})"
        )
