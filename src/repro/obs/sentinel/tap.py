"""Zero-copy observation tap for the generation hot path.

The tap is the *only* coupling between the generators and the sentinel:
:func:`maybe_observe` is called from
:meth:`repro.core.parallel.ParallelExpanderPRNG.generate_into` (which
also covers ``HybridPRNG.u64_into`` and the hybrid scheduler) with a
read-only view of the freshly produced words.  When no tap is installed
-- the default -- the call is one global load and a ``None`` check, so
the canonical stream path pays nothing.

Non-consuming guarantee
-----------------------
A tap only ever *reads* the array it is handed and copies what it keeps
(the sentinel samples into its own window buffer).  It never advances,
buffers, or perturbs the stream, so golden streams stay bit-identical
with a tap installed.  This module deliberately imports nothing from
``repro`` -- it must be importable from the innermost core module
without any risk of an import cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

__all__ = ["install_tap", "uninstall_tap", "get_tap", "maybe_observe",
           "tapped"]

#: The process-global tap: any object with ``observe(values)``.
_tap = None


def install_tap(sentinel) -> None:
    """Make ``sentinel.observe`` see every subsequently generated batch.

    ``sentinel`` is any object with an ``observe(values)`` method (in
    practice a :class:`repro.obs.sentinel.StreamSentinel`).  Installing
    replaces any previous tap; there is exactly one process-global tap.
    """
    global _tap
    _tap = sentinel


def uninstall_tap() -> None:
    """Remove the global tap (generation reverts to zero overhead)."""
    global _tap
    _tap = None


def get_tap() -> Optional[object]:
    """The currently installed tap, or ``None``."""
    return _tap


def maybe_observe(values) -> None:
    """Hot-path hook: hand ``values`` to the tap if one is installed.

    Called with the buffer a generator just filled.  The tap must treat
    it as read-only and must not retain references to it (the serve
    framing path byte-swaps result buffers in place after this returns).
    """
    tap = _tap
    if tap is not None:
        tap.observe(values)


@contextmanager
def tapped(sentinel):
    """Install ``sentinel`` as the tap for the duration of a block."""
    previous = _tap
    install_tap(sentinel)
    try:
        yield sentinel
    finally:
        install_tap(previous)
