"""Offline paranoid-style detectors for pathological stream *pairs*.

The online sentinel watches one stream at a time; these checks look at
the relationships a deployment actually depends on -- that
``derive_seed`` substreams are independent, that no two sessions
collapse onto one stream through a weak seed, and that the glibc feed's
additive-feedback lattice (``o[i] = o[i-3] + o[i-31] (+carry)``) does
not leak through the expander walk into the served numbers.  They are
batch jobs, run from ``repro sentinel`` (and the CI sentinel job), not
from the serving hot path.

All ``repro.core`` / ``repro.bitsource`` imports are deferred into the
functions: this module is reachable from the sentinel package while
``repro.core.parallel`` is still initializing (it imports the tap), so
its module level must stay core-free.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "substream_correlation",
    "weak_seed_screen",
    "lag_structure",
    "glibc_lag_reference",
]

#: Flagging threshold for the corrected cross-correlation p-value.
CORRELATION_ALPHA = 1e-6

#: A lag-structure hit rate this far above chance flags feed leakage.
LAG_ALPHA = 1e-9


def substream_correlation(
    master_seed: int,
    streams: int = 8,
    words: int = 4096,
    lanes: int = 64,
) -> dict:
    """Pairwise cross-correlation of ``derive_seed`` substreams.

    Generates ``streams`` independent expander streams exactly the way
    the serve layer derives session streams (SplitMix64 feed seeded with
    ``derive_seed(master_seed, i)``), maps them to uniforms, and tests
    every pair's Pearson correlation with the Fisher z-transform,
    Bonferroni-corrected over all pairs.  Under independence the
    corrected minimum p-value is uniform-ish; a shared or mirrored
    stream drives it to ~0.
    """
    if streams < 2:
        raise ValueError(f"need at least 2 streams, got {streams}")
    if words < 8:
        raise ValueError(f"need at least 8 words per stream, got {words}")
    from repro.bitsource.counter import SplitMix64Source
    from repro.core.parallel import ParallelExpanderPRNG
    from repro.core.streams import derive_seed
    from repro.utils.bits import u01_from_u64

    u = np.empty((streams, words), dtype=np.float64)
    for i in range(streams):
        prng = ParallelExpanderPRNG(
            num_threads=lanes,
            bit_source=SplitMix64Source(derive_seed(master_seed, i)),
        )
        u[i] = u01_from_u64(prng.generate(words))
    corr = np.corrcoef(u)
    pairs = []
    n = words
    worst_p = 1.0
    npairs = streams * (streams - 1) // 2
    for i in range(streams):
        for j in range(i + 1, streams):
            r = float(np.clip(corr[i, j], -0.999999, 0.999999))
            z = math.sqrt(n - 3) * math.atanh(r)
            p = math.erfc(abs(z) / math.sqrt(2.0))
            corrected = min(1.0, p * npairs)
            worst_p = min(worst_p, corrected)
            if corrected < CORRELATION_ALPHA:
                pairs.append({"i": i, "j": j, "r": r, "p": corrected})
    return {
        "check": "substream_correlation",
        "streams": streams,
        "words": words,
        "pairs_tested": npairs,
        "worst_p": worst_p,
        "flagged": pairs,
        "ok": not pairs,
    }


def weak_seed_screen(
    master_seed: int,
    streams: int = 256,
    prefix_words: int = 8,
) -> dict:
    """Screen ``derive_seed`` session indices for colliding streams.

    Three independent collision checks over stream indices
    ``0..streams-1`` (the serve layer's SHA-256 session indices land in
    the same space):

    * **derived-seed collisions** -- two indices mapping to the same
      64-bit seed (SplitMix64 is a bijection per master seed, so any
      collision is a wiring bug);
    * **effective glibc-seed collisions** -- ``GlibcRandom`` consumes
      ``seed & 0xFFFFFFFF`` with 0 coerced to 1, so distinct 64-bit
      seeds *can* collapse if only the low word is used somewhere;
    * **feed-prefix collisions** -- the first ``prefix_words`` feed
      words of each stream's SplitMix64 source; a collision here means
      two sessions would serve overlapping numbers.
    """
    if streams < 2:
        raise ValueError(f"need at least 2 streams, got {streams}")
    from repro.bitsource.counter import SplitMix64Source
    from repro.core.streams import derive_seed

    seeds = [derive_seed(master_seed, i) for i in range(streams)]
    seed_dupes = _collisions(seeds)
    effective = [(s & 0xFFFFFFFF) or 1 for s in seeds]
    glibc_dupes = _collisions(effective)
    prefixes = [
        SplitMix64Source(s).words64(prefix_words).tobytes() for s in seeds
    ]
    prefix_dupes = _collisions(prefixes)
    flagged = sorted(set(seed_dupes) | set(prefix_dupes))
    return {
        "check": "weak_seed_screen",
        "streams": streams,
        "prefix_words": prefix_words,
        "seed_collisions": len(seed_dupes),
        "effective_glibc_collisions": len(glibc_dupes),
        "prefix_collisions": len(prefix_dupes),
        "flagged": [{"i": i, "j": j} for i, j in flagged],
        "ok": not flagged,
    }


def _collisions(values: Sequence) -> list:
    """Index pairs of equal values, first occurrence wins."""
    first = {}
    out = []
    for i, v in enumerate(values):
        if v in first:
            out.append((first[v], i))
        else:
            first[v] = i
    return out


def lag_structure(
    outputs: np.ndarray,
    deg: int = 31,
    sep: int = 3,
    modulus: int = 2**31,
) -> dict:
    """Detect glibc TYPE_3 additive-feedback structure in an output run.

    The glibc feed satisfies ``o[i] = o[i-3] + o[i-31] + c (mod 2**31)``
    with carry ``c`` in ``{0, 1}`` for *every* i, because the table
    recurrence adds full 32-bit words and emits ``raw >> 1``.  For an
    i.i.d. uniform stream the relation holds by chance with probability
    ``2 / modulus`` per index (~1e-9), so essentially any hits flag
    leakage.  Feed the *raw 31-bit feed outputs* here (the leak being
    screened for); the expander walk's 64-bit numbers cannot be unpacked
    back into that stream, which is exactly the point -- a generator
    whose output *can* be fed through this check and lights it up is
    passing its feed straight through.
    """
    arr = np.asarray(outputs, dtype=np.uint64)
    if arr.ndim != 1 or arr.size <= deg:
        raise ValueError(
            f"need a 1-D run longer than deg={deg}, got size {arr.size}"
        )
    mod = np.uint64(modulus)
    lhs = arr[deg:]
    pred = (arr[deg - sep : -sep] + arr[: -deg]) % mod
    resid = (lhs - pred) % mod
    hits = int(((resid == 0) | (resid == 1)).sum())
    n = int(lhs.size)
    p0 = 2.0 / modulus
    p_value = _binom_sf(hits - 1, n, p0) if hits else 1.0
    return {
        "check": "lag_structure",
        "deg": deg,
        "sep": sep,
        "n": n,
        "hits": hits,
        "fraction": hits / n,
        "p_value": p_value,
        "leaky": p_value < LAG_ALPHA,
    }


def glibc_lag_reference(seed: int = 1, n: int = 4096) -> dict:
    """Positive control: :func:`lag_structure` on the raw glibc feed.

    Returns the check's result for ``n`` raw ``rand()`` outputs --
    expected ``fraction == 1.0`` and ``leaky == True``.  Used by the CLI
    and tests to prove the detector works.
    """
    from repro.bitsource.glibc import GlibcRandom

    outputs = GlibcRandom(seed).rand_array(n)
    return lag_structure(np.asarray(outputs, dtype=np.uint64))


def _binom_sf(k: int, n: int, p: float) -> float:
    """P(X > k) for X ~ Binomial(n, p); lazy SciPy with a Poisson guard.

    For the tiny ``p`` used here the Poisson tail is an excellent
    fallback, but SciPy is present in this environment so the exact
    survival function is used.
    """
    try:
        import scipy.stats as sps

        return float(sps.binom.sf(k, n, p))
    except Exception:  # pragma: no cover - scipy is a hard dep in practice
        lam = n * p
        # P(X > k) = 1 - sum_{i<=k} e^-lam lam^i / i!
        term = math.exp(-lam)
        total = term
        for i in range(1, k + 1):
            term *= lam / i
            total += term
        return max(0.0, 1.0 - total)
