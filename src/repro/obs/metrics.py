"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

The hybrid pipeline is a producer/consumer system (FEED thread, walker
lanes, battery drivers), so every instrument here is safe to update from
any thread.  A process-global default registry is provided; it starts as
a :class:`NullRegistry` whose instruments are shared no-ops, which makes
instrumentation free when observability is off -- callers write

    from repro.obs import metrics
    metrics.counter("repro_feed_refills_total").inc()

unconditionally, and pay a dict lookup only once metrics are enabled via
:func:`enable` (or :func:`repro.obs.observed`).

Design follows the Prometheus client-library data model (counter, gauge,
histogram with cumulative ``le`` buckets) so the text exposition in
:mod:`repro.obs.export` is directly scrape-compatible, but there is no
dependency on any client library.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_BUCKETS",
    "counter",
    "gauge",
    "histogram",
    "get_registry",
    "set_registry",
    "enable",
    "disable",
    "metrics_enabled",
]

#: Default histogram bucket upper bounds (seconds-flavoured, wide range).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)


class Counter:
    """Monotonically increasing count (events, items, bytes)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter can only increase, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Instantaneous value (queue depth, lanes, pending words)."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative counts (Prometheus style).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  Observations also accumulate ``sum`` and ``count`` so mean
    values survive the bucketing.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None,
                 help: str = ""):
        bounds = tuple(sorted(buckets)) if buckets else DEFAULT_BUCKETS
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        i = 0
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                break
        else:
            i = len(self.buckets)
        with self._lock:
            self._counts[i] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> list:
        """[(upper_bound, cumulative_count), ...] ending with +Inf."""
        with self._lock:
            counts = list(self._counts)
        out, running = [], 0
        for bound, c in zip(self.buckets, counts):
            running += c
            out.append((bound, running))
        out.append((math.inf, running + counts[-1]))
        return out


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    help = ""
    buckets: Tuple[float, ...] = ()
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    def cumulative(self):
        return []


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Thread-safe get-or-create store of named instruments."""

    enabled = True

    def __init__(self):
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get_or_create(name, lambda: Counter(name, help))
        if not isinstance(metric, Counter):
            raise TypeError(f"{name!r} already registered as {type(metric).__name__}")
        return metric

    def gauge(self, name: str, help: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, help))
        if not isinstance(metric, Gauge):
            raise TypeError(f"{name!r} already registered as {type(metric).__name__}")
        return metric

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None,
                  help: str = "") -> Histogram:
        metric = self._get_or_create(name, lambda: Histogram(name, buckets, help))
        if not isinstance(metric, Histogram):
            raise TypeError(f"{name!r} already registered as {type(metric).__name__}")
        return metric

    def collect(self) -> Dict[str, object]:
        """Name -> instrument, sorted by name (stable for exporters)."""
        with self._lock:
            return dict(sorted(self._metrics.items()))

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict state of every instrument (JSON-friendly)."""
        out: Dict[str, object] = {}
        for name, metric in self.collect().items():
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
            else:
                out[name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "buckets": [
                        ["+Inf" if math.isinf(b) else b, c]
                        for b, c in metric.cumulative()
                    ],
                }
        return out


class NullRegistry(MetricsRegistry):
    """Registry whose instruments are shared no-ops (zero-cost disabled mode).

    ``counter``/``gauge``/``histogram`` skip the dict entirely and return
    one shared immutable instrument, so instrumented hot paths cost a
    method call and nothing more when observability is off.
    """

    enabled = False

    def counter(self, name: str, help: str = "") -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(self, name, buckets=None, help="") -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]


_NULL_REGISTRY = NullRegistry()
_registry: MetricsRegistry = _NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-global default registry (a no-op unless enabled)."""
    return _registry


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the default; ``None`` restores the no-op."""
    global _registry
    _registry = registry if registry is not None else _NULL_REGISTRY
    return _registry


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Turn metrics on; returns the now-active registry."""
    return set_registry(registry or MetricsRegistry())


def disable() -> None:
    """Turn metrics off (restore the shared no-op registry)."""
    set_registry(None)


def metrics_enabled() -> bool:
    return _registry.enabled


def counter(name: str, help: str = "") -> Counter:
    """Get-or-create a counter on the default registry."""
    return _registry.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Get-or-create a gauge on the default registry."""
    return _registry.gauge(name, help)


def histogram(name: str, buckets: Optional[Sequence[float]] = None,
              help: str = "") -> Histogram:
    """Get-or-create a histogram on the default registry."""
    return _registry.histogram(name, buckets, help)
