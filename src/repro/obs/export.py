"""Exporters: JSONL event logs and Prometheus-style text exposition.

Two wire formats, both dependency-free:

* :func:`export_jsonl` writes one JSON object per line -- a ``meta``
  header, every recorded span, and the final value of every metric.
  The same encoder backs the benchmark harness's ``BENCH_*.json``
  records (:func:`write_json_record`), so run traces and benchmark
  results share a schema.
* :func:`prometheus_text` renders a registry in the Prometheus text
  exposition format (``# TYPE`` comments, cumulative ``le`` buckets,
  ``_sum``/``_count`` series), ready for a scrape endpoint or a textfile
  collector.
"""

from __future__ import annotations

import json
import math
import pathlib
from typing import IO, Optional, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "export_jsonl",
    "prometheus_text",
    "write_json_record",
]


def _json_default(obj):
    to_dict = getattr(obj, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    if isinstance(obj, float) and not math.isfinite(obj):
        return str(obj)
    raise TypeError(f"not JSON serializable: {type(obj).__name__}")


def _dumps(record: dict) -> str:
    return json.dumps(record, default=_json_default, sort_keys=False)


def write_json_record(path: Union[str, pathlib.Path], record: dict) -> pathlib.Path:
    """Write one JSON record to ``path`` (the ``BENCH_*.json`` format)."""
    path = pathlib.Path(path)
    path.write_text(_dumps(record) + "\n")
    return path


def _metric_records(registry: MetricsRegistry):
    for name, metric in registry.collect().items():
        if isinstance(metric, Counter):
            yield {"type": "counter", "name": name, "value": metric.value}
        elif isinstance(metric, Gauge):
            yield {"type": "gauge", "name": name, "value": metric.value}
        elif isinstance(metric, Histogram):
            yield {
                "type": "histogram",
                "name": name,
                "count": metric.count,
                "sum": metric.sum,
                "buckets": [
                    ["+Inf" if math.isinf(b) else b, c]
                    for b, c in metric.cumulative()
                ],
            }


def export_jsonl(
    target: Union[str, pathlib.Path, IO[str]],
    registry: Optional[MetricsRegistry] = None,
    tracer: Optional[Tracer] = None,
    meta: Optional[dict] = None,
) -> int:
    """Write spans and metrics as JSON lines; returns the line count.

    ``target`` may be a path or an open text stream.  Spans come out in
    completion order (children before parents), each tagged with ``id``
    and ``parent_id`` so the tree is reconstructible.
    """
    lines = []
    header = {"type": "meta", "format": "repro-obs-v1"}
    if meta:
        header.update(meta)
    lines.append(_dumps(header))
    if tracer is not None:
        for rec in tracer.spans:
            lines.append(_dumps(rec.to_dict()))
    if registry is not None:
        for rec in _metric_records(registry):
            lines.append(_dumps(rec))
    text = "\n".join(lines) + "\n"
    if hasattr(target, "write"):
        target.write(text)
    else:
        pathlib.Path(target).write_text(text)
    return len(lines)


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render ``registry`` in the Prometheus text exposition format."""
    out = []
    for name, metric in registry.collect().items():
        if metric.help:
            out.append(f"# HELP {name} {metric.help}")
        if isinstance(metric, Counter):
            out.append(f"# TYPE {name} counter")
            out.append(f"{name} {metric.value}")
        elif isinstance(metric, Gauge):
            out.append(f"# TYPE {name} gauge")
            out.append(f"{name} {_format_value(metric.value)}")
        elif isinstance(metric, Histogram):
            out.append(f"# TYPE {name} histogram")
            for bound, cum in metric.cumulative():
                le = "+Inf" if math.isinf(bound) else _format_value(float(bound))
                out.append(f'{name}_bucket{{le="{le}"}} {cum}')
            out.append(f"{name}_sum {_format_value(metric.sum)}")
            out.append(f"{name}_count {metric.count}")
    return "\n".join(out) + ("\n" if out else "")
