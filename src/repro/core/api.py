"""``rand()``-style module-level API, thread-safe via thread-local streams.

The paper's motivation (Section I) is that a GPU thread should be able to
call something like ANSI C ``rand()`` and receive a fresh number on
demand.  This module is that API for Python callers: each OS thread gets
its own independent :class:`~repro.core.generator.ExpanderWalkPRNG`
stream, so concurrent callers never contend or correlate.

>>> from repro.core import api
>>> api.srand(1234)
>>> v = api.rand()          # 64-bit integer, on demand
>>> u = api.random()        # float in [0, 1)
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.bitsource.counter import SplitMix64Source, splitmix64
from repro.core.generator import ExpanderWalkPRNG

import numpy as np

__all__ = ["srand", "rand", "random", "randint", "get_thread_generator"]

_local = threading.local()
_seed_lock = threading.Lock()
_global_seed = 0x9E3779B9
# Epoch bumps on every srand() so existing streams rebuild; the stream
# counter hands each new per-thread generator a unique substream index
# (thread idents are recycled by the OS, so they cannot be used alone).
_epoch = 0
_stream_counter = 0


def srand(seed: int) -> None:
    """Set the global seed.  Existing per-thread streams are discarded."""
    global _global_seed, _epoch, _stream_counter
    with _seed_lock:
        _global_seed = int(seed)
        _epoch += 1
        _stream_counter = 0


def _next_stream_seed() -> tuple:
    """Allocate a unique (epoch, substream seed) pair under the lock."""
    global _stream_counter
    with _seed_lock:
        _stream_counter += 1
        mixed = (_global_seed ^ (_stream_counter * 0x9E3779B97F4A7C15)) & (
            2**64 - 1
        )
        return _epoch, int(splitmix64(np.uint64(mixed))[()])


def get_thread_generator() -> ExpanderWalkPRNG:
    """The calling thread's private generator (created on first use)."""
    gen: Optional[ExpanderWalkPRNG] = getattr(_local, "generator", None)
    with _seed_lock:
        current_epoch = _epoch
    if gen is None or getattr(_local, "epoch", None) != current_epoch:
        epoch, seed = _next_stream_seed()
        gen = ExpanderWalkPRNG(bit_source=SplitMix64Source(seed))
        _local.generator = gen
        _local.epoch = epoch
    return gen


def rand() -> int:
    """Next on-demand 64-bit random integer for this thread's stream."""
    return get_thread_generator().get_next_rand()


def random() -> float:
    """Next uniform float in [0, 1) for this thread's stream."""
    return get_thread_generator().random()


def randint(lo: int, hi: int) -> int:
    """Uniform integer in ``[lo, hi)`` for this thread's stream."""
    return get_thread_generator().randint(lo, hi)
