"""Probability amplification by expander walks (the paper's Section IV-C
connection to Motwani-Raghavan [21]).

A one-sided-error randomized algorithm that errs with probability at
most ``p0 < 1`` on a uniformly random seed can be amplified by running
it on ``k`` seeds.  Independent seeds need ``k * b`` fresh random bits
(seed width b); taking the seeds from ``k`` *consecutive positions of a
random walk on an expander* needs only ``b + O(k)`` bits, yet the error
still decays exponentially in ``k`` (Ajtai-Komlos-Szemeredi / Gillman).
That is precisely the construction the paper's PRNG performs internally,
exposed here as a reusable primitive.

:func:`walk_seeds` returns the seed sequence plus the exact feed-bit
cost, so the savings claim is checkable; :func:`amplify` runs a caller's
decision procedure over walk seeds and majority/any-votes the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.bitsource.base import BitSource
from repro.bitsource.counter import SplitMix64Source
from repro.core.expander import GabberGalilExpander
from repro.core.walk import WalkEngine
from repro.utils.checks import check_positive

__all__ = ["walk_seeds", "amplify", "AmplificationResult",
           "independent_bit_cost"]


def independent_bit_cost(k: int, seed_bits: int = 64) -> int:
    """Fresh random bits needed for ``k`` independent seeds."""
    check_positive("k", k)
    return k * seed_bits


def walk_seeds(
    k: int,
    source: Optional[BitSource] = None,
    steps_between: int = 1,
    graph: Optional[GabberGalilExpander] = None,
) -> tuple:
    """``k`` 64-bit seeds from consecutive expander-walk positions.

    Parameters
    ----------
    k : int
        Number of seeds.
    source : BitSource
        Feed supplying the walk's neighbour choices (default SplitMix64).
    steps_between : int
        Walk steps between recorded positions (1 = adjacent vertices;
        larger values decorrelate more at linear extra bit cost).

    Returns
    -------
    (seeds, bits_used) : uint64 array of length k, and the exact number
    of feed bits consumed (including the 64 start-position bits).
    """
    check_positive("k", k)
    check_positive("steps_between", steps_between)
    source = source if source is not None else SplitMix64Source(0)
    graph = graph if graph is not None else GabberGalilExpander()
    engine = WalkEngine(graph, policy="reject")

    state = engine.make_state(source.words64(1))
    bits_before = state.chunks_consumed
    seeds = np.empty(k, dtype=np.uint64)
    for i in range(k):
        engine.walk(state, source, steps_between)
        seeds[i] = engine.outputs(state)[0]
    bits_used = 64 + 3 * (state.chunks_consumed - bits_before)
    return seeds, int(bits_used)


@dataclass(frozen=True)
class AmplificationResult:
    """Outcome of an amplified randomized decision."""

    decision: bool
    votes_true: int
    trials: int
    bits_used: int
    bits_independent: int

    @property
    def bit_savings(self) -> float:
        """Fraction of fresh bits saved vs independent seeding."""
        return 1.0 - self.bits_used / self.bits_independent


def amplify(
    predicate: Callable[[int], bool],
    k: int,
    source: Optional[BitSource] = None,
    mode: str = "majority",
    steps_between: int = 1,
) -> AmplificationResult:
    """Run ``predicate`` on ``k`` expander-walk seeds and combine votes.

    Parameters
    ----------
    predicate : callable(seed) -> bool
        The randomized test; seed is a 64-bit integer.
    mode : "majority" or "any"
        "any" suits one-sided error (e.g. compositeness witnesses:
        a single True proves the property); "majority" suits two-sided
        error.
    """
    check_positive("k", k)
    if mode not in ("majority", "any"):
        raise ValueError(f"mode must be 'majority' or 'any', got {mode!r}")
    seeds, bits_used = walk_seeds(k, source=source, steps_between=steps_between)
    votes = sum(bool(predicate(int(s))) for s in seeds)
    decision = votes > k / 2 if mode == "majority" else votes > 0
    return AmplificationResult(
        decision=decision,
        votes_true=votes,
        trials=k,
        bits_used=bits_used,
        bits_independent=independent_bit_cost(k),
    )
