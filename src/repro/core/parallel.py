"""Massively parallel generation: one NumPy lane per GPU thread.

:class:`ParallelExpanderPRNG` runs ``num_threads`` independent walkers in
SIMD lockstep, reproducing the paper's execution model: every thread owns
a walk, every ``GetNextRand`` is a 64-step walk, and a *batch size* ``S``
(Figure 5's "block size") says how many numbers each thread produces per
kernel launch.

Values are independent of ``S`` and of ``num_threads`` ordering choices:
``generate(n)`` always returns numbers grouped launch-by-launch,
thread-major within a launch, mirroring how the paper's kernel writes its
output array.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.bitsource.base import (
    BitSource,
    UnseekableSourceError,
    chunks_from_words,
)
from repro.bitsource.glibc import GlibcRandom
from repro.core.expander import GabberGalilExpander
from repro.core.generator import DEFAULT_WALK_LENGTH
from repro.core.walk import (
    CHUNKS_PER_WORD,
    FIXED_CONSUMPTION_POLICIES,
    WalkEngine,
    WalkState,
)
from repro.obs import metrics as obs_metrics
from repro.obs.sentinel.tap import maybe_observe
from repro.obs.trace import span
from repro.utils.bits import u01_from_u64
from repro.utils.checks import check_positive

__all__ = [
    "ParallelExpanderPRNG",
    "AddressableExpanderPRNG",
    "DEFAULT_NUM_THREADS",
    "DEFAULT_BATCH_SIZE",
]

#: Default walker count; a multiple of the C1060's 240 cores x warp width.
DEFAULT_NUM_THREADS = 30 * 32 * 16  # 15360 lanes

#: The paper's empirically optimal numbers-per-thread batch (Figure 5).
DEFAULT_BATCH_SIZE = 100

#: Lane budget of one fused multi-round launch on an addressable bank.
#: Addressable rounds are independent, so K rounds of an nt-lane bank
#: can walk as one (K * nt)-lane bank; this caps K * nt so the fused
#: state and its scratch stay cache-sized.  A pure batching knob: it
#: cannot change emitted values, only how many rounds share one kernel
#: sweep.
FUSED_LAUNCH_LANES = 1 << 16


class ParallelExpanderPRNG:
    """Bank of independent expander walkers emitting 64-bit numbers.

    Parameters
    ----------
    num_threads : int
        Walker lanes (GPU threads).
    seed : int
        Seed for the default glibc feed.
    graph, bit_source, walk_length, policy :
        As in :class:`~repro.core.generator.ExpanderWalkPRNG`.

    Examples
    --------
    >>> prng = ParallelExpanderPRNG(num_threads=256, seed=3)
    >>> vals = prng.generate(1000)
    >>> vals.dtype, len(vals)
    (dtype('uint64'), 1000)
    """

    def __init__(
        self,
        num_threads: int = DEFAULT_NUM_THREADS,
        seed: int = 0,
        graph: Optional[GabberGalilExpander] = None,
        bit_source: Optional[BitSource] = None,
        walk_length: int = DEFAULT_WALK_LENGTH,
        policy: str = "reject",
        fused: bool = True,
        backend=None,
    ):
        check_positive("num_threads", num_threads)
        check_positive("walk_length", walk_length)
        self.num_threads = int(num_threads)
        self.graph = graph if graph is not None else GabberGalilExpander()
        self.source = (
            bit_source if bit_source is not None else GlibcRandom(seed)
        )
        self.walk_length = int(walk_length)
        # ``fused`` selects the allocation-free walk kernel (default) or
        # the legacy reference kernel; the stream is identical either
        # way -- benchmarks use the flag to compare the two.
        # ``backend`` picks the array backend for the walk kernel; the
        # stream is bit-identical on every backend (integer kernel).
        self.engine = WalkEngine(
            self.graph, policy=policy, fused=fused, backend=backend
        )
        self.backend = self.engine.backend
        self._state: Optional[WalkState] = None
        self.numbers_generated = 0
        self.initialize()

    # ------------------------------------------------------------------
    # Algorithm 1, vectorized over all threads
    # ------------------------------------------------------------------

    def initialize(self) -> None:
        """Give every thread a feed-chosen start vertex and a 64-step mix."""
        obs_metrics.gauge(
            "repro_prng_lanes", "Walker lanes in the parallel generator"
        ).set(self.num_threads)
        with span("generate", init=True, lanes=self.num_threads):
            starts = self.source.words64(self.num_threads)
            self._state = self.engine.make_state(starts)
            self.engine.walk(self._state, self.source, self.walk_length)
        self.numbers_generated = 0
        #: Numbers produced by the last round but not yet handed out.
        #: Part of the stream contract: the stream is one lane-major
        #: round sequence and ``generate`` slices it, so fetch sizing
        #: cannot change which numbers a caller sees.
        self._remainder = np.empty(0, dtype=np.uint64)

    # ------------------------------------------------------------------
    # Bulk generation
    # ------------------------------------------------------------------

    def next_round(self) -> np.ndarray:
        """One ``GetNextRand`` per thread: ``num_threads`` fresh numbers.

        This is the raw round primitive: it advances the round stream
        directly and neither consumes nor clears :meth:`generate`'s
        buffered round remainder.
        """
        steps_before = self._state.steps_taken
        chunks_before = self._state.chunks_consumed
        with span("generate", lanes=self.num_threads):
            self.engine.walk(self._state, self.source, self.walk_length)
            out = self.engine.outputs(self._state)
        self.numbers_generated += self.num_threads
        obs_metrics.counter(
            "repro_prng_numbers_total", "64-bit numbers emitted"
        ).inc(self.num_threads)
        obs_metrics.counter(
            "repro_prng_rounds_total", "GetNextRand rounds executed"
        ).inc()
        obs_metrics.counter(
            "repro_prng_steps_total", "Walker steps taken (all lanes)"
        ).inc(self._state.steps_taken - steps_before)
        obs_metrics.counter(
            "repro_prng_feed_bits_total", "Feed bits consumed (3 per chunk)"
        ).inc(3 * (self._state.chunks_consumed - chunks_before))
        return out

    def _launch_into(self, out: np.ndarray, num_rounds: int) -> None:
        """One kernel launch: ``num_rounds`` full rounds under one span.

        Writes the launch's numbers round-by-round, thread-major within
        each round, directly into ``out`` (size ``num_rounds *
        num_threads``) -- the same stream :meth:`next_round` walks, so
        launch grouping cannot change values, only tracing granularity.
        No intermediate per-round arrays are allocated.
        """
        nt = self.num_threads
        steps_before = self._state.steps_taken
        chunks_before = self._state.chunks_consumed
        with span("generate", lanes=nt, rounds=num_rounds):
            for i in range(num_rounds):
                self.engine.walk(self._state, self.source, self.walk_length)
                self.engine.outputs_into(
                    self._state, out[i * nt : (i + 1) * nt]
                )
        self.numbers_generated += out.size
        obs_metrics.counter(
            "repro_prng_numbers_total", "64-bit numbers emitted"
        ).inc(out.size)
        obs_metrics.counter(
            "repro_prng_rounds_total", "GetNextRand rounds executed"
        ).inc(num_rounds)
        obs_metrics.counter(
            "repro_prng_steps_total", "Walker steps taken (all lanes)"
        ).inc(self._state.steps_taken - steps_before)
        obs_metrics.counter(
            "repro_prng_feed_bits_total", "Feed bits consumed (3 per chunk)"
        ).inc(3 * (self._state.chunks_consumed - chunks_before))

    def generate_into(
        self, out: np.ndarray, batch_size: Optional[int] = None
    ) -> None:
        """Fill ``out`` with the next ``out.size`` numbers of the stream.

        Zero-copy variant of :meth:`generate`: full rounds are written
        straight from the walker state into the caller's buffer, with no
        intermediate arrays.  ``out`` must be a one-dimensional,
        C-contiguous, writeable ``uint64`` array; values and remainder
        behaviour are identical to ``generate(out.size)``.
        """
        if not isinstance(out, np.ndarray):
            raise TypeError(f"out must be a numpy array, got {type(out)!r}")
        if out.dtype != np.uint64:
            raise TypeError(f"out must have dtype uint64, got {out.dtype}")
        if out.ndim != 1:
            raise ValueError(f"out must be one-dimensional, got shape {out.shape}")
        if not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous")
        if not out.flags.writeable:
            raise ValueError("out must be writeable")
        if batch_size is not None:
            check_positive("batch_size", batch_size)
        n = out.size
        pos = 0
        if self._remainder.size:
            take = min(self._remainder.size, n)
            out[:take] = self._remainder[:take]
            self._remainder = self._remainder[take:]
            pos = take
        nt = self.num_threads
        while n - pos >= nt:
            full_rounds = (n - pos) // nt
            k = 1 if batch_size is None else min(full_rounds, batch_size)
            self._launch_into(out[pos : pos + k * nt], k)
            pos += k * nt
        if pos < n:
            vals = self.next_round()
            take = n - pos
            out[pos:] = vals[:take]
            self._remainder = vals[take:].copy()
        # Sentinel tap: a read-only look at the delivered words.  The
        # tap copies what it samples and never touches the stream, so
        # values (and golden streams) are unchanged; with no tap
        # installed this is a global load and a None check.
        maybe_observe(out)

    def generate(self, n: int, batch_size: Optional[int] = None) -> np.ndarray:
        """The next ``n`` numbers of the generator's stream.

        The stream is *one* well-defined sequence (round-by-round,
        thread-major within a round) and ``generate`` slices it: a round
        remainder is buffered, never discarded, so ``generate(4);
        generate(4)`` equals ``generate(8)`` from the same seed.

        ``batch_size`` (the paper's ``S``, Figure 5) groups the work into
        kernel launches of up to ``num_threads * batch_size`` numbers --
        one tracing span per launch instead of per round.  It cannot
        change the values; ``None`` launches round by round.
        """
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        out = np.empty(n, dtype=np.uint64)
        self.generate_into(out, batch_size)
        return out

    # ------------------------------------------------------------------
    # Stream positioning
    # ------------------------------------------------------------------

    def tell(self) -> int:
        """Absolute offset of the next word :meth:`generate` will return."""
        return self.numbers_generated - self._remainder.size

    def seek(self, word_offset: int) -> None:
        """Position the stream at an absolute word offset.

        The chained construction threads walker positions through every
        round, so the only general implementation is forward replay:
        O(offset - tell()) work, and seeking backwards is impossible
        without reseeding.  :class:`AddressableExpanderPRNG` overrides
        this with an O(log offset) jump.
        """
        if word_offset < 0:
            raise ValueError(f"word offset must be non-negative, got {word_offset}")
        pos = self.tell()
        if word_offset < pos:
            raise ValueError(
                f"cannot seek backwards on a chained stream ({word_offset} < "
                f"{pos}); use AddressableExpanderPRNG for arbitrary offsets"
            )
        skip = word_offset - pos
        if not skip:
            return
        scratch = np.empty(min(skip, 1 << 16), dtype=np.uint64)
        while skip:
            take = min(skip, scratch.size)
            self.generate_into(scratch[:take])
            skip -= take

    def rounds(self, num_rounds: int) -> Iterator[np.ndarray]:
        """Yield ``num_rounds`` successive per-thread output vectors."""
        check_positive("num_rounds", num_rounds)
        for _ in range(num_rounds):
            yield self.next_round()

    # ------------------------------------------------------------------
    # Convenience distributions
    # ------------------------------------------------------------------

    def random(self, n: int) -> np.ndarray:
        """``n`` uniform floats in [0, 1)."""
        return u01_from_u64(self.generate(n))

    def integers(self, lo: int, hi: int, n: int) -> np.ndarray:
        """``n`` integers uniform in ``[lo, hi)`` (unbiased, via rejection).

        Returns ``int64`` when the range fits in it, ``uint64`` when it
        only fits unsigned (``lo >= 0`` and ``hi > 2**63``).  When the
        range size divides ``2**64`` -- any power of two, including the
        full 64-bit range -- every raw word maps uniformly and no
        rejection happens at all.
        """
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        range_size = hi - lo
        if range_size > 2**64:
            raise ValueError(
                f"range [{lo}, {hi}) spans more than 2**64 values"
            )
        if lo >= 0 and hi > 2**63:
            dtype = np.dtype(np.uint64)
        elif lo >= -(2**63) and hi <= 2**63:
            dtype = np.dtype(np.int64)
        else:
            raise ValueError(
                f"range [{lo}, {hi}) fits neither int64 nor uint64"
            )
        # Largest multiple of range_size representable in the draw space;
        # when range_size divides 2**64 this is 2**64 itself and the
        # rejection limit would overflow uint64 -- but then no draw can
        # be biased, so rejection is skipped entirely.
        full = (2**64 // range_size) * range_size
        reject = full != 2**64
        limit = np.uint64(full) if reject else None
        offset = np.uint64(lo & (2**64 - 1))
        out = np.empty(n, dtype=dtype)
        pos = 0
        while pos < n:
            raw = self.generate(max(n - pos, 1))
            good = raw[raw < limit] if reject else raw
            take = min(good.size, n - pos)
            vals = good[:take]
            if range_size != 2**64:
                vals = vals % np.uint64(range_size)
            with np.errstate(over="ignore"):
                vals = vals + offset  # two's-complement wrap is intended
            out[pos : pos + take] = (
                vals if dtype.kind == "u" else vals.view(np.int64)
            )
            pos += take
        return out

    def random_bits(self, n: int) -> np.ndarray:
        """``n`` output bits (uint8 0/1), MSB-first per 64-bit number."""
        nwords = (n + 63) // 64
        words = self.generate(nwords)
        return np.unpackbits(words.astype(">u8").view(np.uint8))[:n]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def bits_consumed(self) -> int:
        """Feed bits consumed so far across all threads."""
        return 3 * self._state.chunks_consumed

    @property
    def state(self) -> WalkState:
        """The underlying walker bank (read-mostly; copy before mutating)."""
        return self._state

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ParallelExpanderPRNG(threads={self.num_threads}, m={self.graph.m}, "
            f"l={self.walk_length}, policy={self.engine.policy!r}, "
            f"feed={self.source.name!r})"
        )


class AddressableExpanderPRNG(ParallelExpanderPRNG):
    """Offset-addressable walker bank: ``seek(offset)`` in O(log offset).

    The chained construction threads walker positions from round to
    round, so reaching word ``w`` requires replaying every round before
    it.  This variant makes each round *independent*: round ``r`` draws
    its start vertices **and** its complete chunk window from a fixed
    feed slice,

    ``[r * words_per_round, (r + 1) * words_per_round)``,
    ``words_per_round = lanes + ceil(walk_length * lanes / 21)``,

    walks ``walk_length`` steps, and emits.  Generated sequentially it
    is an ordinary stream (no seeking needed, unseekable feeds work);
    but because round ``r`` is a pure function of ``(seed, lanes,
    walk_length, policy, r)``, any offset is reachable by one feed
    ``seek`` -- O(log offset) for the glibc window-map power -- plus at
    most one round of walking.  Restart cost is independent of stream
    age, and results are cacheable by ``(stream, offset)``.

    Requires a fixed-consumption policy ('mod' or 'lazy', default
    'lazy'): 'reject' redraws a data-dependent number of chunks, so no
    round boundary can be located without replaying the stream.
    """

    def __init__(
        self,
        num_threads: int = DEFAULT_NUM_THREADS,
        seed: int = 0,
        graph: Optional[GabberGalilExpander] = None,
        bit_source: Optional[BitSource] = None,
        walk_length: int = DEFAULT_WALK_LENGTH,
        policy: str = "lazy",
        fused: bool = True,
        backend=None,
    ):
        if policy not in FIXED_CONSUMPTION_POLICIES:
            raise ValueError(
                f"offset-addressable streams need a fixed-consumption policy "
                f"{FIXED_CONSUMPTION_POLICIES}, got {policy!r}"
            )
        super().__init__(
            num_threads=num_threads,
            seed=seed,
            graph=graph,
            bit_source=bit_source,
            walk_length=walk_length,
            policy=policy,
            fused=fused,
            backend=backend,
        )

    def initialize(self) -> None:
        """Reset to offset 0.  No init-mix walk: every round mixes afresh."""
        obs_metrics.gauge(
            "repro_prng_lanes", "Walker lanes in the parallel generator"
        ).set(self.num_threads)
        chunks_per_round = self.walk_length * self.num_threads
        self._chunk_words = -(-chunks_per_round // CHUNKS_PER_WORD)
        self.words_per_round = self.num_threads + self._chunk_words
        self._round_index = 0
        self._source_pos = 0
        self._state = None
        self.numbers_generated = 0
        self._remainder = np.empty(0, dtype=np.uint64)

    # -- round production ----------------------------------------------

    def _produce_rounds_into(self, out: np.ndarray, num_rounds: int) -> None:
        """Rounds ``[_round_index, _round_index + num_rounds)`` into ``out``.

        Because every addressable round is a pure function of its own
        feed slice, ``num_rounds`` consecutive rounds of an ``nt``-lane
        bank are *one* walk of ``num_rounds * nt`` independent lanes:
        lane ``r * nt + j`` is round ``r``'s walker ``j``, started from
        round ``r``'s start words and stepped by round ``r``'s chunk
        indices.  Lanes never interact, so the fused walk is
        bit-identical to ``num_rounds`` sequential rounds -- while the
        per-step NumPy work runs on ``num_rounds``-times-wider arrays,
        which is what makes small session banks (64 lanes) fast.
        """
        nt = self.num_threads
        wl = self.walk_length
        wpr = self.words_per_round
        base = self._round_index * wpr
        if self._source_pos != base:
            self.source.seek(base)
        words = self.source.words64(num_rounds * wpr)
        self._source_pos = base + num_rounds * wpr
        slab = words.reshape(num_rounds, wpr)
        fresh = self.engine.make_state(slab[:, :nt].reshape(-1))
        prev = self._state
        if prev is not None:
            # Carry the cumulative counters and the fused-kernel scratch
            # buffers across launches; the stale view identities (and a
            # lane-count check inside the kernel) force the scratch to
            # re-sync with the new start positions.
            fresh.steps_taken = prev.steps_taken
            fresh.chunks_consumed = prev.chunks_consumed
            bufs = getattr(prev, "_fused_bufs", None)
            if bufs is not None:
                fresh._fused_bufs = bufs
                fresh._fused_xy = (None, None)
        self._state = fresh
        # Per round: 21 chunks per word, first wl * nt are real, the
        # word-tail chunks are padding.  Step-major across the fused
        # lane axis: ks[i] holds step i's index for every (round, lane).
        ks = self.engine.indices_from_chunks(
            chunks_from_words(np.ascontiguousarray(slab[:, nt:]).reshape(-1))
        )
        ks = ks.reshape(num_rounds, -1)[:, : wl * nt]
        ks = np.ascontiguousarray(
            ks.reshape(num_rounds, wl, nt)
            .transpose(1, 0, 2)
            .reshape(wl, num_rounds * nt)
        )
        if not self.backend.is_host:
            # Stage the whole launch's index block on the device in one
            # transfer; per-step row slices then pass through untouched.
            ks = self.backend.device_index(ks)
        for i in range(wl):
            self.engine._apply_indices(fresh, ks[i])
        fresh.chunks_consumed += wl * nt * num_rounds
        self.engine.outputs_into(fresh, out)
        self._round_index += num_rounds

    def _launch_into(self, out: np.ndarray, num_rounds: int) -> None:
        nt = self.num_threads
        per_launch = max(1, FUSED_LAUNCH_LANES // nt)
        steps_before, chunks_before = self._counters()
        with span("generate", lanes=nt, rounds=num_rounds):
            done = 0
            while done < num_rounds:
                k = min(per_launch, num_rounds - done)
                self._produce_rounds_into(out[done * nt : (done + k) * nt], k)
                done += k
        self.numbers_generated += out.size
        steps_after, chunks_after = self._counters()
        obs_metrics.counter(
            "repro_prng_numbers_total", "64-bit numbers emitted"
        ).inc(out.size)
        obs_metrics.counter(
            "repro_prng_rounds_total", "GetNextRand rounds executed"
        ).inc(num_rounds)
        obs_metrics.counter(
            "repro_prng_steps_total", "Walker steps taken (all lanes)"
        ).inc(steps_after - steps_before)
        obs_metrics.counter(
            "repro_prng_feed_bits_total", "Feed bits consumed (3 per chunk)"
        ).inc(3 * (chunks_after - chunks_before))

    def next_round(self) -> np.ndarray:
        out = np.empty(self.num_threads, dtype=np.uint64)
        self._launch_into(out, 1)
        return out

    def generate_into(
        self, out: np.ndarray, batch_size: Optional[int] = None
    ) -> None:
        """Like the base class, but launches default to the fused width.

        On an addressable bank, one launch of K rounds is one
        (K * lanes)-wide walk (see :meth:`_produce_rounds_into`), so the
        default batch size is the full :data:`FUSED_LAUNCH_LANES` budget
        instead of one round per launch.  Values are identical either
        way -- ``batch_size`` is a launch-grouping knob, never part of
        the stream identity.
        """
        if batch_size is None:
            batch_size = max(1, FUSED_LAUNCH_LANES // self.num_threads)
        super().generate_into(out, batch_size)

    def _counters(self) -> tuple:
        st = self._state
        return (st.steps_taken, st.chunks_consumed) if st is not None else (0, 0)

    # -- positioning ----------------------------------------------------

    def tell(self) -> int:
        return self._round_index * self.num_threads - self._remainder.size

    def seek(self, word_offset: int) -> None:
        """Jump to any absolute word offset without replay.

        Cost: one feed ``seek`` (O(log offset)) plus at most one round
        of walking when the offset lands inside a round -- independent
        of both the target offset and the current position.  Backwards
        seeks are allowed.
        """
        if word_offset < 0:
            raise ValueError(f"word offset must be non-negative, got {word_offset}")
        if word_offset == self.tell():
            return
        if not self.source.seekable:
            # Fail here, not on the next generate: repositioning always
            # needs a feed seek eventually, and a deferred error would
            # blame the wrong call.
            raise UnseekableSourceError(
                f"cannot seek: feed {self.source.name!r} is not seekable"
            )
        rounds, within = divmod(word_offset, self.num_threads)
        self._round_index = rounds
        self._remainder = np.empty(0, dtype=np.uint64)
        if within:
            vals = self.next_round()
            self._remainder = vals[within:].copy()

    @property
    def bits_consumed(self) -> int:
        return 0 if self._state is None else 3 * self._state.chunks_consumed

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"AddressableExpanderPRNG(threads={self.num_threads}, "
            f"m={self.graph.m}, l={self.walk_length}, "
            f"policy={self.engine.policy!r}, feed={self.source.name!r})"
        )
