"""Generator state capture and restore.

Long Monte Carlo campaigns need checkpointing: capture the complete
state of a generator (walker positions plus the feed's own state),
serialize it, and resume bit-for-bit later.  States are plain dicts of
JSON-friendly values (NumPy arrays encoded as lists), so they can be
stored anywhere.

Feed state is handled via a small protocol: sources expose their state
through ``__getstate_dict__`` / ``__setstate_dict__`` if present, else
the known source types are handled here explicitly.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.bitsource.counter import RawCounterSource, SplitMix64Source
from repro.bitsource.glibc import AnsiCLcg, GlibcRandom
from repro.core.generator import ExpanderWalkPRNG
from repro.core.parallel import ParallelExpanderPRNG

__all__ = ["capture_state", "restore_state"]

#: v2 added the stream-contract buffers: the walker bank's ``feed_buffer``
#: (tail chunks of the last feed word) and, for the parallel generator,
#: the round remainder of ``generate``.  v1 snapshots predate the
#: canonical stream and cannot resume it bit-for-bit, so they are refused.
_FORMAT_VERSION = 2


def _source_state(source) -> Dict[str, Any]:
    if hasattr(source, "__getstate_dict__"):
        return {"kind": "custom", "data": source.__getstate_dict__()}
    if isinstance(source, SplitMix64Source):
        return {"kind": "splitmix64", "state": int(source._state)}
    if isinstance(source, RawCounterSource):
        return {"kind": "raw-counter", "counter": int(source._counter)}
    if isinstance(source, GlibcRandom):
        return {
            "kind": "glibc",
            "ring": [int(v) for v in source._ring],
            "pending": [int(v) for v in source._pending],
        }
    if isinstance(source, AnsiCLcg):
        return {"kind": "ansi-lcg", "state": int(source._state)}
    raise TypeError(
        f"cannot capture state of feed type {type(source).__name__}; "
        "implement __getstate_dict__/__setstate_dict__ on it"
    )


def _restore_source(source, state: Dict[str, Any]) -> None:
    kind = state["kind"]
    if kind == "custom":
        source.__setstate_dict__(state["data"])
        return
    if kind == "splitmix64":
        if not isinstance(source, SplitMix64Source):
            raise TypeError("state kind does not match feed type")
        source._state = np.uint64(state["state"])
        return
    if kind == "raw-counter":
        source._counter = np.uint64(state["counter"])
        return
    if kind == "glibc":
        if not isinstance(source, GlibcRandom):
            raise TypeError("state kind does not match feed type")
        source._ring = np.array(state["ring"], dtype=np.uint32)
        source._pending = np.array(state["pending"], dtype=np.uint32)
        return
    if kind == "ansi-lcg":
        source._state = np.uint64(state["state"])
        return
    raise ValueError(f"unknown feed state kind {kind!r}")


def capture_state(prng) -> Dict[str, Any]:
    """Snapshot an :class:`ExpanderWalkPRNG` or :class:`ParallelExpanderPRNG`."""
    if not isinstance(prng, (ExpanderWalkPRNG, ParallelExpanderPRNG)):
        raise TypeError(f"unsupported generator type {type(prng).__name__}")
    state = prng._state
    snapshot = {
        "version": _FORMAT_VERSION,
        "kind": type(prng).__name__,
        "m": prng.graph.m,
        "walk_length": prng.walk_length,
        "policy": prng.engine.policy,
        "x": [int(v) for v in np.atleast_1d(state.x)],
        "y": [int(v) for v in np.atleast_1d(state.y)],
        "steps_taken": int(state.steps_taken),
        "chunks_consumed": int(state.chunks_consumed),
        "feed_buffer": [int(v) for v in state.feed_buffer],
        "numbers_generated": int(prng.numbers_generated),
        "source": _source_state(prng.source),
    }
    if isinstance(prng, ParallelExpanderPRNG):
        snapshot["remainder"] = [int(v) for v in prng._remainder]
    return snapshot


def restore_state(prng, snapshot: Dict[str, Any]) -> None:
    """Restore a snapshot in place.  The generator must match structurally."""
    if snapshot.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported snapshot version {snapshot.get('version')}")
    if snapshot["kind"] != type(prng).__name__:
        raise TypeError(
            f"snapshot is for {snapshot['kind']}, got {type(prng).__name__}"
        )
    if snapshot["m"] != prng.graph.m:
        raise ValueError("snapshot graph modulus does not match")
    if snapshot["walk_length"] != prng.walk_length:
        raise ValueError("snapshot walk length does not match")
    if snapshot["policy"] != prng.engine.policy:
        raise ValueError("snapshot policy does not match")
    x = np.array(snapshot["x"])
    if isinstance(prng, ParallelExpanderPRNG) and x.size != prng.num_threads:
        raise ValueError(
            f"snapshot has {x.size} walkers, generator has {prng.num_threads}"
        )
    dtype = np.uint32 if prng.graph.m == 2**32 else np.uint64
    prng._state.x = x.astype(dtype)
    prng._state.y = np.array(snapshot["y"]).astype(dtype)
    prng._state.steps_taken = snapshot["steps_taken"]
    prng._state.chunks_consumed = snapshot["chunks_consumed"]
    prng._state.feed_buffer = np.array(
        snapshot["feed_buffer"], dtype=np.uint8
    )
    prng.numbers_generated = snapshot["numbers_generated"]
    if isinstance(prng, ParallelExpanderPRNG):
        prng._remainder = np.array(snapshot["remainder"], dtype=np.uint64)
    _restore_source(prng.source, snapshot["source"])
