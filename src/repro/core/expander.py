"""Gabber-Galil expander graphs (Section III-A of the paper).

The paper builds its PRNG on the explicit expander construction of Gabber
and Galil [FOCS 1979].  For an integer ``m`` the vertex set is
``Z_m x Z_m`` (so ``n = m^2`` per side of the bipartite graph; the paper
says ``n = 2 m^2`` counting both sides).  A vertex ``(x, y)`` has exactly
seven neighbours:

====  =======================
k     neighbour of ``(x, y)``
====  =======================
0     ``(x, y)``
1     ``(x, 2x + y)``
2     ``(x, 2x + y + 1)``
3     ``(x, 2x + y + 2)``
4     ``(x + 2y, y)``
5     ``(x + 2y + 1, y)``
6     ``(x + 2y + 2, y)``
====  =======================

with all arithmetic modulo ``m``.  The edge expansion of this family is
``alpha(G) = (2 - sqrt(3)) / 2``.

Each of the seven neighbour maps is an *affine bijection* of
``Z_m x Z_m`` (map 0 is the identity); this is what makes the uniform
distribution stationary for the random walk and is property-tested in the
test suite.

The paper instantiates ``m = 2**32`` so a vertex packs into one 64-bit
word -- the value the generator emits.  For that size this module uses
``uint32`` wraparound arithmetic (no explicit ``%``), exactly as a CUDA
kernel's 32-bit registers would.  Smaller ``m`` (used by the spectral
analysis in :mod:`repro.core.spectral` and by the test-suite) takes the
general path with explicit reductions.
"""

from __future__ import annotations

from typing import Tuple

from repro.backend import host_np as np

from repro.utils.bits import pack_u32_pairs, unpack_u64
from repro.utils.checks import check_in_range, check_positive

__all__ = ["GabberGalilExpander", "DEGREE", "EDGE_EXPANSION_LOWER_BOUND"]

#: Degree of the Gabber-Galil construction used throughout the paper.
DEGREE = 7

#: Proven lower bound on the edge expansion of the family: (2 - sqrt(3)) / 2.
EDGE_EXPANSION_LOWER_BOUND = (2.0 - np.sqrt(3.0)) / 2.0

_U32 = np.uint32
_U64 = np.uint64

# (a, b, c) per neighbour map k, encoding either
#   y' = 2x + y + c   (axis == 'y', maps 1..3)  or
#   x' = x + 2y + c   (axis == 'x', maps 4..6)  or identity (map 0).
_Y_OFFSETS = (0, 1, 2)  # c for k = 1, 2, 3
_X_OFFSETS = (0, 1, 2)  # c for k = 4, 5, 6


class GabberGalilExpander:
    """A 7-regular Gabber-Galil expander on ``Z_m x Z_m``.

    Parameters
    ----------
    m : int
        Side modulus.  ``m = 2**32`` (the paper's choice) enables the fast
        wraparound path.  Any ``m >= 2`` is accepted.

    Examples
    --------
    >>> g = GabberGalilExpander(m=5)
    >>> g.neighbor(1, 2, 4)   # (x + 2y, y) mod 5 = (0, 2)
    (0, 2)
    >>> g.num_vertices
    25
    """

    def __init__(self, m: int = 2**32):
        check_positive("m", m)
        if m < 2:
            raise ValueError(f"m must be >= 2, got {m}")
        if m > 2**32:
            raise ValueError(
                f"m must be <= 2**32 so vertices fit in 64 bits, got {m}"
            )
        self.m = int(m)
        self._native = self.m == 2**32
        self.degree = DEGREE

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices on one side of the bipartite graph (m^2)."""
        return self.m * self.m

    @property
    def bits_per_vertex(self) -> int:
        """How many bits a packed vertex id occupies (64 for m = 2**32)."""
        return 2 * max(1, (self.m - 1).bit_length())

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GabberGalilExpander(m={self.m})"

    def __eq__(self, other) -> bool:
        return isinstance(other, GabberGalilExpander) and other.m == self.m

    def __hash__(self) -> int:
        return hash(("GabberGalilExpander", self.m))

    # ------------------------------------------------------------------
    # Neighbour maps
    # ------------------------------------------------------------------

    def _reduce(self, arr: np.ndarray) -> np.ndarray:
        """Reduce mod m (no-op on the native uint32-wraparound path)."""
        if self._native:
            return arr
        return arr % _U64(self.m)

    def _coerce(self, x, y) -> Tuple[np.ndarray, np.ndarray]:
        dtype = _U32 if self._native else _U64
        x = np.asarray(x, dtype=dtype)
        y = np.asarray(y, dtype=dtype)
        return x, y

    def neighbor_arrays(self, x, y, k) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized ``f(u, k)``: the k-th neighbour of vertices ``(x, y)``.

        ``x``, ``y``, ``k`` broadcast against each other.  ``k`` must hold
        values in ``0..6``.  Returns new ``(x', y')`` arrays; inputs are not
        modified.
        """
        x, y = self._coerce(x, y)
        k = np.asarray(k)
        if k.size and (k.min() < 0 or k.max() >= DEGREE):
            raise ValueError("neighbour index k must be in 0..6")
        x, y, k = np.broadcast_arrays(x, y, k)
        dtype = x.dtype
        two = dtype.type(2)

        nx = x.copy()
        ny = y.copy()

        # Maps 1..3: y' = 2x + y + (k - 1)
        sel = (k >= 1) & (k <= 3)
        if sel.any():
            c = (k[sel] - 1).astype(dtype)
            ny[sel] = self._reduce(two * x[sel] + y[sel] + c)

        # Maps 4..6: x' = x + 2y + (k - 4)
        sel = k >= 4
        if sel.any():
            c = (k[sel] - 4).astype(dtype)
            nx[sel] = self._reduce(x[sel] + two * y[sel] + c)

        return nx, ny

    def neighbor(self, x: int, y: int, k: int) -> Tuple[int, int]:
        """Scalar convenience wrapper around :meth:`neighbor_arrays`."""
        check_in_range("x", x, 0, self.m - 1)
        check_in_range("y", y, 0, self.m - 1)
        check_in_range("k", k, 0, DEGREE - 1)
        nx, ny = self.neighbor_arrays(
            np.asarray([x]), np.asarray([y]), np.asarray([k])
        )
        return int(nx[0]), int(ny[0])

    def neighbors(self, x: int, y: int) -> list[Tuple[int, int]]:
        """All seven neighbours of ``(x, y)`` in order ``k = 0..6``."""
        ks = np.arange(DEGREE)
        nx, ny = self.neighbor_arrays(
            np.full(DEGREE, x, dtype=np.int64),
            np.full(DEGREE, y, dtype=np.int64),
            ks,
        )
        return [(int(a), int(b)) for a, b in zip(nx, ny)]

    def inverse_neighbor_arrays(self, x, y, k) -> Tuple[np.ndarray, np.ndarray]:
        """Invert map ``k``: returns ``(x0, y0)`` with ``f((x0, y0), k) == (x, y)``.

        Every neighbour map is an affine bijection of ``Z_m x Z_m``:

        * maps 1..3 invert as ``y0 = y - 2x - c``;
        * maps 4..6 invert as ``x0 = x - 2y - c``;
        * map 0 is the identity.
        """
        x, y = self._coerce(x, y)
        k = np.asarray(k)
        if k.size and (k.min() < 0 or k.max() >= DEGREE):
            raise ValueError("neighbour index k must be in 0..6")
        x, y, k = np.broadcast_arrays(x, y, k)
        dtype = x.dtype
        two = dtype.type(2)
        mm = dtype.type(0) if self._native else dtype.type(self.m)

        px = x.copy()
        py = y.copy()

        sel = (k >= 1) & (k <= 3)
        if sel.any():
            c = (k[sel] - 1).astype(dtype)
            if self._native:
                py[sel] = y[sel] - two * x[sel] - c  # uint32 wraparound
            else:
                # Add 3m before subtracting to stay non-negative pre-reduction.
                py[sel] = (y[sel] + dtype.type(3) * mm - two * x[sel] - c) % mm

        sel = k >= 4
        if sel.any():
            c = (k[sel] - 4).astype(dtype)
            if self._native:
                px[sel] = x[sel] - two * y[sel] - c
            else:
                px[sel] = (x[sel] + dtype.type(3) * mm - two * y[sel] - c) % mm

        return px, py

    # ------------------------------------------------------------------
    # Vertex-id packing
    # ------------------------------------------------------------------

    def pack(self, x, y) -> np.ndarray:
        """Pack ``(x, y)`` pairs into integer vertex ids.

        For the native ``m = 2**32`` graph this is the 64-bit number the
        PRNG emits: ``(x << 32) | y``.  For general ``m`` the id is
        ``x * m + y``.
        """
        if self._native:
            return pack_u32_pairs(
                np.asarray(x, dtype=_U64), np.asarray(y, dtype=_U64)
            )
        x = np.asarray(x, dtype=_U64)
        y = np.asarray(y, dtype=_U64)
        return x * _U64(self.m) + y

    def unpack(self, vid) -> Tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`pack`."""
        if self._native:
            return unpack_u64(vid)
        vid = np.asarray(vid, dtype=_U64)
        return (vid // _U64(self.m)), (vid % _U64(self.m))

    # ------------------------------------------------------------------
    # Composed affine form (analysis helper)
    # ------------------------------------------------------------------

    def composed_affine(self, ks) -> Tuple[np.ndarray, np.ndarray]:
        """The affine map equal to applying neighbour maps ``ks`` in order.

        Since every step is affine over ``Z_m^2``, a whole walk collapses to
        ``v_out = A @ v_in + b (mod m)``.  Returns ``(A, b)`` as Python-int
        arrays (``A`` is 2x2, ``b`` length-2), reduced mod m.  Used by the
        analysis tooling and tests to cross-check the walk engine.
        """
        m = self.m
        A = np.array([[1, 0], [0, 1]], dtype=object)
        b = np.array([0, 0], dtype=object)
        for k in np.asarray(ks).ravel():
            k = int(k)
            if k == 0:
                continue
            if 1 <= k <= 3:
                step_A = np.array([[1, 0], [2, 1]], dtype=object)
                step_b = np.array([0, k - 1], dtype=object)
            elif 4 <= k <= 6:
                step_A = np.array([[1, 2], [0, 1]], dtype=object)
                step_b = np.array([k - 4, 0], dtype=object)
            else:
                raise ValueError("neighbour index k must be in 0..6")
            A = (step_A @ A) % m
            b = (step_A @ b + step_b) % m
        return A, b

    def apply_affine(self, A, b, x: int, y: int) -> Tuple[int, int]:
        """Apply an ``(A, b)`` pair from :meth:`composed_affine` to a vertex."""
        v = np.array([int(x), int(y)], dtype=object)
        out = (A @ v + b) % self.m
        return int(out[0]), int(out[1])
