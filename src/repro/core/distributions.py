"""Non-uniform distributions on top of the expander-walk PRNG.

The paper's applications consume uniforms directly; a downstream user of
an RNG library also needs the classic derived distributions.  These are
implemented against the abstract ``uniform(n)`` interface, so they work
with :class:`~repro.baselines.hybrid_adapter.HybridPRNG`, any baseline
generator, or any bit source.

All samplers are exact (no table approximations): Box-Muller for
normals, inversion for exponential/geometric, and the standard rejection
or counting constructions elsewhere.
"""

from __future__ import annotations

import numpy as np

from repro.utils.checks import check_positive, check_probability

__all__ = [
    "normal",
    "exponential",
    "geometric",
    "poisson",
    "binomial",
    "shuffle",
    "choice_index",
]


def _uniform_nonzero(gen, n: int) -> np.ndarray:
    """Uniforms in (0, 1]: shift the half-open interval to avoid log(0)."""
    return 1.0 - gen.uniform(n)


def normal(gen, n: int, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """``n`` Gaussian samples via Box-Muller (two uniforms per pair)."""
    check_positive("n", n)
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    half = (n + 1) // 2
    u1 = _uniform_nonzero(gen, half)
    u2 = gen.uniform(half)
    r = np.sqrt(-2.0 * np.log(u1))
    theta = 2.0 * np.pi * u2
    out = np.concatenate([r * np.cos(theta), r * np.sin(theta)])[:n]
    return mean + std * out


def exponential(gen, n: int, rate: float = 1.0) -> np.ndarray:
    """``n`` Exp(rate) samples by inversion."""
    check_positive("n", n)
    check_positive("rate", rate)
    return -np.log(_uniform_nonzero(gen, n)) / rate


def geometric(gen, n: int, p: float) -> np.ndarray:
    """``n`` Geometric(p) samples (number of trials until first success)."""
    check_positive("n", n)
    check_probability("p", p)
    if p == 0:
        raise ValueError("p must be positive")
    if p == 1.0:
        return np.ones(n, dtype=np.int64)
    u = _uniform_nonzero(gen, n)
    return np.ceil(np.log(u) / np.log1p(-p)).astype(np.int64)


def poisson(gen, n: int, lam: float) -> np.ndarray:
    """``n`` Poisson(lam) samples.

    Knuth's product-of-uniforms method, vectorized with an active mask;
    for ``lam > 30`` a normal approximation with continuity correction is
    used (error far below sampling noise at those means).
    """
    check_positive("n", n)
    check_positive("lam", lam)
    if lam > 30:
        g = normal(gen, n, mean=lam, std=np.sqrt(lam))
        return np.maximum(np.rint(g), 0).astype(np.int64)
    threshold = np.exp(-lam)
    counts = np.zeros(n, dtype=np.int64)
    prod = gen.uniform(n).astype(np.float64)
    active = prod > threshold
    while active.any():
        idx = np.nonzero(active)[0]
        counts[idx] += 1
        prod[idx] *= gen.uniform(idx.size)
        active[idx] = prod[idx] > threshold
    return counts


def binomial(gen, n: int, trials: int, p: float) -> np.ndarray:
    """``n`` Binomial(trials, p) samples by direct counting.

    Exact; intended for modest ``trials`` (the quality batteries and the
    applications never need more).
    """
    check_positive("n", n)
    check_positive("trials", trials)
    check_probability("p", p)
    u = gen.uniform(n * trials).reshape(n, trials)
    return (u < p).sum(axis=1).astype(np.int64)


def shuffle(gen, items: np.ndarray) -> np.ndarray:
    """Fisher-Yates shuffle driven by the generator; returns a copy."""
    arr = np.array(items)
    n = arr.size
    if n <= 1:
        return arr
    u = gen.uniform(n - 1)
    for i in range(n - 1, 0, -1):
        j = int(u[n - 1 - i] * (i + 1))
        j = min(j, i)
        arr[i], arr[j] = arr[j], arr[i]
    return arr


def choice_index(gen, n: int, weights: np.ndarray) -> np.ndarray:
    """``n`` indices sampled proportionally to ``weights`` (inversion)."""
    check_positive("n", n)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if (w < 0).any() or w.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    cdf = np.cumsum(w / w.sum())
    cdf[-1] = 1.0
    return np.searchsorted(cdf, gen.uniform(n), side="right").astype(np.int64)
