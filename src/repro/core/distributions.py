"""Non-uniform distributions on top of the expander-walk PRNG (legacy).

.. deprecated::
    This module predates :mod:`repro.dist` and is kept as a set of thin
    wrappers for existing callers.  New code should use
    :class:`repro.dist.DistStream` (stream-exact, vectorized, with
    ``*_into`` zero-copy variants) or the NumPy adapter
    :class:`repro.dist.ExpanderBitGen`.

The Gaussian, exponential and shuffle paths now route through
:mod:`repro.dist`, which fixes two long-standing defects of the original
implementations:

* ``normal`` was not fetch-split invariant -- it generated ``cos`` and
  ``sin`` halves as separate blocks and discarded the surplus variate on
  odd ``n``, so ``normal(4); normal(4) != normal(8)``.  It now consumes
  the generator's 64-bit stream in atomic Box-Muller pairs with a
  per-generator carry buffer: the variate sequence is a pure function of
  the word sequence, however requests are sized.
* ``shuffle`` computed each Fisher-Yates index as ``int(u * (i + 1))``
  from a float multiply -- a biased map (and only 53 bits of the word
  to begin with).  It now uses the unbiased Lemire bounded-integer path.

The remaining samplers (geometric, poisson, binomial, choice_index)
still consume the abstract ``uniform(n)`` interface; large-``lam``
poisson inherits the fixed normal.

State caveat: the buffered samplers attach a
:class:`~repro.dist.DistStream` to the generator instance (attribute
``_repro_dist_stream``).  Reseeding a generator in place does **not**
reset that buffer -- construct a fresh generator (as every caller in
this repo does) or delete the attribute.
"""

from __future__ import annotations

import numpy as np

from repro.dist import DistStream
from repro.utils.checks import check_positive, check_probability

__all__ = [
    "normal",
    "exponential",
    "geometric",
    "poisson",
    "binomial",
    "shuffle",
    "choice_index",
]


def _uniform_nonzero(gen, n: int) -> np.ndarray:
    """Uniforms in (0, 1]: shift the half-open interval to avoid log(0)."""
    return 1.0 - gen.uniform(n)


def _dist_stream(gen) -> DistStream:
    """The generator's cached :class:`DistStream` (carry state lives there).

    Keyed on the instance itself so repeated calls continue one
    well-defined variate stream -- the fetch-split invariance contract.
    """
    ds = getattr(gen, "_repro_dist_stream", None)
    if ds is None:
        ds = DistStream(gen.u64_array)
        try:
            gen._repro_dist_stream = ds
        except AttributeError:  # exotic gen without __dict__: stateless
            pass
    return ds


def normal(gen, n: int, mean: float = 0.0, std: float = 1.0) -> np.ndarray:
    """``n`` Gaussian samples (deprecated wrapper over ``repro.dist``).

    Box-Muller in atomic pairs on the generator's 64-bit stream with a
    carry buffer, so ``normal(gen, 4); normal(gen, 4)`` equals
    ``normal(gen, 8)`` bit-for-bit.
    """
    check_positive("n", n)
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    return _dist_stream(gen).normal(n, mean=mean, std=std, method="boxmuller")


def exponential(gen, n: int, rate: float = 1.0) -> np.ndarray:
    """``n`` Exp(rate) samples (deprecated wrapper over ``repro.dist``)."""
    check_positive("n", n)
    check_positive("rate", rate)
    return _dist_stream(gen).exponential(n, rate=rate)


def geometric(gen, n: int, p: float) -> np.ndarray:
    """``n`` Geometric(p) samples (number of trials until first success)."""
    check_positive("n", n)
    check_probability("p", p)
    if p == 0:
        raise ValueError("p must be positive")
    if p == 1.0:
        return np.ones(n, dtype=np.int64)
    u = _uniform_nonzero(gen, n)
    return np.ceil(np.log(u) / np.log1p(-p)).astype(np.int64)


def poisson(gen, n: int, lam: float) -> np.ndarray:
    """``n`` Poisson(lam) samples.

    Knuth's product-of-uniforms method, vectorized with an active mask;
    for ``lam > 30`` a normal approximation with continuity correction is
    used (error far below sampling noise at those means).
    """
    check_positive("n", n)
    check_positive("lam", lam)
    if lam > 30:
        g = normal(gen, n, mean=lam, std=np.sqrt(lam))
        return np.maximum(np.rint(g), 0).astype(np.int64)
    threshold = np.exp(-lam)
    counts = np.zeros(n, dtype=np.int64)
    prod = gen.uniform(n).astype(np.float64)
    active = prod > threshold
    while active.any():
        idx = np.nonzero(active)[0]
        counts[idx] += 1
        prod[idx] *= gen.uniform(idx.size)
        active[idx] = prod[idx] > threshold
    return counts


def binomial(gen, n: int, trials: int, p: float) -> np.ndarray:
    """``n`` Binomial(trials, p) samples by direct counting.

    Exact; intended for modest ``trials`` (the quality batteries and the
    applications never need more).
    """
    check_positive("n", n)
    check_positive("trials", trials)
    check_probability("p", p)
    u = gen.uniform(n * trials).reshape(n, trials)
    return (u < p).sum(axis=1).astype(np.int64)


def shuffle(gen, items: np.ndarray) -> np.ndarray:
    """Fisher-Yates shuffle driven by the generator; returns a copy.

    Each step's index is drawn through the unbiased Lemire bounded-
    integer path of ``repro.dist`` (rejection, not float multiply), so
    every permutation is exactly equally likely given uniform words.
    """
    arr = np.array(items)
    n = arr.size
    if n <= 1:
        return arr
    ds = _dist_stream(gen)
    for i in range(n - 1, 0, -1):
        j = int(ds.integers(1, 0, i + 1)[0])
        arr[i], arr[j] = arr[j], arr[i]
    return arr


def choice_index(gen, n: int, weights: np.ndarray) -> np.ndarray:
    """``n`` indices sampled proportionally to ``weights`` (inversion)."""
    check_positive("n", n)
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if (w < 0).any() or w.sum() <= 0:
        raise ValueError("weights must be non-negative with positive sum")
    cdf = np.cumsum(w / w.sum())
    cdf[-1] = 1.0
    return np.searchsorted(cdf, gen.uniform(n), side="right").astype(np.int64)
