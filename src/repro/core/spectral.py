"""Spectral and combinatorial analysis of the expander construction.

The PRNG's quality argument rests on the rapid mixing of random walks on
expanders (Hoory-Linial-Wigderson, cited as [11] in the paper).  This
module makes that argument *checkable* on small instances:

* build the explicit transition matrix of the walk for small ``m``;
* compute the spectral gap / second eigenvalue modulus;
* derive mixing-time estimates;
* compute the exact edge expansion ``alpha(G)`` by brute force on tiny
  graphs and compare with the Gabber-Galil bound ``(2 - sqrt(3)) / 2``.

None of this runs in the hot generation path; it exists for validation,
tests, and the ablation benchmarks.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.expander import DEGREE, GabberGalilExpander

__all__ = [
    "transition_matrix",
    "second_eigenvalue_modulus",
    "spectral_gap",
    "mixing_time_bound",
    "edge_expansion_exact",
    "total_variation_from_uniform",
    "walk_distribution",
    "FAMILY_SECOND_EIGENVALUE",
    "recommended_walk_length",
]

#: |lambda_2| of the 7-way walk, measured to be exactly 5/7 for every
#: family member checked (m = 4..32; see tests) -- the walk includes the
#: identity map, so it is 1/7-lazy, and the non-lazy part contributes the
#: remaining 5/7 - (some gap).  Used to extrapolate mixing times to the
#: paper's m = 2**32 instance, where the matrix is unbuildable.
FAMILY_SECOND_EIGENVALUE = 5.0 / 7.0


def transition_matrix(graph: GabberGalilExpander) -> sp.csr_matrix:
    """Row-stochastic transition matrix of the 7-way random walk.

    Entry ``P[u, v]`` is the probability of stepping from vertex id ``u``
    to ``v`` when the neighbour index is chosen uniformly from ``0..6``.
    Feasible for ``m`` up to a few hundred (``n = m^2`` states).
    """
    m = graph.m
    n = m * m
    if n > 1_000_000:
        raise ValueError(f"transition matrix with n={n} states is too large")
    xs, ys = np.divmod(np.arange(n, dtype=np.int64), m)
    rows = []
    cols = []
    for k in range(DEGREE):
        nx, ny = graph.neighbor_arrays(xs, ys, np.full(n, k))
        rows.append(np.arange(n, dtype=np.int64))
        cols.append(nx.astype(np.int64) * m + ny.astype(np.int64))
    data = np.full(n * DEGREE, 1.0 / DEGREE)
    P = sp.coo_matrix(
        (data, (np.concatenate(rows), np.concatenate(cols))), shape=(n, n)
    )
    return P.tocsr()


def second_eigenvalue_modulus(graph: GabberGalilExpander) -> float:
    """|lambda_2| of the walk's transition matrix (1.0 means no mixing)."""
    P = transition_matrix(graph)
    n = P.shape[0]
    if n <= 64:
        vals = np.linalg.eigvals(P.toarray())
    else:
        vals = spla.eigs(P, k=min(6, n - 2), which="LM", return_eigenvectors=False)
    mods = np.sort(np.abs(vals))[::-1]
    # Drop the leading eigenvalue(s) equal to 1 (stationary distribution).
    idx = 0
    while idx < len(mods) and mods[idx] > 1.0 - 1e-9:
        idx += 1
    return float(mods[idx]) if idx < len(mods) else 0.0


def spectral_gap(graph: GabberGalilExpander) -> float:
    """``1 - |lambda_2|`` of the walk; larger means faster mixing."""
    return 1.0 - second_eigenvalue_modulus(graph)


def mixing_time_bound(graph: GabberGalilExpander, eps: float = 1.0 / 64) -> float:
    """Standard upper bound on steps to come within ``eps`` of uniform.

    ``t(eps) <= log(n / eps) / log(1 / |lambda_2|)``; returns ``inf`` when
    the gap is zero.
    """
    lam = second_eigenvalue_modulus(graph)
    if lam <= 0.0:
        return 0.0
    if lam >= 1.0:
        return float("inf")
    n = graph.num_vertices
    return float(np.log(n / eps) / np.log(1.0 / lam))


def edge_expansion_exact(graph: GabberGalilExpander) -> float:
    """Exact ``alpha(G) = min_{|U| <= n/2} |E(U, ~U)| / |U|`` by brute force.

    Only feasible for tiny graphs (``m <= 4``; n = 16 vertices means ~39k
    subsets).  Edges are the multigraph edges of the 7 neighbour maps on
    the single vertex set (self-loops from map 0 never leave ``U`` and are
    not counted as boundary).
    """
    m = graph.m
    n = m * m
    if n > 16:
        raise ValueError(f"exact edge expansion infeasible for n={n} > 16")
    xs, ys = np.divmod(np.arange(n, dtype=np.int64), m)
    targets = np.empty((DEGREE, n), dtype=np.int64)
    for k in range(DEGREE):
        nx, ny = graph.neighbor_arrays(xs, ys, np.full(n, k))
        targets[k] = nx.astype(np.int64) * m + ny.astype(np.int64)

    best = float("inf")
    verts = list(range(n))
    for size in range(1, n // 2 + 1):
        for U in combinations(verts, size):
            inU = np.zeros(n, dtype=bool)
            inU[list(U)] = True
            boundary = 0
            for k in range(DEGREE):
                boundary += int(np.count_nonzero(inU & ~inU[targets[k]]))
            best = min(best, boundary / size)
    return best


def walk_distribution(
    graph: GabberGalilExpander, start: int, steps: int
) -> np.ndarray:
    """Distribution of the walk after ``steps`` uniform-neighbour steps."""
    P = transition_matrix(graph)
    dist = np.zeros(P.shape[0])
    dist[start] = 1.0
    for _ in range(steps):
        dist = dist @ P
    return np.asarray(dist).ravel()


def total_variation_from_uniform(dist: np.ndarray) -> float:
    """Total-variation distance of ``dist`` from the uniform distribution."""
    n = dist.size
    return float(0.5 * np.abs(dist - 1.0 / n).sum())


def recommended_walk_length(m: int = 2**32, eps: float = 2.0**-10) -> int:
    """Walk length for worst-case eps-mixing on the m-instance.

    Standard bound with the family's measured ``|lambda_2| = 5/7``:
    ``t >= log(n / eps) / log(1 / lambda)`` with ``n = m**2``.  For the
    paper's ``m = 2**32`` and eps = 2**-10 this gives ~152 steps --
    *larger* than the paper's l = 64.  The paper's choice is defensible
    because successive ``GetNextRand`` calls continue one long walk (the
    64 steps are per-output spacing, not a cold start), but callers
    seeding fresh walkers for worst-case-independent outputs should use
    this bound instead.
    """
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    if not 0 < eps < 1:
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    n = float(m) * float(m)
    lam = FAMILY_SECOND_EIGENVALUE
    return int(np.ceil(np.log(n / eps) / np.log(1.0 / lam)))
