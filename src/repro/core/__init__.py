"""The paper's primary contribution: the expander-walk on-demand PRNG."""

from repro.core.amplification import (
    AmplificationResult,
    amplify,
    independent_bit_cost,
    walk_seeds,
)
from repro.core.expander import (
    DEGREE,
    EDGE_EXPANSION_LOWER_BOUND,
    GabberGalilExpander,
)
from repro.core.state import capture_state, restore_state
from repro.core.streams import derive_seed, spawn_parallel_streams, spawn_streams
from repro.core.generator import DEFAULT_WALK_LENGTH, ExpanderWalkPRNG
from repro.core.parallel import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_NUM_THREADS,
    AddressableExpanderPRNG,
    ParallelExpanderPRNG,
)
from repro.core.walk import (
    FIXED_CONSUMPTION_POLICIES,
    POLICIES,
    WalkEngine,
    WalkState,
)

__all__ = [
    "AmplificationResult",
    "amplify",
    "independent_bit_cost",
    "walk_seeds",
    "capture_state",
    "restore_state",
    "derive_seed",
    "spawn_parallel_streams",
    "spawn_streams",
    "DEGREE",
    "EDGE_EXPANSION_LOWER_BOUND",
    "GabberGalilExpander",
    "DEFAULT_WALK_LENGTH",
    "ExpanderWalkPRNG",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_NUM_THREADS",
    "AddressableExpanderPRNG",
    "ParallelExpanderPRNG",
    "FIXED_CONSUMPTION_POLICIES",
    "POLICIES",
    "WalkEngine",
    "WalkState",
]
