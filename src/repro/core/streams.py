"""Independent substreams of the hybrid generator.

Parallel applications (each MPI rank, each host thread, each experiment
repetition) need statistically independent generators that are still
reproducible from one master seed.  Substreams are derived by running the
master seed through SplitMix64 -- each child feed starts 2**64/phi apart
in SplitMix64's Weyl sequence, so child streams never overlap in
practice -- and every child is a fully independent walker bank on the
expander.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bitsource.counter import SplitMix64Source, splitmix64
from repro.core.expander import GabberGalilExpander
from repro.core.generator import DEFAULT_WALK_LENGTH, ExpanderWalkPRNG
from repro.core.parallel import ParallelExpanderPRNG
from repro.utils.checks import check_positive

__all__ = ["spawn_streams", "spawn_parallel_streams", "derive_seed"]


def derive_seed(master_seed: int, index: int) -> int:
    """The ``index``-th child seed of ``master_seed`` (SplitMix64 mix)."""
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    mixed = splitmix64(
        np.uint64((master_seed ^ (index * 0x9E3779B97F4A7C15)) & (2**64 - 1))
    )
    return int(mixed[()] if mixed.shape == () else mixed)


def spawn_streams(
    master_seed: int,
    count: int,
    walk_length: int = DEFAULT_WALK_LENGTH,
    graph: Optional[GabberGalilExpander] = None,
) -> List[ExpanderWalkPRNG]:
    """``count`` independent single-stream generators from one seed."""
    check_positive("count", count)
    return [
        ExpanderWalkPRNG(
            bit_source=SplitMix64Source(derive_seed(master_seed, i)),
            walk_length=walk_length,
            graph=graph,
        )
        for i in range(count)
    ]


def spawn_parallel_streams(
    master_seed: int,
    count: int,
    num_threads: int = 4096,
    walk_length: int = DEFAULT_WALK_LENGTH,
) -> List[ParallelExpanderPRNG]:
    """``count`` independent walker banks from one seed."""
    check_positive("count", count)
    return [
        ParallelExpanderPRNG(
            num_threads=num_threads,
            bit_source=SplitMix64Source(derive_seed(master_seed, i)),
            walk_length=walk_length,
        )
        for i in range(count)
    ]
