"""The on-demand expander-walk PRNG (Algorithms 1 and 2 of the paper).

:class:`ExpanderWalkPRNG` is the single-stream generator: one walker on
the Gabber-Galil graph whose ``get_next_rand()`` performs a fresh
``l = 64``-step walk and returns the destination's 64-bit vertex id --
the direct analogue of one GPU thread servicing ``GetNextRand()`` calls.

For bulk, many-threaded generation use
:class:`repro.core.parallel.ParallelExpanderPRNG`, which runs thousands of
walkers in lockstep (one NumPy lane per GPU thread).
"""

from __future__ import annotations

from typing import Optional

from repro.backend import host_np as np
from repro.bitsource.base import BitSource
from repro.bitsource.glibc import GlibcRandom
from repro.core.expander import GabberGalilExpander
from repro.core.walk import WalkEngine, WalkState
from repro.utils.bits import u01_from_u64
from repro.utils.checks import check_positive

__all__ = ["ExpanderWalkPRNG", "DEFAULT_WALK_LENGTH"]

#: Walk length used throughout the paper (Section III-B).
DEFAULT_WALK_LENGTH = 64


class ExpanderWalkPRNG:
    """On-demand PRNG from random walks on an expander graph.

    Parameters
    ----------
    seed : int, optional
        Seed for the default bit source.  Ignored when ``bit_source`` is
        given already constructed.
    graph : GabberGalilExpander, optional
        Defaults to the paper's ``m = 2**32`` graph (64-bit outputs).
    bit_source : BitSource, optional
        CPU feed; defaults to :class:`~repro.bitsource.glibc.GlibcRandom`
        (the paper's choice).
    walk_length : int
        Steps per emitted number (paper: 64).
    policy : str
        Neighbour-selection policy, see :mod:`repro.core.walk`.
    backend : str | Backend, optional
        Array backend for the walk kernel (see :mod:`repro.backend`).
        Defaults to the process default (NumPy).

    Examples
    --------
    >>> prng = ExpanderWalkPRNG(seed=7)
    >>> value = prng.get_next_rand()      # a fresh 64-bit number, on demand
    >>> 0 <= value < 2**64
    True
    """

    def __init__(
        self,
        seed: int = 0,
        graph: Optional[GabberGalilExpander] = None,
        bit_source: Optional[BitSource] = None,
        walk_length: int = DEFAULT_WALK_LENGTH,
        policy: str = "reject",
        backend=None,
    ):
        check_positive("walk_length", walk_length)
        self.graph = graph if graph is not None else GabberGalilExpander()
        self.source = (
            bit_source if bit_source is not None else GlibcRandom(seed)
        )
        self.walk_length = int(walk_length)
        self.engine = WalkEngine(self.graph, policy=policy, backend=backend)
        self._state: Optional[WalkState] = None
        self.numbers_generated = 0
        self.initialize()

    # ------------------------------------------------------------------
    # Algorithm 1: InitializeGenerator
    # ------------------------------------------------------------------

    def initialize(self) -> None:
        """Place the walker at a feed-chosen vertex and mix for 64 steps."""
        start = self.source.words64(1)
        self._state = self.engine.make_state(start)
        self.engine.walk(self._state, self.source, self.walk_length)
        self.numbers_generated = 0

    # ------------------------------------------------------------------
    # Algorithm 2: GetNextRand
    # ------------------------------------------------------------------

    def get_next_rand(self) -> int:
        """Walk ``l`` steps and return the destination vertex id (on demand)."""
        self.engine.walk(self._state, self.source, self.walk_length)
        self.numbers_generated += 1
        return int(self.engine.outputs(self._state)[0])

    def next_batch(self, n: int) -> np.ndarray:
        """``n`` consecutive on-demand numbers from this single stream."""
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        out = np.empty(n, dtype=np.uint64)
        for i in range(n):
            self.engine.walk(self._state, self.source, self.walk_length)
            out[i] = self.engine.outputs(self._state)[0]
        self.numbers_generated += n
        return out

    # ------------------------------------------------------------------
    # Convenience distributions
    # ------------------------------------------------------------------

    def random(self, n: Optional[int] = None):
        """Uniform float(s) in [0, 1) (53-bit resolution)."""
        if n is None:
            return float(u01_from_u64(np.uint64(self.get_next_rand()))[0])
        return u01_from_u64(self.next_batch(n))

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi)`` via unbiased rejection."""
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        span = hi - lo
        limit = (2**64 // span) * span
        while True:
            v = self.get_next_rand()
            if v < limit:
                return lo + (v % span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def position(self) -> tuple:
        """Current walk vertex ``(x, y)``."""
        return int(self._state.x[0]), int(self._state.y[0])

    @property
    def bits_consumed(self) -> int:
        """Feed bits consumed so far (3 per chunk draw)."""
        return 3 * self._state.chunks_consumed

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ExpanderWalkPRNG(m={self.graph.m}, l={self.walk_length}, "
            f"policy={self.engine.policy!r}, feed={self.source.name!r})"
        )
