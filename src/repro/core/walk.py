"""Vectorized random-walk engine over the Gabber-Galil expander.

One NumPy lane corresponds to one GPU thread of the paper: every lane
holds a current vertex ``(x, y)`` and advances independently, consuming
3 bits of the CPU feed per step to choose among the 7 neighbour maps.

The paper (Algorithms 1 and 2) masks 3 bits per step out of the feed but
never says what happens when those bits read ``111`` (7), which does not
name a neighbour.  Three policies are implemented and ablated:

``reject``
    Redraw until the 3 bits name a neighbour.  Unbiased -- the walk is the
    exact uniform 7-way walk whose stationary distribution is uniform.
    Costs a factor 8/7 in feed bits.  **Default.**
``mod``
    Use ``k = bits % 7``.  Cheapest and branch-free (what a CUDA kernel
    would most plausibly do) but gives neighbour 0 probability 2/8.
``lazy``
    Map 7 to 0 (the identity map), i.e. a lazy walk that stays put with
    probability 2/8.  Same bit cost as ``mod``; bias only towards
    self-loops, which provably cannot hurt the stationary distribution.

The stream contract
-------------------
A walker bank's trajectory is a pure function of ``(start vertices,
feed, policy)`` -- *never* of how callers slice their requests.  The
feed is consumed as one canonical chunk stream: whole 64-bit words are
pulled in order, each yielding 21 chunks, and the tail chunks of the
last word are buffered on the :class:`WalkState` (``feed_buffer``)
instead of being discarded.  Under the ``reject`` policy, redraws for a
step happen *immediately after* that step's base chunks, before the
next step draws anything.  Consequences, guaranteed by tests:

* ``walk(state, src, a)`` then ``walk(state, src, b)`` equals
  ``walk(state, src, a + b)``;
* ``length`` repeated ``step()`` calls equal one ``walk(length)``,
  bit-for-bit, under all three policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backend import Backend, get_backend, host_np as np
from repro.bitsource.base import BitSource
from repro.core.expander import DEGREE, GabberGalilExpander
from repro.utils.checks import check_positive

__all__ = [
    "WalkEngine",
    "WalkState",
    "POLICIES",
    "FIXED_CONSUMPTION_POLICIES",
    "CHUNKS_PER_WORD",
]

POLICIES = ("reject", "mod", "lazy")

#: Policies that consume exactly one chunk per walker step.  Only these
#: admit offset-addressable streams: the feed position of any step is a
#: closed-form function of the step index, so a walk can start at an
#: arbitrary offset without replaying the chunks before it.  'reject'
#: redraws a data-dependent number of chunks and is excluded.
FIXED_CONSUMPTION_POLICIES = ("mod", "lazy")

#: 3-bit chunks yielded per 64-bit feed word (the last bit is unused).
CHUNKS_PER_WORD = 21

#: Prefetch quantum for feed-buffer refills.  Below it, refills round
#: the cumulative word demand up to a power of two (so small banks ramp
#: geometrically instead of paying a 4096-word first fetch); above it,
#: demand rounds up to a multiple of this quantum.  Refill granularity
#: amortizes chunk extraction across steps; it cannot affect emitted
#: values, because the chunk stream is a fixed function of the word
#: stream and buffered chunks are consumed strictly in order.
PREFETCH_WORDS = 1 << 12

_U8 = np.uint8


def _empty_chunks() -> np.ndarray:
    return np.empty(0, dtype=np.uint8)


def _acopy(a):
    """Backend-agnostic array copy (torch spells it ``clone``)."""
    try:
        return a.copy()
    except AttributeError:
        return a.clone()


@dataclass
class WalkState:
    """Positions of a bank of independent walkers (one lane per GPU thread)."""

    x: np.ndarray
    y: np.ndarray
    #: Total steps taken by each call into the engine (aggregate, not per lane).
    steps_taken: int = 0
    #: Total 3-bit chunks drawn from the feed (includes rejected draws).
    chunks_consumed: int = 0
    #: Chunks already pulled from the feed but not yet consumed: the tail
    #: of the last 64-bit word.  Part of the stream state -- it is what
    #: makes feed consumption independent of how draws are sliced.
    feed_buffer: np.ndarray = field(default_factory=_empty_chunks)

    def __post_init__(self):
        if self.x.shape != self.y.shape:
            raise ValueError("x and y must have identical shapes")

    @property
    def num_walkers(self) -> int:
        # x is always 1-D; shape[0] (not .size) keeps torch tensors,
        # whose .size is a method, working as positions.
        return int(self.x.shape[0])

    def copy(self) -> "WalkState":
        return WalkState(
            _acopy(self.x),
            _acopy(self.y),
            self.steps_taken,
            self.chunks_consumed,
            self.feed_buffer.copy(),
        )


class WalkEngine:
    """Advances banks of walkers on a :class:`GabberGalilExpander`.

    Stepping is branch-free: per-``k`` lookup tables turn the 7 neighbour
    maps into two fused affine updates (``x += isX[k] * (2y + cX[k])``,
    ``y += isY[k] * (2x + cY[k])``), which is also exactly how a CUDA
    kernel would avoid warp divergence.

    Parameters
    ----------
    graph : GabberGalilExpander
    policy : str
        One of :data:`POLICIES`; see module docstring.
    fused : bool
        Use the packed double-buffer kernel (native graphs only).
    backend : str | Backend | None
        Array backend for walker positions and the step kernel (see
        :mod:`repro.backend`).  ``None`` resolves the process default
        (NumPy unless overridden).  Non-host backends require the
        native ``m = 2**32`` graph and always run the fused kernel;
        a non-native graph silently falls back to the host backend.
        Feed chunks are drawn on the host either way and uploaded
        once per bulk walk.
    """

    def __init__(
        self,
        graph: GabberGalilExpander,
        policy: str = "reject",
        fused: bool = True,
        backend=None,
    ):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        self.graph = graph
        self.policy = policy
        dtype = np.uint32 if graph.m == 2**32 else np.uint64
        self._dtype = dtype
        be = get_backend(backend)
        if not be.is_host and graph.m != 2**32:
            be = get_backend("numpy")
        self.backend: Backend = be
        self._be_host = be.is_host
        self._xp = be.xp
        # Lookup tables over k = 0..7 (index 7 only reachable pre-policy).
        is_y = np.array([0, 1, 1, 1, 0, 0, 0, 0], dtype=dtype)
        c_y = np.array([0, 0, 1, 2, 0, 0, 0, 0], dtype=dtype)
        is_x = np.array([0, 0, 0, 0, 1, 1, 1, 0], dtype=dtype)
        c_x = np.array([0, 0, 0, 0, 0, 1, 2, 0], dtype=dtype)
        self._luts = (is_y, c_y, is_x, c_x)
        # Fused tables for the fast path: y' = y + a_y[k]*x + c_y[k],
        # x' = x + a_x[k]*y + c_x[k]  (a = 2*is; the c term is already
        # zero wherever `is` is zero, so no second mask is needed).
        self._a_y = (dtype(2) * is_y).astype(dtype)
        self._a_x = (dtype(2) * is_x).astype(dtype)
        # Packed (2, 8) tables for the fused kernel: with positions held
        # as a (2, n) array `pos` (row 0 = x, row 1 = y) the whole step
        # is one broadcast update,
        #     pos' = pos + a2[:, k] * pos[::-1] + c2[:, k],
        # because x reads y and y reads x (`pos[::-1]` swaps the rows)
        # and at most one row's coefficient is nonzero per k.
        # constant() is the identity on the host backend, so these stay
        # the plain numpy stacks there; non-host backends get memoized
        # device-resident copies (one upload, ever).
        self._a2 = be.constant(np.stack([self._a_x, self._a_y]))
        self._c2 = be.constant(np.stack([c_x, c_y]))
        # The fused kernel relies on uint32 wraparound (native m only).
        # Non-host backends only ship the fused kernel.
        self._fused = (bool(fused) and dtype is np.uint32) or not be.is_host

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------

    def make_state(self, start_words: np.ndarray) -> WalkState:
        """Create walkers whose start vertices come from 64-bit seed words.

        This is the "64 random bits to select the starting position" of
        Algorithm 1: word ``w`` places a walker at vertex ``unpack(w)``.
        For ``m < 2**32`` coordinates are reduced mod m.
        """
        start_words = np.atleast_1d(np.asarray(start_words, dtype=np.uint64))
        x, y = self.graph.unpack(start_words)
        if self.graph.m != 2**32:
            x = x % np.uint64(self.graph.m)
            y = y % np.uint64(self.graph.m)
        dtype = np.uint32 if self.graph.m == 2**32 else np.uint64
        x = x.astype(dtype)
        y = y.astype(dtype)
        if not self._be_host:
            x = self.backend.from_host(x)
            y = self.backend.from_host(y)
        return WalkState(x, y)

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    @staticmethod
    def _take_chunks(state: WalkState, source: BitSource, n: int) -> np.ndarray:
        """The next ``n`` chunks of the canonical chunk stream.

        Words are pulled whole (21 chunks each) and the tail is kept in
        ``state.feed_buffer``, so the *values* drawn are a fixed function
        of the word stream regardless of request slicing.  The number of
        words *read ahead* is too: a refill pulls up to ``F(T)`` total
        words, where ``T`` is the cumulative chunks requested so far and
        ``F`` rounds ``ceil(T / 21)`` up to a power of two (below
        :data:`PREFETCH_WORDS`) or to a multiple of the quantum (above).
        Because ``F`` is a monotone pure function of ``T`` and its image
        is totally ordered, any two request patterns with the same total
        demand leave the source at the same position -- while small
        banks ramp up geometrically instead of over-fetching thousands
        of words on their first step.

        The returned slice may view already-consumed buffer memory;
        callers may mutate it freely (nothing re-reads it).
        """
        buf = state.feed_buffer
        if buf.size >= n:
            state.feed_buffer = buf[n:]
            return buf[:n]
        deficit = n - buf.size
        # Invariant: every chunk requested so far has been counted into
        # ``chunks_consumed`` (callers increment right after each take),
        # so words pulled so far = (consumed + buffered) / 21, exactly.
        pulled = (state.chunks_consumed + buf.size) // CHUNKS_PER_WORD
        need = -(-(state.chunks_consumed + n) // CHUNKS_PER_WORD)
        if need <= PREFETCH_WORDS:
            target = 1 << (need - 1).bit_length()
        else:
            target = -(-need // PREFETCH_WORDS) * PREFETCH_WORDS
        fresh = source.chunks3((target - pulled) * CHUNKS_PER_WORD)
        state.feed_buffer = fresh[deficit:]
        if not buf.size:
            return fresh[:deficit]
        return np.concatenate([buf, fresh[:deficit]])

    def _draw_indices(self, n: int, source: BitSource, state: WalkState) -> np.ndarray:
        """Draw ``n`` neighbour indices (0..6) under the configured policy.

        The returned array may be any shape-(n,) uint8; the 'reject' policy
        redraws offending entries in vectorized rounds (expected < 2),
        taking each redraw batch from the same canonical chunk stream.
        """
        chunks = self._take_chunks(state, source, n)
        state.chunks_consumed += n
        if self.policy in FIXED_CONSUMPTION_POLICIES:
            return self.indices_from_chunks(chunks)
        # 'reject': redraw lanes that read 111 until none remain.  Track
        # offending indices so each round only touches the shrinking
        # rejection set instead of rescanning the full array.
        idx = np.flatnonzero(chunks == _U8(7))
        while idx.size:
            redraw = self._take_chunks(state, source, idx.size)
            state.chunks_consumed += idx.size
            chunks[idx] = redraw
            idx = idx[redraw == _U8(7)]
        return chunks

    def indices_from_chunks(self, chunks: np.ndarray) -> np.ndarray:
        """Map raw 3-bit chunks to neighbour indices, no feed interaction.

        Only valid for the fixed-consumption policies (one chunk per
        step): 'mod' folds 7 onto 0 via subtraction, 'lazy' maps 7 to
        the identity neighbour.  'reject' consumes a data-dependent
        number of chunks per step and therefore has no chunk-pure
        mapping -- offset-addressable streams cannot use it.
        """
        if self.policy == "mod":
            return np.where(chunks >= DEGREE, chunks - _U8(DEGREE), chunks)
        if self.policy == "lazy":
            return np.where(chunks == _U8(7), _U8(0), chunks)
        raise ValueError(
            "policy 'reject' consumes a data-dependent number of chunks; "
            f"only fixed-consumption policies {FIXED_CONSUMPTION_POLICIES} "
            "map pre-drawn chunks to indices"
        )

    # -- fused kernel plumbing -----------------------------------------

    def _fused_buffers(self, state: WalkState):
        """Per-state (2, n) double-buffer scratch for the fused kernel.

        ``state.x`` / ``state.y`` are row views into the current buffer
        after a fused step; the stored view identities detect external
        reassignment (snapshot restore, legacy interleave, fresh state)
        and copy the positions back in.  Returns ``(cur, nxt, ta, tc)``
        with ``cur`` holding the current positions.
        """
        n = state.num_walkers
        bufs = getattr(state, "_fused_bufs", None)
        if bufs is None or bufs[0].shape[1] != n:
            xp = self._xp
            u32 = self.backend.uint32
            bufs = tuple(xp.empty((2, n), dtype=u32) for _ in range(4))
            state._fused_bufs = bufs
            state._fused_xy = (None, None)
        cur = bufs[0]
        xv, yv = state._fused_xy
        if state.x is not xv or state.y is not yv:
            cur[0] = state.x
            cur[1] = state.y
        return bufs

    def _fused_commit(self, state: WalkState, cur, nxt, ta, tc) -> None:
        """Publish ``cur`` as the new positions and keep the buffers."""
        state._fused_bufs = (cur, nxt, ta, tc)
        x, y = cur[0], cur[1]
        state.x = x
        state.y = y
        state._fused_xy = (x, y)

    def _apply_indices_fused(self, state: WalkState, ks) -> None:
        """One fused step: 5 small ``xp`` calls, zero allocations.

        On the host backend ``xp`` is numpy and this is the identical
        call sequence as always; non-host backends run the same five
        ops device-resident (``ks`` is uploaded here if the caller did
        not pre-stage it with :meth:`Backend.device_index`).
        """
        xp = self._xp
        cur, nxt, ta, tc = self._fused_buffers(state)
        if not self._be_host:
            ks = self.backend.device_index(ks)
        xp.take(self._a2, ks, axis=1, out=ta)
        xp.take(self._c2, ks, axis=1, out=tc)
        xp.multiply(ta, self.backend.swap_rows(cur), out=ta)
        xp.add(ta, tc, out=ta)
        xp.add(cur, ta, out=nxt)
        self._fused_commit(state, nxt, cur, ta, tc)
        state.steps_taken += state.num_walkers

    def _apply_indices(self, state: WalkState, ks: np.ndarray) -> None:
        """Advance all walkers by one step given neighbour indices ``ks``.

        Native path (m = 2**32): fused-LUT updates into double-buffered
        scratch arrays -- no per-step allocations, ~2x the throughput of
        the naive expression.  At most one of a_y/a_x is nonzero per k
        (both zero for k == 0), so both updates can read the pre-step
        x and y.
        """
        if self._fused:
            self._apply_indices_fused(state, ks)
            return
        n = state.num_walkers
        if self._dtype is np.uint32:
            # Scratch lives on the state (never shared across states).
            scratch = getattr(state, "_scratch", None)
            if scratch is None or scratch[0].size != n:
                scratch = tuple(np.empty(n, dtype=np.uint32) for _ in range(4))
            t1, t2, nx, ny = scratch
            x, y = state.x, state.y
            np.take(self._a_y, ks, out=t1)
            np.multiply(t1, x, out=t1)
            np.take(self._luts[1], ks, out=t2)  # c_y
            np.add(t1, t2, out=t1)
            np.add(y, t1, out=ny)
            np.take(self._a_x, ks, out=t1)
            np.multiply(t1, y, out=t1)
            np.take(self._luts[3], ks, out=t2)  # c_x
            np.add(t1, t2, out=t1)
            np.add(x, t1, out=nx)
            # Swap: the old position arrays become the next step's scratch.
            state._scratch = (t1, t2, x, y)
            state.x = nx
            state.y = ny
        else:
            is_y, c_y, is_x, c_x = self._luts
            x, y = state.x, state.y
            two = self._dtype(2)
            ny = y + is_y[ks] * (two * x + c_y[ks])
            nx = x + is_x[ks] * (two * y + c_x[ks])
            mm = self._dtype(self.graph.m)
            nx %= mm
            ny %= mm
            state.x = nx
            state.y = ny
        state.steps_taken += state.num_walkers

    def step(self, state: WalkState, source: BitSource) -> None:
        """Advance every walker by one step, in place."""
        ks = self._draw_indices(state.num_walkers, source, state)
        self._apply_indices(state, ks)

    def walk(self, state: WalkState, source: BitSource, length: int) -> None:
        """Advance every walker by ``length`` steps, in place.

        Bit-for-bit equal to ``length`` separate :meth:`step` calls under
        every policy (the stream contract).  For 'mod' and 'lazy' that
        equivalence lets all ``length * n`` chunks be drawn in one bulk
        request (step-major order) -- the chunk stream is continuous, so
        slicing cannot change it.  'reject' must interleave each step's
        redraws with the next step's base draw, so it steps one at a
        time.
        """
        check_positive("length", length)
        if self.policy == "reject":
            for _ in range(length):
                self.step(state, source)
            return
        n = state.num_walkers
        ks = self._draw_indices(length * n, source, state).reshape(length, n)
        if not self._be_host:
            # One host->device copy for the whole block; row slices of
            # the uploaded array pass through device_index untouched.
            ks = self.backend.device_index(ks)
        for i in range(length):
            self._apply_indices(state, ks[i])

    def outputs(self, state: WalkState) -> np.ndarray:
        """Current vertex ids of all walkers -- the emitted random numbers.

        Always a host ``uint64`` array: delivery is host-side by
        contract, so non-host backends pay their single device->host
        copy here.
        """
        if not self._be_host:
            return self.backend.pack_pairs_to_host(state.x, state.y)
        return self.graph.pack(state.x, state.y)

    def outputs_into(self, state: WalkState, out: np.ndarray) -> None:
        """Write the walkers' vertex ids into ``out`` (uint64, size n).

        The zero-copy delivery primitive: for the native graph the pack
        ``(x << 32) | y`` is computed in-place in the caller's buffer,
        with no intermediate array.
        """
        if tuple(out.shape) != tuple(state.x.shape):
            raise ValueError(
                f"out has shape {tuple(out.shape)}, expected {tuple(state.x.shape)}"
            )
        if not self._be_host:
            # The delivery boundary: one device->host copy, landed
            # directly in the caller's buffer.
            out[...] = self.backend.pack_pairs_to_host(state.x, state.y)
            return
        if self._dtype is np.uint32 and out.dtype == np.uint64:
            np.copyto(out, state.x, casting="safe")
            np.left_shift(out, np.uint64(32), out=out)
            np.bitwise_or(out, state.y, out=out)
            return
        out[...] = self.graph.pack(state.x, state.y)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def expected_chunks_per_step(self) -> float:
        """Mean 3-bit chunks consumed per walker step under the policy."""
        return 8.0 / 7.0 if self.policy == "reject" else 1.0

    def bits_per_number(self, walk_length: int) -> float:
        """Mean feed bits consumed to emit one random number."""
        return 3.0 * self.expected_chunks_per_step() * walk_length
