"""Vectorized random-walk engine over the Gabber-Galil expander.

One NumPy lane corresponds to one GPU thread of the paper: every lane
holds a current vertex ``(x, y)`` and advances independently, consuming
3 bits of the CPU feed per step to choose among the 7 neighbour maps.

The paper (Algorithms 1 and 2) masks 3 bits per step out of the feed but
never says what happens when those bits read ``111`` (7), which does not
name a neighbour.  Three policies are implemented and ablated:

``reject``
    Redraw until the 3 bits name a neighbour.  Unbiased -- the walk is the
    exact uniform 7-way walk whose stationary distribution is uniform.
    Costs a factor 8/7 in feed bits.  **Default.**
``mod``
    Use ``k = bits % 7``.  Cheapest and branch-free (what a CUDA kernel
    would most plausibly do) but gives neighbour 0 probability 2/8.
``lazy``
    Map 7 to 0 (the identity map), i.e. a lazy walk that stays put with
    probability 2/8.  Same bit cost as ``mod``; bias only towards
    self-loops, which provably cannot hurt the stationary distribution.

The stream contract
-------------------
A walker bank's trajectory is a pure function of ``(start vertices,
feed, policy)`` -- *never* of how callers slice their requests.  The
feed is consumed as one canonical chunk stream: whole 64-bit words are
pulled in order, each yielding 21 chunks, and the tail chunks of the
last word are buffered on the :class:`WalkState` (``feed_buffer``)
instead of being discarded.  Under the ``reject`` policy, redraws for a
step happen *immediately after* that step's base chunks, before the
next step draws anything.  Consequences, guaranteed by tests:

* ``walk(state, src, a)`` then ``walk(state, src, b)`` equals
  ``walk(state, src, a + b)``;
* ``length`` repeated ``step()`` calls equal one ``walk(length)``,
  bit-for-bit, under all three policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitsource.base import BitSource
from repro.core.expander import DEGREE, GabberGalilExpander
from repro.utils.checks import check_positive

__all__ = ["WalkEngine", "WalkState", "POLICIES", "CHUNKS_PER_WORD"]

POLICIES = ("reject", "mod", "lazy")

#: 3-bit chunks yielded per 64-bit feed word (the last bit is unused).
CHUNKS_PER_WORD = 21

#: Minimum words pulled per feed-buffer refill.  Refill granularity
#: amortizes chunk extraction across steps; it cannot affect emitted
#: values, because the chunk stream is a fixed function of the word
#: stream and buffered chunks are consumed strictly in order.
PREFETCH_WORDS = 1 << 12

_U8 = np.uint8


def _empty_chunks() -> np.ndarray:
    return np.empty(0, dtype=np.uint8)


@dataclass
class WalkState:
    """Positions of a bank of independent walkers (one lane per GPU thread)."""

    x: np.ndarray
    y: np.ndarray
    #: Total steps taken by each call into the engine (aggregate, not per lane).
    steps_taken: int = 0
    #: Total 3-bit chunks drawn from the feed (includes rejected draws).
    chunks_consumed: int = 0
    #: Chunks already pulled from the feed but not yet consumed: the tail
    #: of the last 64-bit word.  Part of the stream state -- it is what
    #: makes feed consumption independent of how draws are sliced.
    feed_buffer: np.ndarray = field(default_factory=_empty_chunks)

    def __post_init__(self):
        if self.x.shape != self.y.shape:
            raise ValueError("x and y must have identical shapes")

    @property
    def num_walkers(self) -> int:
        return self.x.size

    def copy(self) -> "WalkState":
        return WalkState(
            self.x.copy(),
            self.y.copy(),
            self.steps_taken,
            self.chunks_consumed,
            self.feed_buffer.copy(),
        )


class WalkEngine:
    """Advances banks of walkers on a :class:`GabberGalilExpander`.

    Stepping is branch-free: per-``k`` lookup tables turn the 7 neighbour
    maps into two fused affine updates (``x += isX[k] * (2y + cX[k])``,
    ``y += isY[k] * (2x + cY[k])``), which is also exactly how a CUDA
    kernel would avoid warp divergence.

    Parameters
    ----------
    graph : GabberGalilExpander
    policy : str
        One of :data:`POLICIES`; see module docstring.
    """

    def __init__(self, graph: GabberGalilExpander, policy: str = "reject"):
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
        self.graph = graph
        self.policy = policy
        dtype = np.uint32 if graph.m == 2**32 else np.uint64
        self._dtype = dtype
        # Lookup tables over k = 0..7 (index 7 only reachable pre-policy).
        is_y = np.array([0, 1, 1, 1, 0, 0, 0, 0], dtype=dtype)
        c_y = np.array([0, 0, 1, 2, 0, 0, 0, 0], dtype=dtype)
        is_x = np.array([0, 0, 0, 0, 1, 1, 1, 0], dtype=dtype)
        c_x = np.array([0, 0, 0, 0, 0, 1, 2, 0], dtype=dtype)
        self._luts = (is_y, c_y, is_x, c_x)
        # Fused tables for the fast path: y' = y + a_y[k]*x + c_y[k],
        # x' = x + a_x[k]*y + c_x[k]  (a = 2*is; the c term is already
        # zero wherever `is` is zero, so no second mask is needed).
        self._a_y = (dtype(2) * is_y).astype(dtype)
        self._a_x = (dtype(2) * is_x).astype(dtype)

    # ------------------------------------------------------------------
    # State construction
    # ------------------------------------------------------------------

    def make_state(self, start_words: np.ndarray) -> WalkState:
        """Create walkers whose start vertices come from 64-bit seed words.

        This is the "64 random bits to select the starting position" of
        Algorithm 1: word ``w`` places a walker at vertex ``unpack(w)``.
        For ``m < 2**32`` coordinates are reduced mod m.
        """
        start_words = np.atleast_1d(np.asarray(start_words, dtype=np.uint64))
        x, y = self.graph.unpack(start_words)
        if self.graph.m != 2**32:
            x = x % np.uint64(self.graph.m)
            y = y % np.uint64(self.graph.m)
        dtype = np.uint32 if self.graph.m == 2**32 else np.uint64
        return WalkState(x.astype(dtype), y.astype(dtype))

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------

    @staticmethod
    def _take_chunks(state: WalkState, source: BitSource, n: int) -> np.ndarray:
        """The next ``n`` chunks of the canonical chunk stream.

        Words are pulled whole (21 chunks each) and the tail is kept in
        ``state.feed_buffer``, so after any call pattern that consumed
        ``T`` chunks in total, exactly ``ceil(T / 21)`` feed words have
        been read.  The returned slice may view already-consumed buffer
        memory; callers may mutate it freely (nothing re-reads it).
        """
        buf = state.feed_buffer
        if buf.size >= n:
            state.feed_buffer = buf[n:]
            return buf[:n]
        deficit = n - buf.size
        nwords = max(-(-deficit // CHUNKS_PER_WORD), PREFETCH_WORDS)
        fresh = source.chunks3(nwords * CHUNKS_PER_WORD)
        state.feed_buffer = fresh[deficit:]
        if not buf.size:
            return fresh[:deficit]
        return np.concatenate([buf, fresh[:deficit]])

    def _draw_indices(self, n: int, source: BitSource, state: WalkState) -> np.ndarray:
        """Draw ``n`` neighbour indices (0..6) under the configured policy.

        The returned array may be any shape-(n,) uint8; the 'reject' policy
        redraws offending entries in vectorized rounds (expected < 2),
        taking each redraw batch from the same canonical chunk stream.
        """
        chunks = self._take_chunks(state, source, n)
        state.chunks_consumed += n
        if self.policy == "mod":
            return np.where(chunks >= DEGREE, chunks - _U8(DEGREE), chunks)
        if self.policy == "lazy":
            return np.where(chunks == _U8(7), _U8(0), chunks)
        # 'reject': redraw lanes that read 111 until none remain.  Track
        # offending indices so each round only touches the shrinking
        # rejection set instead of rescanning the full array.
        idx = np.flatnonzero(chunks == _U8(7))
        while idx.size:
            redraw = self._take_chunks(state, source, idx.size)
            state.chunks_consumed += idx.size
            chunks[idx] = redraw
            idx = idx[redraw == _U8(7)]
        return chunks

    def _apply_indices(self, state: WalkState, ks: np.ndarray) -> None:
        """Advance all walkers by one step given neighbour indices ``ks``.

        Native path (m = 2**32): fused-LUT updates into double-buffered
        scratch arrays -- no per-step allocations, ~2x the throughput of
        the naive expression.  At most one of a_y/a_x is nonzero per k
        (both zero for k == 0), so both updates can read the pre-step
        x and y.
        """
        n = state.num_walkers
        if self._dtype is np.uint32:
            # Scratch lives on the state (never shared across states).
            scratch = getattr(state, "_scratch", None)
            if scratch is None or scratch[0].size != n:
                scratch = tuple(np.empty(n, dtype=np.uint32) for _ in range(4))
            t1, t2, nx, ny = scratch
            x, y = state.x, state.y
            np.take(self._a_y, ks, out=t1)
            np.multiply(t1, x, out=t1)
            np.take(self._luts[1], ks, out=t2)  # c_y
            np.add(t1, t2, out=t1)
            np.add(y, t1, out=ny)
            np.take(self._a_x, ks, out=t1)
            np.multiply(t1, y, out=t1)
            np.take(self._luts[3], ks, out=t2)  # c_x
            np.add(t1, t2, out=t1)
            np.add(x, t1, out=nx)
            # Swap: the old position arrays become the next step's scratch.
            state._scratch = (t1, t2, x, y)
            state.x = nx
            state.y = ny
        else:
            is_y, c_y, is_x, c_x = self._luts
            x, y = state.x, state.y
            two = self._dtype(2)
            ny = y + is_y[ks] * (two * x + c_y[ks])
            nx = x + is_x[ks] * (two * y + c_x[ks])
            mm = self._dtype(self.graph.m)
            nx %= mm
            ny %= mm
            state.x = nx
            state.y = ny
        state.steps_taken += state.num_walkers

    def step(self, state: WalkState, source: BitSource) -> None:
        """Advance every walker by one step, in place."""
        ks = self._draw_indices(state.num_walkers, source, state)
        self._apply_indices(state, ks)

    def walk(self, state: WalkState, source: BitSource, length: int) -> None:
        """Advance every walker by ``length`` steps, in place.

        Bit-for-bit equal to ``length`` separate :meth:`step` calls under
        every policy (the stream contract).  For 'mod' and 'lazy' that
        equivalence lets all ``length * n`` chunks be drawn in one bulk
        request (step-major order) -- the chunk stream is continuous, so
        slicing cannot change it.  'reject' must interleave each step's
        redraws with the next step's base draw, so it steps one at a
        time.
        """
        check_positive("length", length)
        if self.policy == "reject":
            for _ in range(length):
                self.step(state, source)
            return
        n = state.num_walkers
        ks = self._draw_indices(length * n, source, state).reshape(length, n)
        for i in range(length):
            self._apply_indices(state, ks[i])

    def outputs(self, state: WalkState) -> np.ndarray:
        """Current vertex ids of all walkers -- the emitted random numbers."""
        return self.graph.pack(state.x, state.y)

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def expected_chunks_per_step(self) -> float:
        """Mean 3-bit chunks consumed per walker step under the policy."""
        return 8.0 / 7.0 if self.policy == "reject" else 1.0

    def bits_per_number(self, walk_length: int) -> float:
        """Mean feed bits consumed to emit one random number."""
        return 3.0 * self.expected_chunks_per_step() * walk_length
