"""Torch backend: the walk kernel as torch tensor ops (CPU or CUDA).

Torch has no unsigned integer dtypes and no negative-step slicing, so
this backend is a *shim namespace* rather than a bare module handle:

* logical ``uint32``/``uint64`` are stored as ``int32``/``int64``.
  Two's-complement add/multiply/shift/xor produce the same bit
  patterns as the unsigned ops, and transfers reinterpret bits
  (``ndarray.view``), never values, so streams stay bit-identical;
* ``take`` maps to ``torch.index_select`` (indices widened to
  ``long``), ``swap_rows`` to ``torch.flip``;
* logical right shift is arithmetic shift + mask, and unsigned
  comparisons (Lemire's threshold test) use the sign-bit-flip trick.

Runs on CUDA when available, else CPU -- the CPU leg is what the CI
smoke job exercises.  Import is lazy; absence maps to
:class:`BackendUnavailableError`.
"""

from __future__ import annotations

import numpy as _np

from repro.backend.base import BackendUnavailableError, _DeviceBackend

__all__ = ["TorchBackend"]

_SIGN64 = 1 << 63


class _TorchNamespace:
    """The ``xp`` surface kernels call, backed by torch ops.

    Only the operations the kernels actually use are shimmed; anything
    else falls through to the ``torch`` module itself.
    """

    def __init__(self, torch, device) -> None:
        self._torch = torch
        self._device = device
        self._dtype_map = {
            _np.dtype(_np.uint8): torch.uint8,
            _np.dtype(_np.uint32): torch.int32,
            _np.dtype(_np.uint64): torch.int64,
            _np.dtype(_np.float64): torch.float64,
            _np.dtype(_np.bool_): torch.bool,
        }

    def _map_dtype(self, dtype):
        if dtype is None or isinstance(dtype, self._torch.dtype):
            return dtype
        if dtype is bool:
            return self._torch.bool
        return self._dtype_map[_np.dtype(dtype)]

    def empty(self, shape, dtype=None):
        return self._torch.empty(
            shape, dtype=self._map_dtype(dtype), device=self._device
        )

    def zeros(self, shape, dtype=None):
        return self._torch.zeros(
            shape, dtype=self._map_dtype(dtype), device=self._device
        )

    def take(self, a, indices, axis=None, out=None):
        torch = self._torch
        if indices.dtype != torch.long:
            indices = indices.long()
        if axis is None:
            a = a.reshape(-1)
            axis = 0
        if out is None:
            return torch.index_select(a, axis, indices)
        return torch.index_select(a, axis, indices, out=out)

    def multiply(self, a, b, out=None):
        if out is None:
            return self._torch.mul(a, b)
        return self._torch.mul(a, b, out=out)

    def add(self, a, b, out=None):
        if out is None:
            return self._torch.add(a, b)
        return self._torch.add(a, b, out=out)

    def __getattr__(self, name):
        # exp/log/log1p/sqrt/cos/sin/where/... share numpy's signature.
        return getattr(self._torch, name)


class TorchBackend(_DeviceBackend):
    name = "torch"

    def __init__(self) -> None:
        super().__init__()
        try:
            import torch
        except Exception as exc:  # pragma: no cover - needs torch install
            raise BackendUnavailableError(
                f"backend 'torch' needs the torch package: {exc}"
            ) from exc
        self._torch = torch
        self._device = torch.device(
            "cuda" if torch.cuda.is_available() else "cpu"
        )
        self.xp = _TorchNamespace(torch, self._device)
        self.uint8 = torch.uint8
        self.uint32 = torch.int32
        self.uint64 = torch.int64
        self.float64 = torch.float64
        self.index_dtype = torch.long

    # torch tensors live on the host when the device is "cpu", but the
    # namespace still needs the shim (no unsigned dtypes), so the
    # backend reports is_host=False either way and pays the (no-op
    # memcpy) delivery copy for uniformity.

    def owns(self, arr) -> bool:  # pragma: no cover - needs torch install
        return isinstance(arr, self._torch.Tensor)

    def _upload(self, arr):  # pragma: no cover - needs torch install
        if arr.dtype == _np.uint32:
            arr = arr.view(_np.int32)
        elif arr.dtype == _np.uint64:
            arr = arr.view(_np.int64)
        t = self._torch.from_numpy(_np.ascontiguousarray(arr))
        if self._device.type == "cpu":
            return t.clone()
        return t.to(self._device)

    def _download(self, arr):  # pragma: no cover - needs torch install
        host = arr.detach().cpu().numpy()
        if host.dtype == _np.int32:
            host = host.view(_np.uint32)
        elif host.dtype == _np.int64:
            host = host.view(_np.uint64)
        return host.copy()

    def device_index(self, ks):  # pragma: no cover - needs torch install
        if self.owns(ks):
            return ks if ks.dtype == self._torch.long else ks.long()
        return self.from_host(ks).long()

    def swap_rows(self, a2):  # pragma: no cover - needs torch install
        return self._torch.flip(a2, dims=(0,))

    def rshift_u64(self, a, k: int):  # pragma: no cover - needs torch
        if k == 0:
            return a
        return (a >> k) & ((1 << (64 - k)) - 1)

    def ge_u64(self, a, k: int):  # pragma: no cover - needs torch install
        # Flip the sign bit of both sides: unsigned order becomes
        # signed order.  -_SIGN64 is the int64 whose bits are 0x8000...
        flipped = int(k) ^ _SIGN64
        if flipped >= _SIGN64:
            flipped -= 1 << 64
        return (a ^ (-_SIGN64)) >= flipped

    def astype_f64(self, a):  # pragma: no cover - needs torch install
        return a.to(self._torch.float64)

    def astype_index(self, a):  # pragma: no cover - needs torch install
        return a.to(self._torch.long)

    def copy_u64(self, a):  # pragma: no cover - needs torch install
        return a.clone()

    def zeros_bool(self, n: int):  # pragma: no cover - needs torch install
        return self._torch.zeros(n, dtype=self._torch.bool, device=self._device)

    def pack_pairs_to_host(self, x, y):  # pragma: no cover - needs torch
        x64 = x.to(self._torch.int64) & 0xFFFFFFFF
        y64 = y.to(self._torch.int64) & 0xFFFFFFFF
        return self.to_host((x64 << 32) | y64)

    def ndtri(self, a):  # pragma: no cover - needs torch install
        return self._torch.special.ndtri(a)

    def synchronize(self) -> None:  # pragma: no cover - needs torch
        if self._device.type == "cuda":
            self._torch.cuda.synchronize()
