"""CuPy backend: the walk kernel on a real CUDA device.

CuPy mirrors the NumPy API including unsigned integers, so the kernel
body is literally the same call sequence as the host path -- only the
namespace differs.  Integer ops are exact, so golden streams must be
bit-identical; float transforms (``exp``/``log``/``ndtri``) may differ
by ULPs from host libm and are tested for distributional parity only.

Import is lazy and failure maps to :class:`BackendUnavailableError`,
so merely registering this backend costs nothing on hosts without
CUDA.
"""

from __future__ import annotations

import numpy as _np

from repro.backend.base import BackendUnavailableError, _DeviceBackend

__all__ = ["CuPyBackend"]


class CuPyBackend(_DeviceBackend):
    name = "cupy"

    def __init__(self) -> None:
        super().__init__()
        try:
            import cupy
        except Exception as exc:  # pragma: no cover - needs CUDA host
            raise BackendUnavailableError(
                f"backend 'cupy' needs the cupy package and a CUDA device: {exc}"
            ) from exc
        try:
            cupy.cuda.runtime.getDeviceCount()
        except Exception as exc:  # pragma: no cover - needs CUDA host
            raise BackendUnavailableError(
                f"backend 'cupy' found no usable CUDA device: {exc}"
            ) from exc
        self.xp = cupy
        self._cupy = cupy

    # cupy keeps numpy's dtype objects, so the inherited dtype surface
    # (uint8/uint32/uint64/float64/intp) is already correct.

    def owns(self, arr) -> bool:  # pragma: no cover - needs CUDA host
        return isinstance(arr, self._cupy.ndarray)

    def _upload(self, arr):  # pragma: no cover - needs CUDA host
        return self._cupy.asarray(arr)

    def _download(self, arr):  # pragma: no cover - needs CUDA host
        return self._cupy.asnumpy(arr)

    def device_index(self, ks):  # pragma: no cover - needs CUDA host
        if self.owns(ks):
            return ks
        return self.from_host(ks)

    def pack_pairs_to_host(self, x, y):  # pragma: no cover - needs CUDA host
        out = x.astype(self._cupy.uint64)
        out <<= self._cupy.uint64(32)
        out |= y
        return self.to_host(out)

    def ndtri(self, a):  # pragma: no cover - needs CUDA host
        try:
            from cupyx.scipy.special import ndtri as _ndtri

            return _ndtri(a)
        except Exception:
            # Exactness over speed: the ziggurat tail is rare, so a
            # host round-trip through scipy is an acceptable fallback.
            from scipy.special import ndtri as _host_ndtri

            return self.from_host(_host_ndtri(self.to_host(a)))

    def synchronize(self) -> None:  # pragma: no cover - needs CUDA host
        self._cupy.cuda.get_current_stream().synchronize()
