"""The array-backend protocol: one thin seam between kernels and arrays.

A :class:`Backend` names an array namespace (``backend.xp``), a pinned
dtype surface, and the **explicit host<->device transfer hooks** the hot
kernels are allowed to use.  The kernels in :mod:`repro.core.walk`,
:mod:`repro.core.generator` and :mod:`repro.dist.transforms` never
import :mod:`numpy` directly; they take every array operation either
from the host namespace this package re-exports (feed words, protocol
buffers, delivery boundaries -- host by contract) or from a backend's
``xp`` namespace (the device-resident kernel state).

Design rules (Shoverand's manycore-PRNG safety rules, adapted):

* **The stream is backend-invariant.**  The walk kernel is pure
  integer arithmetic (uint32 wraparound, table lookups), so a correct
  backend is *bit-identical* to NumPy -- the golden-stream suite
  enforces this for every registered backend.  Float transforms may
  differ by ULPs across devices and are tested for distributional
  parity instead.
* **Transfers are explicit and counted.**  ``from_host``/``to_host``
  are the only crossing points, and on non-host backends they run
  inside the obs ``TRANSFER`` span -- the same stage the paper's
  Figure 4 budgets for PCIe.  The host backend's hooks are identity
  functions with zero overhead.
* **Delivery is host-side.**  ``generate_into`` and every serving
  buffer stay host ``uint64``; a non-host backend pays exactly one
  device->host copy at the delivery boundary (``pack_pairs_to_host``).

Storage dtypes may differ from logical dtypes when a device lacks
unsigned integers (torch stores logical ``uint32``/``uint64`` as
``int32``/``int64``): two's-complement add/multiply/shift/xor wrap to
the same bit patterns, and the transfer hooks reinterpret bits, never
values, so the emitted stream is unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as _np

from repro.obs.trace import span

__all__ = ["Backend", "BackendUnavailableError", "NumPyBackend"]


class BackendUnavailableError(RuntimeError):
    """The named backend's array library is not importable here."""


class Backend:
    """Base array backend; subclasses pin the namespace and transfers.

    Attributes
    ----------
    name : str
        Registry name (``"numpy"``, ``"cupy"``, ``"torch"``).
    xp : module-like
        The array namespace kernels call (``xp.take``, ``xp.add``, ...).
    is_host : bool
        True when ``xp`` arrays live in host memory.  Host-backend
        transfer hooks are identity functions (no span, no copy).
    """

    name = "abstract"
    is_host = True
    xp = None

    #: Storage dtypes for the logical kernel dtypes.  Subclasses with
    #: no unsigned support remap these bit-compatibly.
    uint8 = _np.uint8
    uint32 = _np.uint32
    uint64 = _np.uint64
    float64 = _np.float64
    index_dtype = _np.intp

    def __init__(self) -> None:
        # key -> (host array kept alive, device copy); id()-keyed, so
        # the host reference must be retained to keep keys stable.
        self._constants: Dict[int, tuple] = {}

    # -- identity ------------------------------------------------------

    def owns(self, arr) -> bool:
        """Whether ``arr`` is this backend's array type."""
        raise NotImplementedError

    # -- transfers (the only host<->device crossing points) ------------

    def from_host(self, arr: _np.ndarray):
        """Host array -> backend array, bit-preserving.

        Non-host backends run this inside the obs ``TRANSFER`` span.
        """
        raise NotImplementedError

    def to_host(self, arr) -> _np.ndarray:
        """Backend array -> host ``numpy`` array, bit-preserving."""
        raise NotImplementedError

    def constant(self, host_arr: _np.ndarray):
        """Memoized :meth:`from_host` for long-lived lookup tables."""
        key = id(host_arr)
        hit = self._constants.get(key)
        if hit is not None and hit[0] is host_arr:
            return hit[1]
        dev = self.from_host(host_arr)
        self._constants[key] = (host_arr, dev)
        return dev

    def device_index(self, ks):
        """Neighbour-index array in the form ``xp.take`` wants.

        Host chunks arrive as ``uint8``; non-host backends upload (and
        cast to their gather index dtype).  Already-owned arrays pass
        through, so a bulk walk uploads its whole index block once.
        """
        return ks

    # -- ops that are not uniform across namespaces --------------------

    def swap_rows(self, a2):
        """Rows of a ``(2, n)`` array in reverse order (view if cheap)."""
        return a2[::-1]

    def rshift_u64(self, a, k: int):
        """Logical right shift of logical-uint64 words by ``k`` bits."""
        return a >> _np.uint64(k)

    def ge_u64(self, a, k: int):
        """Elementwise unsigned ``a >= k`` on logical-uint64 words."""
        return a >= _np.uint64(k)

    def astype_f64(self, a):
        return a.astype(_np.float64)

    def astype_index(self, a):
        """Cast to the backend's table fancy-indexing dtype."""
        return a.astype(self.index_dtype)

    def copy_u64(self, a):
        """A fresh logical-uint64 copy of ``a`` (same backend)."""
        return a.astype(_np.uint64, copy=True)

    def zeros_bool(self, n: int):
        return self.xp.zeros(n, dtype=bool)

    def pack_pairs_to_host(self, x, y) -> _np.ndarray:
        """``(x << 32) | y`` as a host ``uint64`` array.

        The single device->host copy of the delivery boundary on
        non-host backends.
        """
        raise NotImplementedError

    def ndtri(self, a):
        """Inverse standard-normal CDF (the ziggurat's exact tail)."""
        raise NotImplementedError

    def synchronize(self) -> None:
        """Block until queued device work is done (no-op on host)."""


class NumPyBackend(Backend):
    """The default backend: ``xp`` *is* :mod:`numpy`.

    Every kernel call under this backend executes the identical numpy
    operation the pre-backend code ran, so bit-identity with the
    pre-refactor streams is structural, not incidental -- and the
    golden-stream suite pins it anyway.
    """

    name = "numpy"
    is_host = True
    xp = _np

    def owns(self, arr) -> bool:
        return isinstance(arr, _np.ndarray)

    def from_host(self, arr: _np.ndarray):
        return arr

    def to_host(self, arr) -> _np.ndarray:
        return arr

    def constant(self, host_arr: _np.ndarray):
        return host_arr

    def pack_pairs_to_host(self, x, y) -> _np.ndarray:
        out = x.astype(_np.uint64)
        out <<= _np.uint64(32)
        out |= y
        return out

    def ndtri(self, a):
        from scipy.special import ndtri as _ndtri  # lazy: keep core light

        return _ndtri(a)


class _DeviceBackend(Backend):
    """Shared transfer-span plumbing for non-host backends."""

    is_host = False

    def _upload(self, arr: _np.ndarray):
        raise NotImplementedError

    def _download(self, arr) -> _np.ndarray:
        raise NotImplementedError

    def from_host(self, arr: _np.ndarray):
        with span("transfer", backend=self.name, direction="h2d",
                  bytes=int(arr.nbytes)):
            return self._upload(arr)

    def to_host(self, arr) -> _np.ndarray:
        with span("transfer", backend=self.name, direction="d2h"):
            return self._download(arr)
