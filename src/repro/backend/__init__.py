"""``repro.backend`` -- pluggable array backends for the hot kernels.

The registry maps names to lazily-constructed :class:`Backend`
instances.  Resolution order for :func:`get_backend`:

1. an explicit name (or a ``Backend`` instance, passed through);
2. the process default set by :func:`set_default_backend`;
3. the ``REPRO_BACKEND`` environment variable (inherited by engine
   worker processes, so a parent's choice propagates);
4. ``"numpy"``.

Kernel modules guarded by ``tools/lint_backend.py`` must not import
``numpy``/``scipy`` directly; they use the pinned host namespace this
package re-exports::

    from repro.backend import host_np as np

``host_np`` *is* numpy -- the indirection is the point: it marks every
host-side array use as deliberate and keeps device-side uses behind
``Backend.xp``.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Union

import numpy as host_np

from repro.backend.base import Backend, BackendUnavailableError, NumPyBackend

__all__ = [
    "Backend",
    "BackendUnavailableError",
    "NumPyBackend",
    "available_backends",
    "backend_of",
    "backend_names",
    "get_backend",
    "host_np",
    "register_backend",
    "set_default_backend",
]

_ENV_VAR = "REPRO_BACKEND"

_factories: Dict[str, Callable[[], Backend]] = {}
_instances: Dict[str, Backend] = {}
_failures: Dict[str, str] = {}
_default_name: Optional[str] = None


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register ``factory`` under ``name`` (replacing any previous one)."""
    _factories[name] = factory
    _instances.pop(name, None)
    _failures.pop(name, None)


def backend_names() -> List[str]:
    """All registered backend names (available or not)."""
    return list(_factories)


def _instantiate(name: str) -> Backend:
    inst = _instances.get(name)
    if inst is not None:
        return inst
    if name in _failures:
        raise BackendUnavailableError(_failures[name])
    factory = _factories.get(name)
    if factory is None:
        raise BackendUnavailableError(
            f"unknown backend {name!r}; registered: {sorted(_factories)}"
        )
    try:
        inst = factory()
    except BackendUnavailableError as exc:
        _failures[name] = str(exc)
        raise
    _instances[name] = inst
    return inst


def get_backend(name: Union[None, str, Backend] = None) -> Backend:
    """Resolve a backend by name; ``None`` means the process default."""
    if isinstance(name, Backend):
        return name
    if name is None:
        name = _default_name or os.environ.get(_ENV_VAR) or "numpy"
    return _instantiate(name)


def set_default_backend(name: Optional[str]) -> None:
    """Pin the process-wide default backend (``None`` resets).

    Validates eagerly so a bad ``--backend`` fails at startup, not in
    the middle of a stream.
    """
    if name is not None:
        _instantiate(name)
    global _default_name
    _default_name = name


def available_backends() -> Dict[str, bool]:
    """Registered names -> whether each can be instantiated here."""
    out: Dict[str, bool] = {}
    for name in _factories:
        try:
            _instantiate(name)
        except BackendUnavailableError:
            out[name] = False
        else:
            out[name] = True
    return out


def backend_of(arr) -> Backend:
    """The backend owning ``arr`` (host numpy arrays -> numpy backend).

    Only already-instantiated device backends are consulted: an array
    can't belong to a backend that was never constructed.
    """
    if isinstance(arr, host_np.ndarray) or host_np.isscalar(arr):
        return _instantiate("numpy")
    for be in _instances.values():
        if not be.is_host and be.owns(arr):
            return be
    raise TypeError(
        f"no registered backend owns array of type {type(arr).__name__}"
    )


def _numpy_factory() -> Backend:
    return NumPyBackend()


def _cupy_factory() -> Backend:
    from repro.backend.cupy_backend import CuPyBackend

    return CuPyBackend()


def _torch_factory() -> Backend:
    from repro.backend.torch_backend import TorchBackend

    return TorchBackend()


register_backend("numpy", _numpy_factory)
register_backend("cupy", _cupy_factory)
register_backend("torch", _torch_factory)
