"""PCIe feed-transfer cost model.

How many bytes per random number must cross the link, and how long that
takes on a :class:`~repro.gpusim.device.PcieLink`.  The from-first-
principles figure (24-27 bytes/number at 8 GB/s, ~3.4 ns) is larger than
Figure 4's calibrated TRANSFER share (~1.1 ns/number); the paper's
Algorithm 1 masks all walk choices out of a single 64-bit word per
thread, i.e. it ships fewer fresh bits than an unbiased walk needs.
Both models are provided; the pipeline defaults to the calibrated one so
figure shapes match, and the ablation benchmarks can swap in this model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import PcieLink
from repro.utils.checks import check_positive

__all__ = ["TransferModel", "bits_per_number"]


def bits_per_number(walk_length: int = 64, policy: str = "reject") -> float:
    """Mean fresh feed bits one emitted number consumes.

    3 bits per step, times the rejection overhead (8/7) when the
    neighbour index is drawn unbiased.
    """
    check_positive("walk_length", walk_length)
    factor = 8.0 / 7.0 if policy == "reject" else 1.0
    return 3.0 * walk_length * factor


@dataclass(frozen=True)
class TransferModel:
    """Feed-bit transfer times over a PCIe link."""

    link: PcieLink
    walk_length: int = 64
    policy: str = "reject"

    @property
    def bytes_per_number(self) -> float:
        return bits_per_number(self.walk_length, self.policy) / 8.0

    def batch_time_ns(self, numbers: int) -> float:
        """Time to ship feed bits for ``numbers`` walks (one batch)."""
        check_positive("numbers", numbers)
        nbytes = numbers * self.bytes_per_number
        return self.link.transfer_time_us(nbytes) * 1e3

    def per_number_ns(self) -> float:
        """Bandwidth-only cost per number (excludes per-batch latency)."""
        return self.bytes_per_number / (self.link.bandwidth_gb_s * 1e9) * 1e9
