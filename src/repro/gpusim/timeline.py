"""Busy-interval timelines: the data behind Figure 4.

The pipeline simulator records one :class:`Interval` per work unit
(FEED / TRANSFER / GENERATE); :class:`Timeline` aggregates them into
busy/idle statistics per device and renders an ASCII Gantt chart like the
paper's Figure 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["Interval", "Timeline"]


@dataclass(frozen=True)
class Interval:
    """One busy span of one device."""

    device: str
    start: float
    end: float
    label: str = ""

    def __post_init__(self):
        if self.end < self.start:
            raise ValueError(f"interval ends before it starts: {self}")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """A collection of busy intervals across devices."""

    intervals: List[Interval] = field(default_factory=list)

    def add(self, device: str, start: float, end: float, label: str = "") -> None:
        self.intervals.append(Interval(device, start, end, label))

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def devices(self) -> List[str]:
        seen: Dict[str, None] = {}
        for iv in self.intervals:
            seen.setdefault(iv.device, None)
        return list(seen)

    @property
    def horizon(self) -> float:
        """Completion time of the last interval (0 when empty)."""
        return max((iv.end for iv in self.intervals), default=0.0)

    def busy_time(self, device: str) -> float:
        """Total busy time of ``device`` (its intervals never overlap)."""
        return sum(iv.duration for iv in self.intervals if iv.device == device)

    def idle_fraction(self, device: str, horizon: float | None = None) -> float:
        """Fraction of the run during which ``device`` sat idle."""
        h = self.horizon if horizon is None else horizon
        if h <= 0:
            return 0.0
        return max(0.0, 1.0 - self.busy_time(device) / h)

    def device_intervals(self, device: str) -> List[Interval]:
        return sorted(
            (iv for iv in self.intervals if iv.device == device),
            key=lambda iv: iv.start,
        )

    # ------------------------------------------------------------------
    # Rendering (Figure 4)
    # ------------------------------------------------------------------

    def render(self, width: int = 72, max_time: float | None = None) -> str:
        """ASCII Gantt chart: one row per device, '#' busy, '.' idle."""
        h = self.horizon if max_time is None else max_time
        if h <= 0:
            return "(empty timeline)"
        lines = []
        name_w = max((len(d) for d in self.devices), default=4)
        for device in self.devices:
            row = ["."] * width
            for iv in self.device_intervals(device):
                a = int(iv.start / h * width)
                b = int(iv.end / h * width)
                b = max(b, a + 1) if iv.duration > 0 else b
                for i in range(a, min(b, width)):
                    row[i] = "#"
            idle = self.idle_fraction(device, h)
            lines.append(
                f"{device:<{name_w}} |{''.join(row)}| idle {idle * 100:5.1f}%"
            )
        lines.append(f"{'':<{name_w}}  0{' ' * (width - 8)}{h:.3g} ns")
        return "\n".join(lines)
