"""First-principles GPU kernel cost model for the walk kernel.

Complements the Figure-4-calibrated constants in
:mod:`repro.gpusim.calibration` with a model built up from the device
spec: warps, SMs, clock and a cycles-per-step parameter.  The default
``cycles_per_step`` is chosen so that, at full occupancy on the Tesla
C1060, the per-number cost agrees with the calibrated ``generate_ns``
(~11.4 ns) -- the two views of the same quantity are cross-checked in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import GpuSpec
from repro.utils.checks import check_positive

__all__ = ["KernelCostModel"]


@dataclass(frozen=True)
class KernelCostModel:
    """Estimates walk-kernel execution time on a :class:`GpuSpec`.

    Parameters
    ----------
    gpu : GpuSpec
    cycles_per_step : float
        GPU core cycles per walk step (bit extraction + two fused affine
        updates + feed fetch).  Default reproduces the calibrated
        11.43 ns/number at 64 steps on the C1060.
    launch_overhead_ns : float
        Fixed driver/launch cost per kernel invocation.
    """

    gpu: GpuSpec
    cycles_per_step: float = 55.5
    launch_overhead_ns: float = 6_000.0

    def __post_init__(self):
        check_positive("cycles_per_step", self.cycles_per_step)

    def steps_per_second(self, resident_threads: int) -> float:
        """Aggregate walk steps/s the chip retires at a given occupancy."""
        check_positive("resident_threads", resident_threads)
        occupancy = min(1.0, resident_threads / self.gpu.max_resident_threads)
        peak = self.gpu.total_cores * self.gpu.clock_ghz * 1e9 / self.cycles_per_step
        return peak * occupancy

    def number_time_ns(self, resident_threads: int, walk_length: int = 64) -> float:
        """Amortized ns to produce one number (a ``walk_length``-step walk)."""
        check_positive("walk_length", walk_length)
        rate = self.steps_per_second(resident_threads)
        return walk_length / rate * 1e9

    def kernel_time_ns(
        self,
        threads: int,
        numbers_per_thread: int,
        walk_length: int = 64,
    ) -> float:
        """Wall time of one launch producing ``threads * numbers_per_thread``."""
        check_positive("threads", threads)
        check_positive("numbers_per_thread", numbers_per_thread)
        total_numbers = threads * numbers_per_thread
        return (
            self.launch_overhead_ns
            + total_numbers * self.number_time_ns(threads, walk_length)
        )
