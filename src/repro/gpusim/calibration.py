"""Calibration constants tying the simulator to the paper's measurements.

The absolute numbers in the paper's figures come from its physical
testbed, which we do not have.  The simulator is therefore calibrated to
two anchors the paper states explicitly:

1. **Aggregate throughput** -- "Our approach produces 0.07 GNumbers per
   second" (abstract / Section I), i.e. ~14.3 ns per number in steady
   state at the optimal batch size;
2. **Pipeline proportions** -- Figure 4's work-unit ratios at batch size
   S = 100: FEED : TRANSFER = 81.2 : 6.2, with the GPU idle ~20% of each
   iteration and the CPU almost never idle (so GENERATE ~ 0.8 x FEED).

All per-number costs below are those ratios rescaled so the steady-state
bottleneck (FEED) yields 0.07 GNumbers/s.  Baseline generator costs are
set so the simulated Figure 3 reproduces the paper's *relative* result
(hybrid ~2x faster than GPU Mersenne Twister and CURAND), with the
batch/on-demand overhead structure of each library preserved.

The defaults model the paper's *scalar* glibc feed.  This codebase's
default FEED kernel is the blocked linear-map kernel (see
``docs/performance.md``), which is :data:`BLOCKED_FEED_SPEEDUP` times
faster on the words64 hot loop and deliberately breaks Figure 4's cost
structure -- FEED drops from dominant to marginal and GENERATE becomes
the bottleneck.  :meth:`PipelineCosts.blocked_feed` is the matching
calibration entry for runs on the blocked kernel.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

__all__ = ["PipelineCosts", "BaselineCosts", "PAPER_THROUGHPUT_GN_S",
           "BLOCKED_FEED_SPEEDUP", "measure_backend_throughput",
           "backend_calibration_report"]

#: The headline throughput claim (GNumbers/second).
PAPER_THROUGHPUT_GN_S = 0.07

#: Measured words64 speedup of the blocked FEED kernel over the scalar
#: reference on the CI-class host (``BENCH_core.json``; see
#: docs/performance.md).  Used by :meth:`PipelineCosts.blocked_feed`.
BLOCKED_FEED_SPEEDUP = 17.2

# Figure 4 proportions (arbitrary units).
_FEED_RAW = 81.2
_TRANSFER_RAW = 6.2
_GENERATE_RAW = 0.8 * _FEED_RAW  # GPU busy 80% of a FEED-bound iteration

# Rescale so FEED (the steady-state bottleneck) gives 0.07 GN/s.
_SCALE = (1.0 / PAPER_THROUGHPUT_GN_S) / _FEED_RAW  # ns per raw unit


@dataclass(frozen=True)
class PipelineCosts:
    """Per-number and per-iteration costs of the hybrid pipeline (ns)."""

    #: CPU time to produce one number's worth of feed bits (192 bits).
    feed_ns: float = _FEED_RAW * _SCALE
    #: PCIe time per number's feed bits, bandwidth component.
    transfer_ns: float = _TRANSFER_RAW * _SCALE
    #: GPU time to run one 64-step walk at full occupancy.
    generate_ns: float = _GENERATE_RAW * _SCALE
    #: Fixed cost per kernel launch (CUDA driver overhead), ns.
    launch_overhead_ns: float = 6_000.0
    #: Fixed PCIe latency per transfer, ns.
    transfer_latency_ns: float = 8_000.0
    #: Resident-thread count at which feed-fetch latency is fully hidden
    #: (~3 waves of the C1060's 30720 resident threads).  Below this the
    #: per-number GPU cost inflates, which is what turns Figure 5 back up
    #: for large batch sizes ("the GPU starts to wait", Section IV-A).
    full_occupancy_threads: int = 90_000
    #: Extra steps per thread for Algorithm 1's initial 64-step mix,
    #: expressed as numbers-equivalent (one number = one 64-step walk).
    init_numbers_per_thread: float = 1.0

    @classmethod
    def blocked_feed(
        cls, speedup: float = BLOCKED_FEED_SPEEDUP, **overrides
    ) -> "PipelineCosts":
        """Costs recalibrated for the blocked FEED kernel.

        Divides the scalar-feed ``feed_ns`` by the measured blocked
        kernel ``speedup`` (other costs and any ``overrides`` pass
        through), so predictions for runs on the default blocked kernel
        carry the *inverted* cost structure the kernel actually has:
        GENERATE dominant, FEED marginal.  Not the paper's Figure 4 --
        the defaults remain the faithful scalar calibration.
        """
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        overrides.setdefault("feed_ns", _FEED_RAW * _SCALE / speedup)
        return cls(**overrides)

    def occupancy(self, threads: int) -> float:
        """GPU efficiency factor in (0, 1] given resident thread count."""
        if threads <= 0:
            raise ValueError(f"threads must be positive, got {threads}")
        return min(1.0, threads / self.full_occupancy_threads)

    def generate_ns_effective(self, threads: int) -> float:
        """Per-number GPU cost adjusted for occupancy."""
        return self.generate_ns / self.occupancy(threads)


@dataclass(frozen=True)
class BaselineCosts:
    """Simulated per-number costs for the comparison generators (ns).

    Structure mirrors how each library actually behaves:

    * the SDK Mersenne Twister is a *batch* generator -- cheap steady
      state but a large fixed setup (twister table init + kernel config)
      and it must materialize the whole array;
    * CURAND's device API pays per-call state-update overhead in every
      thread.

    Values give the paper's ~2x hybrid advantage at large N.
    """

    mersenne_twister_ns: float = 2.0 / PAPER_THROUGHPUT_GN_S  # 2x slower
    mersenne_twister_setup_ns: float = 2.5e6
    curand_ns: float = 1.9 / PAPER_THROUGHPUT_GN_S
    curand_setup_ns: float = 1.2e6
    #: Single-core glibc rand() per number (Figure 6's CPU baseline),
    #: including the consuming loop around the call; calibrated so glibc
    #: lands at speed rank 5 of 5 as in Table I.
    glibc_rand_ns: float = 60.0
    #: The hybrid generator running CPU-only (Section IV-A, Figure 6):
    #: per-number cost on ONE core; OpenMP divides it across cores.
    cpu_hybrid_single_core_ns: float = 75.0


def measure_backend_throughput(
    backend=None,
    lanes: int = 4096,
    rounds: int = 32,
    repeats: int = 3,
) -> dict:
    """Measured ns/number of the fused walk hot loop on a real backend.

    Runs the same fused :meth:`~repro.core.parallel.ParallelExpanderPRNG
    .generate_into` loop the production paths use, on ``lanes`` walkers
    for ``rounds`` rounds, and returns the best of ``repeats`` timings.
    This is the empirical counterpart of the simulator's calibrated
    ``generate_ns``: the simulator predicts the paper's testbed, this
    measures *this* host/device, and
    :func:`backend_calibration_report` puts the two side by side.
    """
    from repro.backend import get_backend
    from repro.bitsource.glibc import GlibcRandom
    from repro.core.parallel import ParallelExpanderPRNG

    be = get_backend(backend)
    import numpy as np

    prng = ParallelExpanderPRNG(
        num_threads=lanes,
        bit_source=GlibcRandom(12345, blocked=True),
        policy="mod",
        fused=True,
        backend=be,
    )
    out = np.empty(lanes * rounds, dtype=np.uint64)
    best = float("inf")
    for _ in range(repeats):
        # No rewind: position along the stream is irrelevant to cost,
        # and chained feeds only seek forward anyway.
        start = time.perf_counter()
        prng.generate_into(out)
        if hasattr(be, "synchronize"):
            be.synchronize()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    numbers = lanes * rounds
    return {
        "backend": be.name,
        "lanes": lanes,
        "rounds": rounds,
        "numbers": numbers,
        "ns_per_number": best * 1e9 / numbers,
        "gnumbers_per_s": numbers / best / 1e9,
    }


def backend_calibration_report(
    backend=None,
    costs: Optional[PipelineCosts] = None,
    lanes: int = 4096,
    rounds: int = 32,
) -> dict:
    """Measured backend throughput vs the simulator's calibrated cost.

    Returns the :func:`measure_backend_throughput` record augmented
    with the simulator's predicted per-number GENERATE cost at the same
    resident-thread count and the measured/predicted ratio --
    ``ratio > 1`` means this backend is *slower* than the calibrated
    paper GPU, ``< 1`` faster.  This makes the paper's "2x faster than
    GPU Mersenne Twister" claim directly testable on real hardware:
    measure on a device backend and compare against
    :class:`BaselineCosts`.
    """
    costs = costs or PipelineCosts()
    measured = measure_backend_throughput(
        backend, lanes=lanes, rounds=rounds
    )
    predicted = costs.generate_ns_effective(lanes)
    measured["predicted_generate_ns"] = predicted
    measured["measured_over_predicted"] = (
        measured["ns_per_number"] / predicted
    )
    mt_ns = BaselineCosts().mersenne_twister_ns
    measured["speedup_vs_sim_mt"] = mt_ns / measured["ns_per_number"]
    return measured
