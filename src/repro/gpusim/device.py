"""Hardware descriptions of the paper's experimental platform (Section II).

These dataclasses carry the published specifications of the two devices
and the PCIe link; the cost models in :mod:`repro.gpusim.kernel` and
:mod:`repro.gpusim.pcie` derive timing from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.checks import check_positive

__all__ = ["GpuSpec", "CpuSpec", "PcieLink", "HybridPlatform"]


@dataclass(frozen=True)
class GpuSpec:
    """A CUDA-generation GPU described at the SM/warp granularity."""

    name: str
    num_sms: int
    cores_per_sm: int
    warp_size: int
    clock_ghz: float
    max_resident_threads_per_sm: int
    global_mem_gb: float

    def __post_init__(self):
        check_positive("num_sms", self.num_sms)
        check_positive("cores_per_sm", self.cores_per_sm)
        check_positive("warp_size", self.warp_size)
        check_positive("clock_ghz", self.clock_ghz)

    @property
    def total_cores(self) -> int:
        """Total scalar processors (SPs)."""
        return self.num_sms * self.cores_per_sm

    @property
    def max_resident_threads(self) -> int:
        """Threads the chip can keep in flight at once."""
        return self.num_sms * self.max_resident_threads_per_sm

    @classmethod
    def tesla_c1060(cls) -> "GpuSpec":
        """The paper's GPU: 30 SMs x 8 SPs = 240 cores (Section II)."""
        return cls(
            name="Nvidia Tesla C1060",
            num_sms=30,
            cores_per_sm=8,
            warp_size=32,
            clock_ghz=1.296,
            max_resident_threads_per_sm=1024,
            global_mem_gb=4.0,
        )


@dataclass(frozen=True)
class CpuSpec:
    """A multicore CPU host."""

    name: str
    num_cores: int
    clock_ghz: float
    peak_gflops: float

    def __post_init__(self):
        check_positive("num_cores", self.num_cores)
        check_positive("clock_ghz", self.clock_ghz)

    @classmethod
    def intel_i7_980(cls) -> "CpuSpec":
        """The paper's host CPU (6 cores, 3.4 GHz, ~109 GFLOPS)."""
        return cls(
            name="Intel Core i7 980",
            num_cores=6,
            clock_ghz=3.4,
            peak_gflops=109.0,
        )


@dataclass(frozen=True)
class PcieLink:
    """A PCI Express link between host and device."""

    bandwidth_gb_s: float
    latency_us: float

    def __post_init__(self):
        check_positive("bandwidth_gb_s", self.bandwidth_gb_s)
        check_positive("latency_us", self.latency_us)

    def transfer_time_us(self, nbytes: float) -> float:
        """Time (microseconds) to move ``nbytes`` across the link."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.latency_us + nbytes / (self.bandwidth_gb_s * 1e3)

    @classmethod
    def pcie2_x16(cls) -> "PcieLink":
        """PCIe 2.0 x16: 8 GB/s as quoted in Section II."""
        return cls(bandwidth_gb_s=8.0, latency_us=8.0)


@dataclass(frozen=True)
class HybridPlatform:
    """The full CPU + GPU + link platform."""

    cpu: CpuSpec = field(default_factory=CpuSpec.intel_i7_980)
    gpu: GpuSpec = field(default_factory=GpuSpec.tesla_c1060)
    link: PcieLink = field(default_factory=PcieLink.pcie2_x16)

    @classmethod
    def paper_platform(cls) -> "HybridPlatform":
        """Exactly the platform of Section II / Figure 2."""
        return cls()
