"""Discrete-event model of the hybrid FEED/TRANSFER/GENERATE pipeline.

This is the simulator behind Figures 3, 4 and 5.  The workload is
"generate N numbers with batch size S" (S = numbers per thread, the
paper's *block size*): ``T = ceil(N / S)`` GPU threads each produce one
number per iteration, for S iterations.

Three device processes run concurrently, connected by bounded buffers
(CUDA streams allow one transfer in flight while a kernel runs --
Section II):

* **CPU** produces each iteration's feed bits (FEED);
* **PCIe** ships them to device memory (TRANSFER);
* **GPU** runs the walk kernel for the iteration (GENERATE), after an
  initial Algorithm-1 mixing pass.

Timing comes from :class:`~repro.gpusim.calibration.PipelineCosts`
(Figure-4-calibrated) by default; any cost triple can be substituted.
The GPU's per-number cost degrades below full occupancy, which is what
bends the Figure 5 curve back up for large S (few threads); per-iteration
fixed costs (kernel launch, PCIe latency) penalize very small S (many
tiny iterations are modeled per-thread-batch, so small S means a huge
one-off thread-initialization bill instead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.gpusim.calibration import PipelineCosts
from repro.gpusim.events import Environment
from repro.gpusim.timeline import Timeline
from repro.utils.checks import check_positive

__all__ = ["PipelineConfig", "PipelineResult", "simulate_pipeline"]


@dataclass(frozen=True)
class PipelineConfig:
    """A hybrid-generation workload."""

    total_numbers: int
    batch_size: int = 100
    costs: PipelineCosts = field(default_factory=PipelineCosts)
    #: Buffered feed batches between CPU and PCIe, and PCIe and GPU.
    buffer_depth: int = 2
    #: Override thread count (default: ceil(N / S)).
    threads: Optional[int] = None

    def __post_init__(self):
        check_positive("total_numbers", self.total_numbers)
        check_positive("batch_size", self.batch_size)
        check_positive("buffer_depth", self.buffer_depth)
        if self.threads is not None:
            check_positive("threads", self.threads)

    @property
    def num_threads(self) -> int:
        if self.threads is not None:
            return self.threads
        return math.ceil(self.total_numbers / self.batch_size)

    @property
    def iterations(self) -> int:
        """Kernel iterations; each produces one number per thread."""
        return math.ceil(self.total_numbers / self.num_threads)


@dataclass
class PipelineResult:
    """Outcome of a simulated hybrid run."""

    config: PipelineConfig
    total_ns: float
    timeline: Timeline

    @property
    def throughput_gnumbers_s(self) -> float:
        """Numbers per nanosecond == GNumbers per second."""
        return self.config.total_numbers / self.total_ns

    @property
    def cpu_idle_fraction(self) -> float:
        return self.timeline.idle_fraction("CPU")

    @property
    def gpu_idle_fraction(self) -> float:
        return self.timeline.idle_fraction("GPU")

    @property
    def time_ms(self) -> float:
        return self.total_ns / 1e6


def simulate_pipeline(config: PipelineConfig) -> PipelineResult:
    """Run the three-stage pipeline to completion and report timings."""
    costs = config.costs
    T = config.num_threads
    iters = config.iterations

    feed_ns = T * costs.feed_ns
    transfer_ns = T * costs.transfer_ns + costs.transfer_latency_ns
    gen_ns = T * costs.generate_ns_effective(T) + costs.launch_overhead_ns
    init_ns = (
        T * costs.init_numbers_per_thread * costs.generate_ns_effective(T)
        + costs.launch_overhead_ns
    )

    env = Environment()
    to_pcie = env.store(capacity=config.buffer_depth)
    to_gpu = env.store(capacity=config.buffer_depth)
    timeline = Timeline()

    def cpu_proc():
        for i in range(iters):
            start = env.now
            yield env.timeout(feed_ns)
            timeline.add("CPU", start, env.now, f"FEED {i}")
            yield to_pcie.put(i)

    def pcie_proc():
        for _ in range(iters):
            i = yield to_pcie.get()
            start = env.now
            yield env.timeout(transfer_ns)
            timeline.add("PCIe", start, env.now, f"TRANSFER {i}")
            yield to_gpu.put(i)

    def gpu_proc():
        # Algorithm 1: initialize all walkers before the first iteration.
        start = env.now
        yield env.timeout(init_ns)
        timeline.add("GPU", start, env.now, "INIT")
        for _ in range(iters):
            i = yield to_gpu.get()
            start = env.now
            yield env.timeout(gen_ns)
            timeline.add("GPU", start, env.now, f"GENERATE {i}")

    total = env.run_all([cpu_proc(), pcie_proc(), gpu_proc()])
    return PipelineResult(config=config, total_ns=total, timeline=timeline)
