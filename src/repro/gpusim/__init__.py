"""Discrete-event simulator of the paper's hybrid CPU+GPU platform.

Substitutes for the physical Tesla C1060 + Core i7 980 testbed: device
specs, a SimPy-style event kernel, kernel/PCIe cost models, the
three-stage FEED/TRANSFER/GENERATE pipeline, and timeline rendering.
"""

from repro.gpusim.calibration import (
    PAPER_THROUGHPUT_GN_S,
    BaselineCosts,
    PipelineCosts,
)
from repro.gpusim.device import CpuSpec, GpuSpec, HybridPlatform, PcieLink
from repro.gpusim.events import Environment, Process, SimulationError, Store, Timeout
from repro.gpusim.kernel import KernelCostModel
from repro.gpusim.pcie import TransferModel, bits_per_number
from repro.gpusim.pipeline import PipelineConfig, PipelineResult, simulate_pipeline
from repro.gpusim.timeline import Interval, Timeline

__all__ = [
    "PAPER_THROUGHPUT_GN_S",
    "BaselineCosts",
    "PipelineCosts",
    "CpuSpec",
    "GpuSpec",
    "HybridPlatform",
    "PcieLink",
    "Environment",
    "Process",
    "SimulationError",
    "Store",
    "Timeout",
    "KernelCostModel",
    "TransferModel",
    "bits_per_number",
    "PipelineConfig",
    "PipelineResult",
    "simulate_pipeline",
    "Interval",
    "Timeline",
]
