"""A small generator-based discrete-event simulation kernel.

The paper's performance story is about *pipeline structure*: which device
is busy when, and where the bubbles are (Figures 4 and 5).  To reproduce
those results without the physical Tesla C1060 we simulate the platform
with a discrete-event engine in the style of SimPy, reduced to the three
primitives the pipeline model needs:

* :class:`Environment` -- the event loop and clock;
* ``yield env.timeout(dt)`` -- consume simulated time;
* :class:`Store` -- a bounded FIFO channel (``yield store.put(x)`` /
  ``yield store.get()``) used to model the CPU->GPU bit-buffer queue.

Processes are plain Python generators registered with
:meth:`Environment.process`.  Determinism: simultaneous events fire in
schedule order (a monotonically increasing sequence number breaks ties).
"""

from __future__ import annotations

import heapq
from typing import Callable, Generator, Iterable, List, Optional

__all__ = ["Environment", "Store", "Process", "Timeout", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel."""


class _EventBase:
    """Something a process can yield; wakes the process when triggered."""

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: List[Callable[["_EventBase"], None]] = []
        self.triggered = False
        self.value = None

    def _succeed(self, value=None) -> None:
        if self.triggered:
            raise SimulationError("event triggered twice")
        self.triggered = True
        self.value = value
        for cb in self.callbacks:
            self.env._schedule_call(cb, self)
        self.callbacks.clear()


class Timeout(_EventBase):
    """Fires ``delay`` time units after creation."""

    def __init__(self, env: "Environment", delay: float):
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        super().__init__(env)
        env._schedule(env.now + delay, self._succeed)


class Process(_EventBase):
    """Wraps a generator; fires when the generator finishes."""

    def __init__(self, env: "Environment", gen: Generator):
        super().__init__(env)
        self._gen = gen
        env._schedule(env.now, lambda: self._resume(None))

    def _resume(self, sent_event: Optional[_EventBase]) -> None:
        try:
            value = sent_event.value if sent_event is not None else None
            target = self._gen.send(value)
        except StopIteration as stop:
            self._succeed(stop.value)
            return
        if not isinstance(target, _EventBase):
            raise SimulationError(
                f"process yielded {target!r}; expected Timeout/Store op/Process"
            )
        if target.triggered:
            self.env._schedule_call(lambda _t: self._resume(target), target)
        else:
            target.callbacks.append(lambda t: self._resume(t))


class _StorePut(_EventBase):
    def __init__(self, env, item):
        super().__init__(env)
        self.item = item


class _StoreGet(_EventBase):
    pass


class Store:
    """Bounded FIFO channel between processes."""

    def __init__(self, env: "Environment", capacity: float = float("inf")):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: List = []
        self._puts: List[_StorePut] = []
        self._gets: List[_StoreGet] = []

    def put(self, item) -> _StorePut:
        ev = _StorePut(self.env, item)
        self._puts.append(ev)
        self._dispatch()
        return ev

    def get(self) -> _StoreGet:
        ev = _StoreGet(self.env)
        self._gets.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._puts and len(self.items) < self.capacity:
                put = self._puts.pop(0)
                self.items.append(put.item)
                put._succeed()
                progress = True
            if self._gets and self.items:
                get = self._gets.pop(0)
                get._succeed(self.items.pop(0))
                progress = True

    @property
    def level(self) -> int:
        """Items currently buffered."""
        return len(self.items)


class Environment:
    """Event loop: schedules callbacks on a simulated clock."""

    def __init__(self):
        self.now: float = 0.0
        self._heap: List = []
        self._seq = 0

    # -- scheduling ----------------------------------------------------

    def _schedule(self, at: float, fn: Callable[[], None]) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (at, self._seq, fn))

    def _schedule_call(self, cb: Callable, event: _EventBase) -> None:
        self._schedule(self.now, lambda: cb(event))

    # -- public API ----------------------------------------------------

    def timeout(self, delay: float) -> Timeout:
        """An event that fires ``delay`` units from now."""
        return Timeout(self, delay)

    def process(self, gen: Generator) -> Process:
        """Register a generator as a process; returns its completion event."""
        return Process(self, gen)

    def store(self, capacity: float = float("inf")) -> Store:
        """Create a bounded FIFO channel."""
        return Store(self, capacity)

    def run(self, until: Optional[float] = None) -> float:
        """Execute events until the queue drains or the clock passes ``until``."""
        while self._heap:
            at, _seq, fn = self._heap[0]
            if until is not None and at > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            self.now = at
            fn()
        return self.now

    def run_all(self, processes: Iterable[Generator]) -> float:
        """Convenience: register ``processes`` and run to completion."""
        for gen in processes:
            self.process(gen)
        return self.run()
