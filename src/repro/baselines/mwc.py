"""Multiply-with-carry (MWC) -- the RNG of the original photon-migration code.

The GPU Monte Carlo photon code of Alerstam et al. (CUDAMCML, cited as
[1] in the paper) gives every thread a lag-1 multiply-with-carry
generator

.. code-block:: c

   x = x_low * a + x_high;        // 64-bit state, 32-bit multiplier
   return (unsigned) x;           // low word is the output

with per-thread multipliers ``a`` chosen so ``a * 2**32 - 1`` is a
safeprime.  This module implements exactly that recurrence, vectorized
over lanes with distinct multipliers, plus the single-stream variant used
in the quality comparisons.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PRNG
from repro.bitsource.counter import splitmix64

__all__ = ["Mwc", "GOOD_MULTIPLIERS", "is_safeprime_multiplier"]

_U32 = np.uint32
_U64 = np.uint64

#: Multipliers `a` with `a * 2**32 - 1` prime and `a * 2**31 - 1` prime
#: (safeprime condition of CUDAMCML); verified in the test suite.
GOOD_MULTIPLIERS = (
    4294967118,
    4294966893,
    4294966830,
    4294966284,
    4294966164,
    4294965708,
    4294965675,
    4294964880,
)


def _is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin for 64-bit-ish integers."""
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def is_safeprime_multiplier(a: int) -> bool:
    """True when ``a`` satisfies the CUDAMCML safeprime condition."""
    return _is_prime(a * 2**32 - 1) and _is_prime(a * 2**31 - 1)


class Mwc(PRNG):
    """Lag-1 multiply-with-carry, one independent stream per lane."""

    name = "MWC"
    on_demand = True

    def __init__(self, seed: int = 0, lanes: int = 1):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = int(lanes)
        # Cycle through the good multipliers across lanes, like CUDAMCML's
        # per-thread multiplier table.
        self._a = np.array(
            [GOOD_MULTIPLIERS[i % len(GOOD_MULTIPLIERS)] for i in range(lanes)],
            dtype=_U64,
        )
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._leftover = np.empty(0, dtype=_U32)
        base = np.uint64(seed & (2**64 - 1))
        x = splitmix64(base + np.arange(self.lanes, dtype=_U64))
        # State must satisfy 0 < x and the standard MWC non-degeneracy
        # conditions; map the rare bad values away.
        x = np.where(x == 0, _U64(0x853C49E6748FEA9B), x)
        self._x = x

    def _step(self) -> np.ndarray:
        """One MWC step per lane: ``x = lo(x) * a + hi(x)``; output lo(x)."""
        x = self._x
        lo = x & _U64(0xFFFFFFFF)
        hi = x >> _U64(32)
        self._x = lo * self._a + hi
        return (self._x & _U64(0xFFFFFFFF)).astype(_U32)

    def u32_array(self, n: int) -> np.ndarray:
        """Lane-major bulk output; partial rounds are buffered so request
        splitting never changes the stream."""
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        out = np.empty(n, dtype=_U32)
        pos = min(self._leftover.size, n)
        out[:pos] = self._leftover[:pos]
        self._leftover = self._leftover[pos:]
        L = self.lanes
        while pos < n:
            vals = self._step()
            take = min(L, n - pos)
            out[pos : pos + take] = vals[:take]
            if take < L:
                self._leftover = vals[take:]
            pos += take
        return out

    def next_u32(self) -> int:
        return int(self.u32_array(1)[0])
