"""MT19937 -- the Mersenne Twister of Matsumoto & Nishimura (1998).

The paper compares against the CUDA SDK's Mersenne Twister sample
([19], [20], [25]); this is a from-scratch, vectorized implementation of
the underlying MT19937 generator:

* 624-word state, period ``2**19937 - 1``;
* ``init_genrand`` seeding (the classic Knuth-style multiplier 1812433253),
  which also matches legacy ``numpy.random.RandomState(seed)`` -- the test
  suite cross-checks against both the published reference outputs for
  seed 5489 and NumPy's legacy generator;
* the whole 624-word twist is computed with array slicing, so bulk
  generation runs at NumPy speed.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PRNG

__all__ = ["MT19937"]

_U32 = np.uint32

_N = 624
_M = 397
_MATRIX_A = _U32(0x9908B0DF)
_UPPER_MASK = _U32(0x80000000)
_LOWER_MASK = _U32(0x7FFFFFFF)


class MT19937(PRNG):
    """The 32-bit Mersenne Twister, batch-oriented.

    Notes
    -----
    As the paper stresses (Section I), Mersenne Twister on the GPU is a
    *batch* generator: you must pre-generate a block of numbers.  That is
    reflected here by ``on_demand = False`` -- scalar draws work but each
    state refresh produces 624 values at once.
    """

    name = "Mersenne Twister"
    on_demand = False

    def __init__(self, seed: int = 5489):
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        """``init_genrand`` seeding from the reference implementation."""
        self._seed = int(seed)
        mt = np.empty(_N, dtype=_U32)
        mt[0] = seed & 0xFFFFFFFF
        # mt[i] = 1812433253 * (mt[i-1] ^ (mt[i-1] >> 30)) + i
        prev = int(mt[0])
        for i in range(1, _N):
            prev = (1812433253 * (prev ^ (prev >> 30)) + i) & 0xFFFFFFFF
            mt[i] = prev
        self._mt = mt
        self._index = _N  # force twist on first draw

    def _twist(self) -> None:
        """Advance the full 624-word state, vectorized in chunks of 227.

        The reference twist reads ``mt[(i + M) % N]``, which for
        ``i >= N - M`` refers to entries *already rewritten this round*.
        Chunks no larger than ``min(M, N - M) = 227`` guarantee every such
        read lands outside the chunk being written, so each chunk is a
        pure array expression while preserving the sequential semantics.
        """
        mt = self._mt
        for a in range(0, _N, _N - _M):
            b = min(a + (_N - _M), _N)
            nxt = np.empty(b - a, dtype=_U32)
            if b < _N:
                nxt[:] = mt[a + 1 : b + 1]
            else:
                nxt[:-1] = mt[a + 1 : _N]
                nxt[-1] = mt[0]  # already holds this round's new value
            y = (mt[a:b] & _UPPER_MASK) | (nxt & _LOWER_MASK)
            mag = np.where((y & _U32(1)).astype(bool), _MATRIX_A, _U32(0))
            idx = (np.arange(a, b) + _M) % _N
            mt[a:b] = mt[idx] ^ (y >> _U32(1)) ^ mag
        self._index = 0

    @staticmethod
    def _temper(y: np.ndarray) -> np.ndarray:
        y = y ^ (y >> _U32(11))
        y = y ^ ((y << _U32(7)) & _U32(0x9D2C5680))
        y = y ^ ((y << _U32(15)) & _U32(0xEFC60000))
        return y ^ (y >> _U32(18))

    def u32_array(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        out = np.empty(n, dtype=_U32)
        pos = 0
        while pos < n:
            if self._index >= _N:
                self._twist()
            take = min(_N - self._index, n - pos)
            block = self._mt[self._index : self._index + take]
            out[pos : pos + take] = self._temper(block)
            self._index += take
            pos += take
        return out

    def next_u32(self) -> int:
        """Scalar draw (reference-compatible output order)."""
        return int(self.u32_array(1)[0])
