"""Common interface for all PRNGs compared in the paper's tables.

Every generator -- the hybrid expander-walk PRNG, the GPU baselines
(Mersenne Twister, CURAND/XORWOW, CUDPP/MD5, MWC) and the CPU baselines
(glibc ``rand()``, ANSI LCG) -- is exposed through :class:`PRNG` so the
quality batteries and benchmark harness treat them uniformly.

The primitive is :meth:`PRNG.u32_array`; everything else (64-bit values,
uniforms, bits, bytes) derives from it.  Generators that natively emit
64-bit values override :meth:`u64_array` and synthesize ``u32`` halves.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["PRNG", "BitSourcePRNG"]

_U32 = np.uint32
_U64 = np.uint64


class PRNG(abc.ABC):
    """A seeded pseudo random number generator with vectorized output."""

    #: Short name used in tables (e.g. "Hybrid PRNG", "CURAND").
    name: str = "prng"
    #: True if the generator supports cheap on-demand calls (Table I).
    on_demand: bool = False

    @abc.abstractmethod
    def u32_array(self, n: int) -> np.ndarray:
        """Next ``n`` 32-bit outputs as ``uint32``."""

    @abc.abstractmethod
    def reseed(self, seed: int) -> None:
        """Reset to a deterministic state derived from ``seed``."""

    # ------------------------------------------------------------------
    # Derived output shapes
    # ------------------------------------------------------------------

    def u64_array(self, n: int) -> np.ndarray:
        """Next ``n`` 64-bit outputs (two u32 draws each by default)."""
        w = self.u32_array(2 * n).astype(_U64)
        return (w[0::2] << _U64(32)) | w[1::2]

    def uniform(self, n: int) -> np.ndarray:
        """``n`` doubles uniform in [0, 1) built from 32-bit draws."""
        return self.u32_array(n).astype(np.float64) * (1.0 / 4294967296.0)

    def uniform53(self, n: int) -> np.ndarray:
        """``n`` doubles uniform in [0, 1) with full 53-bit resolution."""
        w = self.u64_array(n)
        return (w >> _U64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)

    def bytes_stream(self, n: int) -> np.ndarray:
        """``n`` bytes of output (little-endian per 32-bit word)."""
        nwords = (n + 3) // 4
        return self.u32_array(nwords).astype("<u4").view(np.uint8)[:n]

    def bits_stream(self, n: int) -> np.ndarray:
        """``n`` output bits as uint8 0/1, MSB-first within each u32."""
        nwords = (n + 31) // 32
        raw = np.unpackbits(self.u32_array(nwords).astype(">u4").view(np.uint8))
        return raw[:n]

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} name={self.name!r}>"


class BitSourcePRNG(PRNG):
    """Adapter presenting any :class:`repro.bitsource.base.BitSource` as a PRNG."""

    def __init__(self, source, name: str | None = None, on_demand: bool = True):
        self.source = source
        self.name = name if name is not None else source.name
        self.on_demand = on_demand
        self._leftover: np.ndarray | None = None

    def reseed(self, seed: int) -> None:
        self.source.reseed(seed)
        self._leftover = None

    def u32_array(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        nwords = (n + 1) // 2
        w = self.source.words64(nwords)
        halves = np.empty(2 * nwords, dtype=_U32)
        halves[0::2] = (w >> _U64(32)).astype(_U32)
        halves[1::2] = (w & _U64(0xFFFFFFFF)).astype(_U32)
        return halves[:n]

    def u64_array(self, n: int) -> np.ndarray:
        return self.source.words64(n)
