"""Name-keyed registry of every generator compared in the paper.

The benchmark harness and quality batteries look generators up by the
names used in the paper's tables, so rows print with the same labels.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines.base import PRNG
from repro.baselines.hybrid_adapter import HybridPRNG
from repro.baselines.lcg import AnsiLcgPRNG, GlibcPackedPRNG, GlibcRandPRNG, Lcg64
from repro.baselines.md5_rand import Md5Rand
from repro.baselines.mt19937 import MT19937
from repro.baselines.mwc import Mwc
from repro.baselines.xorwow import Xorwow

__all__ = ["GENERATORS", "make_generator", "available_generators"]

#: Factories keyed by table label.  Each takes a seed and returns a PRNG.
GENERATORS: Dict[str, Callable[[int], PRNG]] = {
    "Hybrid PRNG": lambda seed: HybridPRNG(seed=seed),
    "Mersenne Twister": lambda seed: MT19937(seed=seed),
    "CURAND": lambda seed: Xorwow(seed=seed, lanes=64),
    "CUDPP RAND": lambda seed: Md5Rand(seed=seed),
    "glibc rand()": lambda seed: GlibcRandPRNG(seed=seed),
    "glibc rand() packed": lambda seed: GlibcPackedPRNG(seed=seed),
    "ANSI C LCG": lambda seed: AnsiLcgPRNG(seed=seed),
    "MWC": lambda seed: Mwc(seed=seed, lanes=64),
    "LCG64": lambda seed: Lcg64(seed=seed),
}


def make_generator(name: str, seed: int = 1) -> PRNG:
    """Instantiate the generator registered under ``name``."""
    try:
        factory = GENERATORS[name]
    except KeyError:
        raise KeyError(
            f"unknown generator {name!r}; known: {sorted(GENERATORS)}"
        ) from None
    return factory(seed)


def available_generators() -> list[str]:
    """Names of all registered generators, in table order."""
    return list(GENERATORS)
