"""MD5-based PRNG in the style of CUDPP RAND / Tzeng-Wei (I3D 2008).

The paper's "CUDPP RAND" rows come from CUDPP's ``rand_md5`` which, per
Tzeng & Wei's "Parallel white noise generation on a GPU via cryptographic
hash", hashes a per-thread counter/seed block with MD5 and emits the four
32-bit digest words as random numbers.

This module contains

* :func:`md5_compress` -- the raw MD5 compression function vectorized over
  many independent 16-word blocks (one lane per "GPU thread");
* :func:`md5_hex` -- full RFC 1321 MD5 (padding + chaining), used by the
  test suite to validate the compression function against the official
  test vectors;
* :class:`Md5Rand` -- the counter-mode PRNG built on top.

MD5 is cryptographically broken for collision resistance, but as a
*statistical* bit mixer it is excellent -- hence its strong showing in the
paper's Table II.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PRNG

__all__ = ["md5_compress", "md5_hex", "Md5Rand"]

_U32 = np.uint32
_U64 = np.uint64

# Round constants K[i] = floor(|sin(i + 1)| * 2**32) (RFC 1321).
_K = np.floor(np.abs(np.sin(np.arange(1, 65, dtype=np.float64))) * 2**32).astype(
    _U32
)

# Per-operation left-rotation amounts.
_S = np.array(
    [7, 12, 17, 22] * 4 + [5, 9, 14, 20] * 4 + [4, 11, 16, 23] * 4
    + [6, 10, 15, 21] * 4,
    dtype=np.int64,
)

# Message-word schedule g(i) per operation.
_G = np.concatenate(
    [
        np.arange(16),
        (5 * np.arange(16) + 1) % 16,
        (3 * np.arange(16) + 5) % 16,
        (7 * np.arange(16)) % 16,
    ]
)

_INIT = (
    _U32(0x67452301),
    _U32(0xEFCDAB89),
    _U32(0x98BADCFE),
    _U32(0x10325476),
)


def _rotl(x: np.ndarray, s: int) -> np.ndarray:
    s = int(s)
    return (x << _U32(s)) | (x >> _U32(32 - s))


def md5_compress(blocks: np.ndarray, state: tuple | None = None) -> np.ndarray:
    """MD5 compression of many 512-bit blocks at once.

    Parameters
    ----------
    blocks : uint32 array of shape (n, 16)
        Little-endian message words of ``n`` independent blocks.
    state : optional tuple of four uint32 arrays (or scalars)
        Chaining values; defaults to the RFC 1321 initial state.

    Returns
    -------
    uint32 array of shape (n, 4) -- the digest words A, B, C, D.
    """
    blocks = np.asarray(blocks, dtype=_U32)
    if blocks.ndim != 2 or blocks.shape[1] != 16:
        raise ValueError(f"blocks must have shape (n, 16), got {blocks.shape}")
    n = blocks.shape[0]
    if state is None:
        a0 = np.full(n, _INIT[0], dtype=_U32)
        b0 = np.full(n, _INIT[1], dtype=_U32)
        c0 = np.full(n, _INIT[2], dtype=_U32)
        d0 = np.full(n, _INIT[3], dtype=_U32)
    else:
        a0, b0, c0, d0 = (np.broadcast_to(np.asarray(v, dtype=_U32), (n,)).copy()
                          for v in state)
    a, b, c, d = a0.copy(), b0.copy(), c0.copy(), d0.copy()

    for i in range(64):
        if i < 16:
            f = (b & c) | (~b & d)
        elif i < 32:
            f = (d & b) | (~d & c)
        elif i < 48:
            f = b ^ c ^ d
        else:
            f = c ^ (b | ~d)
        f = f + a + _K[i] + blocks[:, _G[i]]
        a = d
        d = c
        c = b
        b = b + _rotl(f, _S[i])

    return np.stack([a0 + a, b0 + b, c0 + c, d0 + d], axis=1)


def md5_hex(data: bytes) -> str:
    """Full MD5 of ``data`` as a hex digest (RFC 1321 padding + chaining)."""
    length_bits = (8 * len(data)) & (2**64 - 1)
    padded = bytearray(data)
    padded.append(0x80)
    while len(padded) % 64 != 56:
        padded.append(0)
    padded += int(length_bits).to_bytes(8, "little")
    words = np.frombuffer(bytes(padded), dtype="<u4").reshape(-1, 16)
    state = tuple(np.asarray([v]) for v in _INIT)
    for blk in words:
        digest = md5_compress(blk[None, :].astype(_U32), state=state)
        state = tuple(digest[:, j] for j in range(4))
    out = np.stack([state[j][0] for j in range(4)]).astype("<u4")
    return out.tobytes().hex()


class Md5Rand(PRNG):
    """Counter-mode MD5 generator (the CUDPP RAND construction).

    Lane ``t`` hashing counter ``c`` fills its block with
    ``(t, c, seed_lo, seed_hi)`` plus fixed padding words -- mirroring
    CUDPP's per-thread input setup -- and emits the 4 digest words.
    """

    name = "CUDPP RAND"
    on_demand = False  # CUDPP RAND generates into a pre-sized array

    def __init__(self, seed: int = 0, lanes: int = 256):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = int(lanes)
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._seed = int(seed) & (2**64 - 1)
        self._block_counter = 0
        self._leftover = np.empty(0, dtype=_U32)

    def _blocks(self, nblocks: int) -> np.ndarray:
        """Build the next ``nblocks`` message blocks.

        Blocks are numbered absolutely: block ``b`` hashes lane
        ``b % lanes`` at per-lane counter ``b // lanes``, so the stream is
        independent of how requests are split.
        """
        idx = self._block_counter + np.arange(nblocks, dtype=_U64)
        lane = idx % _U64(self.lanes)
        ctr = idx // _U64(self.lanes)
        M = np.zeros((nblocks, 16), dtype=_U32)
        M[:, 0] = lane.astype(_U32)
        M[:, 1] = (ctr & _U64(0xFFFFFFFF)).astype(_U32)
        M[:, 2] = (ctr >> _U64(32)).astype(_U32)
        M[:, 3] = _U32(self._seed & 0xFFFFFFFF)
        M[:, 4] = _U32(self._seed >> 32)
        # RFC-style closing: a 1-bit marker and the message length (160 bits).
        M[:, 5] = _U32(0x80)
        M[:, 14] = _U32(160)
        return M

    def u32_array(self, n: int) -> np.ndarray:
        """Digest words with leftover buffering: splitting one request
        into several produces the identical stream."""
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=_U32)
        have = int(self._leftover.size)
        if have >= n:
            out = self._leftover[:n]
            self._leftover = self._leftover[n:]
            return out
        nblocks = (n - have + 3) // 4
        digests = md5_compress(self._blocks(nblocks)).reshape(-1)
        self._block_counter += nblocks
        stream = np.concatenate([self._leftover, digests])
        self._leftover = stream[n:]
        return stream[:n]
