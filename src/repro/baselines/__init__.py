"""Baseline PRNGs the paper compares against, implemented from scratch."""

from repro.baselines.base import BitSourcePRNG, PRNG
from repro.baselines.hybrid_adapter import HybridPRNG
from repro.baselines.lcg import AnsiLcgPRNG, GlibcPackedPRNG, GlibcRandPRNG, Lcg64
from repro.baselines.md5_rand import Md5Rand, md5_compress, md5_hex
from repro.baselines.mt19937 import MT19937
from repro.baselines.mwc import GOOD_MULTIPLIERS, Mwc, is_safeprime_multiplier
from repro.baselines.registry import GENERATORS, available_generators, make_generator
from repro.baselines.xorwow import MARSAGLIA_INITIAL_STATE, Xorwow

__all__ = [
    "PRNG",
    "BitSourcePRNG",
    "HybridPRNG",
    "GlibcRandPRNG",
    "GlibcPackedPRNG",
    "AnsiLcgPRNG",
    "Lcg64",
    "Md5Rand",
    "md5_compress",
    "md5_hex",
    "MT19937",
    "Mwc",
    "GOOD_MULTIPLIERS",
    "is_safeprime_multiplier",
    "Xorwow",
    "MARSAGLIA_INITIAL_STATE",
    "GENERATORS",
    "make_generator",
    "available_generators",
]
