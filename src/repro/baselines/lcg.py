"""Linear congruential baselines: glibc ``rand()`` and friends as PRNGs.

These adapt the CPU-side bit sources (:mod:`repro.bitsource.glibc`) to the
common :class:`~repro.baselines.base.PRNG` interface used by the quality
batteries, plus a plain 64-bit LCG (Knuth's MMIX constants) as an extra
deliberately-mediocre reference point.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PRNG
from repro.bitsource.glibc import AnsiCLcg, GlibcRandom

__all__ = ["GlibcRandPRNG", "AnsiLcgPRNG", "Lcg64"]

_U32 = np.uint32
_U64 = np.uint64


class GlibcRandPRNG(PRNG):
    """glibc ``rand()`` exposed as a PRNG (the paper's Table I/II bottom rows).

    Tested **as an application would use it**: each 32-bit output is one
    raw ``rand()`` value, whose most significant bit is always zero
    (RAND_MAX is ``2**31 - 1``).  Bit-level batteries therefore see the
    stuck MSB -- a genuine property of treating ``rand()`` output as
    32-bit words, and the main reason the paper's Table II scores glibc
    so poorly.  :class:`GlibcPackedPRNG` repacks fresh bits instead.
    """

    name = "glibc rand()"
    on_demand = True

    def __init__(self, seed: int = 1):
        self._gen = GlibcRandom(seed)

    def reseed(self, seed: int) -> None:
        self._gen.reseed(seed)

    def rand31_array(self, n: int) -> np.ndarray:
        """Raw ``rand()`` outputs (31-bit values), C-sequence compatible."""
        return self._gen.rand_array(n)

    def u32_array(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        return self.rand31_array(n)

    def uniform(self, n: int) -> np.ndarray:
        """The C idiom ``rand() / (RAND_MAX + 1.0)``."""
        return self.rand31_array(n).astype(np.float64) * (1.0 / 2147483648.0)


class GlibcPackedPRNG(PRNG):
    """glibc ``rand()`` with full-entropy repacking (ablation variant).

    32-bit outputs are assembled from fresh bits of the 31-bit stream
    (:meth:`GlibcRandom.words64`), so the batteries probe the additive-
    feedback structure itself rather than the stuck MSB of the naive
    adapter.
    """

    name = "glibc rand() packed"
    on_demand = True

    def __init__(self, seed: int = 1):
        self._gen = GlibcRandom(seed)

    def reseed(self, seed: int) -> None:
        self._gen.reseed(seed)

    def u32_array(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        nwords = (n + 1) // 2
        w = self._gen.words64(nwords)
        halves = np.empty(2 * nwords, dtype=_U32)
        halves[0::2] = (w >> _U64(32)).astype(_U32)
        halves[1::2] = (w & _U64(0xFFFFFFFF)).astype(_U32)
        return halves[:n]

    def u64_array(self, n: int) -> np.ndarray:
        return self._gen.words64(n)


class AnsiLcgPRNG(PRNG):
    """ANSI C reference ``rand()`` (15-bit LCG) as a PRNG; very weak.

    32-bit outputs are the idiomatic ``(rand() << 16) | rand()``: bits 31
    and 15 are stuck at zero, exactly what an application gluing two
    RAND_MAX=32767 calls together produces -- and what the batteries
    should see.
    """

    name = "ANSI C LCG"
    on_demand = True

    def __init__(self, seed: int = 1):
        self._gen = AnsiCLcg(seed)

    def reseed(self, seed: int) -> None:
        self._gen.reseed(seed)

    def u32_array(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        vals = self._gen.rand_array(2 * n).astype(_U32).reshape(n, 2)
        return (vals[:, 0] << _U32(16)) | vals[:, 1]

    def uniform(self, n: int) -> np.ndarray:
        """The C idiom ``rand() / (RAND_MAX + 1.0)`` (15-bit resolution)."""
        return self._gen.rand_array(n).astype(np.float64) * (1.0 / 32768.0)


class Lcg64(PRNG):
    """64-bit LCG with Knuth's MMIX constants; upper 32 bits are emitted."""

    name = "LCG64"
    on_demand = True

    _A = np.uint64(6364136223846793005)
    _C = np.uint64(1442695040888963407)
    _BLOCK = 4096

    def __init__(self, seed: int = 1):
        # Precompute blocked-jump tables (cf. AnsiCLcg) in Python ints to
        # keep the 64-bit modular arithmetic exact.
        mod = 1 << 64
        a_pows = np.empty(self._BLOCK, dtype=_U64)
        c_terms = np.empty(self._BLOCK, dtype=_U64)
        a, c = 1, 0
        for i in range(self._BLOCK):
            a = (a * int(self._A)) % mod
            c = (c * int(self._A) + int(self._C)) % mod
            a_pows[i] = a
            c_terms[i] = c
        self._a_pows = a_pows
        self._c_terms = c_terms
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._state = np.uint64(seed & (2**64 - 1))

    def u32_array(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        out = np.empty(n, dtype=_U32)
        pos = 0
        while pos < n:
            take = min(self._BLOCK, n - pos)
            states = self._a_pows[:take] * self._state + self._c_terms[:take]
            self._state = states[-1]
            out[pos : pos + take] = (states >> _U64(32)).astype(_U32)
            pos += take
        return out
