"""Adapter exposing the hybrid expander-walk PRNG through the PRNG interface.

This is the object the quality batteries and benchmark tables call
"Hybrid PRNG": a :class:`~repro.core.parallel.ParallelExpanderPRNG` with
the paper's parameters (glibc feed, walk length 64, unbiased neighbour
selection), emitting its 64-bit vertex ids as the output stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import PRNG
from repro.bitsource.base import BitSource
from repro.bitsource.glibc import GlibcRandom
from repro.core.parallel import ParallelExpanderPRNG

__all__ = ["HybridPRNG"]

_U32 = np.uint32
_U64 = np.uint64

#: Walker count for quality runs: large enough for SIMD efficiency, small
#: enough that initialization stays cheap.
_DEFAULT_THREADS = 1 << 14


class HybridPRNG(PRNG):
    """The paper's generator behind the common PRNG interface."""

    name = "Hybrid PRNG"
    on_demand = True

    def __init__(
        self,
        seed: int = 1,
        num_threads: int = _DEFAULT_THREADS,
        walk_length: int = 64,
        policy: str = "reject",
        bit_source: Optional[BitSource] = None,
    ):
        self._ctor = dict(
            num_threads=num_threads, walk_length=walk_length, policy=policy
        )
        self._external_source = bit_source
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        source = self._external_source
        if source is not None:
            source.reseed(seed)
        else:
            # Seed 0 is handled inside GlibcRandom (glibc's srand(0) == srand(1)).
            source = GlibcRandom(seed)
        self.generator = ParallelExpanderPRNG(
            bit_source=source, **self._ctor
        )

    def u64_array(self, n: int) -> np.ndarray:
        """Bulk draws from the generator's canonical stream.

        ``ParallelExpanderPRNG.generate`` buffers round remainders (the
        core stream contract), so fine-grained on-demand callers (e.g.
        the photon simulator's shrinking batches) do not pay a whole
        round per call and fetch sizing cannot change the stream.
        """
        return self.generator.generate(n)

    def u64_into(self, out: np.ndarray) -> None:
        """Fill ``out`` in place with the next ``out.size`` stream values.

        Zero-copy counterpart of :meth:`u64_array` for callers that pool
        their buffers (``repro generate`` streams through one); same
        stream, same remainder behaviour.  Both paths route through
        ``ParallelExpanderPRNG.generate_into``, so an installed sentinel
        tap (:mod:`repro.obs.sentinel`) observes these deliveries too.
        """
        self.generator.generate_into(out)

    def u32_array(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        nwords = (n + 1) // 2
        w = self.u64_array(nwords)
        halves = np.empty(2 * nwords, dtype=_U32)
        halves[0::2] = (w >> _U64(32)).astype(_U32)
        halves[1::2] = (w & _U64(0xFFFFFFFF)).astype(_U32)
        return halves[:n]
