"""XORWOW -- the default engine of NVIDIA's CURAND library.

The paper's "CURAND" rows (Table I-III, Figure 3) refer to the CURAND
device API whose default generator is Marsaglia's **xorwow** (from
"Xorshift RNGs", JSS 2003): a five-word xorshift recurrence plus a Weyl
counter:

.. code-block:: c

   t = x ^ (x >> 2);  x = y;  y = z;  z = w;  w = v;
   v = (v ^ (v << 4)) ^ (t ^ (t << 1));
   d += 362437;
   return v + d;

CURAND keeps one such state *per GPU thread*.  This implementation mirrors
that: :class:`Xorwow` advances ``lanes`` independent states in lockstep
(lane-major output, matching a one-thread-one-output kernel), and
``lanes=1`` is the plain scalar generator.  Lane states are seeded by
SplitMix64 expansion, giving well-separated substreams.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PRNG
from repro.bitsource.counter import splitmix64

__all__ = ["Xorwow", "MARSAGLIA_INITIAL_STATE"]

_U32 = np.uint32
_U64 = np.uint64

#: The initial state from Marsaglia's paper (x, y, z, w, v, d).
MARSAGLIA_INITIAL_STATE = (123456789, 362436069, 521288629, 88675123, 5783321, 6615241)

_WEYL = _U32(362437)


class Xorwow(PRNG):
    """Vectorized multi-stream XORWOW (CURAND's default device generator)."""

    name = "CURAND"
    on_demand = True  # CURAND's *device API* supports per-call generation

    def __init__(self, seed: int = 0, lanes: int = 1, marsaglia_init: bool = False):
        if lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {lanes}")
        self.lanes = int(lanes)
        self._marsaglia_init = bool(marsaglia_init)
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._leftover = np.empty(0, dtype=_U32)
        L = self.lanes
        if self._marsaglia_init:
            if L != 1:
                raise ValueError("marsaglia_init requires lanes == 1")
            x, y, z, w, v, d = MARSAGLIA_INITIAL_STATE
            self._s = np.array([[x], [y], [z], [w], [v]], dtype=_U32)
            self._d = np.array([d], dtype=_U32)
            return
        # SplitMix64-expanded per-lane seeding: 3 words -> 6 state values.
        base = np.uint64(seed & (2**64 - 1))
        idx = base + np.arange(3 * L, dtype=_U64)
        words = splitmix64(idx).reshape(3, L)
        s = np.empty((5, L), dtype=_U32)
        s[0] = (words[0] >> _U64(32)).astype(_U32)
        s[1] = (words[0] & _U64(0xFFFFFFFF)).astype(_U32)
        s[2] = (words[1] >> _U64(32)).astype(_U32)
        s[3] = (words[1] & _U64(0xFFFFFFFF)).astype(_U32)
        s[4] = (words[2] >> _U64(32)).astype(_U32)
        # xorshift states must not be all-zero per lane; fix degenerate lanes.
        dead = (s == 0).all(axis=0)
        if dead.any():
            s[0, dead] = _U32(1)
        self._s = s
        self._d = (words[2] & _U64(0xFFFFFFFF)).astype(_U32)

    def _step(self) -> np.ndarray:
        """Advance every lane one step; returns one output per lane."""
        s = self._s
        x = s[0]
        t = x ^ (x >> _U32(2))
        s[0] = s[1]
        s[1] = s[2]
        s[2] = s[3]
        s[3] = s[4]
        v = s[4] ^ (s[4] << _U32(4))
        s[4] = v ^ (t ^ (t << _U32(1)))
        self._d = self._d + _WEYL
        return s[4] + self._d

    def u32_array(self, n: int) -> np.ndarray:
        """Lane-major bulk output with leftover buffering.

        Partial-round remainders are kept, so splitting one request into
        several produces the identical stream.
        """
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        out = np.empty(n, dtype=_U32)
        pos = min(self._leftover.size, n)
        out[:pos] = self._leftover[:pos]
        self._leftover = self._leftover[pos:]
        L = self.lanes
        while pos < n:
            vals = self._step()
            take = min(L, n - pos)
            out[pos : pos + take] = vals[:take]
            if take < L:
                self._leftover = vals[take:]
            pos += take
        return out

    def next_u32(self) -> int:
        """Scalar draw from lane 0's interleaved stream."""
        return int(self.u32_array(1)[0])
