"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

__all__ = [
    "check_positive",
    "check_in_range",
    "check_power_of_two",
    "check_probability",
]


def check_positive(name: str, value) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(name: str, value, lo, hi) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value <= 0 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value!r}")
