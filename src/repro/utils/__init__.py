"""Shared utilities: bit manipulation, validation, and text tables."""

from repro.utils.bits import (
    bits_to_uint64,
    extract_3bit_chunks,
    hamming_weight_u64,
    pack_u32_pairs,
    rotl32,
    rotl64,
    uint64_to_bits,
    unpack_u64,
)
from repro.utils.checks import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)
from repro.utils.tables import format_table

__all__ = [
    "bits_to_uint64",
    "extract_3bit_chunks",
    "hamming_weight_u64",
    "pack_u32_pairs",
    "rotl32",
    "rotl64",
    "uint64_to_bits",
    "unpack_u64",
    "check_in_range",
    "check_positive",
    "check_power_of_two",
    "check_probability",
    "format_table",
]
