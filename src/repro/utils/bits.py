"""Bit-level helpers used throughout the PRNG core and quality suites.

Everything here is vectorized over NumPy arrays; scalar inputs are accepted
and handled through NumPy broadcasting.  All operations are defined on
unsigned integer dtypes with explicit wraparound semantics (the natural
behaviour of fixed-width GPU registers that the paper's CUDA kernels rely
on).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rotl32",
    "rotl64",
    "pack_u32_pairs",
    "unpack_u64",
    "uint64_to_bits",
    "bits_to_uint64",
    "extract_3bit_chunks",
    "hamming_weight_u64",
    "bytes_from_u64",
    "u01_from_u64",
    "u01_from_u32",
]

_U32 = np.uint32
_U64 = np.uint64


def rotl32(x, r: int):
    """Rotate 32-bit value(s) ``x`` left by ``r`` bits."""
    x = np.asarray(x, dtype=_U32)
    r = int(r) % 32
    if r == 0:
        return x.copy()
    return (x << _U32(r)) | (x >> _U32(32 - r))


def rotl64(x, r: int):
    """Rotate 64-bit value(s) ``x`` left by ``r`` bits."""
    x = np.asarray(x, dtype=_U64)
    r = int(r) % 64
    if r == 0:
        return x.copy()
    return (x << _U64(r)) | (x >> _U64(64 - r))


def pack_u32_pairs(hi, lo):
    """Pack two 32-bit arrays into one 64-bit array: ``(hi << 32) | lo``.

    This is how a Gabber-Galil vertex ``(x, y)`` becomes the 64-bit random
    number emitted by the generator (Section III-B of the paper).
    """
    hi = np.asarray(hi, dtype=_U64)
    lo = np.asarray(lo, dtype=_U64)
    return (hi << _U64(32)) | (lo & _U64(0xFFFFFFFF))


def unpack_u64(v):
    """Split 64-bit value(s) into ``(hi, lo)`` 32-bit halves."""
    v = np.asarray(v, dtype=_U64)
    hi = (v >> _U64(32)).astype(_U32)
    lo = (v & _U64(0xFFFFFFFF)).astype(_U32)
    return hi, lo


def uint64_to_bits(values) -> np.ndarray:
    """Expand 64-bit value(s) into a flat MSB-first bit array (uint8)."""
    values = np.atleast_1d(np.asarray(values, dtype=_U64))
    # View as 8 big-endian bytes per value, then unpack bits.
    as_bytes = values.astype(">u8").view(np.uint8)
    return np.unpackbits(as_bytes)


def bits_to_uint64(bits) -> np.ndarray:
    """Pack a flat MSB-first bit array (multiple of 64 long) into uint64s."""
    bits = np.asarray(bits, dtype=np.uint8)
    if bits.size % 64 != 0:
        raise ValueError(f"bit count {bits.size} is not a multiple of 64")
    packed = np.packbits(bits)
    return packed.view(">u8").astype(_U64)


def extract_3bit_chunks(words, chunks_per_word: int = 21) -> np.ndarray:
    """Slice each 64-bit word into consecutive 3-bit chunks (values 0..7).

    This mirrors line 5 of Algorithm 1 in the paper:
    ``b(u) = (int)(bin(t) & (111 << (i*3)))`` -- each walk step consumes the
    next 3 bits of the feed word.  A 64-bit word yields at most 21 full
    chunks (63 bits); the last bit is discarded.

    Parameters
    ----------
    words : array_like of uint64
    chunks_per_word : int
        How many 3-bit chunks to take from each word (1..21).

    Returns
    -------
    np.ndarray of uint8, shape ``(len(words), chunks_per_word)``
    """
    if not 1 <= chunks_per_word <= 21:
        raise ValueError("chunks_per_word must be in 1..21")
    words = np.atleast_1d(np.asarray(words, dtype=_U64))
    shifts = (np.arange(chunks_per_word, dtype=_U64) * _U64(3))
    return ((words[:, None] >> shifts[None, :]) & _U64(0x7)).astype(np.uint8)


def hamming_weight_u64(values) -> np.ndarray:
    """Population count of 64-bit value(s), vectorized."""
    v = np.atleast_1d(np.asarray(values, dtype=_U64))
    # Classic SWAR popcount on uint64.
    m1 = _U64(0x5555555555555555)
    m2 = _U64(0x3333333333333333)
    m4 = _U64(0x0F0F0F0F0F0F0F0F)
    h01 = _U64(0x0101010101010101)
    v = v - ((v >> _U64(1)) & m1)
    v = (v & m2) + ((v >> _U64(2)) & m2)
    v = (v + (v >> _U64(4))) & m4
    return ((v * h01) >> _U64(56)).astype(np.uint8)


def bytes_from_u64(values) -> np.ndarray:
    """Flatten 64-bit value(s) into a little-endian uint8 byte stream."""
    values = np.atleast_1d(np.asarray(values, dtype=_U64))
    return values.astype("<u8").view(np.uint8)


def u01_from_u64(values) -> np.ndarray:
    """Map 64-bit integers to floats uniform in [0, 1) using the top 53 bits."""
    values = np.atleast_1d(np.asarray(values, dtype=_U64))
    return (values >> _U64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)


def u01_from_u32(values) -> np.ndarray:
    """Map 32-bit integers to floats uniform in [0, 1)."""
    values = np.atleast_1d(np.asarray(values, dtype=_U32))
    return values.astype(np.float64) * (1.0 / 4294967296.0)
