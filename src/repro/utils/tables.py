"""Plain-text table rendering for the benchmark harness.

The paper reports results as tables (Table I-III) and figures (Fig. 3-8).
Benchmarks print reproductions of those as monospaced tables; this module
keeps the formatting in one place.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospaced table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), sum(widths) + 2 * (len(widths) - 1)))
    lines.append(fmt_row(headers))
    lines.append(fmt_row(["-" * w for w in widths]))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence],
    title: str | None = None,
) -> str:
    """Render one x-column plus several named y-columns (a 'figure' as text)."""
    headers = [x_label, *series.keys()]
    columns = [xs, *series.values()]
    n = len(xs)
    for name, col in series.items():
        if len(col) != n:
            raise ValueError(f"series {name!r} has {len(col)} points, expected {n}")
    rows = [[col[i] for col in columns] for i in range(n)]
    return format_table(headers, rows, title=title)
