"""NIST SP800-22 tests 5-8: matrix rank, DFT spectral, and the two
template-matching tests.

The matrix-rank machinery is shared with the DIEHARD implementation
(:func:`repro.quality.diehard.ranks.gf2_rank_batch`).
"""

from __future__ import annotations

import numpy as np
import scipy.stats as sps

from repro.quality.diehard.ranks import gf2_rank_batch
from repro.quality.nist.helpers import bits_to_pm1, erfc_pvalue, igamc_pvalue
from repro.quality.stats import TestResult, binary_matrix_rank_probs

__all__ = [
    "matrix_rank_test_nist",
    "dft_spectral_test",
    "non_overlapping_template_test",
    "overlapping_template_test",
]


def matrix_rank_test_nist(bits: np.ndarray) -> TestResult:
    """Test 5: ranks of 32x32 binary matrices cut from the stream."""
    M = 32
    per_matrix = M * M
    nmat = bits.size // per_matrix
    if nmat < 38:
        raise ValueError(f"need >= 38 matrices (38912 bits), got {nmat}")
    rows_bits = bits[: nmat * per_matrix].reshape(nmat * M, M)
    weights = (np.uint64(1) << np.arange(M, dtype=np.uint64))
    rows = (rows_bits.astype(np.uint64) * weights).sum(axis=1)
    ranks = gf2_rank_batch(rows.reshape(nmat, M), M)
    probs = binary_matrix_rank_probs(M, M, M - 2)  # [<=30, 31, 32]
    binned = np.clip(ranks, M - 2, M) - (M - 2)
    observed = np.bincount(binned, minlength=3).astype(float)
    expected = probs * nmat
    stat = float(((observed - expected) ** 2 / expected).sum())
    return TestResult(
        name="binary matrix rank (NIST)",
        p_value=igamc_pvalue(1.0, stat / 2.0),
        statistic=stat,
        detail=f"{nmat} matrices",
    )


def dft_spectral_test(bits: np.ndarray) -> TestResult:
    """Test 6: count of DFT peaks below the 95% threshold."""
    n = bits.size
    if n < 1000:
        raise ValueError(f"spectral test needs >= 1000 bits, got {n}")
    x = bits_to_pm1(bits)
    spectrum = np.abs(np.fft.rfft(x))[: n // 2]
    threshold = np.sqrt(np.log(1.0 / 0.05) * n)
    n0 = 0.95 * n / 2.0
    n1 = float((spectrum < threshold).sum())
    d = (n1 - n0) / np.sqrt(n * 0.95 * 0.05 / 4.0)
    return TestResult(
        name="DFT spectral",
        p_value=erfc_pvalue(d),
        statistic=d,
        detail=f"N1={int(n1)} expected {n0:.0f}",
    )


def _window_codes(bits: np.ndarray, m: int) -> np.ndarray:
    """Overlapping m-bit window codes of the stream."""
    n = bits.size - m + 1
    codes = np.zeros(n, dtype=np.int64)
    for j in range(m):
        codes = (codes << 1) | bits[j : j + n].astype(np.int64)
    return codes


def non_overlapping_template_test(
    bits: np.ndarray, template: str = "000000001", nblocks: int = 8
) -> TestResult:
    """Test 7: non-overlapping matches of an aperiodic template per block."""
    m = len(template)
    tmpl_bits = np.array([int(c) for c in template], dtype=np.uint8)
    n = bits.size
    M = n // nblocks
    if M < 10 * m:
        raise ValueError("blocks too short for the template length")
    mu = (M - m + 1) / 2.0**m
    var = M * (1.0 / 2.0**m - (2.0 * m - 1) / 2.0 ** (2 * m))

    counts = np.empty(nblocks)
    code_t = int("".join(template), 2)
    for b in range(nblocks):
        blk = bits[b * M : (b + 1) * M]
        codes = _window_codes(blk, m)
        # Non-overlapping scan: after a hit, skip m positions.
        hits = 0
        i = 0
        match = codes == code_t
        while i < match.size:
            if match[i]:
                hits += 1
                i += m
            else:
                i += 1
        counts[b] = hits
    stat = float((((counts - mu) ** 2) / var).sum())
    return TestResult(
        name="non-overlapping template",
        p_value=igamc_pvalue(nblocks / 2.0, stat / 2.0),
        statistic=stat,
        detail=f"template {template}, {nblocks} blocks",
    )


#: SP800-22 class probabilities for the overlapping-template test
#: (m=9, M=1032: classes 0..4 matches and >=5).
_OVERLAP_PROBS = np.array(
    [0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865]
)


def overlapping_template_test(bits: np.ndarray, template: str = "111111111"
                              ) -> TestResult:
    """Test 8: overlapping matches of the all-ones template per block."""
    m = len(template)
    M = 1032
    nblocks = bits.size // M
    if nblocks < 100:
        raise ValueError(f"need >= 100 blocks of {M} bits, got {nblocks}")
    code_t = int(template, 2)
    counts = np.empty(nblocks, dtype=np.int64)
    blocks = bits[: nblocks * M].reshape(nblocks, M)
    # Vectorized across blocks: window codes per row.
    codes = np.zeros((nblocks, M - m + 1), dtype=np.int64)
    for j in range(m):
        codes = (codes << 1) | blocks[:, j : j + M - m + 1].astype(np.int64)
    counts = (codes == code_t).sum(axis=1)
    binned = np.minimum(counts, 5)
    observed = np.bincount(binned, minlength=6).astype(float)
    expected = _OVERLAP_PROBS * nblocks
    stat = float(((observed - expected) ** 2 / expected).sum())
    return TestResult(
        name="overlapping template",
        p_value=igamc_pvalue(5 / 2.0, stat / 2.0),
        statistic=stat,
        detail=f"{nblocks} blocks of {M}",
    )
