"""NIST SP800-22 tests 1-4 and 13: frequency, block frequency, runs,
longest run of ones, and cumulative sums.

Implementations follow the test definitions of NIST Special Publication
800-22 rev 1a; the frequency and runs tests are verified in the test
suite against the worked examples in the publication (the 100-bit
expansions of e and pi).
"""

from __future__ import annotations

import numpy as np
import scipy.stats as sps

from repro.quality.nist.helpers import (
    bits_to_pm1,
    erfc_pvalue,
    igamc_pvalue,
    sidak_min,
)
from repro.quality.stats import TestResult

__all__ = [
    "frequency_test",
    "block_frequency_test",
    "runs_test_nist",
    "longest_run_test_nist",
    "cumulative_sums_test",
]


def frequency_test(bits: np.ndarray) -> TestResult:
    """Test 1 (monobit): |sum of +-1| / sqrt(n) against half-normal."""
    n = bits.size
    if n < 100:
        raise ValueError(f"frequency test needs >= 100 bits, got {n}")
    s = float(bits_to_pm1(bits).sum())
    stat = abs(s) / np.sqrt(n)
    return TestResult(
        name="frequency (monobit)",
        p_value=erfc_pvalue(stat),  # erfc(|S|/sqrt(2n)), per SP800-22
        statistic=stat,
        detail=f"S_n={s:.0f} over {n} bits",
    )


def block_frequency_test(bits: np.ndarray, block: int = 128) -> TestResult:
    """Test 2: chi-square of per-block one-proportions."""
    n = bits.size
    nblocks = n // block
    if nblocks < 10:
        raise ValueError(f"need >= 10 blocks of {block}, got {nblocks}")
    pi = bits[: nblocks * block].reshape(nblocks, block).mean(axis=1)
    stat = 4.0 * block * ((pi - 0.5) ** 2).sum()
    return TestResult(
        name="block frequency",
        p_value=igamc_pvalue(nblocks / 2.0, stat / 2.0),
        statistic=stat,
        detail=f"{nblocks} blocks of {block}",
    )


def runs_test_nist(bits: np.ndarray) -> TestResult:
    """Test 3: total number of runs vs expectation given the one-density."""
    n = bits.size
    if n < 100:
        raise ValueError(f"runs test needs >= 100 bits, got {n}")
    pi = float(bits.mean())
    # Prerequisite frequency check, per the specification.
    if abs(pi - 0.5) >= 2.0 / np.sqrt(n):
        return TestResult(
            name="runs (NIST)",
            p_value=0.0,
            statistic=float("inf"),
            detail=f"prerequisite failed: pi={pi:.4f}",
        )
    vobs = 1 + int((bits[1:] != bits[:-1]).sum())
    num = abs(vobs - 2.0 * n * pi * (1 - pi))
    den = 2.0 * np.sqrt(2.0 * n) * pi * (1 - pi)
    return TestResult(
        name="runs (NIST)",
        p_value=erfc_pvalue(num / den * np.sqrt(2.0)),
        statistic=num / den,
        detail=f"V_obs={vobs}",
    )


#: SP800-22 class probabilities for longest-run, M=128 (K=5, classes
#: <=4, 5, 6, 7, 8, >=9).
_LONGEST_PROBS_128 = np.array([0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124])


def longest_run_test_nist(bits: np.ndarray) -> TestResult:
    """Test 4: longest run of ones within 128-bit blocks."""
    M = 128
    nblocks = bits.size // M
    if nblocks < 49:
        raise ValueError(f"need >= 49 blocks of 128 bits, got {nblocks}")
    blocks = bits[: nblocks * M].reshape(nblocks, M)
    run = np.zeros(nblocks, dtype=np.int64)
    longest = np.zeros(nblocks, dtype=np.int64)
    for j in range(M):
        run = (run + 1) * blocks[:, j]
        np.maximum(longest, run, out=longest)
    classes = np.clip(longest, 4, 9) - 4
    observed = np.bincount(classes, minlength=6).astype(float)
    expected = _LONGEST_PROBS_128 * nblocks
    stat = float(((observed - expected) ** 2 / expected).sum())
    return TestResult(
        name="longest run (NIST)",
        p_value=igamc_pvalue(5 / 2.0, stat / 2.0),
        statistic=stat,
        detail=f"{nblocks} blocks",
    )


def cumulative_sums_test(bits: np.ndarray) -> TestResult:
    """Test 13: maximum excursion of the +-1 cumulative sum (both modes)."""
    n = bits.size
    if n < 100:
        raise ValueError(f"cusum test needs >= 100 bits, got {n}")
    x = bits_to_pm1(bits)
    ps = []
    for mode in (0, 1):
        s = np.cumsum(x if mode == 0 else x[::-1])
        z = float(np.abs(s).max())
        # Index ranges use floor on both bounds (verified against the
        # SP800-22 worked example, p = 0.219194 for the 100-bit pi string).
        k = np.arange(
            int(np.floor((-n / z + 1) / 4)), int(np.floor((n / z - 1) / 4)) + 1
        )
        term1 = (
            sps.norm.cdf((4 * k + 1) * z / np.sqrt(n))
            - sps.norm.cdf((4 * k - 1) * z / np.sqrt(n))
        ).sum()
        k2 = np.arange(
            int(np.floor((-n / z - 3) / 4)), int(np.floor((n / z - 1) / 4)) + 1
        )
        term2 = (
            sps.norm.cdf((4 * k2 + 3) * z / np.sqrt(n))
            - sps.norm.cdf((4 * k2 + 1) * z / np.sqrt(n))
        ).sum()
        ps.append(min(max(1.0 - term1 + term2, 0.0), 1.0))
    return TestResult(
        name="cumulative sums",
        p_value=sidak_min(ps),
        statistic=float(np.abs(np.cumsum(x)).max()),
        detail=f"forward p={ps[0]:.3f} backward p={ps[1]:.3f}",
    )
