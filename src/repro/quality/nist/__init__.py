"""NIST SP800-22 statistical test suite (15 tests)."""

from repro.quality.nist.advanced import (
    approximate_entropy_test,
    linear_complexity_test,
    maurer_universal_test,
    random_excursions_test,
    random_excursions_variant_test,
    serial_test_nist,
)
from repro.quality.nist.basic import (
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test_nist,
    runs_test_nist,
)
from repro.quality.nist.battery import (
    DEFAULT_STREAM_BITS,
    NIST_TEST_NAMES,
    run_nist,
)
from repro.quality.nist.spectral_templates import (
    dft_spectral_test,
    matrix_rank_test_nist,
    non_overlapping_template_test,
    overlapping_template_test,
)

__all__ = [
    "approximate_entropy_test",
    "linear_complexity_test",
    "maurer_universal_test",
    "random_excursions_test",
    "random_excursions_variant_test",
    "serial_test_nist",
    "block_frequency_test",
    "cumulative_sums_test",
    "frequency_test",
    "longest_run_test_nist",
    "runs_test_nist",
    "DEFAULT_STREAM_BITS",
    "NIST_TEST_NAMES",
    "run_nist",
    "dft_spectral_test",
    "matrix_rank_test_nist",
    "non_overlapping_template_test",
    "overlapping_template_test",
]
