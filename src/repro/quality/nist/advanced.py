"""NIST SP800-22 tests 9-12, 14-15: Maurer's universal test, linear
complexity, serial, approximate entropy, and the random-excursions pair.

The linear-complexity test runs Berlekamp-Massey *batched across blocks*
(one vectorized update per bit position over all blocks at once), which
keeps the O(M^2)-per-block algorithm tractable in NumPy.
"""

from __future__ import annotations

import numpy as np
import scipy.stats as sps

from repro.quality.nist.helpers import (
    bits_to_pm1,
    erfc_pvalue,
    igamc_pvalue,
    sidak_min,
)
from repro.quality.stats import TestResult

__all__ = [
    "maurer_universal_test",
    "linear_complexity_test",
    "serial_test_nist",
    "approximate_entropy_test",
    "random_excursions_test",
    "random_excursions_variant_test",
]

# Maurer test constants for block length L: (expected value, variance).
_MAURER_CONSTANTS = {
    6: (5.2177052, 2.954),
    7: (6.1962507, 3.125),
    8: (7.1836656, 3.238),
}


def maurer_universal_test(bits: np.ndarray, L: int = 7) -> TestResult:
    """Test 9: Maurer's "universal statistical" compressibility test."""
    if L not in _MAURER_CONSTANTS:
        raise ValueError(f"unsupported block length {L}; pick from 6..8")
    Q = 10 * 2**L
    n_blocks = bits.size // L
    K = n_blocks - Q
    if K < 1000:
        raise ValueError(
            f"universal test needs >= {(Q + 1000) * L} bits, got {bits.size}"
        )
    codes = np.zeros(n_blocks, dtype=np.int64)
    chopped = bits[: n_blocks * L].reshape(n_blocks, L)
    for j in range(L):
        codes = (codes << 1) | chopped[:, j].astype(np.int64)

    last_seen = np.zeros(2**L, dtype=np.int64)
    # Initialization segment.
    for i in range(Q):
        last_seen[codes[i]] = i + 1
    # Test segment: distance to previous occurrence of each block value.
    total = 0.0
    fn_terms = np.empty(K)
    for i in range(Q, n_blocks):
        c = codes[i]
        fn_terms[i - Q] = np.log2(i + 1 - last_seen[c])
        last_seen[c] = i + 1
    fn = fn_terms.mean()
    expected, variance = _MAURER_CONSTANTS[L]
    c_factor = 0.7 - 0.8 / L + (4 + 32 / L) * K ** (-3 / L) / 15
    sigma = c_factor * np.sqrt(variance / K)
    z = (fn - expected) / sigma
    return TestResult(
        name="Maurer universal",
        p_value=erfc_pvalue(z),
        statistic=z,
        detail=f"fn={fn:.4f} expected {expected:.4f}",
    )


def _berlekamp_massey_batch(blocks: np.ndarray) -> np.ndarray:
    """Linear complexity of each row of a (nblocks, M) bit matrix.

    Vectorized Berlekamp-Massey: the per-bit update is performed for all
    blocks simultaneously with boolean masks.
    """
    nb, M = blocks.shape
    C = np.zeros((nb, M + 1), dtype=np.uint8)
    B = np.zeros((nb, M + 1), dtype=np.uint8)
    C[:, 0] = 1
    B[:, 0] = 1
    L = np.zeros(nb, dtype=np.int64)
    m = np.full(nb, -1, dtype=np.int64)

    for n in range(M):
        # Discrepancy d = s_n + sum_{i=1..L} c_i s_{n-i}  (mod 2), done for
        # all rows at once: dot C[:, :n+1] with the reversed bit window.
        window = blocks[:, : n + 1][:, ::-1]  # s_n, s_{n-1}, ..., s_0
        d = (C[:, : n + 1] & window).sum(axis=1) & 1
        upd = d == 1
        if upd.any():
            T = C[upd].copy()
            shift = n - m[upd]  # >= 1
            # C ^= B << shift, rows with different shifts handled per
            # unique shift value (few distinct values in practice).
            rows = np.nonzero(upd)[0]
            for s in np.unique(shift):
                sel = rows[shift == s]
                C[sel, s:] ^= B[sel, : M + 1 - s]
            grow = upd & (2 * L <= n)
            if grow.any():
                g = np.nonzero(grow)[0]
                B[g] = T[(grow[upd]).nonzero()[0]]
                m[g] = n
                L[g] = n + 1 - L[g]
    return L


def linear_complexity_test(bits: np.ndarray, M: int = 500) -> TestResult:
    """Test 10: Berlekamp-Massey linear complexity of M-bit blocks."""
    nblocks = bits.size // M
    if nblocks < 50:
        raise ValueError(f"need >= 50 blocks of {M}, got {nblocks}")
    blocks = bits[: nblocks * M].reshape(nblocks, M)
    L = _berlekamp_massey_batch(blocks)
    mu = M / 2.0 + (9.0 + (-1.0) ** (M + 1)) / 36.0 - (M / 3.0 + 2.0 / 9.0) / 2.0**M
    t = (-1.0) ** M * (L - mu) + 2.0 / 9.0
    # NIST class probabilities for T in (-inf,-2.5], ..., (2.5, inf).
    probs = np.array([0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833])
    edges = np.array([-2.5, -1.5, -0.5, 0.5, 1.5, 2.5])
    classes = np.searchsorted(edges, t, side="left")
    observed = np.bincount(classes, minlength=7).astype(float)
    expected = probs * nblocks
    stat = float(((observed - expected) ** 2 / expected).sum())
    return TestResult(
        name="linear complexity",
        p_value=igamc_pvalue(6 / 2.0, stat / 2.0),
        statistic=stat,
        detail=f"{nblocks} blocks of {M}, mean L={L.mean():.1f}",
    )


def _psi_squared(bits: np.ndarray, m: int) -> float:
    """NIST psi^2_m statistic over circularly-extended m-bit windows."""
    if m == 0:
        return 0.0
    n = bits.size
    ext = np.concatenate([bits, bits[: m - 1]])
    codes = np.zeros(n, dtype=np.int64)
    for j in range(m):
        codes = (codes << 1) | ext[j : j + n].astype(np.int64)
    counts = np.bincount(codes, minlength=2**m).astype(np.float64)
    return float(2.0**m / n * (counts**2).sum() - n)


def serial_test_nist(bits: np.ndarray, m: int = 5) -> TestResult:
    """Test 11: generalized serial test (delta psi^2 statistics)."""
    if m < 2:
        raise ValueError(f"m must be >= 2, got {m}")
    psi_m = _psi_squared(bits, m)
    psi_m1 = _psi_squared(bits, m - 1)
    psi_m2 = _psi_squared(bits, m - 2)
    d1 = psi_m - psi_m1
    d2 = psi_m - 2 * psi_m1 + psi_m2
    p1 = igamc_pvalue(2 ** (m - 2), d1 / 2.0)
    p2 = igamc_pvalue(2 ** (m - 3) if m > 2 else 0.5, d2 / 2.0)
    return TestResult(
        name="serial (NIST)",
        p_value=sidak_min([p1, p2]),
        statistic=d1,
        detail=f"m={m} p1={p1:.3f} p2={p2:.3f}",
    )


def approximate_entropy_test(bits: np.ndarray, m: int = 5) -> TestResult:
    """Test 12: approximate entropy ApEn(m) against ln 2."""
    n = bits.size

    def phi(mm: int) -> float:
        if mm == 0:
            return 0.0
        ext = np.concatenate([bits, bits[: mm - 1]])
        codes = np.zeros(n, dtype=np.int64)
        for j in range(mm):
            codes = (codes << 1) | ext[j : j + n].astype(np.int64)
        counts = np.bincount(codes, minlength=2**mm).astype(np.float64)
        probs = counts[counts > 0] / n
        return float((probs * np.log(probs)).sum())

    apen = phi(m) - phi(m + 1)
    stat = 2.0 * n * (np.log(2.0) - apen)
    return TestResult(
        name="approximate entropy",
        p_value=igamc_pvalue(2 ** (m - 1), stat / 2.0),
        statistic=stat,
        detail=f"ApEn={apen:.6f}",
    )


_EXCURSION_STATES = np.array([-4, -3, -2, -1, 1, 2, 3, 4])


def _cycles(bits: np.ndarray):
    """Cumulative +-1 sum split into zero-crossing cycles."""
    s = np.concatenate([[0], np.cumsum(bits_to_pm1(bits)).astype(np.int64), [0]])
    zeros = np.nonzero(s == 0)[0]
    return s, zeros


def random_excursions_test(bits: np.ndarray) -> TestResult:
    """Test 14: visits per cycle to states x in {-4..-1, 1..4}."""
    s, zeros = _cycles(bits)
    J = zeros.size - 1
    if J < 100:
        return TestResult(
            name="random excursions",
            p_value=0.5,
            statistic=float(J),
            detail=f"only {J} cycles; test inconclusive (neutral p)",
        )
    # pi_k(x): probability of k visits to state x within a cycle.
    ps = []
    for x in _EXCURSION_STATES:
        ax = abs(int(x))
        # Count visits per cycle, vectorized over cycle boundaries.
        visits = np.zeros(J, dtype=np.int64)
        hits = np.nonzero(s == x)[0]
        if hits.size:
            cyc = np.searchsorted(zeros, hits, side="right") - 1
            np.add.at(visits, cyc, 1)
        counts = np.bincount(np.minimum(visits, 5), minlength=6).astype(float)
        pi0 = 1.0 - 1.0 / (2.0 * ax)
        pik = [pi0]
        for k in range(1, 5):
            pik.append(1.0 / (4.0 * ax * ax) * (1 - 1 / (2 * ax)) ** (k - 1))
        pik.append(1.0 / (2.0 * ax) * (1 - 1 / (2 * ax)) ** 4)
        expected = np.array(pik) * J
        stat = float(((counts - expected) ** 2 / expected).sum())
        ps.append(igamc_pvalue(5 / 2.0, stat / 2.0))
    return TestResult(
        name="random excursions",
        p_value=sidak_min(ps),
        statistic=float(J),
        detail=f"{J} cycles, min state-p {min(ps):.3f}",
    )


def random_excursions_variant_test(bits: np.ndarray) -> TestResult:
    """Test 15: total visits to states -9..9 vs the cycle count."""
    s, zeros = _cycles(bits)
    J = zeros.size - 1
    if J < 100:
        return TestResult(
            name="random excursions variant",
            p_value=0.5,
            statistic=float(J),
            detail=f"only {J} cycles; test inconclusive (neutral p)",
        )
    ps = []
    for x in range(-9, 10):
        if x == 0:
            continue
        xi = float((s == x).sum())
        denom = np.sqrt(2.0 * J * (4.0 * abs(x) - 2.0))
        ps.append(erfc_pvalue((xi - J) / denom * np.sqrt(2.0)))
    return TestResult(
        name="random excursions variant",
        p_value=sidak_min(ps),
        statistic=float(J),
        detail=f"{J} cycles, min state-p {min(ps):.3f}",
    )
