"""Shared utilities for the NIST SP800-22 battery."""

from __future__ import annotations

import numpy as np
import scipy.special as spc

__all__ = ["erfc_pvalue", "igamc_pvalue", "bits_to_pm1", "sidak_min"]


def sidak_min(p_values, cap: float = 0.985) -> float:
    """Combine *correlated* sub-p-values NIST-style: Sidak-adjusted min.

    ``1 - (1 - min_p)**K`` is exactly uniform for independent inputs and
    conservative under the positive correlation these grouped statistics
    exhibit (they share one bit stream), so the 0.01 lower band fires at
    ~1%.  The value is capped below the 0.99 upper band because grouped
    entries are one-sided by construction (all-sub-p-large is the normal
    correlated outcome, not evidence of under-dispersion) -- the same
    convention NIST itself uses: sub-tests are only ever rejected low.
    """
    ps = [float(p) for p in p_values]
    if not ps:
        raise ValueError("no p-values to combine")
    k = len(ps)
    adjusted = 1.0 - (1.0 - min(ps)) ** k
    return min(cap, adjusted)


def erfc_pvalue(x: float) -> float:
    """NIST's ``erfc(|x| / sqrt(2))``-style p-value for normal statistics."""
    return float(spc.erfc(abs(x) / np.sqrt(2.0)))


def igamc_pvalue(dof_half: float, stat_half: float) -> float:
    """NIST's ``igamc(dof/2, stat/2)`` chi-square upper tail."""
    if dof_half <= 0:
        raise ValueError(f"dof/2 must be positive, got {dof_half}")
    return float(spc.gammaincc(dof_half, stat_half))


def bits_to_pm1(bits: np.ndarray) -> np.ndarray:
    """0/1 bits to -1/+1 values."""
    return 2.0 * bits.astype(np.float64) - 1.0
