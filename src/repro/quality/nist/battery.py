"""The 15-test NIST SP800-22 battery.

A third battery alongside DIEHARD and the Crush tiers, using the NIST
suite's exact statistics (several verified against the publication's
worked examples).  All tests run on a single bit stream drawn once from
the generator, as the SP800-22 methodology prescribes.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro.baselines.base import PRNG
from repro.quality.nist.advanced import (
    approximate_entropy_test,
    linear_complexity_test,
    maurer_universal_test,
    random_excursions_test,
    random_excursions_variant_test,
    serial_test_nist,
)
from repro.quality.nist.basic import (
    block_frequency_test,
    cumulative_sums_test,
    frequency_test,
    longest_run_test_nist,
    runs_test_nist,
)
from repro.quality.nist.spectral_templates import (
    dft_spectral_test,
    matrix_rank_test_nist,
    non_overlapping_template_test,
    overlapping_template_test,
)
from repro.obs.trace import span
from repro.quality.stats import BatteryResult, record_test_observation

__all__ = ["run_nist", "NIST_TEST_NAMES", "DEFAULT_STREAM_BITS"]

#: Default bit-stream length (SP800-22 recommends >= 10**6).
DEFAULT_STREAM_BITS = 1_000_000

NIST_TEST_NAMES = [
    "frequency (monobit)",
    "block frequency",
    "runs (NIST)",
    "longest run (NIST)",
    "binary matrix rank (NIST)",
    "DFT spectral",
    "non-overlapping template",
    "overlapping template",
    "Maurer universal",
    "linear complexity",
    "serial (NIST)",
    "approximate entropy",
    "cumulative sums",
    "random excursions",
    "random excursions variant",
]


def run_nist(
    gen: PRNG,
    n_bits: int = DEFAULT_STREAM_BITS,
    progress: Optional[Callable[[str], None]] = None,
) -> BatteryResult:
    """Run all 15 SP800-22 tests on one stream from ``gen``."""
    if n_bits < 150_000:
        raise ValueError(
            f"NIST battery needs >= 150000 bits (Maurer), got {n_bits}"
        )
    bits = gen.bits_stream(n_bits)
    battery = BatteryResult(generator=gen.name, battery="NIST SP800-22")

    tests = [
        ("frequency (monobit)", lambda: frequency_test(bits)),
        ("block frequency", lambda: block_frequency_test(bits)),
        ("runs (NIST)", lambda: runs_test_nist(bits)),
        ("longest run (NIST)", lambda: longest_run_test_nist(bits)),
        ("binary matrix rank (NIST)", lambda: matrix_rank_test_nist(bits)),
        ("DFT spectral", lambda: dft_spectral_test(bits)),
        ("non-overlapping template",
         lambda: non_overlapping_template_test(bits)),
        ("overlapping template", lambda: overlapping_template_test(bits)),
        ("Maurer universal", lambda: maurer_universal_test(bits)),
        ("linear complexity",
         lambda: linear_complexity_test(bits[: 500 * max(50, n_bits // 10000)])),
        ("serial (NIST)", lambda: serial_test_nist(bits)),
        ("approximate entropy", lambda: approximate_entropy_test(bits)),
        ("cumulative sums", lambda: cumulative_sums_test(bits)),
        ("random excursions", lambda: random_excursions_test(bits)),
        ("random excursions variant",
         lambda: random_excursions_variant_test(bits)),
    ]
    for name, fn in tests:
        if progress is not None:
            progress(name)
        start = time.perf_counter()
        with span("quality.test", battery="NIST SP800-22", test=name):
            result = fn()
        record_test_observation(
            "NIST SP800-22", result, time.perf_counter() - start
        )
        battery.add(result)
    return battery
