"""Statistical plumbing shared by the DIEHARD and Crush batteries.

Every individual test reduces its observations to a **p-value**; the
paper's pass criterion (Section IV-B) is ``0.01 < p < 0.99``, and a
battery is summarized by the count of passed tests plus a
Kolmogorov-Smirnov statistic over the collected p-values (Table II's
``KS-Test D`` column).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np
import scipy.stats as sps

from repro.obs import metrics as obs_metrics
from repro.utils.tables import format_table

__all__ = [
    "TestResult",
    "BatteryResult",
    "chi2_pvalue",
    "normal_pvalue",
    "normal_uniform_pvalue",
    "ks_uniform",
    "fisher_combine",
    "binary_matrix_rank_probs",
    "record_test_observation",
    "PASS_LO",
    "PASS_HI",
]

#: The paper's pass interval for a single test's p-value.
PASS_LO = 0.01
PASS_HI = 0.99


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test."""

    __test__ = False  # keep pytest from collecting this as a test class

    name: str
    p_value: float
    statistic: float = float("nan")
    detail: str = ""

    @property
    def passed(self) -> bool:
        """DIEHARD criterion: p must not be extreme on either side."""
        return PASS_LO < self.p_value < PASS_HI


@dataclass
class BatteryResult:
    """Aggregated outcome of a battery of tests for one generator."""

    generator: str
    battery: str
    results: List[TestResult] = field(default_factory=list)

    def add(self, result: TestResult) -> None:
        self.results.append(result)

    @property
    def num_tests(self) -> int:
        return len(self.results)

    @property
    def num_passed(self) -> int:
        return sum(r.passed for r in self.results)

    @property
    def pass_string(self) -> str:
        """Table II/III style "x/15"."""
        return f"{self.num_passed}/{self.num_tests}"

    @property
    def p_values(self) -> np.ndarray:
        return np.array([r.p_value for r in self.results])

    @property
    def ks_d(self) -> float:
        """KS distance of the collected p-values from U(0, 1).

        This is the paper's final verification step: for a good generator
        the per-test p-values themselves look uniform.
        """
        if not self.results:
            return float("nan")
        return float(sps.kstest(self.p_values, "uniform").statistic)

    @property
    def ks_pvalue(self) -> float:
        if not self.results:
            return float("nan")
        return float(sps.kstest(self.p_values, "uniform").pvalue)

    def summary_table(self) -> str:
        rows = [
            [r.name, f"{r.p_value:.4f}", "pass" if r.passed else "FAIL", r.detail]
            for r in self.results
        ]
        title = f"{self.battery} -- {self.generator}: {self.pass_string} passed, KS D = {self.ks_d:.4f}"
        return format_table(["test", "p-value", "verdict", "detail"], rows, title)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------

#: Duration buckets sized for battery tests (tens of ms to minutes).
_TEST_SECONDS_BUCKETS = (0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0)

#: p-value buckets aligned to the paper's 0.01 < p < 0.99 pass band.
_P_VALUE_BUCKETS = (0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)


def record_test_observation(battery: str, results, duration_s: float) -> None:
    """Feed one battery entry's outcome into the default metrics registry.

    ``results`` is a :class:`TestResult` or a sequence of them (grouped
    entries like the two matrix-rank sizes share one timed run).  The
    duration lands once in ``repro_quality_test_seconds``; every p-value
    lands in ``repro_quality_p_values`` whose buckets mirror the paper's
    pass band, so the p-value *distribution* -- the thing the battery's
    final KS test checks -- is visible from the metrics dump alone.
    """
    if isinstance(results, TestResult):
        results = [results]
    obs_metrics.histogram(
        "repro_quality_test_seconds", _TEST_SECONDS_BUCKETS,
        "Wall time per battery test entry",
    ).observe(duration_s)
    for result in results:
        obs_metrics.histogram(
            "repro_quality_p_values", _P_VALUE_BUCKETS,
            "Per-test p-values (pass band 0.01..0.99)",
        ).observe(result.p_value)
        obs_metrics.counter(
            "repro_quality_tests_total", "Battery tests executed"
        ).inc()
        if not result.passed:
            obs_metrics.counter(
                "repro_quality_failures_total", "Battery tests outside the pass band"
            ).inc()


# ----------------------------------------------------------------------
# p-value helpers
# ----------------------------------------------------------------------


def chi2_pvalue(statistic: float, dof: float) -> float:
    """Upper-tail chi-square p-value."""
    if dof <= 0:
        raise ValueError(f"dof must be positive, got {dof}")
    return float(sps.chi2.sf(statistic, dof))


def normal_pvalue(z: float, two_sided: bool = True) -> float:
    """p-value of a standard-normal statistic."""
    if two_sided:
        return float(2.0 * sps.norm.sf(abs(z)))
    return float(sps.norm.sf(z))


def normal_uniform_pvalue(z: float) -> float:
    """DIEHARD-convention p-value: Phi(z), uniform on (0, 1) under H0.

    With the pass band ``0.01 < p < 0.99`` this rejects extreme z of
    either sign, and -- unlike a two-sided p -- stays uniform so the
    battery-level KS over p-values is meaningful.
    """
    return float(sps.norm.cdf(z))


def ks_uniform(values: Sequence[float]) -> tuple:
    """(D, p) of a KS test of ``values`` against U(0, 1)."""
    res = sps.kstest(np.asarray(values, dtype=np.float64), "uniform")
    return float(res.statistic), float(res.pvalue)


def fisher_combine(p_values: Sequence[float]) -> float:
    """Fisher's method: combine independent p-values into one.

    Used for DIEHARD's grouped tests (the two matrix-rank sizes count as
    one test; OPSO/OQSO/DNA count as one "monkey" test).
    """
    ps = np.clip(np.asarray(p_values, dtype=np.float64), 1e-300, 1.0)
    if ps.size == 0:
        raise ValueError("no p-values to combine")
    stat = -2.0 * np.log(ps).sum()
    return chi2_pvalue(stat, 2 * ps.size)


def binary_matrix_rank_probs(rows: int, cols: int, min_rank: int) -> np.ndarray:
    """P(rank = r) for a uniform random GF(2) matrix, r = min_rank..min(rows, cols).

    The classical formula::

        P(r) = 2^{r(rows+cols-r) - rows*cols}
               * prod_{i=0}^{r-1} (1 - 2^{i-rows})(1 - 2^{i-cols}) / (1 - 2^{i-r})

    The first entry of the returned vector absorbs all ranks < ``min_rank``
    so the probabilities sum to one.
    """
    rmax = min(rows, cols)
    if not 0 <= min_rank <= rmax:
        raise ValueError(f"min_rank must be in 0..{rmax}, got {min_rank}")
    probs = []
    for r in range(0, rmax + 1):
        log2p = r * (rows + cols - r) - rows * cols
        prod = 1.0
        for i in range(r):
            prod *= (1 - 2.0 ** (i - rows)) * (1 - 2.0 ** (i - cols))
            prod /= 1 - 2.0 ** (i - r)
        probs.append(2.0**log2p * prod)
    probs = np.asarray(probs)
    head = probs[: min_rank + 1].sum()
    return np.concatenate([[head], probs[min_rank + 1 :]])
