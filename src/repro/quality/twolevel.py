"""Two-level statistical testing (the NIST SP800-22 §4 methodology).

A single battery run gives one p-value per test; the standard way to
harden the verdict is to run the battery over ``k`` independent streams
and, per test, examine

1. the **proportion of passing streams** against the binomial confidence
   band around ``1 - alpha``, and
2. the **uniformity of the k p-values** (chi-square over ten bins, as
   SP800-22 prescribes).

This module applies that procedure to *any* battery in the repository
(DIEHARD, the Crush tiers, NIST), reseeding the generator per stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

import numpy as np

from repro.baselines.base import PRNG
from repro.quality.stats import BatteryResult, chi2_pvalue
from repro.utils.checks import check_positive
from repro.utils.tables import format_table

__all__ = ["TwoLevelResult", "two_level_run", "proportion_band"]

#: Per-test significance used by the pass band (NIST default).
ALPHA = 0.01


def proportion_band(k: int, alpha: float = ALPHA) -> tuple:
    """NIST's acceptable range for the passing proportion over k streams."""
    check_positive("k", k)
    p = 1.0 - alpha
    half = 3.0 * np.sqrt(p * (1 - p) / k)
    return max(0.0, p - half), min(1.0, p + half)


@dataclass
class TestVerdict:
    """Two-level verdict for one named test."""

    name: str
    proportion: float
    proportion_ok: bool
    uniformity_p: float

    @property
    def passed(self) -> bool:
        return self.proportion_ok and self.uniformity_p >= 1e-4  # NIST cut


@dataclass
class TwoLevelResult:
    """Aggregated two-level outcome across k streams."""

    generator: str
    battery: str
    streams: int
    verdicts: List[TestVerdict] = field(default_factory=list)
    per_test_pvalues: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def num_passed(self) -> int:
        return sum(v.passed for v in self.verdicts)

    @property
    def pass_string(self) -> str:
        return f"{self.num_passed}/{len(self.verdicts)}"

    def summary_table(self) -> str:
        lo, hi = proportion_band(self.streams)
        rows = [
            [
                v.name,
                f"{v.proportion:.3f}",
                f"{v.uniformity_p:.4f}",
                "pass" if v.passed else "FAIL",
            ]
            for v in self.verdicts
        ]
        title = (
            f"Two-level {self.battery} -- {self.generator}: "
            f"{self.pass_string} over {self.streams} streams "
            f"(proportion band [{lo:.3f}, {hi:.3f}])"
        )
        return format_table(
            ["test", "proportion", "uniformity p", "verdict"], rows, title
        )


def _uniformity_p(pvalues: np.ndarray) -> float:
    """SP800-22 uniformity check: chi-square over ten equal bins."""
    counts = np.histogram(pvalues, bins=10, range=(0.0, 1.0))[0]
    expected = pvalues.size / 10.0
    stat = float(((counts - expected) ** 2 / expected).sum())
    return chi2_pvalue(stat, 9)


def two_level_run(
    gen: PRNG,
    battery_fn: Callable[[PRNG], BatteryResult],
    streams: int = 20,
    base_seed: int = 1,
) -> TwoLevelResult:
    """Run ``battery_fn`` over ``streams`` reseedings of ``gen``.

    ``battery_fn`` takes the (reseeded) generator and returns a
    :class:`BatteryResult`; e.g. ``lambda g: run_nist(g, n_bits=200_000)``.
    """
    check_positive("streams", streams)
    per_test: Dict[str, List[float]] = {}
    battery_name = "?"
    for i in range(streams):
        gen.reseed(base_seed + 7919 * i)
        result = battery_fn(gen)
        battery_name = result.battery
        for r in result.results:
            per_test.setdefault(r.name, []).append(r.p_value)

    out = TwoLevelResult(
        generator=gen.name,
        battery=battery_name,
        streams=streams,
        per_test_pvalues=per_test,
    )
    lo, _hi = proportion_band(streams)
    for name, ps in per_test.items():
        arr = np.asarray(ps)
        proportion = float((arr >= ALPHA).mean())
        out.verdicts.append(
            TestVerdict(
                name=name,
                proportion=proportion,
                proportion_ok=proportion >= lo,
                uniformity_p=_uniformity_p(arr),
            )
        )
    return out
