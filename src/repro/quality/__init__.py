"""Statistical quality suites: DIEHARD and TestU01-style Crush batteries."""

from repro.quality.twolevel import (
    TwoLevelResult,
    proportion_band,
    two_level_run,
)
from repro.quality.stats import (
    PASS_HI,
    PASS_LO,
    BatteryResult,
    TestResult,
    binary_matrix_rank_probs,
    chi2_pvalue,
    fisher_combine,
    ks_uniform,
    normal_pvalue,
)

__all__ = [
    "TwoLevelResult",
    "proportion_band",
    "two_level_run",
    "PASS_HI",
    "PASS_LO",
    "BatteryResult",
    "TestResult",
    "binary_matrix_rank_probs",
    "chi2_pvalue",
    "fisher_combine",
    "ks_uniform",
    "normal_pvalue",
]
