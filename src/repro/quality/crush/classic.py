"""Classical statistical tests used by the Crush batteries.

These are the Knuth / TestU01 staples that complement the DIEHARD tests:
collision, gap, coupon collector, poker, max-of-t, weight distribution,
Hamming statistics, random walk, serial pairs, autocorrelation, and the
NIST-style longest-run-of-ones.  Each reduces to a uniform p-value like
the DIEHARD modules (chi-square upper tail or Phi(z)).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import scipy.stats as sps

from repro.baselines.base import PRNG
from repro.quality.stats import (
    TestResult,
    chi2_pvalue,
    fisher_combine,
    ks_uniform,
    normal_uniform_pvalue,
)

__all__ = [
    "collision_test",
    "gap_test",
    "coupon_collector_test",
    "poker_test",
    "max_of_t_test",
    "weight_distrib_test",
    "hamming_weight_test",
    "hamming_indep_test",
    "random_walk_test",
    "serial_pairs_test",
    "autocorrelation_test",
    "longest_run_test",
]


def _chi2_from_counts(observed: np.ndarray, probs: np.ndarray, n: int,
                      pool_below: float = 5.0) -> tuple:
    """Chi-square statistic and dof with sparse-cell pooling.

    If pooling at the requested threshold would collapse everything into
    a single cell (tiny test sizes), the threshold is relaxed so at least
    two cells survive.
    """
    expected = probs * n
    keep = expected >= pool_below
    while keep.sum() < 2 and pool_below > 1e-6:
        pool_below /= 4.0
        keep = expected >= pool_below
    if keep.sum() < 2:
        keep = np.ones_like(keep)
    if (~keep).any():
        obs = np.concatenate([observed[keep], [observed[~keep].sum()]])
        exp = np.concatenate([expected[keep], [expected[~keep].sum()]])
    else:
        obs, exp = observed.astype(float), expected
    exp = np.maximum(exp, 1e-12)
    stat = float(((obs - exp) ** 2 / exp).sum())
    return stat, len(exp) - 1


def collision_test(gen: PRNG, n_balls: int = 2**17, urn_bits: int = 20
                   ) -> TestResult:
    """Throw balls into 2**urn_bits urns; collision count is ~normal.

    With ``n`` balls and ``k`` urns the number of collisions has mean
    ``n - k(1 - (1 - 1/k)^n)`` and variance close to the mean for sparse
    loadings (Knuth 3.3.2I).
    """
    k = 2**urn_bits
    balls = gen.u32_array(n_balls) >> np.uint32(32 - urn_bits)
    occupied = np.unique(balls).size
    collisions = n_balls - occupied
    mean = n_balls - k * (1.0 - (1.0 - 1.0 / k) ** n_balls)
    var = mean * (1.0 - 2.0 * mean / n_balls) if mean > 0 else 1.0
    var = max(var, mean * 0.5, 1.0)
    z = (collisions - mean) / np.sqrt(var)
    return TestResult(
        name="collision",
        p_value=normal_uniform_pvalue(z),
        statistic=z,
        detail=f"{collisions} collisions (exp {mean:.1f})",
    )


def gap_test(gen: PRNG, n: int = 2_000_000, alpha: float = 0.0,
             beta: float = 0.125, max_gap: int = 64) -> TestResult:
    """Gaps between visits to [alpha, beta) are geometric(p = beta - alpha)."""
    p = beta - alpha
    if not 0 < p < 1:
        raise ValueError(f"interval ({alpha}, {beta}) must have length in (0,1)")
    u = gen.uniform(n)
    hits = np.nonzero((u >= alpha) & (u < beta))[0]
    if hits.size < 100:
        return TestResult("gap", p_value=0.0, detail="too few hits")
    gaps = np.diff(hits) - 1
    binned = np.minimum(gaps, max_gap)
    observed = np.bincount(binned, minlength=max_gap + 1).astype(float)
    lens = np.arange(max_gap + 1)
    probs = p * (1 - p) ** lens
    probs[-1] = (1 - p) ** max_gap  # tail
    stat, dof = _chi2_from_counts(observed, probs, gaps.size)
    return TestResult(
        name="gap",
        p_value=chi2_pvalue(stat, dof),
        statistic=stat,
        detail=f"{gaps.size} gaps, interval length {p}",
    )


@lru_cache(maxsize=None)
def _coupon_probs(d: int, tmax: int) -> tuple:
    """P(T = t) for the coupon collector over d symbols, t = d..tmax.

    DP over the number of distinct coupons seen.
    """
    # state[c] = P(c distinct coupons seen); absorbing at c == d.
    probs = []
    state = np.zeros(d + 1)
    state[0] = 1.0
    for _t in range(1, tmax + 1):
        new = np.zeros(d + 1)
        new[d] = state[d]  # absorbed mass persists
        for c in range(d):
            if state[c] == 0:
                continue
            new[c] += state[c] * (c / d)
            new[c + 1] += state[c] * ((d - c) / d)
        probs.append(new[d] - state[d])  # completed exactly at draw t
        state = new
    return tuple(probs)


def _segment_lengths(symbols: np.ndarray, d: int, n_segments: int) -> np.ndarray:
    """Coupon-collector segment lengths over a symbol array, vectorized.

    ``next_occ[s][p]`` = first index >= p where symbol ``s`` occurs (suffix
    minimum per symbol); the segment starting at ``p`` ends at the largest
    of those first occurrences.
    """
    n = symbols.size
    ends = np.zeros(n + 1, dtype=np.int64)
    for sym in range(d):
        arr = np.full(n + 1, n, dtype=np.int64)
        idx = np.nonzero(symbols == sym)[0]
        arr[idx] = idx
        np.minimum.accumulate(arr[::-1], out=arr[::-1])
        np.maximum(ends, arr, out=ends)
    lengths = np.empty(n_segments, dtype=np.int64)
    p = 0
    for i in range(n_segments):
        e = ends[p]
        if e >= n:
            return lengths[:i]  # ran out of symbols
        lengths[i] = e - p + 1
        p = e + 1
    return lengths


def coupon_collector_test(gen: PRNG, d: int = 5, n_segments: int = 50_000,
                          tmax: int = 40) -> TestResult:
    """Chi-square of coupon-collector segment lengths over d symbols."""
    probs = np.asarray(_coupon_probs(d, tmax))
    tail = 1.0 - probs.sum()
    cell_probs = np.concatenate([probs[d - 1 :], [tail]])  # t = d..tmax, >tmax

    # Mean segment length is d * H_d (~11.4 for d = 5); draw with margin
    # and top up in the rare case the margin is consumed.
    mean_len = float(d * np.sum(1.0 / np.arange(1, d + 1)))
    lengths = np.empty(0, dtype=np.int64)
    todo = n_segments
    attempts = 0
    while todo > 0 and attempts < 8:
        draw = int(todo * mean_len * 1.1) + 50 * tmax
        symbols = (gen.uniform(draw) * d).astype(np.int64)
        got = _segment_lengths(symbols, d, todo)
        lengths = np.concatenate([lengths, got])
        todo = n_segments - lengths.size
        attempts += 1
    lengths = lengths[:n_segments]
    binned = np.minimum(lengths, tmax + 1) - d
    observed = np.bincount(binned, minlength=tmax + 2 - d).astype(float)
    stat, dof = _chi2_from_counts(observed, cell_probs, lengths.size)
    return TestResult(
        name="coupon collector",
        p_value=chi2_pvalue(stat, dof),
        statistic=stat,
        detail=f"{lengths.size} segments, d={d}",
    )


@lru_cache(maxsize=None)
def _stirling2(k: int, v: int) -> int:
    if k == v == 0:
        return 1
    if k == 0 or v == 0:
        return 0
    return v * _stirling2(k - 1, v) + _stirling2(k - 1, v - 1)


def poker_test(gen: PRNG, d: int = 8, k: int = 5, n_hands: int = 200_000
               ) -> TestResult:
    """Distinct-values-per-hand ("poker") chi-square (Knuth 3.3.2D)."""
    vals = (gen.uniform(n_hands * k) * d).astype(np.int64).reshape(n_hands, k)
    # Vectorized distinct count: sort rows, count value changes.
    s = np.sort(vals, axis=1)
    distinct = 1 + (np.diff(s, axis=1) != 0).sum(axis=1)
    observed = np.bincount(distinct, minlength=k + 1)[1:].astype(float)
    probs = np.empty(k)
    for v in range(1, k + 1):
        perm = 1.0
        for i in range(v):
            perm *= d - i
        probs[v - 1] = perm * _stirling2(k, v) / d**k
    stat, dof = _chi2_from_counts(observed, probs, n_hands)
    return TestResult(
        name="poker",
        p_value=chi2_pvalue(stat, dof),
        statistic=stat,
        detail=f"{n_hands} hands of {k} from {d} values",
    )


def max_of_t_test(gen: PRNG, t: int = 8, n_groups: int = 100_000) -> TestResult:
    """max(U_1..U_t)**t should be uniform (Knuth 3.3.2F); KS-tested."""
    u = gen.uniform(t * n_groups).reshape(n_groups, t)
    x = u.max(axis=1) ** t
    d, p = ks_uniform(x)
    return TestResult(
        name="max-of-t",
        p_value=p,
        statistic=d,
        detail=f"{n_groups} groups of {t}",
    )


def weight_distrib_test(gen: PRNG, block: int = 256, n_blocks: int = 20_000,
                        alpha: float = 0.0, beta: float = 0.25) -> TestResult:
    """Hits per block in [alpha, beta) vs Binomial(block, beta - alpha)."""
    p = beta - alpha
    u = gen.uniform(block * n_blocks).reshape(n_blocks, block)
    hits = ((u >= alpha) & (u < beta)).sum(axis=1)
    lo = int(sps.binom.ppf(0.0005, block, p))
    hi = int(sps.binom.ppf(0.9995, block, p))
    binned = np.clip(hits, lo, hi) - lo
    observed = np.bincount(binned, minlength=hi - lo + 1).astype(float)
    cells = np.arange(lo, hi + 1)
    probs = sps.binom.pmf(cells, block, p)
    probs[0] = sps.binom.cdf(lo, block, p)
    probs[-1] = sps.binom.sf(hi - 1, block, p)
    stat, dof = _chi2_from_counts(observed, probs, n_blocks)
    return TestResult(
        name="weight distribution",
        p_value=chi2_pvalue(stat, dof),
        statistic=stat,
        detail=f"{n_blocks} blocks of {block}",
    )


_POPCOUNT32 = np.array([bin(v).count("1") for v in range(1 << 16)], dtype=np.int64)


def _popcount_u32(words: np.ndarray) -> np.ndarray:
    lo = words & np.uint32(0xFFFF)
    hi = words >> np.uint32(16)
    return _POPCOUNT32[lo] + _POPCOUNT32[hi]


def hamming_weight_test(gen: PRNG, n_words: int = 500_000) -> TestResult:
    """Popcounts of 32-bit words vs Binomial(32, 1/2)."""
    w = _popcount_u32(gen.u32_array(n_words))
    observed = np.bincount(w, minlength=33).astype(float)
    probs = sps.binom.pmf(np.arange(33), 32, 0.5)
    stat, dof = _chi2_from_counts(observed, probs, n_words)
    return TestResult(
        name="hamming weight",
        p_value=chi2_pvalue(stat, dof),
        statistic=stat,
        detail=f"{n_words} words",
    )


def hamming_indep_test(gen: PRNG, n_words: int = 500_000) -> TestResult:
    """Correlation between successive words' Hamming weights (~N(0, 1/sqrt n))."""
    w = _popcount_u32(gen.u32_array(n_words)).astype(np.float64)
    a, b = w[:-1], w[1:]
    r = np.corrcoef(a, b)[0, 1]
    z = r * np.sqrt(a.size)
    return TestResult(
        name="hamming independence",
        p_value=normal_uniform_pvalue(z),
        statistic=z,
        detail=f"corr={r:+.5f}",
    )


def random_walk_test(gen: PRNG, walk_len: int = 128, n_walks: int = 50_000
                     ) -> TestResult:
    """Final position of a +-1 bit walk vs the exact binomial law."""
    bits = gen.bits_stream(walk_len * n_walks).reshape(n_walks, walk_len)
    ones = bits.sum(axis=1).astype(np.int64)
    # final position = 2 * ones - L; equivalent to testing `ones`.
    lo = int(sps.binom.ppf(0.0005, walk_len, 0.5))
    hi = int(sps.binom.ppf(0.9995, walk_len, 0.5))
    binned = np.clip(ones, lo, hi) - lo
    observed = np.bincount(binned, minlength=hi - lo + 1).astype(float)
    cells = np.arange(lo, hi + 1)
    probs = sps.binom.pmf(cells, walk_len, 0.5)
    probs[0] = sps.binom.cdf(lo, walk_len, 0.5)
    probs[-1] = sps.binom.sf(hi - 1, walk_len, 0.5)
    stat, dof = _chi2_from_counts(observed, probs, n_walks)
    return TestResult(
        name="random walk",
        p_value=chi2_pvalue(stat, dof),
        statistic=stat,
        detail=f"{n_walks} walks of {walk_len} steps",
    )


def serial_pairs_test(gen: PRNG, cell_bits: int = 8, n_pairs: int = 2_000_000
                      ) -> TestResult:
    """2-D serial test: non-overlapping pairs of top cell_bits values."""
    raw = gen.u32_array(2 * n_pairs)
    cells = (raw >> np.uint32(32 - cell_bits)).astype(np.int64)
    codes = cells[0::2] * (1 << cell_bits) + cells[1::2]
    k = 1 << (2 * cell_bits)
    observed = np.bincount(codes, minlength=k).astype(float)
    expected = n_pairs / k
    stat = float(((observed - expected) ** 2 / expected).sum())
    return TestResult(
        name="serial pairs",
        p_value=chi2_pvalue(stat, k - 1),
        statistic=stat,
        detail=f"{n_pairs} pairs, {k} cells",
    )


def autocorrelation_test(gen: PRNG, n_bits: int = 4_000_000,
                         lags: tuple = (1, 2, 8, 16, 32)) -> TestResult:
    """Bit-stream autocorrelation at several lags, Fisher-combined."""
    bits = gen.bits_stream(n_bits).astype(np.int8)
    ps = []
    zs = []
    for lag in lags:
        matches = int((bits[:-lag] == bits[lag:]).sum())
        n = n_bits - lag
        z = (2.0 * matches - n) / np.sqrt(n)
        zs.append(z)
        ps.append(normal_uniform_pvalue(z))
    return TestResult(
        name="autocorrelation",
        p_value=fisher_combine(ps),
        statistic=float(np.max(np.abs(zs))),
        detail=" ".join(f"lag{l}:z={z:+.2f}" for l, z in zip(lags, zs)),
    )


#: NIST SP800-22 longest-run-of-ones class probabilities for M=128 blocks
#: (classes: longest run <=4, 5, 6, 7, 8, >=9).
_LONGEST_RUN_PROBS = np.array(
    [0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124]
)


def longest_run_test(gen: PRNG, n_blocks: int = 50_000) -> TestResult:
    """Longest run of ones in 128-bit blocks vs the NIST class table."""
    M = 128
    bits = gen.bits_stream(M * n_blocks).reshape(n_blocks, M)
    # Longest run per block, vectorized: cumulative run lengths.
    run = np.zeros(n_blocks, dtype=np.int64)
    longest = np.zeros(n_blocks, dtype=np.int64)
    for j in range(M):
        run = (run + 1) * bits[:, j]
        np.maximum(longest, run, out=longest)
    classes = np.clip(longest, 4, 9) - 4
    observed = np.bincount(classes, minlength=6).astype(float)
    stat, dof = _chi2_from_counts(observed, _LONGEST_RUN_PROBS, n_blocks)
    return TestResult(
        name="longest run of ones",
        p_value=chi2_pvalue(stat, dof),
        statistic=stat,
        detail=f"{n_blocks} blocks of {M} bits",
    )
