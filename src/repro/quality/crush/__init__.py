"""TestU01-style Crush batteries (SmallCrush / Crush / BigCrush)."""

from repro.quality.crush.batteries import (
    BATTERY_NAMES,
    run_battery,
    run_bigcrush,
    run_crush,
    run_smallcrush,
)
from repro.quality.crush.classic import (
    autocorrelation_test,
    collision_test,
    coupon_collector_test,
    gap_test,
    hamming_indep_test,
    hamming_weight_test,
    longest_run_test,
    max_of_t_test,
    poker_test,
    random_walk_test,
    serial_pairs_test,
    weight_distrib_test,
)

__all__ = [
    "BATTERY_NAMES",
    "run_battery",
    "run_bigcrush",
    "run_crush",
    "run_smallcrush",
    "autocorrelation_test",
    "collision_test",
    "coupon_collector_test",
    "gap_test",
    "hamming_indep_test",
    "hamming_weight_test",
    "longest_run_test",
    "max_of_t_test",
    "poker_test",
    "random_walk_test",
    "serial_pairs_test",
    "weight_distrib_test",
]
