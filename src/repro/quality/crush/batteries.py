"""SmallCrush / Crush / BigCrush batteries (Table III of the paper).

Modeled on TestU01's tiered structure: three batteries of **15 named
statistics each**, at sharply increasing sample sizes, so each row of the
paper's Table III ("x/15 passed" per battery) is directly reproducible.
Test selections mix the Knuth/TestU01 classics
(:mod:`repro.quality.crush.classic`) with the heavier DIEHARD machinery
(matrix ranks, monkey tests, squeeze); BigCrush adds the most
structure-sensitive configurations (64x64 ranks, low-bit birthday
windows, long autocorrelations).

Sizes are scaled to pure-NumPy runtimes: SmallCrush tens of millions of
bits, BigCrush around ten times more.  ``scale`` multiplies sizes for
heavier runs.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from repro.baselines.base import PRNG
from repro.quality.crush.classic import (
    autocorrelation_test,
    collision_test,
    coupon_collector_test,
    gap_test,
    hamming_indep_test,
    hamming_weight_test,
    longest_run_test,
    max_of_t_test,
    poker_test,
    random_walk_test,
    serial_pairs_test,
    weight_distrib_test,
)
from repro.quality.diehard.birthday import birthday_spacings
from repro.quality.diehard.monkey import bitstream_test, monkey_group
from repro.quality.diehard.operm5 import operm5_test
from repro.quality.diehard.ranks import binary_rank_test
from repro.quality.diehard.squeeze import squeeze_test
from repro.quality.diehard.sums_runs_craps import runs_test
from repro.obs.trace import span
from repro.quality.stats import BatteryResult, record_test_observation

__all__ = ["run_smallcrush", "run_crush", "run_bigcrush", "run_battery",
           "BATTERY_NAMES"]

BATTERY_NAMES = ("SmallCrush", "Crush", "BigCrush")

TestSpec = Tuple[str, Callable[[PRNG, float], object]]


def _s(n: int, scale: float) -> int:
    return max(1, int(n * scale))


def _smallcrush_tests() -> List[TestSpec]:
    return [
        ("birthday spacings", lambda g, s: birthday_spacings(
            g, n_samples=_s(120, s), bit_offsets=(0,))),
        ("collision", lambda g, s: collision_test(g, n_balls=_s(2**16, s))),
        ("gap", lambda g, s: gap_test(g, n=_s(500_000, s))),
        ("coupon collector", lambda g, s: coupon_collector_test(
            g, n_segments=_s(20_000, s))),
        ("poker", lambda g, s: poker_test(g, n_hands=_s(50_000, s))),
        ("max-of-t", lambda g, s: max_of_t_test(g, n_groups=_s(30_000, s))),
        ("weight distribution", lambda g, s: weight_distrib_test(
            g, n_blocks=_s(5_000, s))),
        ("matrix rank 32x32", lambda g, s: binary_rank_test(
            g, 32, 32, n_matrices=_s(1_000, s))),
        ("hamming weight", lambda g, s: hamming_weight_test(
            g, n_words=_s(200_000, s))),
        ("hamming independence", lambda g, s: hamming_indep_test(
            g, n_words=_s(200_000, s))),
        ("random walk", lambda g, s: random_walk_test(g, n_walks=_s(20_000, s))),
        ("autocorrelation", lambda g, s: autocorrelation_test(
            g, n_bits=_s(1_000_000, s))),
        ("serial pairs", lambda g, s: serial_pairs_test(
            g, n_pairs=_s(500_000, s))),
        ("runs", lambda g, s: runs_test(g, n=_s(50_000, s))),
        ("longest run of ones", lambda g, s: longest_run_test(
            g, n_blocks=_s(20_000, s))),
    ]


def _crush_tests() -> List[TestSpec]:
    return [
        ("birthday spacings (2 windows)", lambda g, s: birthday_spacings(
            g, n_samples=_s(250, s), bit_offsets=(0, 8))),
        ("collision", lambda g, s: collision_test(g, n_balls=_s(2**17, s))),
        ("gap", lambda g, s: gap_test(g, n=_s(2_000_000, s), beta=0.0625)),
        ("coupon collector", lambda g, s: coupon_collector_test(
            g, d=6, n_segments=_s(60_000, s))),
        ("poker", lambda g, s: poker_test(g, d=16, k=6, n_hands=_s(150_000, s))),
        ("max-of-t", lambda g, s: max_of_t_test(
            g, t=16, n_groups=_s(100_000, s))),
        ("weight distribution", lambda g, s: weight_distrib_test(
            g, n_blocks=_s(20_000, s))),
        ("matrix rank 32x32", lambda g, s: binary_rank_test(
            g, 32, 32, n_matrices=_s(4_000, s))),
        ("hamming independence", lambda g, s: hamming_indep_test(
            g, n_words=_s(1_000_000, s))),
        ("random walk", lambda g, s: random_walk_test(
            g, walk_len=256, n_walks=_s(60_000, s))),
        ("autocorrelation", lambda g, s: autocorrelation_test(
            g, n_bits=_s(8_000_000, s))),
        ("serial pairs", lambda g, s: serial_pairs_test(
            g, n_pairs=_s(2_000_000, s))),
        ("operm5", lambda g, s: operm5_test(
            g, n_groups=max(12_000, _s(120_000, s)))),
        ("bitstream", lambda g, s: bitstream_test(g)),
        ("squeeze", lambda g, s: squeeze_test(
            g, n_reps=max(1_000, _s(100_000, s)))),
    ]


def _bigcrush_tests() -> List[TestSpec]:
    return [
        ("birthday spacings (low bits)", lambda g, s: birthday_spacings(
            g, n_samples=_s(500, s), bit_offsets=(0, 4, 8))),
        ("collision", lambda g, s: collision_test(
            g, n_balls=_s(2**18, s), urn_bits=22)),
        ("gap", lambda g, s: gap_test(
            g, n=_s(8_000_000, s), beta=0.03125, max_gap=160)),
        ("coupon collector", lambda g, s: coupon_collector_test(
            g, d=8, n_segments=_s(150_000, s), tmax=64)),
        ("poker", lambda g, s: poker_test(
            g, d=32, k=8, n_hands=_s(300_000, s))),
        ("max-of-t", lambda g, s: max_of_t_test(
            g, t=24, n_groups=_s(300_000, s))),
        ("weight distribution", lambda g, s: weight_distrib_test(
            g, n_blocks=_s(60_000, s), beta=0.125)),
        ("matrix rank 64x64", lambda g, s: binary_rank_test(
            g, 64, 64, n_matrices=_s(2_000, s))),
        ("hamming independence", lambda g, s: hamming_indep_test(
            g, n_words=_s(4_000_000, s))),
        ("random walk", lambda g, s: random_walk_test(
            g, walk_len=512, n_walks=_s(150_000, s))),
        ("autocorrelation", lambda g, s: autocorrelation_test(
            g, n_bits=_s(30_000_000, s), lags=(1, 2, 8, 16, 32, 64))),
        ("serial pairs", lambda g, s: serial_pairs_test(
            g, cell_bits=10, n_pairs=_s(8_000_000, s))),
        ("operm5", lambda g, s: operm5_test(
            g, n_groups=max(12_000, _s(400_000, s)))),
        ("monkey OPSO+OQSO+DNA", lambda g, s: monkey_group(g)),
        ("squeeze", lambda g, s: squeeze_test(
            g, n_reps=max(1_000, _s(300_000, s)))),
    ]


_BATTERIES = {
    "SmallCrush": _smallcrush_tests,
    "Crush": _crush_tests,
    "BigCrush": _bigcrush_tests,
}


def run_battery(
    name: str,
    gen: PRNG,
    scale: float = 1.0,
    progress: Optional[Callable[[str], None]] = None,
) -> BatteryResult:
    """Run one named battery against ``gen``."""
    if name not in _BATTERIES:
        raise KeyError(f"unknown battery {name!r}; known: {BATTERY_NAMES}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    battery = BatteryResult(generator=gen.name, battery=name)
    for test_name, fn in _BATTERIES[name]():
        if progress is not None:
            progress(test_name)
        start = time.perf_counter()
        with span("quality.test", battery=name, test=test_name):
            result = fn(gen, scale)
        record_test_observation(name, result, time.perf_counter() - start)
        battery.add(result)
    return battery


def run_smallcrush(gen: PRNG, scale: float = 1.0, progress=None) -> BatteryResult:
    """The 15-statistic SmallCrush battery."""
    return run_battery("SmallCrush", gen, scale, progress)


def run_crush(gen: PRNG, scale: float = 1.0, progress=None) -> BatteryResult:
    """The 15-statistic Crush battery (heavier sizes)."""
    return run_battery("Crush", gen, scale, progress)


def run_bigcrush(gen: PRNG, scale: float = 1.0, progress=None) -> BatteryResult:
    """The 15-statistic BigCrush battery (heaviest sizes)."""
    return run_battery("BigCrush", gen, scale, progress)
