"""DIEHARD battery of statistical tests (Marsaglia), scaled re-implementation."""

from repro.quality.diehard.battery import DIEHARD_TEST_NAMES, run_diehard
from repro.quality.diehard.birthday import birthday_spacings
from repro.quality.diehard.count1s import (
    count_the_ones_bytes,
    count_the_ones_stream,
)
from repro.quality.diehard.geometry import minimum_distance, parking_lot, spheres_3d
from repro.quality.diehard.monkey import (
    bitstream_test,
    dna_test,
    monkey_group,
    opso_test,
    oqso_test,
)
from repro.quality.diehard.operm5 import operm5_test, permutation_index
from repro.quality.diehard.ranks import (
    binary_rank_test,
    gf2_rank_batch,
    rank_test_group,
)
from repro.quality.diehard.squeeze import squeeze_test
from repro.quality.diehard.sums_runs_craps import (
    craps_test,
    overlapping_sums,
    runs_test,
)

__all__ = [
    "DIEHARD_TEST_NAMES",
    "run_diehard",
    "birthday_spacings",
    "count_the_ones_bytes",
    "count_the_ones_stream",
    "minimum_distance",
    "parking_lot",
    "spheres_3d",
    "bitstream_test",
    "dna_test",
    "monkey_group",
    "opso_test",
    "oqso_test",
    "operm5_test",
    "permutation_index",
    "binary_rank_test",
    "gf2_rank_batch",
    "rank_test_group",
    "squeeze_test",
    "craps_test",
    "overlapping_sums",
    "runs_test",
]
