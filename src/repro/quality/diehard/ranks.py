"""DIEHARD test 3: ranks of binary matrices over GF(2).

Builds batches of random bit matrices from the generator's output and
compares the empirical rank distribution with the exact probabilities
(:func:`repro.quality.stats.binary_matrix_rank_probs`).  DIEHARD counts
the 31x31/32x32 pair as a single test and the 6x8 byte-matrix variant as
another; both groupings are preserved by
:func:`binary_rank_test` + :func:`rank_test_group`.

Rank computation is Gaussian elimination on *packed rows* (one integer
per row), vectorized across the whole batch of matrices at once.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PRNG
from repro.quality.stats import (
    TestResult,
    binary_matrix_rank_probs,
    chi2_pvalue,
    fisher_combine,
)

__all__ = ["gf2_rank_batch", "binary_rank_test", "rank_test_group"]


def gf2_rank_batch(matrices: np.ndarray, cols: int) -> np.ndarray:
    """Ranks over GF(2) of many matrices at once.

    Parameters
    ----------
    matrices : uint64 array, shape (batch, rows)
        Each row is a bit-packed matrix row (low ``cols`` bits used).
    cols : int
        Number of columns (<= 64).

    Returns
    -------
    int array of shape (batch,) -- the GF(2) ranks.
    """
    if not 1 <= cols <= 64:
        raise ValueError(f"cols must be in 1..64, got {cols}")
    m = matrices.astype(np.uint64).copy()
    batch, rows = m.shape
    rank = np.zeros(batch, dtype=np.int64)
    # Eliminate column by column.  `rank` doubles as the pivot row cursor.
    row_idx = np.arange(rows)
    for c in range(cols):
        bit = np.uint64(1) << np.uint64(c)
        has_bit = (m & bit) != 0  # (batch, rows)
        # Candidate pivot rows: index >= current rank and bit set.
        candidates = has_bit & (row_idx[None, :] >= rank[:, None])
        pivot_exists = candidates.any(axis=1)
        pivot_row = np.argmax(candidates, axis=1)  # first candidate per matrix

        sel = pivot_exists
        if not sel.any():
            continue
        bsel = np.nonzero(sel)[0]
        # Swap pivot row into position `rank`.
        pr = pivot_row[bsel]
        rk = rank[bsel]
        tmp = m[bsel, pr].copy()
        m[bsel, pr] = m[bsel, rk]
        m[bsel, rk] = tmp
        # XOR the pivot row into every other row that has the bit set.
        pivot_vals = m[bsel, rk]  # (nsel,)
        has_bit_sel = (m[bsel] & bit) != 0
        has_bit_sel[np.arange(bsel.size), rk] = False
        m[bsel] ^= has_bit_sel * pivot_vals[:, None]
        rank[bsel] += 1
        if (rank >= rows).all():
            break
    return rank


def _matrices_from_words(gen: PRNG, n_matrices: int, rows: int, cols: int
                         ) -> np.ndarray:
    """Pack generator output into (n_matrices, rows) bit-row matrices."""
    if cols <= 32:
        words = gen.u32_array(n_matrices * rows).astype(np.uint64)
        words &= np.uint64((1 << cols) - 1)
    else:
        words = gen.u64_array(n_matrices * rows)
        words &= np.uint64((1 << cols) - 1) if cols < 64 else np.uint64(2**64 - 1)
    return words.reshape(n_matrices, rows)


def binary_rank_test(
    gen: PRNG, rows: int, cols: int, n_matrices: int = 2000
) -> TestResult:
    """Chi-square of the empirical rank distribution for one matrix shape."""
    rmax = min(rows, cols)
    min_rank = rmax - 3  # pool everything below the top 3 ranks
    probs = binary_matrix_rank_probs(rows, cols, min_rank)
    mats = _matrices_from_words(gen, n_matrices, rows, cols)
    ranks = gf2_rank_batch(mats, cols)
    binned = np.maximum(ranks, min_rank) - min_rank
    observed = np.bincount(binned, minlength=len(probs)).astype(float)
    expected = probs * n_matrices
    stat = float(((observed - expected) ** 2 / expected).sum())
    p = chi2_pvalue(stat, len(probs) - 1)
    return TestResult(
        name=f"binary rank {rows}x{cols}",
        p_value=p,
        statistic=stat,
        detail=f"{n_matrices} matrices",
    )


def rank_test_group(gen: PRNG, n_matrices: int = 2000) -> tuple:
    """DIEHARD's two rank entries: (31x31 + 32x32 combined, 6x8)."""
    r31 = binary_rank_test(gen, 31, 31, n_matrices)
    r32 = binary_rank_test(gen, 32, 32, n_matrices)
    big = TestResult(
        name="binary rank 31x31 & 32x32",
        p_value=fisher_combine([r31.p_value, r32.p_value]),
        statistic=r32.statistic,
        detail=f"p31={r31.p_value:.3f} p32={r32.p_value:.3f}",
    )
    small = binary_rank_test(gen, 6, 8, max(n_matrices * 20, 20000))
    small = TestResult(
        name="binary rank 6x8",
        p_value=small.p_value,
        statistic=small.statistic,
        detail=small.detail,
    )
    return big, small
