"""DIEHARD test 12: the squeeze test.

Starting from ``k = 2**31``, iterate ``k <- ceil(k * U)`` with fresh
uniforms U until ``k == 1``, and record how many iterations that took
(capped at 48).  The iteration-count distribution has no friendly closed
form; DIEHARD ships a hard-coded table.  Here the expected distribution
is obtained once per process from a large reference simulation driven by
NumPy's PCG64 (an excellent generator far outside the families under
test), making this a two-sample chi-square with well-controlled reference
noise.  The whole test is vectorized: all replicas squeeze in lockstep
with a shrinking active mask.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.baselines.base import PRNG
from repro.quality.stats import TestResult, chi2_pvalue

__all__ = ["squeeze_test"]

_MAX_ITERS = 48
_MIN_BIN = 6  # DIEHARD pools iterations <= 6
_START = float(2**31)


def _squeeze_counts(uniform_fn, n_reps: int) -> np.ndarray:
    """Iteration-count histogram over bins [<=6, 7, 8, ..., >=48]."""
    k = np.full(n_reps, _START)
    iters = np.zeros(n_reps, dtype=np.int64)
    active = k > 1.0
    while active.any():
        n_active = int(active.sum())
        u = uniform_fn(n_active)
        k_active = np.ceil(k[active] * u)
        k_active = np.maximum(k_active, 1.0)
        iters_active = iters[active] + 1
        k[active] = k_active
        iters[active] = iters_active
        # Anything still > 1 after 48 draws is recorded in the last bin.
        still = k > 1.0
        still &= iters < _MAX_ITERS
        active = still
    binned = np.clip(iters, _MIN_BIN, _MAX_ITERS) - _MIN_BIN
    return np.bincount(binned, minlength=_MAX_ITERS - _MIN_BIN + 1)


@lru_cache(maxsize=1)
def _reference_probs(n_ref: int = 2_000_000) -> tuple:
    """Cell probabilities estimated once from PCG64 (cached)."""
    rng = np.random.Generator(np.random.PCG64(0xD1E4A4D))
    counts = _squeeze_counts(lambda n: rng.random(n), n_ref)
    return tuple(counts / counts.sum())


def squeeze_test(gen: PRNG, n_reps: int = 100_000) -> TestResult:
    """Chi-square of squeeze iteration counts against the reference table."""
    if n_reps < 1000:
        raise ValueError(f"n_reps too small for a chi-square: {n_reps}")
    probs = np.asarray(_reference_probs())
    observed = _squeeze_counts(lambda n: gen.uniform(n), n_reps).astype(float)
    expected = probs * n_reps
    # Pool sparse cells.
    keep = expected >= 5.0
    obs = np.concatenate([observed[keep], [observed[~keep].sum()]]) \
        if (~keep).any() else observed
    exp = np.concatenate([expected[keep], [expected[~keep].sum()]]) \
        if (~keep).any() else expected
    stat = float(((obs - exp) ** 2 / exp).sum())
    dof = len(exp) - 1
    return TestResult(
        name="squeeze",
        p_value=chi2_pvalue(stat, dof),
        statistic=stat,
        detail=f"{n_reps} squeezes, {dof} dof",
    )
