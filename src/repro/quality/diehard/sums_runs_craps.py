"""DIEHARD tests 13-15: overlapping sums, runs, and craps.

* **overlapping sums** -- sums of 100 consecutive uniforms are
  approximately normal; DIEHARD de-correlates overlapping windows with
  the known covariance.  This implementation uses *non-overlapping*
  windows (independent by construction), standardizes them and KS-tests
  against the normal CDF -- statistically equivalent discrimination,
  simpler math (documented deviation).
* **runs** -- runs-up and runs-down counts over a uniform sequence; the
  total number of ascending/descending runs is ~ N((2n-1)/3,
  sqrt((16n-29)/90)) (Knuth 3.3.2).
* **craps** -- play ``n_games`` games of craps with throws from the
  generator; wins are Binomial(n, 244/495) and the throws-per-game
  distribution has computable geometric-mixture cell probabilities.
  Both statistics are Fisher-combined into one entry, as in DIEHARD.
"""

from __future__ import annotations

import numpy as np
import scipy.stats as sps

from repro.baselines.base import PRNG
from repro.quality.stats import (
    TestResult,
    chi2_pvalue,
    fisher_combine,
    normal_uniform_pvalue,
)

__all__ = ["overlapping_sums", "runs_test", "craps_test"]


def overlapping_sums(gen: PRNG, window: int = 100, n_sums: int = 2000
                     ) -> TestResult:
    """KS of standardized window sums against the normal distribution."""
    u = gen.uniform(window * n_sums).reshape(n_sums, window)
    sums = u.sum(axis=1)
    z = (sums - window * 0.5) / np.sqrt(window / 12.0)
    res = sps.kstest(z, "norm")
    return TestResult(
        name="overlapping sums",
        p_value=float(res.pvalue),
        statistic=float(res.statistic),
        detail=f"{n_sums} sums of {window}",
    )


def runs_test(gen: PRNG, n: int = 100_000) -> TestResult:
    """Total runs up+down versus the Knuth normal approximation."""
    if n < 1000:
        raise ValueError(f"need at least 1000 values, got {n}")
    u = gen.uniform(n)
    signs = np.sign(np.diff(u))
    # Ties (equal successive values) are virtually impossible with doubles;
    # drop them defensively anyway.
    signs = signs[signs != 0]
    m = signs.size + 1
    runs = 1 + int((np.diff(signs) != 0).sum())
    mean = (2 * m - 1) / 3.0
    var = (16 * m - 29) / 90.0
    z = (runs - mean) / np.sqrt(var)
    return TestResult(
        name="runs",
        p_value=normal_uniform_pvalue(z),
        statistic=z,
        detail=f"{runs} runs over {m} values",
    )


#: P(win) for craps; classical result 244/495.
_CRAPS_WIN = 244.0 / 495.0


def _play_craps(gen: PRNG, n_games: int) -> tuple:
    """Vectorized craps: returns (wins, throws-per-game array)."""
    def roll(count: int) -> np.ndarray:
        # Two dice from one uniform each, as DIEHARD does.
        a = (gen.uniform(count) * 6).astype(np.int64) + 1
        b = (gen.uniform(count) * 6).astype(np.int64) + 1
        return a + b

    first = roll(n_games)
    wins = (first == 7) | (first == 11)
    losses = (first == 2) | (first == 3) | (first == 12)
    throws = np.ones(n_games, dtype=np.int64)
    active = ~(wins | losses)
    point = first.copy()
    while active.any():
        idx = np.nonzero(active)[0]
        r = roll(idx.size)
        throws[idx] += 1
        made = r == point[idx]
        seven = r == 7
        wins[idx[made]] = True
        active[idx[made | seven]] = False
    return int(wins.sum()), throws


def craps_test(gen: PRNG, n_games: int = 200_000) -> TestResult:
    """Wins z-test combined with a chi-square on throws per game."""
    if n_games < 1000:
        raise ValueError(f"need at least 1000 games, got {n_games}")
    nwins, throws = _play_craps(gen, n_games)
    z = (nwins - n_games * _CRAPS_WIN) / np.sqrt(
        n_games * _CRAPS_WIN * (1 - _CRAPS_WIN)
    )
    p_wins = normal_uniform_pvalue(z)

    # Throws-per-game cell probabilities: game ends on throw 1 with
    # probability 12/36; otherwise a point p in {4,5,6,8,9,10} is rolled
    # and each later throw ends it with prob (P(p) + 6/36).
    probs = [12.0 / 36.0]
    point_probs = {4: 3 / 36, 5: 4 / 36, 6: 5 / 36, 8: 5 / 36, 9: 4 / 36, 10: 3 / 36}
    max_t = 21
    for t in range(2, max_t + 1):
        pt = 0.0
        for pp in point_probs.values():
            end = pp + 6.0 / 36.0
            pt += pp * (1 - end) ** (t - 2) * end
        probs.append(pt)
    probs = np.asarray(probs)
    tail = 1.0 - probs.sum()
    probs = np.concatenate([probs, [tail]])  # ">= max_t+1 throws"

    binned = np.clip(throws, 1, max_t + 1) - 1
    observed = np.bincount(binned, minlength=max_t + 1).astype(float)
    expected = probs * n_games
    stat = float(((observed - expected) ** 2 / expected).sum())
    p_throws = chi2_pvalue(stat, max_t)

    return TestResult(
        name="craps",
        p_value=fisher_combine([p_wins, p_throws]),
        statistic=z,
        detail=f"wins p={p_wins:.3f} throws p={p_throws:.3f}",
    )
