"""DIEHARD tests 7-8: count-the-1s (stream and specific-bytes variants).

Each byte's popcount is mapped to a letter::

    <= 2 ones -> A, 3 -> B, 4 -> C, 5 -> D, >= 6 -> E

with probabilities (37, 56, 70, 56, 37)/256.  Overlapping 5-letter words
are counted and the statistic is the difference of the 5-letter and
4-letter chi-squares ("Q5 - Q4"), which is asymptotically chi-square with
``5^4 * 4 = 2500`` degrees of freedom.

The *stream* variant uses successive bytes of the output stream; the
*specific bytes* variant uses one chosen byte of each 32-bit word.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PRNG
from repro.quality.stats import TestResult, chi2_pvalue

__all__ = ["count_the_ones_stream", "count_the_ones_bytes"]

# Letter for each possible byte popcount 0..8.
_POPCOUNT_LETTER = np.array([0, 0, 0, 1, 2, 3, 4, 4, 4], dtype=np.int64)
_LETTER_PROBS = np.array([37, 56, 70, 56, 37], dtype=np.float64) / 256.0
_BYTE_POPCOUNT = np.array([bin(b).count("1") for b in range(256)], dtype=np.int64)


def _q5_minus_q4(letters: np.ndarray) -> tuple:
    """The Q5 - Q4 statistic over an overlapping letter stream."""
    n5 = letters.size - 4
    # Codes of overlapping 5- and 4-letter words, base 5.
    code5 = (
        letters[0:n5] * 625
        + letters[1 : n5 + 1] * 125
        + letters[2 : n5 + 2] * 25
        + letters[3 : n5 + 3] * 5
        + letters[4 : n5 + 4]
    )
    code4 = (
        letters[0 : n5 + 1] * 125
        + letters[1 : n5 + 2] * 25
        + letters[2 : n5 + 3] * 5
        + letters[3 : n5 + 4]
    )
    counts5 = np.bincount(code5, minlength=5**5).astype(np.float64)
    counts4 = np.bincount(code4, minlength=5**4).astype(np.float64)

    # Expected cell probabilities are products of letter probabilities.
    idx5 = np.arange(5**5)
    p5 = np.ones(5**5)
    for j in range(5):
        p5 *= _LETTER_PROBS[(idx5 // 5**j) % 5]
    idx4 = np.arange(5**4)
    p4 = np.ones(5**4)
    for j in range(4):
        p4 *= _LETTER_PROBS[(idx4 // 5**j) % 5]

    e5 = p5 * n5
    e4 = p4 * (n5 + 1)
    q5 = ((counts5 - e5) ** 2 / e5).sum()
    q4 = ((counts4 - e4) ** 2 / e4).sum()
    stat = float(q5 - q4)
    dof = 5**4 * 4  # 3125 - 625 = 2500
    return stat, dof


def count_the_ones_stream(gen: PRNG, n_bytes: int = 256_000) -> TestResult:
    """Count-the-1s on a stream of successive output bytes."""
    if n_bytes < 5:
        raise ValueError(f"need at least 5 bytes, got {n_bytes}")
    data = gen.bytes_stream(n_bytes)
    letters = _POPCOUNT_LETTER[_BYTE_POPCOUNT[data]]
    stat, dof = _q5_minus_q4(letters)
    z = (stat - dof) / np.sqrt(2.0 * dof)
    return TestResult(
        name="count-the-1s stream",
        p_value=chi2_pvalue(stat, dof),
        statistic=z,
        detail=f"Q5-Q4={stat:.0f} dof={dof}",
    )


def count_the_ones_bytes(gen: PRNG, n_words: int = 256_000, byte_index: int = 3
                         ) -> TestResult:
    """Count-the-1s on one specific byte of each 32-bit output word."""
    if not 0 <= byte_index < 4:
        raise ValueError(f"byte_index must be in 0..3, got {byte_index}")
    words = gen.u32_array(n_words)
    data = ((words >> np.uint32(8 * byte_index)) & np.uint32(0xFF)).astype(np.int64)
    letters = _POPCOUNT_LETTER[_BYTE_POPCOUNT[data]]
    stat, dof = _q5_minus_q4(letters)
    return TestResult(
        name="count-the-1s bytes",
        p_value=chi2_pvalue(stat, dof),
        statistic=(stat - dof) / np.sqrt(2.0 * dof),
        detail=f"byte {byte_index}, Q5-Q4={stat:.0f}",
    )
