"""DIEHARD test 2: the 5-permutation (OPERM5) test.

Each group of five consecutive 32-bit outputs has a relative order --
one of 120 possible permutations -- that should be uniform.  The original
OPERM5 uses *overlapping* groups and a rank-deficient covariance matrix
that was famously buggy in the DIEHARD distribution; following common
practice (e.g. dieharder's documented variant) this implementation uses
**non-overlapping** groups, making the 120 cell counts multinomial and
the plain chi-square exact.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PRNG
from repro.quality.stats import TestResult, chi2_pvalue

__all__ = ["operm5_test", "permutation_index"]


def permutation_index(groups: np.ndarray) -> np.ndarray:
    """Dense index (0..119) of the argsort-permutation of each row.

    Uses the Lehmer code of the argsort permutation (factorial base),
    fully vectorized; any bijection permutation -> 0..119 serves the
    chi-square equally well.
    """
    if groups.ndim != 2 or groups.shape[1] != 5:
        raise ValueError(f"groups must have shape (n, 5), got {groups.shape}")
    order = np.argsort(groups, axis=1, kind="stable")
    idx = np.zeros(groups.shape[0], dtype=np.int64)
    weights = (24, 6, 2, 1)
    for pos in range(4):
        # Lehmer digit: order[pos] minus how many earlier entries are smaller.
        rank = order[:, pos] - (
            order[:, :pos] < order[:, pos : pos + 1]
        ).sum(axis=1)
        idx += rank * weights[pos]
    return idx


def operm5_test(gen: PRNG, n_groups: int = 120_000) -> TestResult:
    """Chi-square over the 120 order-permutations of 5-tuples."""
    if n_groups < 12_000:
        raise ValueError(f"need >= 12000 groups for ~100 per cell, got {n_groups}")
    vals = gen.u32_array(5 * n_groups).reshape(n_groups, 5)
    # Ties between equal u32s bias the permutation ranks; with 2**32
    # values and n in the 10**5 range they are vanishingly rare, and the
    # stable argsort resolves them deterministically.
    idx = permutation_index(vals)
    observed = np.bincount(idx, minlength=120).astype(float)
    expected = n_groups / 120.0
    stat = float(((observed - expected) ** 2 / expected).sum())
    return TestResult(
        name="overlapping 5-permutation",
        p_value=chi2_pvalue(stat, 119),
        statistic=stat,
        detail=f"{n_groups} non-overlapping 5-tuples",
    )
