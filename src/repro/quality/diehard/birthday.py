"""DIEHARD test 1: birthday spacings.

Draw ``n_birthdays`` values in a year of ``2**day_bits`` days, sort them,
and count duplicate spacings.  For the classic parameters (512 birthdays,
2**24 days) the duplicate count J is asymptotically Poisson with mean
``lambda = n^3 / (4 * 2**day_bits) = 2``.  Repeating ``n_samples`` times
and chi-square-fitting the empirical J distribution to Poisson(lambda)
yields the p-value.
"""

from __future__ import annotations

import numpy as np
import scipy.stats as sps

from repro.baselines.base import PRNG
from repro.quality.stats import TestResult, chi2_pvalue, fisher_combine

__all__ = ["birthday_spacings"]


def _one_window(
    raw, bit_offset: int, n_birthdays: int, day_bits: int, n_samples: int
) -> tuple:
    """(chi2 stat, dof, mean J) for the window starting at ``bit_offset``."""
    lam = n_birthdays**3 / (4.0 * 2.0**day_bits)
    shift = np.uint32(32 - day_bits - bit_offset)
    mask = np.uint32((1 << day_bits) - 1)
    days = ((raw >> shift) & mask).reshape(n_samples, n_birthdays)
    days.sort(axis=1)
    spacings = np.diff(days.astype(np.int64), axis=1)
    spacings.sort(axis=1)
    # J = number of duplicated spacing values per sample.
    dup = (np.diff(spacings, axis=1) == 0).sum(axis=1)

    # Bin J into 0..k with a pooled tail so expected counts stay >= ~5.
    kmax = int(sps.poisson.ppf(0.999, lam)) + 1
    observed = np.bincount(np.minimum(dup, kmax), minlength=kmax + 1).astype(float)
    probs = sps.poisson.pmf(np.arange(kmax + 1), lam)
    probs[-1] = 1.0 - probs[:-1].sum()
    expected = probs * n_samples
    # Pool cells with tiny expectation into the tail; relax the threshold
    # at very small sample counts so at least two cells survive.
    threshold = 4.0
    keep = expected >= threshold
    keep[-1] = True
    while keep.sum() < 2 and threshold > 1e-6:
        threshold /= 4.0
        keep = expected >= threshold
        keep[-1] = True
    obs_p = np.concatenate([observed[keep][:-1], [observed[~keep].sum() + observed[keep][-1]]])
    exp_p = np.concatenate([expected[keep][:-1], [expected[~keep].sum() + expected[keep][-1]]])
    stat = float(((obs_p - exp_p) ** 2 / exp_p).sum())
    dof = len(exp_p) - 1
    return stat, dof, float(dup.mean())


def birthday_spacings(
    gen: PRNG,
    n_birthdays: int = 512,
    day_bits: int = 24,
    n_samples: int = 250,
    bit_offsets: tuple = (0, 8),
) -> TestResult:
    """Birthday spacings over several bit windows, Fisher-combined.

    DIEHARD slides the 24-bit day window across all nine bit offsets of
    the 32-bit word; LCG-family generators fail in the *low* windows.
    Two windows (top bits and bottom bits) retain that discrimination at
    a fraction of the cost.
    """
    ps = []
    means = []
    for off in bit_offsets:
        if off + day_bits > 32:
            raise ValueError(f"window offset {off} + {day_bits} bits exceeds 32")
        raw = gen.u32_array(n_birthdays * n_samples)
        stat, dof, mean_j = _one_window(raw, off, n_birthdays, day_bits, n_samples)
        ps.append(chi2_pvalue(stat, dof))
        means.append(mean_j)
    p = fisher_combine(ps) if len(ps) > 1 else ps[0]
    lam = n_birthdays**3 / (4.0 * 2.0**day_bits)
    return TestResult(
        name="birthday spacings",
        p_value=p,
        statistic=float(np.mean(means)),
        detail=(
            f"lambda={lam:.2f} "
            + " ".join(f"bits@{o}: p={pv:.3f}" for o, pv in zip(bit_offsets, ps))
        ),
    )
