"""DIEHARD tests 5-6: the "monkey at a typewriter" missing-word tests.

A stream of overlapping k-bit "words" is typed by a monkey; the number of
20-bit words never seen after 2**21 keystrokes is asymptotically normal
with known mean and standard deviation:

* **bitstream**: letters are single bits, words are 20 bits overlapping
  by 19;  missing ~ N(141909, 428).
* **OPSO**: two 10-bit letters per word;        missing ~ N(141909, 290).
* **OQSO**: four 5-bit letters per word;        missing ~ N(141909, 295).
* **DNA**:  ten 2-bit letters per word;         missing ~ N(141909, 339).

DIEHARD counts OPSO/OQSO/DNA as a single test entry; bitstream stands
alone.  Letters are taken from the *high* bits of consecutive 32-bit
outputs, as in the original.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import PRNG
from repro.quality.stats import TestResult, fisher_combine, normal_uniform_pvalue

__all__ = ["bitstream_test", "opso_test", "oqso_test", "dna_test", "monkey_group"]

_N_WORDS = 2**21
_MEAN_MISSING = 141_909.0


def _missing_count(words: np.ndarray, word_bits: int) -> int:
    """How many of the 2**word_bits possible words never occur."""
    seen = np.zeros(2**word_bits, dtype=bool)
    seen[words] = True
    return int((~seen).sum())


def _overlapping_words(letters: np.ndarray, letter_bits: int, letters_per_word: int
                       ) -> np.ndarray:
    """Overlapping fixed-length words over a letter stream (sliding by 1)."""
    word_bits = letter_bits * letters_per_word
    mask = (1 << word_bits) - 1
    n = letters.size - letters_per_word + 1
    word = np.zeros(letters.size, dtype=np.int64)
    acc = np.zeros(letters.size, dtype=np.int64)
    # Build the first window then slide: word_i = (word_{i-1} << b | L_i).
    # Vectorized via shifted adds: word_i = sum_j L_{i+j} << ((k-1-j) b).
    for j in range(letters_per_word):
        shift = (letters_per_word - 1 - j) * letter_bits
        acc[: n] += letters[j : j + n].astype(np.int64) << shift
    word = acc[:n] & mask
    return word


def _monkey_statistic(name: str, missing: float, sigma: float) -> TestResult:
    z = (missing - _MEAN_MISSING) / sigma
    return TestResult(
        name=name,
        p_value=normal_uniform_pvalue(z),
        statistic=z,
        detail=f"missing={int(missing)} (exp {int(_MEAN_MISSING)})",
    )


def bitstream_test(gen: PRNG) -> TestResult:
    """Overlapping 20-bit words from the raw bit stream."""
    bits = gen.bits_stream(_N_WORDS + 19)
    words = _overlapping_words(bits, 1, 20)
    missing = _missing_count(words, 20)
    return _monkey_statistic("bitstream", missing, 428.0)


def _letter_monkey(gen: PRNG, name: str, letter_bits: int, letters_per_word: int,
                   sigma: float) -> TestResult:
    n_letters = _N_WORDS + letters_per_word - 1
    raw = gen.u32_array(n_letters)
    letters = (raw >> np.uint32(32 - letter_bits)).astype(np.int64)
    words = _overlapping_words(letters, letter_bits, letters_per_word)
    missing = _missing_count(words, letter_bits * letters_per_word)
    return _monkey_statistic(name, missing, sigma)


def opso_test(gen: PRNG) -> TestResult:
    """Overlapping-Pairs-Sparse-Occupancy: 2 x 10-bit letters."""
    return _letter_monkey(gen, "OPSO", 10, 2, 290.0)


def oqso_test(gen: PRNG) -> TestResult:
    """Overlapping-Quadruples-Sparse-Occupancy: 4 x 5-bit letters."""
    return _letter_monkey(gen, "OQSO", 5, 4, 295.0)


def dna_test(gen: PRNG) -> TestResult:
    """DNA: 10 x 2-bit letters."""
    return _letter_monkey(gen, "DNA", 2, 10, 339.0)


def monkey_group(gen: PRNG) -> TestResult:
    """DIEHARD's single "OPSO/OQSO/DNA" table entry (Fisher-combined)."""
    parts = [opso_test(gen), oqso_test(gen), dna_test(gen)]
    return TestResult(
        name="monkey OPSO+OQSO+DNA",
        p_value=fisher_combine([p.p_value for p in parts]),
        statistic=float(np.mean([p.statistic for p in parts])),
        detail=" ".join(f"{p.name}={p.p_value:.3f}" for p in parts),
    )
