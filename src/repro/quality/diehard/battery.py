"""The 15-test DIEHARD battery (Table II of the paper).

Test list and grouping follow Marsaglia's distribution: the two big
matrix-rank sizes form one entry and the OPSO/OQSO/DNA monkey trio forms
one entry, giving exactly 15 entries:

 1. birthday spacings            9. count-the-1s (stream)
 2. overlapping 5-permutation   10. count-the-1s (specific bytes)
 3. binary rank 31x31 & 32x32   11. parking lot
 4. binary rank 6x8             12. minimum distance
 5. bitstream                   13. 3-D spheres
 6. monkey OPSO+OQSO+DNA        14. squeeze
 7. overlapping sums            15. craps
 8. runs

Sample sizes are scaled relative to the originals (documented per test
module) so a full battery runs in minutes in pure NumPy while still
flunking structurally weak generators.  ``scale`` multiplies the default
sizes for heavier runs.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.baselines.base import PRNG
from repro.quality.diehard.birthday import birthday_spacings
from repro.quality.diehard.count1s import count_the_ones_bytes, count_the_ones_stream
from repro.quality.diehard.geometry import minimum_distance, parking_lot, spheres_3d
from repro.quality.diehard.monkey import bitstream_test, monkey_group
from repro.quality.diehard.operm5 import operm5_test
from repro.quality.diehard.ranks import rank_test_group
from repro.quality.diehard.squeeze import squeeze_test
from repro.quality.diehard.sums_runs_craps import (
    craps_test,
    overlapping_sums,
    runs_test,
)
from repro.obs.trace import span
from repro.quality.stats import BatteryResult, record_test_observation

__all__ = ["run_diehard", "DIEHARD_TEST_NAMES"]

DIEHARD_TEST_NAMES = [
    "birthday spacings",
    "overlapping 5-permutation",
    "binary rank 31x31 & 32x32",
    "binary rank 6x8",
    "bitstream",
    "monkey OPSO+OQSO+DNA",
    "overlapping sums",
    "runs",
    "count-the-1s stream",
    "count-the-1s bytes",
    "parking lot",
    "minimum distance",
    "3D spheres",
    "squeeze",
    "craps",
]


def run_diehard(
    gen: PRNG,
    scale: float = 1.0,
    progress: Optional[Callable[[str], None]] = None,
) -> BatteryResult:
    """Run all 15 DIEHARD entries against ``gen``.

    Parameters
    ----------
    gen : PRNG
        The generator under test (consumed; reseed before reuse).
    scale : float
        Multiplier on per-test sample sizes (1.0 = defaults).
    progress : callable, optional
        Called with each test name before it runs.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def s(n: int) -> int:
        return max(1, int(n * scale))

    battery = BatteryResult(generator=gen.name, battery="DIEHARD")

    def run(name: str, fn: Callable) -> None:
        if progress is not None:
            progress(name)
        start = time.perf_counter()
        with span("quality.test", battery="DIEHARD", test=name):
            result = fn()
        record_test_observation("DIEHARD", result, time.perf_counter() - start)
        battery.add(result)

    run("birthday spacings", lambda: birthday_spacings(gen, n_samples=s(250)))
    run("operm5", lambda: operm5_test(gen, n_groups=s(120_000)))

    if progress is not None:
        progress("binary ranks")
    start = time.perf_counter()
    with span("quality.test", battery="DIEHARD", test="binary ranks"):
        big, small = rank_test_group(gen, n_matrices=s(2000))
    record_test_observation(
        "DIEHARD", [big, small], time.perf_counter() - start
    )
    battery.add(big)
    battery.add(small)

    run("bitstream", lambda: bitstream_test(gen))
    run("monkey", lambda: monkey_group(gen))
    run("overlapping sums", lambda: overlapping_sums(gen, n_sums=s(2000)))
    run("runs", lambda: runs_test(gen, n=s(100_000)))
    run("count-the-1s stream",
        lambda: count_the_ones_stream(gen, n_bytes=s(256_000)))
    run("count-the-1s bytes",
        lambda: count_the_ones_bytes(gen, n_words=s(256_000)))
    run("parking lot", lambda: parking_lot(gen, n_rounds=max(2, s(5))))
    run("minimum distance", lambda: minimum_distance(gen, n_rounds=s(25)))
    run("3D spheres", lambda: spheres_3d(gen, n_rounds=s(25)))
    run("squeeze", lambda: squeeze_test(gen, n_reps=s(100_000)))
    run("craps", lambda: craps_test(gen, n_games=s(200_000)))

    return battery
