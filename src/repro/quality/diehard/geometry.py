"""DIEHARD tests 9-11: parking lot, minimum distance, 3-D spheres.

Geometric tests on points placed in a square/cube using consecutive
uniforms from the generator:

* **parking lot** -- sequentially "park" cars in a 100x100 square; a car
  parks if it is at max-norm distance >= 1 from every parked car.  After
  12,000 attempts the parked count is ~ N(3523, ~25) (mean is DIEHARD's
  3523; sigma re-calibrated empirically for this exact acceptance rule --
  see tests).
* **minimum distance** -- 8000 points in a 10000x10000 square; the
  squared minimum pairwise distance is ~ Exp(mean 0.995).  Repeated
  ``n_rounds`` times, the exponential CDF transforms are KS-tested.
* **3-D spheres** -- 4000 points in [0, 1000]^3; the cube of the minimum
  pairwise distance is ~ Exp(mean 30).  Same KS reduction.
"""

from __future__ import annotations

import numpy as np
import scipy.spatial as spatial

from repro.baselines.base import PRNG
from repro.quality.stats import TestResult, fisher_combine, ks_uniform, normal_pvalue

__all__ = ["parking_lot", "minimum_distance", "spheres_3d"]


#: Parked-count distribution for 12000 max-norm attempts (mean from
#: DIEHARD; sigma calibrated over reference-RNG trials of this code path).
_PARKING_MEAN = 3523.0
_PARKING_SIGMA = 25.0


def parking_lot(gen: PRNG, n_attempts: int = 12_000, n_rounds: int = 5
                ) -> TestResult:
    """Sequential random parking; parked count vs N(3523, 25)."""
    zs = []
    for _ in range(n_rounds):
        pts = gen.uniform(2 * n_attempts).reshape(n_attempts, 2) * 100.0
        # Sequential acceptance with a unit-cell spatial hash: a candidate
        # parks iff no already-parked car is within max-norm distance 1.
        count = 0
        grid: dict = {}

        def far_enough(p) -> bool:
            cx, cy = int(p[0]), int(p[1])
            for gx in range(cx - 1, cx + 2):
                for gy in range(cy - 1, cy + 2):
                    for q in grid.get((gx, gy), ()):
                        if abs(p[0] - q[0]) < 1.0 and abs(p[1] - q[1]) < 1.0:
                            return False
            return True

        for p in pts:
            if far_enough(p):
                grid.setdefault((int(p[0]), int(p[1])), []).append(p)
                count += 1
        zs.append((count - _PARKING_MEAN) / _PARKING_SIGMA)
    ps = [normal_pvalue(z) for z in zs]
    return TestResult(
        name="parking lot",
        p_value=fisher_combine(ps),
        statistic=float(np.mean(zs)),
        detail=f"mean parked z={np.mean(zs):+.2f} over {n_rounds} rounds",
    )


def minimum_distance(gen: PRNG, n_points: int = 8000, n_rounds: int = 25
                     ) -> TestResult:
    """KS test of exponentialized minimum pairwise distances in 2-D."""
    us = []
    for _ in range(n_rounds):
        pts = gen.uniform(2 * n_points).reshape(n_points, 2) * 10_000.0
        tree = spatial.cKDTree(pts)
        d, _ = tree.query(pts, k=2)
        dmin = float(d[:, 1].min())
        us.append(1.0 - np.exp(-(dmin**2) / 0.995))
    d_stat, p = ks_uniform(us)
    return TestResult(
        name="minimum distance",
        p_value=p,
        statistic=d_stat,
        detail=f"{n_rounds} rounds of {n_points} points",
    )


def spheres_3d(gen: PRNG, n_points: int = 4000, n_rounds: int = 25) -> TestResult:
    """KS test of exponentialized cubed minimum distances in 3-D."""
    us = []
    for _ in range(n_rounds):
        pts = gen.uniform(3 * n_points).reshape(n_points, 3) * 1000.0
        tree = spatial.cKDTree(pts)
        d, _ = tree.query(pts, k=2)
        r3 = float(d[:, 1].min()) ** 3
        us.append(1.0 - np.exp(-r3 / 30.0))
    d_stat, p = ks_uniform(us)
    return TestResult(
        name="3D spheres",
        p_value=p,
        statistic=d_stat,
        detail=f"{n_rounds} rounds of {n_points} points",
    )
