"""Durable append-only session journal: the server's crash-recovery log.

The serving layer is **crash-only**: there is no special shutdown path a
crash can skip.  Everything a restarted server needs to resume its
sessions byte-identically -- the seed-derivation inputs (session id and
lane count; the master seed comes from config) and the last *acked* word
offset of each stream -- is appended to this journal as it happens, and
startup always begins with the same recovery scan whether the previous
process exited cleanly or died under ``kill -9``.

Record framing (all integers big-endian)::

    +----------------+----------------+---------------------+
    | length (u32)   | CRC32 (u32)    | payload (JSON utf-8)|
    +----------------+----------------+---------------------+

Appends are atomic-enough by construction: a record is written with one
``write`` call and (by default) ``fsync``'d before the server sends the
values it covers.  A crash can therefore leave at most a *torn tail* --
a partial or corrupt final record -- never a hole in the middle.
Recovery scans records from the start, stops at the first frame whose
length, CRC, or JSON does not check out, truncates the torn bytes, and
replays the survivors into a :class:`JournalState`.

On every open the journal is also **compacted**: the replayed state is
rewritten as one ``session`` + one ``ack`` record per live stream into a
temporary file that replaces the old journal via ``os.replace`` (atomic
on POSIX), so the log stays proportional to the number of sessions, not
the number of fetches ever served.

Record types::

    {"type": "session", "session": <id>, "lanes": <int>}
    {"type": "ack", "session": <id>, "offset": <int>}
    {"type": "shutdown"}

``shutdown`` is a clean-drain marker: purely informational (recovery is
identical either way), it lets operators and the recovery drill tell a
graceful SIGTERM drain from a crash.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["JournalState", "SessionJournal", "read_journal"]

_HEADER = struct.Struct("!II")  # payload length, CRC32(payload)

#: A journal record is a small JSON object; anything bigger is corrupt.
_MAX_RECORD_BYTES = 64 * 1024


@dataclass
class JournalState:
    """What a recovery scan learned from a journal file."""

    #: ``session id -> {"lanes": int, "offset": int}`` for every stream
    #: the journal knows about (offset 0 if never acked).
    sessions: Dict[str, dict] = field(default_factory=dict)
    #: The last record was a clean-shutdown marker.
    clean_shutdown: bool = False
    #: Records successfully replayed.
    records: int = 0
    #: Bytes of torn/corrupt tail dropped by the scan (0 = clean file).
    truncated_bytes: int = 0

    def apply(self, doc: dict) -> None:
        kind = doc.get("type")
        if kind == "session":
            sid = str(doc["session"])
            entry = self.sessions.setdefault(sid, {"lanes": 0, "offset": 0})
            entry["lanes"] = int(doc["lanes"])
            self.clean_shutdown = False
        elif kind == "ack":
            sid = str(doc["session"])
            entry = self.sessions.setdefault(sid, {"lanes": 0, "offset": 0})
            entry["offset"] = int(doc["offset"])
            self.clean_shutdown = False
        elif kind == "shutdown":
            self.clean_shutdown = True
        # Unknown record types are skipped, not fatal: an older server
        # must be able to recover a newer journal's sessions.
        self.records += 1


def _encode(doc: dict) -> bytes:
    payload = json.dumps(doc, sort_keys=True).encode("utf-8")
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _scan(path: str) -> "tuple[JournalState, int]":
    """Replay ``path``; ``(state, good_bytes)`` up to the torn tail."""
    state = JournalState()
    if not os.path.exists(path):
        return state, 0
    with open(path, "rb") as fh:
        data = fh.read()
    pos = 0
    while pos < len(data):
        header = data[pos:pos + _HEADER.size]
        if len(header) < _HEADER.size:
            break  # torn mid-header
        length, crc = _HEADER.unpack(header)
        if not 0 < length <= _MAX_RECORD_BYTES:
            break  # garbage length: corrupt from here on
        payload = data[pos + _HEADER.size:pos + _HEADER.size + length]
        if len(payload) < length:
            break  # torn mid-payload
        if zlib.crc32(payload) != crc:
            break  # bit rot or a torn rewrite
        try:
            doc = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if not isinstance(doc, dict):
            break
        state.apply(doc)
        pos += _HEADER.size + length
    state.truncated_bytes = len(data) - pos
    return state, pos


def read_journal(path: str) -> JournalState:
    """Recovery scan without side effects (inspection and tests)."""
    state, _ = _scan(path)
    return state


class SessionJournal:
    """Append-only journal handle owned by one server process.

    Open with :meth:`open`, which performs the recovery scan, drops any
    torn tail, and compacts the surviving state into a fresh file.  The
    recovered :class:`JournalState` is on :attr:`recovered`.
    """

    def __init__(self, path: str, fh, recovered: JournalState,
                 fsync: bool = True):
        self.path = path
        self._fh = fh
        self.recovered = recovered
        self.fsync = fsync
        self.appends = 0

    @classmethod
    def open(cls, path: str, fsync: bool = True) -> "SessionJournal":
        state, _ = _scan(path)
        # Compact: rewrite the live state, atomically replace the old
        # file (which may carry a torn tail and thousands of stale acks).
        tmp = path + ".compact"
        with open(tmp, "wb") as out:
            for sid, entry in sorted(state.sessions.items()):
                out.write(_encode(
                    {"type": "session", "session": sid,
                     "lanes": entry["lanes"]}
                ))
                if entry["offset"]:
                    out.write(_encode(
                        {"type": "ack", "session": sid,
                         "offset": entry["offset"]}
                    ))
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, path)
        # fsync the directory so the replace itself survives a crash.
        dirfd = os.open(os.path.dirname(os.path.abspath(path)), os.O_RDONLY)
        try:
            os.fsync(dirfd)
        finally:
            os.close(dirfd)
        fh = open(path, "ab")
        return cls(path, fh, state, fsync=fsync)

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------

    def _append(self, doc: dict) -> None:
        if self._fh is None:
            raise ValueError("journal is closed")
        self._fh.write(_encode(doc))
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.appends += 1

    def log_session(self, session_id: str, lanes: int) -> None:
        """A stream came into existence (its seed-derivation inputs)."""
        self._append(
            {"type": "session", "session": session_id, "lanes": int(lanes)}
        )

    def log_ack(self, session_id: str, offset: int) -> None:
        """``offset`` words of this stream have been delivered."""
        self._append(
            {"type": "ack", "session": session_id, "offset": int(offset)}
        )

    def log_shutdown(self) -> None:
        """Clean-drain marker (informational; recovery ignores it)."""
        self._append({"type": "shutdown"})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SessionJournal(path={self.path!r}, "
            f"sessions={len(self.recovered.sessions)}, "
            f"appends={self.appends})"
        )
