"""Per-client expander streams: the service's seeding and identity model.

Every client session names itself with an opaque string id.  The id is
hashed (SHA-256, truncated to 64 bits) to a **stream index**, and the
index is pushed through :func:`repro.core.streams.derive_seed` against
the server's master seed -- the same SplitMix64 derivation
``spawn_streams`` uses for in-process substreams -- so:

* two distinct session ids get independent walker banks (disjoint walks
  on the expander, never a shared feed);
* the same ``(master_seed, session_id)`` pair reproduces the identical
  stream on any server, including across a restart (the index depends
  only on the id, not on arrival order);
* the derivation is collision-resistant at service scale (the 64-bit
  index space is bijectively mixed per master seed; tests check 10k ids
  empirically).

Each :class:`SessionStream` owns a
:class:`~repro.resilience.supervised.SupervisedFeed` chain (primary
feed, an independent SplitMix64 fallback, OS entropy last) in front of
an :class:`~repro.core.parallel.AddressableExpanderPRNG` walker bank,
so a dying bit source degrades the session instead of killing it;
health is surfaced through the ``STATUS`` protocol op.  Because the
bank is offset-addressable, a session can :meth:`~SessionStream.seek`
to any word offset in O(log offset) -- the primitive behind the
``RESUME`` protocol op and crash recovery from the session journal.
"""

from __future__ import annotations

import hashlib
import threading
from collections import deque
from typing import Callable, List, Optional

import numpy as np

from repro.bitsource.base import BitSource
from repro.bitsource.counter import SplitMix64Source
from repro.bitsource.os_entropy import OsEntropySource
from repro.core.parallel import AddressableExpanderPRNG
from repro.core.streams import derive_seed
from repro.dist import DistStream
from repro.resilience.supervised import FeedHealth, RetryPolicy, SupervisedFeed

__all__ = [
    "DEFAULT_SESSION_LANES",
    "SERVE_RETRY_POLICY",
    "session_index",
    "session_seed",
    "SessionStream",
]

#: Walker lanes per session: small enough that hundreds of sessions are
#: cheap to hold, large enough that generation stays vectorized.
DEFAULT_SESSION_LANES = 64

#: Retry budget tuned for a serving worker: fast, bounded backoff so a
#: flaky feed never stalls a batch for long.
SERVE_RETRY_POLICY = RetryPolicy(
    max_retries=2, backoff_base_s=0.001, backoff_cap_s=0.01
)


def session_index(session_id: str) -> int:
    """Stable 64-bit stream index of a session id (SHA-256 truncation).

    Depends only on the id string, so it is identical across processes,
    restarts, and Python hash randomization.
    """
    digest = hashlib.sha256(session_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def session_seed(master_seed: int, session_id: str) -> int:
    """The feed seed of ``session_id``'s stream under ``master_seed``."""
    return derive_seed(master_seed, session_index(session_id))


class SessionStream:
    """One client's independent, supervised expander stream.

    Parameters
    ----------
    session_id : str
        Opaque client-chosen identity; determines the stream.
    master_seed : int
        The server's master seed.
    lanes : int
        Walker lanes in the session's bank (values depend on it, so it
        is part of the stream's identity alongside the seed).
    source_factory : callable, optional
        ``seed -> BitSource`` for the *primary* feed; defaults to
        :class:`SplitMix64Source`.  Tests inject fault wrappers here.
    failover : bool
        Install the fallback chain (independent SplitMix64 substream,
        then OS entropy) behind the primary.
    retry_policy : RetryPolicy, optional
        Supervision budget; defaults to :data:`SERVE_RETRY_POLICY`.
    engine : ShardedEngine, optional
        Draw from a :class:`~repro.engine.sharded.ShardedEngine` shard
        pool instead of an in-process walker bank.  The engine worker
        builds the *same* supervised feed chain from the same session
        seed, so the values a client sees are byte-identical either
        way; ``source_factory``/``failover``/``retry_policy`` are then
        configured on the engine, not here.
    sentinel : StreamSentinel, optional
        A :class:`repro.obs.sentinel.StreamSentinel` watching this
        session's served words.  It only *reads* (and copies what it
        samples), so the stream stays byte-identical; its sticky
        verdict folds into :attr:`health` (STAT_SUSPECT -> DEGRADED,
        STAT_BAD -> FAILED) and :meth:`describe`.
    readahead_max : int
        Word cap of the session's readahead buffer.  ``0`` (the
        default) disables readahead.  The buffer holds the *next* words
        of the same stream, prefilled by the batching planner, so hot
        sessions answer from memory; how much is prefetched is a pure
        function of cumulative demand (:meth:`plan_fill`), and the
        served bytes are identical with readahead on or off --
        ``words_served`` stays the only resume coordinate.
    backend : str, optional
        Array backend name for the in-process walker bank (see
        :mod:`repro.backend`); ignored on the engine path, where the
        engine's own config picks the workers' backend.
    """

    def __init__(
        self,
        session_id: str,
        master_seed: int,
        lanes: int = DEFAULT_SESSION_LANES,
        source_factory: Optional[Callable[[int], BitSource]] = None,
        failover: bool = True,
        retry_policy: Optional[RetryPolicy] = None,
        engine=None,
        sentinel=None,
        readahead_max: int = 0,
        backend: Optional[str] = None,
    ):
        self.session_id = session_id
        self.index = session_index(session_id)
        self.seed = derive_seed(master_seed, self.index)
        self.lanes = lanes
        self.engine = engine
        if engine is not None:
            self.supervisor = None
            self.prng = None
        else:
            factory = source_factory or SplitMix64Source
            chain: List[BitSource] = [factory(self.seed)]
            if failover:
                chain.append(SplitMix64Source(derive_seed(self.seed, 1)))
                chain.append(OsEntropySource())
            self.supervisor = SupervisedFeed(
                chain,
                policy=retry_policy or SERVE_RETRY_POLICY,
                jitter_seed=self.seed,
            )
            self.prng = AddressableExpanderPRNG(
                num_threads=lanes, bit_source=self.supervisor,
                backend=backend,
            )
            # The addressable bank draws lazily, so probe the feed here
            # and rewind: a fatal feed surfaces its structured error at
            # construction (never a half-built session), without moving
            # the stream position.
            if self.supervisor.seekable:
                self.supervisor.words64(1)
                self.supervisor.seek(0)
        self.sentinel = sentinel
        #: Serializes generation so the worker pool can run batches from
        #: many sessions concurrently without interleaving one stream.
        self.lock = threading.Lock()
        self.words_served = 0
        self.requests = 0
        self.variates_served = 0
        if readahead_max < 0:
            raise ValueError(
                f"readahead_max must be non-negative, got {readahead_max}"
            )
        self.readahead_max = readahead_max
        #: Cumulative words demanded (requested or estimated by the
        #: planner); drives the demand-pure readahead size.
        self.demand_words = 0
        # Readahead buffer: FIFO of uint64 chunks holding the words
        # [words_served, words_served + _ra_buffered) of this stream.
        # For in-process banks the invariant is prng.tell() ==
        # words_served + _ra_buffered (the bank sits at the end of the
        # buffer); engine fetches ship absolute offsets, so no engine-
        # side state depends on the buffer at all.
        self._ra_chunks: deque = deque()
        self._ra_buffered = 0
        # Typed variates ride the *same* word stream: the DistStream
        # draws through _draw_words_locked, so raw FETCHes and VARIATE
        # ops advance one shared word position and words_served stays
        # the single resume coordinate for both.
        self.dist = DistStream(self._draw_words_locked)

    def _fetch_direct(self, offset: int, n: int) -> np.ndarray:
        """Words ``[offset, offset + n)`` straight from the source."""
        if self.engine is not None:
            # The session's own position is the source of truth:
            # shipping it as an absolute offset makes every fetch
            # exact even across engine worker restarts and seeks.
            return self.engine.fetch_stream(
                self.seed, self.lanes, n, offset=offset
            )
        # Fresh buffer filled in place: the caller owns it outright
        # (the serve framing path byte-swaps it in place for the wire).
        if self.prng.tell() != offset:
            self.prng.seek(offset)
        out = np.empty(n, dtype=np.uint64)
        self.prng.generate_into(out)
        return out

    def _take_words(self, n: int) -> np.ndarray:
        """The next ``n`` words, buffer first, source for the rest."""
        if not self._ra_buffered:
            return self._fetch_direct(self.words_served, n)
        chunk = self._ra_chunks[0]
        if chunk.size >= n:
            # Hot path: one buffered chunk covers the request -- serve
            # a zero-copy view (disjoint from the rest of the buffer,
            # so the wire path's in-place byteswap is safe).
            if chunk.size == n:
                self._ra_chunks.popleft()
            else:
                self._ra_chunks[0] = chunk[n:]
            self._ra_buffered -= n
            return chunk[:n]
        out = np.empty(n, dtype=np.uint64)
        pos = 0
        while self._ra_chunks and pos < n:
            chunk = self._ra_chunks[0]
            take = min(chunk.size, n - pos)
            out[pos:pos + take] = chunk[:take]
            if take == chunk.size:
                self._ra_chunks.popleft()
            else:
                self._ra_chunks[0] = chunk[take:]
            self._ra_buffered -= take
            pos += take
        if pos < n:
            # Buffer underrun (variate rejection ate more words than
            # the planner estimated, or readahead is off): the tail
            # comes straight from the source at its absolute offset --
            # correctness never depends on the estimate.
            out[pos:] = self._fetch_direct(self.words_served + pos, n - pos)
        return out

    def _draw_words_locked(self, n: int) -> np.ndarray:
        """The next ``n`` words; the caller must hold :attr:`lock`.

        One code path for every op type: readahead buffer, engine or
        in-process bank, sentinel tap, word accounting.
        ``words_served`` is a *word* offset -- the only replay-safe
        coordinate once rejection samplers make words-per-variate
        data-dependent.
        """
        out = self._take_words(n)
        # The sentinel looks *before* the framing path byte-swaps
        # the buffer; it copies what it samples and never mutates,
        # so served values are unaffected.  It observes words in
        # served order whether they came from buffer or source.
        if self.sentinel is not None:
            self.sentinel.observe(out)
        self.words_served += n
        return out

    # -- readahead (driven by the batching planner) --------------------

    def _readahead_extra(self) -> int:
        """Extra words to prefetch past the current demand.

        A pure function of cumulative demand (like the PR 6 prefetch
        schedule): the next power of two of ``demand_words``, capped at
        :attr:`readahead_max`.  Purity keeps prefetch *volume*
        deterministic for a given request history; the served bytes
        never depend on it either way.
        """
        if self.readahead_max <= 0 or self.demand_words <= 0:
            return 0
        return min(
            self.readahead_max, 1 << (self.demand_words - 1).bit_length()
        )

    def plan_fill(self, demand: int) -> int:
        """Words the planner should prefill for ``demand`` more words.

        Caller must hold :attr:`lock`.  Records the demand, and returns
        ``0`` when the buffer already covers it (a readahead *hit*);
        otherwise the shortfall plus the demand-pure readahead margin.
        The fill must be fetched at :meth:`fill_offset` and handed back
        through :meth:`push_readahead` (or :meth:`fill_local`).
        """
        if demand < 0:
            raise ValueError(f"demand must be non-negative, got {demand}")
        self.demand_words += demand
        need = demand - self._ra_buffered
        if need <= 0:
            return 0
        return need + self._readahead_extra()

    def fill_offset(self) -> int:
        """Absolute word offset the next buffer fill starts at."""
        return self.words_served + self._ra_buffered

    def push_readahead(self, words: np.ndarray) -> None:
        """Append prefetched words (caller must hold :attr:`lock`).

        ``words`` must be the stream's words starting exactly at
        :meth:`fill_offset` -- the batching planner guarantees this by
        fetching the span ``(fill_offset, n)`` it just planned.
        """
        if words.size:
            self._ra_chunks.append(words)
            self._ra_buffered += words.size

    def fill_local(self, n: int) -> None:
        """Prefill ``n`` words from the in-process bank (lock held)."""
        if self.prng is None:
            raise RuntimeError("fill_local needs an in-process bank")
        if n <= 0:
            return
        offset = self.fill_offset()
        if self.prng.tell() != offset:
            self.prng.seek(offset)
        out = np.empty(n, dtype=np.uint64)
        self.prng.generate_into(out)
        self.push_readahead(out)

    @property
    def readahead_buffered(self) -> int:
        """Words currently sitting in the readahead buffer."""
        return self._ra_buffered

    # -- client-visible ops --------------------------------------------

    def generate_locked(self, n: int) -> np.ndarray:
        """:meth:`generate` body; the caller must hold :attr:`lock`.

        The batching executor serves whole batches while holding the
        locks of every session involved, so the public wrapper's
        ``with self.lock`` cannot be reused (``threading.Lock`` is not
        reentrant) -- this is the entry point it calls instead.
        """
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        out = self._draw_words_locked(n)
        self.requests += 1
        return out

    def generate(self, n: int) -> np.ndarray:
        """The next ``n`` numbers of this session's stream (thread-safe).

        The session's stream is *one* well-defined sequence (lane-major
        round outputs) and fetches slice it, so how a client sizes its
        requests cannot change which numbers it sees -- fetching
        10 + 1 + 53 equals fetching 64.  Round-remainder buffering lives
        in :meth:`ParallelExpanderPRNG.generate` (the core stream
        contract); this wrapper only adds locking and accounting.
        """
        with self.lock:
            return self.generate_locked(n)

    def variates_locked(self, dist: str, n: int, params=None):
        """:meth:`variates` body; the caller must hold :attr:`lock`."""
        values = self.dist.sample(dist, n, params)
        self.requests += 1
        self.variates_served += len(values)
        return values, self.words_served

    def variates(self, dist: str, n: int, params=None):
        """``n`` typed variates off this session's word stream.

        Returns ``(values, words_served_after)``.  Only the zero-carry
        samplers in :data:`repro.dist.SERVE_DISTRIBUTIONS` are
        reachable, so after every op the stream holds no buffered
        variates and the returned word offset is a clean resume
        boundary: a client that reconnects ``RESUME``\\ s there and
        re-requests, and the continuation is byte-identical (the journal
        keeps recording plain word-offset acks -- no new record types).
        """
        with self.lock:
            return self.variates_locked(dist, n, params)

    def seek(self, word_offset: int) -> None:
        """Reposition the stream at an absolute word offset (thread-safe).

        O(log offset) via the bank's jump-ahead; the next
        :meth:`generate` returns exactly the words a fresh session would
        return after ``word_offset`` draws.  This is the ``RESUME``
        primitive: a restarted server seeks recovered sessions to their
        journaled offsets, and a reconnecting client can rewind to the
        last word it actually received for exactly-once delivery.
        """
        if word_offset < 0:
            raise ValueError(
                f"word offset must be non-negative, got {word_offset}"
            )
        with self.lock:
            if self.prng is not None:
                self.prng.seek(word_offset)
            # Engine-backed sessions ship absolute offsets per fetch, so
            # updating the position is all a seek needs to do there.
            self.words_served = word_offset
            # The readahead buffer describes the pre-seek position;
            # drop it (it was never journaled or acked, so exactly-once
            # accounting is untouched).
            self._ra_chunks.clear()
            self._ra_buffered = 0
            # Served samplers are zero-carry so this is belt-and-braces,
            # but any buffered variate describes the pre-seek stream.
            self.dist.reset_carry()

    @property
    def feed_health(self) -> str:
        """Resilience-layer health alone (ignores the sentinel)."""
        if self.engine is not None:
            return self.engine.health
        return self.supervisor.health.name

    @property
    def health(self) -> str:
        """``OK`` / ``DEGRADED`` / ``FAILED`` -- the worse of the
        supervised feed (or shard pool) and the statistical sentinel.

        A stream can be resilience-healthy yet statistically bad (a
        biased-but-alive feed); folding the sentinel verdict in here is
        what makes serve health checks fail on such streams.
        """
        worst = FeedHealth[self.feed_health]
        if self.sentinel is not None:
            worst = max(worst, FeedHealth[self.sentinel.health_name()])
        return worst.name

    def describe(self) -> dict:
        """STATUS-op view of the session (no seed material exposed)."""
        if self.engine is not None:
            active = f"engine-shard-{self.engine.stream_shard(self.seed)}"
        else:
            active = self.supervisor.active_source.name
        doc = {
            "session": self.session_id,
            "stream_index": self.index,
            "requests": self.requests,
            "words_served": self.words_served,
            "variates_served": self.variates_served,
            "readahead_buffered": self._ra_buffered,
            "health": self.health,
            "feed_health": self.feed_health,
            "active_source": active,
        }
        if self.sentinel is not None:
            doc["sentinel"] = self.sentinel.state()
        return doc

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"SessionStream(id={self.session_id!r}, index={self.index:#x}, "
            f"health={self.health})"
        )
