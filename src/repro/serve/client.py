"""Clients for the on-demand RNG service: blocking and asyncio flavours.

:class:`ServeClient` is the plain-socket blocking client -- the one an
application thread, the ``repro fetch`` CLI, and the throughput
benchmark use.  :class:`AsyncServeClient` is the same protocol over
``asyncio`` streams for consumers already living in an event loop.

Both speak the binary protocol of :mod:`repro.serve.protocol`; a
``BUSY`` response surfaces as :class:`ServerBusyError` (or is retried
with deterministic, capped exponential backoff when ``retries`` is
given), and an ``ERROR`` response raises :class:`ServeError` with the
server's message.  A failure to reach the server at all raises
:class:`ConnectError` -- one clear exception type, so callers (and the
``repro fetch`` CLI) can turn "nothing is listening there" into a
one-line error instead of a traceback.

Exactly-once delivery across reconnects: the client counts every word
it has actually received (:attr:`ServeClient.words_received`) and
:meth:`ServeClient.resume` reconnects with a ``RESUME`` frame at that
offset.  The server seeks the session's stream there in O(log offset),
so the resumed stream continues byte-identically -- no word is replayed
and none is skipped, even if the server was ``kill -9``'d mid-fetch.

    from repro.serve import ServeClient

    with ServeClient("127.0.0.1", 8731, session="worker-3") as client:
        values = client.fetch(1000)          # numpy uint64, on demand
        health = client.status()["server"]["health"]
"""

from __future__ import annotations

import asyncio
import secrets
import socket
import time
from typing import Optional

import numpy as np

from repro.serve import protocol as proto

__all__ = [
    "ServeClient",
    "AsyncServeClient",
    "ConnectError",
    "DEFAULT_TIMEOUT_S",
]

#: Socket timeout: far above any sane batch window, far below a hang.
DEFAULT_TIMEOUT_S = 30.0

#: Ceiling on one BUSY-retry sleep: backoff is exponential but capped,
#: so a long retry budget degrades to steady polling, not minute sleeps.
DEFAULT_BACKOFF_CAP_S = 2.0


class ConnectError(proto.ServeError):
    """The server could not be reached (refused, reset, unresolvable)."""


def _new_session_id() -> str:
    return "anon-" + secrets.token_hex(8)


def _connect(host: str, port: int, timeout: float) -> socket.socket:
    try:
        return socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ConnectError(
            f"cannot connect to {host}:{port}: {exc}"
        ) from exc


def _backoff_delay(base_s: float, cap_s: float, attempt: int) -> float:
    """Deterministic capped exponential backoff (no jitter: the serve
    layer already randomizes nothing, and reproducible retry timing is
    worth more to these tests than thundering-herd smoothing)."""
    return min(cap_s, base_s * 2 ** attempt)


def _handle_response(opcode: int, payload: bytes) -> np.ndarray:
    """Map a FETCH response frame to values or the right exception."""
    if opcode == proto.OP_VALUES:
        return proto.decode_values(payload)
    if opcode == proto.OP_BUSY:
        raise proto.ServerBusyError(payload.decode("utf-8", "replace"))
    if opcode == proto.OP_ERROR:
        raise proto.ServeError(payload.decode("utf-8", "replace"))
    raise proto.ProtocolError(f"unexpected response opcode {opcode:#x}")


def _handle_variates(opcode: int, payload: bytes, dtype):
    """Map a VARIATE response frame to ``(dist, words, values)`` or raise."""
    if opcode == proto.OP_VARIATES:
        return proto.decode_variates(payload, dtype=dtype)
    if opcode == proto.OP_BUSY:
        raise proto.ServerBusyError(payload.decode("utf-8", "replace"))
    if opcode == proto.OP_ERROR:
        raise proto.ServeError(payload.decode("utf-8", "replace"))
    raise proto.ProtocolError(f"unexpected response opcode {opcode:#x}")


def _expect_json(opcode: int, payload: bytes) -> dict:
    if opcode == proto.OP_ERROR:
        raise proto.ServeError(payload.decode("utf-8", "replace"))
    if opcode != proto.OP_JSON:
        raise proto.ProtocolError(f"expected JSON frame, got {opcode:#x}")
    return proto.decode_json_payload(payload)


class ServeClient:
    """Blocking client over a plain TCP socket.

    Parameters
    ----------
    host, port : str, int
        Where the server listens.
    session : str, optional
        Stream identity; the same ``(master_seed, session)`` pair always
        yields the same stream.  Defaults to a random one-off id.
    timeout : float
        Socket deadline for connect and each response.
    retries, backoff_s, backoff_cap_s : int, float, float
        ``fetch`` retry budget on ``BUSY``: exponential backoff from
        ``backoff_s`` capped at ``backoff_cap_s`` (deterministic --
        attempt ``k`` always sleeps ``min(cap, base * 2**k)``);
        ``retries=0`` surfaces ``BUSY`` as :class:`ServerBusyError`.

    Raises
    ------
    ConnectError
        Nothing is listening at ``(host, port)`` (or the connection was
        refused/reset during the handshake).
    """

    def __init__(
        self,
        host: str,
        port: int,
        session: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT_S,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
    ):
        self.host = host
        self.port = port
        self.timeout = float(timeout)
        self.session = session or _new_session_id()
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        #: Words this client has actually received -- the resume offset.
        self.words_received = 0
        self._sock = _connect(host, port, self.timeout)
        self.hello_info = self._roundtrip_json(proto.pack_hello(self.session))
        self.stream_index = self.hello_info.get("stream_index")

    # -- plumbing ------------------------------------------------------

    def _roundtrip(self, frame: bytes):
        try:
            self._sock.sendall(frame)
            return proto.read_frame_socket(self._sock)
        except ConnectionError as exc:
            raise ConnectError(
                f"connection to {self.host}:{self.port} lost: {exc}"
            ) from exc

    def _roundtrip_json(self, frame: bytes) -> dict:
        return _expect_json(*self._roundtrip(frame))

    # -- API -----------------------------------------------------------

    def fetch(self, n: int) -> np.ndarray:
        """The next ``n`` numbers of this session's stream."""
        attempt = 0
        while True:
            try:
                values = _handle_response(
                    *self._roundtrip(proto.pack_fetch(n))
                )
                self.words_received += len(values)
                return values
            except proto.ServerBusyError:
                if attempt >= self.retries:
                    raise
                time.sleep(
                    _backoff_delay(self.backoff_s, self.backoff_cap_s,
                                   attempt)
                )
                attempt += 1

    def fetch_variates(
        self, dist: str, n: int, **params
    ) -> np.ndarray:
        """``n`` typed variates off this session's word stream.

        ``dist`` is one of ``uniform01``, ``normal(mean=, std=)``,
        ``exponential(rate=)`` or ``integers(lo=, hi=)``.  The response
        carries the session's absolute *word* offset after the op and
        :attr:`words_received` tracks it, so :meth:`resume` after a
        crash lands on the word boundary the server will regenerate
        from -- mixing raw ``fetch`` and typed ``fetch_variates`` on one
        session keeps a single consistent resume coordinate.
        """
        dtype = proto.variate_values_dtype(dist, params)
        frame = proto.pack_variate(dist, n, params)
        attempt = 0
        while True:
            try:
                _, words, values = _handle_variates(
                    *self._roundtrip(frame), dtype=dtype
                )
                self.words_received = words
                return values
            except proto.ServerBusyError:
                if attempt >= self.retries:
                    raise
                time.sleep(
                    _backoff_delay(self.backoff_s, self.backoff_cap_s,
                                   attempt)
                )
                attempt += 1

    def resume(self, offset: Optional[int] = None) -> dict:
        """Reconnect and reposition the stream at ``offset`` (exactly once).

        Defaults to :attr:`words_received` -- the count of words this
        client has actually consumed -- which is the exactly-once point:
        a fetch the dead server generated but never delivered is neither
        replayed nor skipped.  Safe to call whether or not the old
        connection is still alive (the old socket is discarded).  Returns
        the server's resume ack document.
        """
        if offset is None:
            offset = self.words_received
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        try:
            self._sock.close()
        except OSError:
            pass
        self._sock = _connect(self.host, self.port, self.timeout)
        ack = self._roundtrip_json(proto.pack_resume(self.session, offset))
        self.words_received = offset
        return ack

    def random(self, n: int) -> np.ndarray:
        """``n`` uniform floats in [0, 1) (53 significant bits)."""
        w = self.fetch(n)
        return (w >> np.uint64(11)).astype(np.float64) / 9007199254740992.0

    def status(self) -> dict:
        """The server's STATUS document (health, queues, counters)."""
        return self._roundtrip_json(proto.pack_frame(proto.OP_STATUS))

    def bye(self) -> None:
        try:
            self._roundtrip_json(proto.pack_frame(proto.OP_BYE))
        except (proto.ServeError, OSError):
            pass  # goodbye is best-effort

    def close(self) -> None:
        try:
            self.bye()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServeClient:
    """The same protocol over asyncio streams.

    Usage::

        client = await AsyncServeClient.connect(host, port, session="a")
        values = await client.fetch(256)
        await client.close()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session: str,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
    ):
        self._reader = reader
        self._writer = writer
        self.session = session
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.words_received = 0
        self.hello_info: dict = {}
        self.stream_index: Optional[int] = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        session: Optional[str] = None,
        retries: int = 0,
        backoff_s: float = 0.05,
        backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S,
    ) -> "AsyncServeClient":
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except OSError as exc:
            raise ConnectError(
                f"cannot connect to {host}:{port}: {exc}"
            ) from exc
        client = cls(reader, writer, session or _new_session_id(),
                     retries=retries, backoff_s=backoff_s,
                     backoff_cap_s=backoff_cap_s)
        client.hello_info = _expect_json(
            *await client._roundtrip(proto.pack_hello(client.session))
        )
        client.stream_index = client.hello_info.get("stream_index")
        return client

    async def _roundtrip(self, frame: bytes):
        self._writer.write(frame)
        await self._writer.drain()
        return await proto.read_frame(self._reader)

    async def fetch(self, n: int) -> np.ndarray:
        attempt = 0
        while True:
            try:
                values = _handle_response(
                    *await self._roundtrip(proto.pack_fetch(n))
                )
                self.words_received += len(values)
                return values
            except proto.ServerBusyError:
                if attempt >= self.retries:
                    raise
                await asyncio.sleep(
                    _backoff_delay(self.backoff_s, self.backoff_cap_s,
                                   attempt)
                )
                attempt += 1

    async def fetch_variates(self, dist: str, n: int, **params) -> np.ndarray:
        """Async counterpart of :meth:`ServeClient.fetch_variates`."""
        dtype = proto.variate_values_dtype(dist, params)
        frame = proto.pack_variate(dist, n, params)
        attempt = 0
        while True:
            try:
                _, words, values = _handle_variates(
                    *await self._roundtrip(frame), dtype=dtype
                )
                self.words_received = words
                return values
            except proto.ServerBusyError:
                if attempt >= self.retries:
                    raise
                await asyncio.sleep(
                    _backoff_delay(self.backoff_s, self.backoff_cap_s,
                                   attempt)
                )
                attempt += 1

    async def resume(self, offset: Optional[int] = None) -> dict:
        """Reposition this connection's stream (``RESUME`` in place).

        The async client resumes over its *existing* connection -- the
        in-event-loop use case is repositioning, not surviving a dead
        server (reconnect by calling :meth:`connect` again and then
        ``resume``).  Defaults to :attr:`words_received`.
        """
        if offset is None:
            offset = self.words_received
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        ack = _expect_json(
            *await self._roundtrip(proto.pack_resume(self.session, offset))
        )
        self.words_received = offset
        return ack

    async def status(self) -> dict:
        return _expect_json(
            *await self._roundtrip(proto.pack_frame(proto.OP_STATUS))
        )

    async def close(self) -> None:
        try:
            self._writer.write(proto.pack_frame(proto.OP_BYE))
            await self._writer.drain()
            await proto.read_frame(self._reader)
        except (proto.ServeError, ConnectionError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
