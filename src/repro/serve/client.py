"""Clients for the on-demand RNG service: blocking and asyncio flavours.

:class:`ServeClient` is the plain-socket blocking client -- the one an
application thread, the ``repro fetch`` CLI, and the throughput
benchmark use.  :class:`AsyncServeClient` is the same protocol over
``asyncio`` streams for consumers already living in an event loop.

Both speak the binary protocol of :mod:`repro.serve.protocol`; a
``BUSY`` response surfaces as :class:`ServerBusyError` (or is retried
with exponential backoff when ``retries`` is given), and an ``ERROR``
response raises :class:`ServeError` with the server's message.

    from repro.serve import ServeClient

    with ServeClient("127.0.0.1", 8731, session="worker-3") as client:
        values = client.fetch(1000)          # numpy uint64, on demand
        health = client.status()["server"]["health"]
"""

from __future__ import annotations

import asyncio
import secrets
import socket
import time
from typing import Optional

import numpy as np

from repro.serve import protocol as proto

__all__ = ["ServeClient", "AsyncServeClient", "DEFAULT_TIMEOUT_S"]

#: Socket timeout: far above any sane batch window, far below a hang.
DEFAULT_TIMEOUT_S = 30.0


def _new_session_id() -> str:
    return "anon-" + secrets.token_hex(8)


def _handle_response(opcode: int, payload: bytes) -> np.ndarray:
    """Map a FETCH response frame to values or the right exception."""
    if opcode == proto.OP_VALUES:
        return proto.decode_values(payload)
    if opcode == proto.OP_BUSY:
        raise proto.ServerBusyError(payload.decode("utf-8", "replace"))
    if opcode == proto.OP_ERROR:
        raise proto.ServeError(payload.decode("utf-8", "replace"))
    raise proto.ProtocolError(f"unexpected response opcode {opcode:#x}")


def _expect_json(opcode: int, payload: bytes) -> dict:
    if opcode == proto.OP_ERROR:
        raise proto.ServeError(payload.decode("utf-8", "replace"))
    if opcode != proto.OP_JSON:
        raise proto.ProtocolError(f"expected JSON frame, got {opcode:#x}")
    return proto.decode_json_payload(payload)


class ServeClient:
    """Blocking client over a plain TCP socket.

    Parameters
    ----------
    host, port : str, int
        Where the server listens.
    session : str, optional
        Stream identity; the same ``(master_seed, session)`` pair always
        yields the same stream.  Defaults to a random one-off id.
    timeout : float
        Socket deadline for connect and each response.
    retries, backoff_s : int, float
        ``fetch`` retry budget on ``BUSY`` (exponential backoff);
        ``retries=0`` surfaces ``BUSY`` as :class:`ServerBusyError`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        session: Optional[str] = None,
        timeout: float = DEFAULT_TIMEOUT_S,
        retries: int = 0,
        backoff_s: float = 0.05,
    ):
        self.session = session or _new_session_id()
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self.hello_info = self._roundtrip_json(proto.pack_hello(self.session))
        self.stream_index = self.hello_info.get("stream_index")

    # -- plumbing ------------------------------------------------------

    def _roundtrip(self, frame: bytes):
        self._sock.sendall(frame)
        return proto.read_frame_socket(self._sock)

    def _roundtrip_json(self, frame: bytes) -> dict:
        return _expect_json(*self._roundtrip(frame))

    # -- API -----------------------------------------------------------

    def fetch(self, n: int) -> np.ndarray:
        """The next ``n`` numbers of this session's stream."""
        attempt = 0
        while True:
            try:
                return _handle_response(
                    *self._roundtrip(proto.pack_fetch(n))
                )
            except proto.ServerBusyError:
                if attempt >= self.retries:
                    raise
                time.sleep(self.backoff_s * 2 ** attempt)
                attempt += 1

    def random(self, n: int) -> np.ndarray:
        """``n`` uniform floats in [0, 1) (53 significant bits)."""
        w = self.fetch(n)
        return (w >> np.uint64(11)).astype(np.float64) / 9007199254740992.0

    def status(self) -> dict:
        """The server's STATUS document (health, queues, counters)."""
        return self._roundtrip_json(proto.pack_frame(proto.OP_STATUS))

    def bye(self) -> None:
        try:
            self._roundtrip_json(proto.pack_frame(proto.OP_BYE))
        except (proto.ServeError, OSError):
            pass  # goodbye is best-effort

    def close(self) -> None:
        try:
            self.bye()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AsyncServeClient:
    """The same protocol over asyncio streams.

    Usage::

        client = await AsyncServeClient.connect(host, port, session="a")
        values = await client.fetch(256)
        await client.close()
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session: str,
        retries: int = 0,
        backoff_s: float = 0.05,
    ):
        self._reader = reader
        self._writer = writer
        self.session = session
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)
        self.hello_info: dict = {}
        self.stream_index: Optional[int] = None

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        session: Optional[str] = None,
        retries: int = 0,
        backoff_s: float = 0.05,
    ) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer, session or _new_session_id(),
                     retries=retries, backoff_s=backoff_s)
        client.hello_info = _expect_json(
            *await client._roundtrip(proto.pack_hello(client.session))
        )
        client.stream_index = client.hello_info.get("stream_index")
        return client

    async def _roundtrip(self, frame: bytes):
        self._writer.write(frame)
        await self._writer.drain()
        return await proto.read_frame(self._reader)

    async def fetch(self, n: int) -> np.ndarray:
        attempt = 0
        while True:
            try:
                return _handle_response(
                    *await self._roundtrip(proto.pack_fetch(n))
                )
            except proto.ServerBusyError:
                if attempt >= self.retries:
                    raise
                await asyncio.sleep(self.backoff_s * 2 ** attempt)
                attempt += 1

    async def status(self) -> dict:
        return _expect_json(
            *await self._roundtrip(proto.pack_frame(proto.OP_STATUS))
        )

    async def close(self) -> None:
        try:
            self._writer.write(proto.pack_frame(proto.OP_BYE))
            await self._writer.drain()
            await proto.read_frame(self._reader)
        except (proto.ServeError, ConnectionError,
                asyncio.IncompleteReadError):
            pass
        finally:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
