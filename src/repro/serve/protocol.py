"""Wire protocol of the on-demand RNG service.

The service speaks a small **length-prefixed binary protocol**: every
frame is a 4-byte big-endian length followed by a 1-byte opcode and a
payload.  Values travel as raw big-endian 64-bit words, so a ``FETCH``
of ``n`` numbers costs ``5 + 8n`` bytes on the wire and decodes to a
NumPy ``uint64`` array with one ``frombuffer`` call.

    +----------------+--------+---------------------+
    | length (u32 BE)| opcode | payload (length - 1)|
    +----------------+--------+---------------------+

Request opcodes
    ``HELLO``   utf-8 session id (establishes / resumes a stream);
    ``FETCH``   u32 BE count of 64-bit numbers wanted;
    ``VARIATE`` u8 distribution id + u32 BE count + fixed-width BE
                parameters -- typed variates from the session's *word*
                stream (see "Typed variates" below);
    ``RESUME``  u64 BE word offset + utf-8 session id -- establish the
                session *and* seek its stream to the offset (the
                exactly-once reconnect primitive: a client resumes at
                the last word it actually received);
    ``STATUS``  empty payload -- server/session health and stats;
    ``BYE``     empty payload -- orderly goodbye.

Response opcodes
    ``VALUES``  raw big-endian u64 words (the numbers);
    ``VARIATES`` u8 distribution id + u64 BE *word offset after the op*
                + raw big-endian 8-byte values (f64 for the float
                distributions, i64/u64 for ``integers``);
    ``BUSY``    utf-8 reason -- explicit backpressure, retry later;
    ``ERROR``   utf-8 message -- the request was invalid;
    ``JSON``    utf-8 JSON document (HELLO ack, STATUS body, BYE ack).

Typed variates
    A ``VARIATE`` request names one of :data:`DIST_IDS` --
    ``uniform01`` (no parameters), ``normal`` (mean, std as f64),
    ``exponential`` (rate as f64) or ``integers`` (a signedness flag,
    the low bound as a raw u64, and the span with 0 meaning ``2**64``).
    Crucially, the session journals and resumes by **words consumed**,
    not variates emitted: rejection sampling makes the words-per-variate
    ratio data-dependent, so the only well-defined replay coordinate is
    the underlying word stream.  Every ``VARIATES`` response therefore
    carries the session's absolute word offset *after* the op; a client
    that reconnects ``RESUME``\\ s at that word offset and re-requests,
    and the served distributions are all zero-carry (see
    :data:`repro.dist.SERVE_DISTRIBUTIONS`), so the continuation is
    byte-identical -- forward replay, never a seek backwards through a
    variate count.

A connection whose **first byte is ``{``** switches to the JSON-lines
debug mode instead: one JSON object per line (``{"op": "fetch",
"n": 8}``), answered with one JSON object per line.  Same semantics,
human-typable through ``nc``.

This module is shared by the server and both clients; it has no I/O of
its own beyond ``asyncio`` stream helpers.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import sys
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "OP_HELLO",
    "OP_FETCH",
    "OP_STATUS",
    "OP_BYE",
    "OP_RESUME",
    "OP_VARIATE",
    "OP_VALUES",
    "OP_BUSY",
    "OP_ERROR",
    "OP_JSON",
    "OP_VARIATES",
    "DIST_IDS",
    "DIST_NAMES",
    "MAX_FRAME_BYTES",
    "MAX_FETCH_COUNT",
    "MAX_SESSION_ID_BYTES",
    "ServeError",
    "ProtocolError",
    "ServerBusyError",
    "SessionRequiredError",
    "pack_frame",
    "pack_fetch",
    "pack_hello",
    "pack_resume",
    "unpack_resume",
    "pack_variate",
    "unpack_variate",
    "variate_values_dtype",
    "frame_header",
    "encode_values",
    "values_payload",
    "variates_payload",
    "variates_prefix",
    "decode_values",
    "decode_variates",
    "read_frame",
    "read_frame_socket",
    "decode_json_payload",
    "json_line",
]

# Request opcodes (client -> server).
OP_HELLO = 0x01
OP_FETCH = 0x02
OP_STATUS = 0x03
OP_BYE = 0x04
OP_RESUME = 0x05
OP_VARIATE = 0x06

# Response opcodes (server -> client).
OP_VALUES = 0x81
OP_BUSY = 0x82
OP_ERROR = 0x83
OP_JSON = 0x84
OP_VARIATES = 0x85

#: Wire ids of the served distributions (never renumber: they are wire
#: format).  Matches :data:`repro.dist.SERVE_DISTRIBUTIONS`.
DIST_IDS = {"uniform01": 1, "normal": 2, "exponential": 3, "integers": 4}
DIST_NAMES = {v: k for k, v in DIST_IDS.items()}

#: Hard cap on a frame, both directions (16 MiB covers a 2M-number fetch).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Largest single FETCH the server will accept (numbers per request).
MAX_FETCH_COUNT = (MAX_FRAME_BYTES - 1) // 8

#: Session ids are short opaque strings, not documents.
MAX_SESSION_ID_BYTES = 256

_LEN = struct.Struct("!I")
_U32 = struct.Struct("!I")
_U64 = struct.Struct("!Q")


class ServeError(Exception):
    """Base class for service-layer errors."""


class ProtocolError(ServeError):
    """Malformed or oversized frame, unknown opcode, truncated stream."""


class ServerBusyError(ServeError):
    """The server shed this request (backpressure); retry later."""


class SessionRequiredError(ServeError):
    """A FETCH arrived before HELLO established a session."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def pack_frame(opcode: int, payload: bytes = b"") -> bytes:
    """One complete wire frame: length prefix + opcode + payload."""
    if not 0 <= opcode <= 0xFF:
        raise ProtocolError(f"opcode out of range: {opcode}")
    body_len = 1 + len(payload)
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame too large: {body_len} > {MAX_FRAME_BYTES} bytes"
        )
    return _LEN.pack(body_len) + bytes([opcode]) + payload


def pack_hello(session_id: str) -> bytes:
    raw = session_id.encode("utf-8")
    if not raw:
        raise ProtocolError("session id must be non-empty")
    if len(raw) > MAX_SESSION_ID_BYTES:
        raise ProtocolError(
            f"session id too long: {len(raw)} > {MAX_SESSION_ID_BYTES} bytes"
        )
    return pack_frame(OP_HELLO, raw)


def pack_resume(session_id: str, offset: int) -> bytes:
    """RESUME frame: establish ``session_id`` seeked to word ``offset``.

    Offsets are absolute word positions in the session's one well-defined
    stream (64-bit unsigned: jump-ahead makes any offset cheap), so a
    reconnecting client passes the count of words it has actually
    consumed and the server replays nothing and skips nothing.
    """
    raw = session_id.encode("utf-8")
    if not raw:
        raise ProtocolError("session id must be non-empty")
    if len(raw) > MAX_SESSION_ID_BYTES:
        raise ProtocolError(
            f"session id too long: {len(raw)} > {MAX_SESSION_ID_BYTES} bytes"
        )
    if not 0 <= offset < 2**64:
        raise ProtocolError(f"offset must be a u64, got {offset}")
    return pack_frame(OP_RESUME, _U64.pack(offset) + raw)


def unpack_resume(payload: bytes) -> Tuple[str, int]:
    """RESUME payload -> ``(session_id, offset)``."""
    if len(payload) <= _U64.size:
        raise ProtocolError("RESUME payload must be 8 offset bytes + id")
    if len(payload) - _U64.size > MAX_SESSION_ID_BYTES:
        raise ProtocolError("RESUME session id too long")
    (offset,) = _U64.unpack(payload[:_U64.size])
    return payload[_U64.size:].decode("utf-8", errors="replace"), offset


def pack_fetch(count: int) -> bytes:
    if not 1 <= count <= MAX_FETCH_COUNT:
        raise ProtocolError(
            f"fetch count must be in [1, {MAX_FETCH_COUNT}], got {count}"
        )
    return pack_frame(OP_FETCH, _U32.pack(count))


# -- typed variates -----------------------------------------------------

_DIST_U8 = struct.Struct("!B")
_NORMAL_PARAMS = struct.Struct("!dd")        # mean, std
_EXP_PARAMS = struct.Struct("!d")            # rate
_INT_PARAMS = struct.Struct("!BQQ")          # signed flag, lo raw, span
_VARIATE_HEAD = struct.Struct("!BI")         # dist id, count
_VARIATES_PREFIX = struct.Struct("!BQ")      # dist id, word offset after op


def _pack_dist_params(dist: str, params: dict) -> bytes:
    if dist == "uniform01":
        return b""
    if dist == "normal":
        return _NORMAL_PARAMS.pack(
            float(params.get("mean", 0.0)), float(params.get("std", 1.0))
        )
    if dist == "exponential":
        return _EXP_PARAMS.pack(float(params.get("rate", 1.0)))
    # integers: lo may live anywhere in [-2**63, 2**64) and hi - lo may
    # be the full 2**64, so the wire carries (signed?, lo mod 2**64,
    # span mod 2**64) -- span 0 encodes 2**64.
    lo = int(params.get("lo", 0))
    hi = int(params.get("hi", 2**63))
    span = hi - lo
    if not 1 <= span <= 2**64:
        raise ProtocolError(f"integers range [{lo}, {hi}) is empty or > 2**64")
    if not -(2**63) <= lo < 2**64:
        raise ProtocolError(f"integers low bound {lo} not representable")
    return _INT_PARAMS.pack(
        1 if lo < 0 else 0, lo & (2**64 - 1), span & (2**64 - 1)
    )


def _unpack_dist_params(dist: str, raw: bytes) -> dict:
    try:
        if dist == "uniform01":
            if raw:
                raise ProtocolError("uniform01 takes no parameters")
            return {}
        if dist == "normal":
            mean, std = _NORMAL_PARAMS.unpack(raw)
            return {"mean": mean, "std": std}
        if dist == "exponential":
            (rate,) = _EXP_PARAMS.unpack(raw)
            return {"rate": rate}
        negative, lo_raw, span_raw = _INT_PARAMS.unpack(raw)
        lo = lo_raw - 2**64 if negative else lo_raw
        span = span_raw or 2**64
        return {"lo": lo, "hi": lo + span}
    except struct.error as exc:
        raise ProtocolError(f"bad {dist} parameter block: {exc}") from exc


def pack_variate(dist: str, count: int, params: Optional[dict] = None) -> bytes:
    """VARIATE frame: distribution id + count + typed parameters."""
    if dist not in DIST_IDS:
        raise ProtocolError(
            f"unknown distribution {dist!r}; choose from {sorted(DIST_IDS)}"
        )
    if not 1 <= count <= MAX_FETCH_COUNT:
        raise ProtocolError(
            f"variate count must be in [1, {MAX_FETCH_COUNT}], got {count}"
        )
    return pack_frame(
        OP_VARIATE,
        _VARIATE_HEAD.pack(DIST_IDS[dist], count)
        + _pack_dist_params(dist, params or {}),
    )


def unpack_variate(payload: bytes) -> Tuple[str, int, dict]:
    """VARIATE payload -> ``(dist_name, count, params)``."""
    if len(payload) < _VARIATE_HEAD.size:
        raise ProtocolError("VARIATE payload too short")
    dist_id, count = _VARIATE_HEAD.unpack(payload[:_VARIATE_HEAD.size])
    dist = DIST_NAMES.get(dist_id)
    if dist is None:
        raise ProtocolError(f"unknown distribution id {dist_id}")
    if not 1 <= count <= MAX_FETCH_COUNT:
        raise ProtocolError(f"variate count out of range: {count}")
    params = _unpack_dist_params(dist, payload[_VARIATE_HEAD.size:])
    return dist, count, params


def variate_values_dtype(dist: str, params: Optional[dict] = None) -> np.dtype:
    """Client-side dtype of a VARIATES payload for ``dist``.

    Floats for the continuous distributions; for ``integers`` the same
    int64/uint64 rule the samplers use (unsigned only when the range
    needs it).
    """
    if dist != "integers":
        return np.dtype(np.float64)
    params = params or {}
    hi = int(params.get("hi", 2**63))
    lo = int(params.get("lo", 0))
    return np.dtype(np.uint64) if (lo >= 0 and hi > 2**63) else np.dtype(np.int64)


def variates_prefix(dist: str, words_consumed: int) -> bytes:
    """The 9-byte VARIATES payload prefix (dist id + word offset)."""
    if dist not in DIST_IDS:
        raise ProtocolError(f"unknown distribution {dist!r}")
    if not 0 <= words_consumed < 2**64:
        raise ProtocolError(f"word offset must be a u64, got {words_consumed}")
    return _VARIATES_PREFIX.pack(DIST_IDS[dist], words_consumed)


def variates_payload(values: np.ndarray) -> memoryview:
    """Typed values -> big-endian wire bytes, zero-copy when possible.

    Same in-place byteswap contract as :func:`values_payload`, extended
    to the 8-byte dtypes a VARIATES response can carry (f64, i64, u64).
    **Consumes the array** -- the caller must own it.
    """
    if (
        isinstance(values, np.ndarray)
        and values.dtype in (np.float64, np.int64, np.uint64)
        and values.ndim == 1
        and values.flags.c_contiguous
        and values.flags.writeable
    ):
        if sys.byteorder == "little":
            values.byteswap(inplace=True)
        return values.data.cast("B")
    arr = np.ascontiguousarray(values)
    return memoryview(arr.astype(arr.dtype.newbyteorder(">")).tobytes())


def decode_variates(
    payload: bytes, dtype: Optional[np.dtype] = None
) -> Tuple[str, int, np.ndarray]:
    """VARIATES payload -> ``(dist_name, word_offset, values)``.

    ``dtype`` overrides the value dtype (a client that requested an
    unsigned ``integers`` range passes uint64); by default float
    distributions decode as float64 and ``integers`` as int64.
    """
    if len(payload) < _VARIATES_PREFIX.size:
        raise ProtocolError("VARIATES payload too short")
    dist_id, words = _VARIATES_PREFIX.unpack(payload[:_VARIATES_PREFIX.size])
    dist = DIST_NAMES.get(dist_id)
    if dist is None:
        raise ProtocolError(f"unknown distribution id {dist_id}")
    body = payload[_VARIATES_PREFIX.size:]
    if len(body) % 8:
        raise ProtocolError(
            f"VARIATES payload not a multiple of 8 bytes: {len(body)}"
        )
    if dtype is None:
        dtype = variate_values_dtype(dist)
    dtype = np.dtype(dtype)
    values = np.frombuffer(body, dtype=dtype.newbyteorder(">")).astype(dtype)
    return dist, words, values


def frame_header(opcode: int, payload_len: int) -> bytes:
    """Length prefix + opcode for a frame whose payload travels separately.

    Enables zero-copy sends: write the 5 header bytes, then the payload
    buffer itself (e.g. a :func:`values_payload` memoryview), instead of
    concatenating them into one intermediate ``bytes``.
    """
    if not 0 <= opcode <= 0xFF:
        raise ProtocolError(f"opcode out of range: {opcode}")
    body_len = 1 + payload_len
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame too large: {body_len} > {MAX_FRAME_BYTES} bytes"
        )
    return _LEN.pack(body_len) + bytes([opcode])


def encode_values(values: np.ndarray) -> bytes:
    """uint64 array -> raw big-endian payload bytes."""
    return np.ascontiguousarray(values, dtype=np.uint64).astype(">u8").tobytes()


def values_payload(values: np.ndarray) -> memoryview:
    """uint64 array -> big-endian VALUES payload, zero-copy when possible.

    **Consumes the array**: a C-contiguous ``uint64`` input is
    byte-swapped *in place* on little-endian hosts and the returned
    memoryview aliases its memory -- the caller must own ``values`` and
    must not read it (or reuse its buffer) until the payload has been
    fully written out.  Inputs that cannot be swapped in place fall back
    to :func:`encode_values` (one copy).
    """
    if (
        isinstance(values, np.ndarray)
        and values.dtype == np.uint64
        and values.ndim == 1
        and values.flags.c_contiguous
        and values.flags.writeable
    ):
        if sys.byteorder == "little":
            values.byteswap(inplace=True)
        return values.data.cast("B")
    return memoryview(encode_values(values))


def decode_values(payload: bytes) -> np.ndarray:
    """Raw big-endian payload bytes -> uint64 array (copy; writable)."""
    if len(payload) % 8:
        raise ProtocolError(
            f"VALUES payload not a multiple of 8 bytes: {len(payload)}"
        )
    return np.frombuffer(payload, dtype=">u8").astype(np.uint64)


def _check_length(body_len: int) -> None:
    if body_len < 1:
        raise ProtocolError(f"empty frame body (length {body_len})")
    if body_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame too large: {body_len} > {MAX_FRAME_BYTES} bytes"
        )


async def read_frame(reader: asyncio.StreamReader) -> Tuple[int, bytes]:
    """Read one frame from an asyncio stream; ``(opcode, payload)``.

    Raises :class:`ProtocolError` on a truncated or oversized frame and
    ``ConnectionError``-family exceptions as asyncio surfaces them.  A
    clean EOF *between* frames raises ``asyncio.IncompleteReadError``
    with nothing read (callers treat that as goodbye).
    """
    header = await reader.readexactly(4)
    (body_len,) = _LEN.unpack(header)
    _check_length(body_len)
    body = await reader.readexactly(body_len)
    return body[0], body[1:]


def read_frame_socket(sock: socket.socket) -> Tuple[int, bytes]:
    """Blocking counterpart of :func:`read_frame` for the sync client."""
    header = _recv_exactly(sock, 4)
    (body_len,) = _LEN.unpack(header)
    _check_length(body_len)
    body = _recv_exactly(sock, body_len)
    return body[0], body[1:]


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({n - remaining}/{n} bytes)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# JSON-lines debug mode
# ----------------------------------------------------------------------


def decode_json_payload(payload: bytes) -> dict:
    """Parse a JSON response payload (HELLO ack, STATUS, BYE ack)."""
    try:
        doc = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON payload: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("JSON payload must be an object")
    return doc


def json_line(doc: dict) -> bytes:
    """Encode one JSON-lines message (newline-terminated)."""
    return (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8")
