"""The on-demand RNG service: asyncio TCP server over expander streams.

This is the network face of the paper's ``GetNextRand()`` contract: any
number of remote consumers draw numbers *on demand*, each from an
independent, reproducible expander stream ([``session.py``]), with
requests coalesced into worker-pool batches ([``batching.py``]) and
overload shed explicitly as ``BUSY`` instead of buffered without bound.

Layering (nothing here generates a number or computes a metric itself):

* streams -- :mod:`repro.serve.session` on top of ``derive_seed``;
* execution -- :class:`~repro.serve.batching.BatchingExecutor` on a
  shared thread pool, off the event loop;
* resilience -- each session's feed is a
  :class:`~repro.resilience.supervised.SupervisedFeed`; a dying bit
  source degrades the session (visible in ``STATUS``) instead of
  killing it;
* observability -- counters/histograms through
  :mod:`repro.obs.metrics`, exported by the existing Prometheus/JSONL
  exporters;
* statistical health -- each session carries a
  :class:`repro.obs.sentinel.StreamSentinel` (tap-only: served values
  are byte-identical with it on or off) whose sticky
  STAT_SUSPECT/STAT_BAD verdict folds into session and server health
  and the ``STATUS`` body, so a silently-degraded stream fails health
  checks even when the resilience layer sees a live feed.

:func:`serve_background` runs a server on a daemon thread with its own
event loop -- the handle used by the blocking client tests, the
examples, the throughput benchmark, and ``repro fetch`` smoke tests.
"""

from __future__ import annotations

import asyncio
import json
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set

from repro.bitsource.base import BitSource
from repro.obs import metrics as obs_metrics
from repro.resilience.supervised import FeedHealth, RetryPolicy
from repro.serve import protocol as proto
from repro.serve.batching import BatchingExecutor, TokenBucket
from repro.serve.session import DEFAULT_SESSION_LANES, SessionStream

__all__ = ["ServeConfig", "RNGServer", "BackgroundServer", "serve_background"]


@dataclass
class ServeConfig:
    """Everything a server instance needs, in one reviewable place."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``RNGServer.port``).
    port: int = 0
    master_seed: int = 1
    #: Walker lanes per session stream (part of the stream identity).
    lanes: int = DEFAULT_SESSION_LANES
    #: Most in-flight FETCHes per session before ``BUSY``.
    max_session_queue: int = 8
    #: Global bound on queued requests before ``BUSY``.
    max_global_queue: int = 256
    #: Token-bucket refill in numbers/second per session; ``None`` = off.
    rate: Optional[float] = None
    #: Token-bucket capacity in numbers; defaults to one second of rate.
    burst: Optional[float] = None
    #: Coalescing window and batch cap of the dispatcher.
    batch_window_s: float = 0.002
    max_batch: int = 64
    #: Worker threads executing batches.
    workers: int = 2
    #: ``seed -> BitSource`` for each session's primary feed.
    source_factory: Optional[Callable[[int], BitSource]] = None
    #: Install the SplitMix64/OS-entropy failover chain per session.
    failover: bool = True
    retry_policy: Optional[RetryPolicy] = None
    #: Largest single FETCH accepted (numbers).
    max_fetch: int = 1 << 20
    #: > 0 backs all sessions with a :class:`repro.engine.ShardedEngine`
    #: shard pool of that many worker processes (serve-only: no bulk
    #: rings).  Session values are byte-identical to the in-process
    #: path; ``source_factory`` must then be picklable.
    engine_shards: int = 0
    #: Respawn dead engine shards (deterministic fast-forward) instead
    #: of failing their sessions' fetches.
    engine_auto_restart: bool = True
    #: Attach a statistical sentinel to every session stream.  The
    #: sentinel is tap-only (reads and copies; served values are
    #: byte-identical with it on or off); its sticky verdict folds into
    #: session and server health and the STATUS payload.
    sentinel: bool = True
    #: Sentinel sampling: keep one served word in this many.
    sentinel_sample: int = 16
    #: Sampled words per evaluated sentinel window.
    sentinel_window: int = 4096
    #: Word cap of each session's readahead buffer.  The batching
    #: planner prefills up to this many words ahead of a session's
    #: served position (demand-pure schedule), so hot sessions answer
    #: from memory and cold misses ride the fused cross-session engine
    #: round.  ``0`` disables readahead; served bytes are identical
    #: either way.
    readahead_max: int = 4096
    #: Durable session journal (:mod:`repro.serve.journal`).  When set,
    #: session creation and every delivered word offset are appended
    #: (fsync'd) to this file, and startup recovers the journal: every
    #: journaled session is rebuilt and seeked to its acked offset, so a
    #: ``kill -9`` costs nothing but the torn tail of the log.  ``None``
    #: serves memory-only (a restart forgets sessions; clients can still
    #: RESUME at their own offsets since streams are pure functions of
    #: ``(master_seed, session_id, lanes)``).
    journal_path: Optional[str] = None
    #: ``fsync`` the journal on every append (durability vs. latency).
    journal_fsync: bool = True
    #: Array backend for the hot kernels (:mod:`repro.backend`):
    #: ``None`` resolves to the process default (usually ``"numpy"``).
    #: Plumbed into both the in-process session banks and the engine
    #: worker config; served bytes are backend-independent for any
    #: bit-correct backend.
    backend: Optional[str] = None
    #: Byte budget for the engine-span response cache
    #: (:class:`repro.serve.batching.ResponseCache`); ``0`` disables
    #: it.  Only the engine path caches -- hits skip whole engine
    #: round-trips and are byte-identical by stream purity.
    cache_bytes: int = 8 << 20


@dataclass
class _ServedSession:
    """Server-side accounting around one :class:`SessionStream`."""

    stream: SessionStream
    bucket: TokenBucket
    inflight: int = 0
    connections: int = 0
    created_at: float = field(default_factory=time.monotonic)


class RNGServer:
    """Asyncio TCP server speaking :mod:`repro.serve.protocol`."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        if self.config.max_fetch > proto.MAX_FETCH_COUNT:
            raise ValueError(
                f"max_fetch {self.config.max_fetch} exceeds the frame cap "
                f"{proto.MAX_FETCH_COUNT}"
            )
        self.executor = BatchingExecutor(
            max_queue=self.config.max_global_queue,
            max_batch=self.config.max_batch,
            window_s=self.config.batch_window_s,
            workers=self.config.workers,
            cache_bytes=self.config.cache_bytes,
        )
        self.engine = None
        if self.config.engine_shards > 0:
            from repro.engine import EngineConfig, ShardedEngine

            self.engine = ShardedEngine(EngineConfig(
                seed=self.config.master_seed,
                shards=self.config.engine_shards,
                ring_slots=0,  # serve-only: no bulk stream
                supervised=self.config.failover,
                source_factory=self.config.source_factory,
                auto_restart=self.config.engine_auto_restart,
                backend=self.config.backend,
            ))
        self.sessions: Dict[str, _ServedSession] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self.port: Optional[int] = None
        self._started_at = time.monotonic()
        # Authoritative plain-int counters so STATUS works even when the
        # obs registry is the disabled no-op.
        self.requests_total = 0
        self.numbers_total = 0
        self.busy_total = 0
        self.errors_total = 0
        self.journal = None
        self.recovered_sessions = 0
        if self.config.journal_path is not None:
            from repro.serve.journal import SessionJournal

            self.journal = SessionJournal.open(
                self.config.journal_path, fsync=self.config.journal_fsync
            )
            self._recover_sessions()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await self.executor.start()
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_at = time.monotonic()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, drop connections, drain the executor.

        This is the graceful-drain path (SIGTERM, ``--duration`` expiry,
        tests): in-flight batches finish, the journal gets its clean
        shutdown marker, and only then do resources go away.  Crash-only
        means recovery never *depends* on any of this having run.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()
        await self.executor.aclose()
        if self.engine is not None:
            self.engine.close()
        if self.journal is not None:
            self.journal.log_shutdown()
            self.journal.close()
            self.journal = None

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def _make_sentinel(self, session_id: str):
        """One per-session sentinel, or ``None`` when disabled."""
        if not self.config.sentinel:
            return None
        from repro.obs.sentinel import SentinelConfig, StreamSentinel

        return StreamSentinel(
            SentinelConfig(
                window_words=self.config.sentinel_window,
                sample_every=self.config.sentinel_sample,
                seed=self.config.master_seed,
            ),
            name=session_id,
        )

    def _get_or_create_session(
        self, session_id: str, lanes: Optional[int] = None,
        journal: bool = True,
    ) -> _ServedSession:
        served = self.sessions.get(session_id)
        if served is None:
            lanes = self.config.lanes if lanes is None else lanes
            sentinel = self._make_sentinel(session_id)
            if self.engine is not None:
                stream = SessionStream(
                    session_id,
                    master_seed=self.config.master_seed,
                    lanes=lanes,
                    engine=self.engine,
                    sentinel=sentinel,
                    readahead_max=self.config.readahead_max,
                )
            else:
                stream = SessionStream(
                    session_id,
                    master_seed=self.config.master_seed,
                    lanes=lanes,
                    source_factory=self.config.source_factory,
                    failover=self.config.failover,
                    retry_policy=self.config.retry_policy,
                    sentinel=sentinel,
                    readahead_max=self.config.readahead_max,
                    backend=self.config.backend,
                )
            served = _ServedSession(
                stream=stream,
                bucket=TokenBucket(self.config.rate, self.config.burst),
            )
            self.sessions[session_id] = served
            if journal and self.journal is not None:
                self.journal.log_session(session_id, lanes)
            obs_metrics.counter(
                "repro_serve_sessions_total", "Sessions ever created"
            ).inc()
            obs_metrics.gauge(
                "repro_serve_sessions_active", "Live session streams"
            ).set(len(self.sessions))
        return served

    def _recover_sessions(self) -> None:
        """Rebuild every journaled session at its acked word offset.

        Runs once at startup, right after the journal's recovery scan.
        The stream itself is a pure function of
        ``(master_seed, session_id, lanes)``, so rebuilding + one
        O(log offset) seek lands each session byte-exactly where its
        last acked delivery left it -- no replay, no stored state words.
        Sentinels are re-armed fresh: statistical verdicts are about the
        *running* stream and deliberately do not survive a restart.
        """
        for session_id, entry in sorted(self.journal.recovered.sessions.items()):
            served = self._get_or_create_session(
                session_id, lanes=entry["lanes"] or None, journal=False
            )
            if entry["offset"]:
                served.stream.seek(entry["offset"])
            self.recovered_sessions += 1

    def _journal_ack(self, session: _ServedSession) -> None:
        """Persist the session's delivered word offset (post-send)."""
        if self.journal is not None:
            self.journal.log_ack(
                session.stream.session_id, session.stream.words_served
            )

    def _resume_session(self, session_id: str, offset: int) -> _ServedSession:
        """RESUME semantics shared by the binary and JSON handlers.

        Establishes the session (creating it if the restart forgot it),
        seeks the stream to the client's offset, re-arms the statistical
        sentinel (its windows describe the pre-resume past), and
        journals the new offset so a second crash recovers to it.
        """
        if offset < 0:
            raise proto.ProtocolError(
                f"resume offset must be non-negative, got {offset}"
            )
        served = self._get_or_create_session(session_id)
        served.stream.seek(offset)
        if self.config.sentinel:
            served.stream.sentinel = self._make_sentinel(session_id)
        self._journal_ack(served)
        obs_metrics.counter(
            "repro_serve_resumes_total", "RESUME ops handled"
        ).inc()
        return served

    @property
    def health(self) -> str:
        """Worst health across all sessions (and the shard pool)."""
        worst = FeedHealth.OK
        if self.engine is not None:
            worst = max(worst, FeedHealth[self.engine.health])
        for served in self.sessions.values():
            worst = max(worst, FeedHealth[served.stream.health])
        return worst.name

    def sentinel_summary(self) -> dict:
        """Fleet view of the per-session sentinels (STATUS `sentinel`).

        ``worst`` is the worst sticky verdict across sessions;
        ``suspect``/``bad`` count sessions in each state; window and
        failure totals aggregate over all sessions.
        """
        summary = {
            "enabled": bool(self.config.sentinel),
            "worst": "STAT_OK",
            "suspect": 0,
            "bad": 0,
            "windows_total": 0,
            "failures_total": 0,
        }
        if not self.config.sentinel:
            return summary
        from repro.obs.sentinel import Verdict

        worst = Verdict.STAT_OK
        for served in self.sessions.values():
            sentinel = served.stream.sentinel
            if sentinel is None:
                continue
            verdict = sentinel.verdict
            worst = max(worst, verdict)
            if verdict is Verdict.STAT_SUSPECT:
                summary["suspect"] += 1
            elif verdict is Verdict.STAT_BAD:
                summary["bad"] += 1
            state = sentinel.state()
            summary["windows_total"] += state["windows"]
            summary["failures_total"] += state["failures"]
        summary["worst"] = worst.name
        return summary

    def status_doc(self, session: Optional[_ServedSession] = None) -> dict:
        doc = {
            "ok": True,
            "op": "status",
            "server": {
                "sessions": len(self.sessions),
                "queue_depth": self.executor.queue_depth,
                "health": self.health,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "requests_total": self.requests_total,
                "numbers_total": self.numbers_total,
                "busy_total": self.busy_total,
                "errors_total": self.errors_total,
                "max_session_queue": self.config.max_session_queue,
                "max_global_queue": self.config.max_global_queue,
                "sentinel": self.sentinel_summary(),
            },
        }
        if self.config.journal_path is not None:
            doc["server"]["journal"] = {
                "path": self.config.journal_path,
                "fsync": self.config.journal_fsync,
                "recovered_sessions": self.recovered_sessions,
                "appends": 0 if self.journal is None else self.journal.appends,
            }
        if self.engine is not None:
            doc["engine"] = self.engine.describe()
        if session is not None:
            doc["session"] = session.stream.describe()
        registry = obs_metrics.get_registry()
        if registry.enabled:
            doc["metrics"] = {
                name: value
                for name, value in registry.snapshot().items()
                if name.startswith("repro_serve_")
            }
        return doc

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        connections = obs_metrics.gauge(
            "repro_serve_connections_active", "Open client connections"
        )
        connections.set(len(self._writers))
        try:
            first = await reader.read(1)
            if not first:
                return
            if first == b"{":
                await self._serve_json(reader, writer, first)
            else:
                await self._serve_binary(reader, writer, first)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            proto.ProtocolError,
        ):
            pass  # client went away or spoke garbage; nothing to salvage
        finally:
            self._writers.discard(writer)
            connections.set(len(self._writers))
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _fetch(
        self,
        session: Optional[_ServedSession],
        count: int,
        dist: Optional[str] = None,
        params: Optional[dict] = None,
    ):
        """Shared FETCH/VARIATE semantics; ``(result, busy_reason)``.

        ``dist is None`` serves raw words (result: uint64 array);
        otherwise typed variates (result: ``(values, word_offset)``).
        Both paths share the rate bucket (charged per value), the
        session in-flight cap, and the global queue.
        """
        if session is None:
            raise proto.SessionRequiredError("FETCH before HELLO")
        if not 1 <= count <= self.config.max_fetch:
            raise proto.ProtocolError(
                f"fetch count must be in [1, {self.config.max_fetch}], "
                f"got {count}"
            )
        self.requests_total += 1
        obs_metrics.counter(
            "repro_serve_requests_total", "FETCH requests received"
        ).inc()
        busy_reason = None
        future = None
        if not session.bucket.try_acquire(count):
            busy_reason = "rate-limited"
        elif session.inflight >= self.config.max_session_queue:
            busy_reason = "session queue full"
        else:
            future = self.executor.try_submit(
                session.stream, count, dist=dist, params=params
            )
            if future is None:
                busy_reason = "server queue full"
        if busy_reason is not None:
            self.busy_total += 1
            obs_metrics.counter(
                "repro_serve_busy_total", "FETCH requests shed as BUSY"
            ).inc()
            return None, busy_reason
        session.inflight += 1
        try:
            result = await future
        finally:
            session.inflight -= 1
        served = len(result) if dist is None else len(result[0])
        self.numbers_total += served
        obs_metrics.counter(
            "repro_serve_numbers_total", "Numbers served to clients"
        ).inc(served)
        if dist is not None:
            obs_metrics.counter(
                "repro_serve_variates_total", "Typed variates served"
            ).inc(served)
        return result, None

    def _record_error(self) -> None:
        self.errors_total += 1
        obs_metrics.counter(
            "repro_serve_errors_total", "FETCH requests failed server-side"
        ).inc()

    # -- binary mode ---------------------------------------------------

    async def _serve_binary(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first_byte: bytes,
    ) -> None:
        session: Optional[_ServedSession] = None
        # The mode sniff consumed the first length byte; complete that
        # header by hand, then fall into the regular framed loop.
        pending_header: Optional[bytes] = (
            first_byte + await reader.readexactly(3)
        )
        try:
            while True:
                if pending_header is not None:
                    (body_len,) = struct.unpack("!I", pending_header)
                    pending_header = None
                    if not 1 <= body_len <= proto.MAX_FRAME_BYTES:
                        raise proto.ProtocolError(
                            f"bad frame length {body_len}"
                        )
                    body = await reader.readexactly(body_len)
                    opcode, payload = body[0], body[1:]
                else:
                    try:
                        opcode, payload = await proto.read_frame(reader)
                    except asyncio.IncompleteReadError as exc:
                        if exc.partial:
                            raise proto.ProtocolError(
                                "connection closed mid-frame"
                            ) from exc
                        return  # clean EOF between frames
                if opcode == proto.OP_HELLO:
                    if not payload or len(payload) > proto.MAX_SESSION_ID_BYTES:
                        await self._send(
                            writer, proto.OP_ERROR, b"bad session id"
                        )
                        return
                    session_id = payload.decode("utf-8", errors="replace")
                    if session is not None:
                        session.connections -= 1
                    session = self._get_or_create_session(session_id)
                    session.connections += 1
                    ack = {
                        "ok": True,
                        "op": "hello",
                        "session": session_id,
                        "stream_index": session.stream.index,
                        "lanes": self.config.lanes,
                    }
                    await self._send(
                        writer, proto.OP_JSON,
                        json.dumps(ack, sort_keys=True).encode("utf-8"),
                    )
                elif opcode == proto.OP_FETCH:
                    if len(payload) != 4:
                        raise proto.ProtocolError(
                            "FETCH payload must be 4 bytes"
                        )
                    (count,) = struct.unpack("!I", payload)
                    try:
                        values, busy = await self._fetch(session, count)
                    except (proto.SessionRequiredError,
                            proto.ProtocolError) as exc:
                        await self._send(
                            writer, proto.OP_ERROR, str(exc).encode("utf-8")
                        )
                        continue
                    except Exception as exc:  # degraded/failed feed et al.
                        self._record_error()
                        await self._send(
                            writer, proto.OP_ERROR,
                            f"{type(exc).__name__}: {exc}".encode("utf-8"),
                        )
                        continue
                    if busy is not None:
                        await self._send(
                            writer, proto.OP_BUSY, busy.encode("utf-8")
                        )
                    else:
                        await self._send_values(writer, values)
                        # Journal *after* the send: the acked offset
                        # never runs ahead of what actually left the
                        # socket, so recovery can only under-count --
                        # and a RESUME at the client's own offset
                        # closes even that gap.
                        self._journal_ack(session)
                elif opcode == proto.OP_VARIATE:
                    try:
                        dist, count, params = proto.unpack_variate(payload)
                        result, busy = await self._fetch(
                            session, count, dist=dist, params=params
                        )
                    except (proto.SessionRequiredError,
                            proto.ProtocolError) as exc:
                        await self._send(
                            writer, proto.OP_ERROR, str(exc).encode("utf-8")
                        )
                        continue
                    except ValueError as exc:  # bad sampler parameters
                        await self._send(
                            writer, proto.OP_ERROR, str(exc).encode("utf-8")
                        )
                        continue
                    except Exception as exc:  # degraded/failed feed et al.
                        self._record_error()
                        await self._send(
                            writer, proto.OP_ERROR,
                            f"{type(exc).__name__}: {exc}".encode("utf-8"),
                        )
                        continue
                    if busy is not None:
                        await self._send(
                            writer, proto.OP_BUSY, busy.encode("utf-8")
                        )
                    else:
                        values, words = result
                        await self._send_variates(writer, dist, words, values)
                        # Word-offset ack, post-send, exactly like FETCH:
                        # the journal format does not know (or need to
                        # know) that this delivery was typed.
                        self._journal_ack(session)
                elif opcode == proto.OP_RESUME:
                    try:
                        session_id, offset = proto.unpack_resume(payload)
                        if session is not None:
                            session.connections -= 1
                            session = None
                        session = self._resume_session(session_id, offset)
                        session.connections += 1
                    except proto.ProtocolError as exc:
                        await self._send(
                            writer, proto.OP_ERROR, str(exc).encode("utf-8")
                        )
                        continue
                    ack = {
                        "ok": True,
                        "op": "resume",
                        "session": session_id,
                        "offset": offset,
                        "stream_index": session.stream.index,
                        "lanes": session.stream.lanes,
                    }
                    await self._send(
                        writer, proto.OP_JSON,
                        json.dumps(ack, sort_keys=True).encode("utf-8"),
                    )
                elif opcode == proto.OP_STATUS:
                    doc = self.status_doc(session)
                    await self._send(
                        writer, proto.OP_JSON,
                        json.dumps(doc, sort_keys=True).encode("utf-8"),
                    )
                elif opcode == proto.OP_BYE:
                    await self._send(
                        writer, proto.OP_JSON, b'{"ok": true, "op": "bye"}'
                    )
                    return
                else:
                    raise proto.ProtocolError(f"unknown opcode {opcode:#x}")
        finally:
            if session is not None:
                session.connections -= 1

    async def _send(
        self, writer: asyncio.StreamWriter, opcode: int, payload: bytes
    ) -> None:
        writer.write(proto.pack_frame(opcode, payload))
        await writer.drain()

    async def _send_values(
        self, writer: asyncio.StreamWriter, values
    ) -> None:
        """Frame a VALUES response with zero intermediate copies.

        The header and the payload are written as two buffers; the
        payload memoryview aliases the (byte-swapped in place) result
        array, which the fetch path owns and never re-reads.
        """
        payload = proto.values_payload(values)
        writer.write(proto.frame_header(proto.OP_VALUES, payload.nbytes))
        writer.write(payload)
        await writer.drain()

    async def _send_variates(
        self, writer: asyncio.StreamWriter, dist: str, words: int, values
    ) -> None:
        """Frame a VARIATES response; same zero-copy path as VALUES.

        Three buffers -- frame header, the 9-byte typed prefix (dist id
        + the session's word offset after the op), and the in-place
        byte-swapped value array.
        """
        prefix = proto.variates_prefix(dist, words)
        payload = proto.variates_payload(values)
        writer.write(proto.frame_header(
            proto.OP_VARIATES, len(prefix) + payload.nbytes
        ))
        writer.write(prefix)
        writer.write(payload)
        await writer.drain()

    # -- JSON-lines debug mode -----------------------------------------

    async def _serve_json(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        first_byte: bytes,
    ) -> None:
        session: Optional[_ServedSession] = None
        buffered = first_byte

        async def reply(doc: dict) -> None:
            writer.write(proto.json_line(doc))
            await writer.drain()

        try:
            while True:
                line = buffered + await reader.readline()
                buffered = b""
                if not line.strip():
                    return
                try:
                    msg = json.loads(line.decode("utf-8"))
                    if not isinstance(msg, dict):
                        raise ValueError("message must be a JSON object")
                    op = msg.get("op")
                except (ValueError, UnicodeDecodeError) as exc:
                    await reply({"ok": False, "error": f"bad JSON: {exc}"})
                    return
                if op == "hello":
                    session_id = str(msg.get("session", ""))
                    if not session_id:
                        await reply(
                            {"ok": False, "error": "missing session id"}
                        )
                        continue
                    if session is not None:
                        session.connections -= 1
                    session = self._get_or_create_session(session_id)
                    session.connections += 1
                    await reply({
                        "ok": True,
                        "op": "hello",
                        "session": session_id,
                        "stream_index": session.stream.index,
                        "lanes": self.config.lanes,
                    })
                elif op == "fetch":
                    try:
                        count = int(msg.get("n", 0))
                        values, busy = await self._fetch(session, count)
                    except proto.ServeError as exc:
                        await reply({"ok": False, "error": str(exc)})
                        continue
                    except Exception as exc:
                        self._record_error()
                        await reply({
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                        })
                        continue
                    if busy is not None:
                        await reply(
                            {"ok": False, "busy": True, "reason": busy}
                        )
                    else:
                        await reply({
                            "ok": True,
                            "op": "fetch",
                            "values": [int(v) for v in values],
                        })
                        self._journal_ack(session)
                elif op == "variate":
                    try:
                        dist = str(msg.get("dist", ""))
                        count = int(msg.get("n", 0))
                        if dist not in proto.DIST_IDS:
                            raise proto.ProtocolError(
                                f"unknown distribution {dist!r}"
                            )
                        raw_params = msg.get("params", {})
                        if not isinstance(raw_params, dict):
                            raise proto.ProtocolError(
                                "params must be an object"
                            )
                        result, busy = await self._fetch(
                            session, count, dist=dist, params=raw_params
                        )
                    except (proto.ServeError, ValueError) as exc:
                        await reply({"ok": False, "error": str(exc)})
                        continue
                    except Exception as exc:
                        self._record_error()
                        await reply({
                            "ok": False,
                            "error": f"{type(exc).__name__}: {exc}",
                        })
                        continue
                    if busy is not None:
                        await reply(
                            {"ok": False, "busy": True, "reason": busy}
                        )
                    else:
                        values, words = result
                        await reply({
                            "ok": True,
                            "op": "variate",
                            "dist": dist,
                            "words": words,
                            "values": [
                                float(v) if values.dtype.kind == "f"
                                else int(v)
                                for v in values
                            ],
                        })
                        self._journal_ack(session)
                elif op == "resume":
                    session_id = str(msg.get("session", ""))
                    if not session_id:
                        await reply(
                            {"ok": False, "error": "missing session id"}
                        )
                        continue
                    try:
                        offset = int(msg.get("offset", 0))
                        if session is not None:
                            session.connections -= 1
                            session = None
                        session = self._resume_session(session_id, offset)
                        session.connections += 1
                    except (proto.ProtocolError, ValueError) as exc:
                        await reply({"ok": False, "error": str(exc)})
                        continue
                    await reply({
                        "ok": True,
                        "op": "resume",
                        "session": session_id,
                        "offset": offset,
                        "stream_index": session.stream.index,
                        "lanes": session.stream.lanes,
                    })
                elif op == "status":
                    await reply(self.status_doc(session))
                elif op == "bye":
                    await reply({"ok": True, "op": "bye"})
                    return
                else:
                    await reply({"ok": False, "error": f"unknown op {op!r}"})
        finally:
            if session is not None:
                session.connections -= 1


class BackgroundServer:
    """An :class:`RNGServer` on a daemon thread with its own event loop.

    Context-manager handle used by blocking clients, tests, examples,
    and the throughput benchmark::

        with serve_background(ServeConfig(master_seed=7)) as handle:
            client = ServeClient(handle.host, handle.port, session="a")
    """

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.server: Optional[RNGServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        assert self.server is not None and self.server.port is not None
        return self.server.port

    def _main(self) -> None:
        async def run() -> None:
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            server = RNGServer(self.config)
            try:
                await server.start()
            except BaseException as exc:  # bind failure etc.
                self._startup_error = exc
                self._ready.set()
                return
            self.server = server
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await server.aclose()

        asyncio.run(run())

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._startup_error is not None:
            raise self._startup_error
        if self.server is None:
            raise proto.ServeError("server failed to start within 30s")
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None


def serve_background(config: Optional[ServeConfig] = None) -> BackgroundServer:
    """A ready-to-``with`` background server handle."""
    return BackgroundServer(config)
