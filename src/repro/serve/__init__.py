"""repro.serve: the on-demand RNG service layer.

The paper's differentiator over batch GPU generators is that the
expander-walk PRNG is *on demand* -- any consumer calls
``GetNextRand()`` whenever it wants a number.  This package carries that
contract across a network boundary, Shoverand-style: every client
session gets an **independently seeded, reproducible expander stream**
(SplitMix64 ``derive_seed`` under the server's master seed, keyed by the
session id), requests from all sessions are **coalesced into batches**
on a shared worker pool off the event loop, and overload is **explicit
backpressure** (bounded queues, per-session token buckets, ``BUSY``
responses) instead of unbounded buffering.

Modules
-------
:mod:`repro.serve.protocol`  length-prefixed binary frames + JSON-lines
                             debug mode, shared by server and clients;
:mod:`repro.serve.session`   per-client stream derivation and the
                             supervised feed chain behind each stream;
:mod:`repro.serve.batching`  request coalescing, the worker pool, and
                             the token-bucket rate limiter;
:mod:`repro.serve.journal`   the durable append-only session journal
                             behind crash recovery and ``RESUME``;
:mod:`repro.serve.server`    the asyncio TCP server + background-thread
                             harness for embedding;
:mod:`repro.serve.client`    blocking and asyncio clients.

See ``docs/serving.md`` for the protocol spec and operational
semantics, and ``examples/serve_client.py`` for a runnable walkthrough.
"""

from repro.serve.batching import BatchingExecutor, TokenBucket
from repro.serve.client import AsyncServeClient, ConnectError, ServeClient
from repro.serve.journal import JournalState, SessionJournal, read_journal
from repro.serve.protocol import (
    ProtocolError,
    ServeError,
    ServerBusyError,
    SessionRequiredError,
)
from repro.serve.server import (
    BackgroundServer,
    RNGServer,
    ServeConfig,
    serve_background,
)
from repro.serve.session import SessionStream, session_index, session_seed

__all__ = [
    "AsyncServeClient",
    "BackgroundServer",
    "BatchingExecutor",
    "ConnectError",
    "JournalState",
    "ProtocolError",
    "RNGServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerBusyError",
    "SessionJournal",
    "SessionRequiredError",
    "SessionStream",
    "TokenBucket",
    "read_journal",
    "serve_background",
    "session_index",
    "session_seed",
]
