"""Request coalescing and backpressure primitives for the RNG service.

The event loop must never generate numbers itself: a ``FETCH`` becomes a
:class:`BatchRequest` on a **bounded global queue**, a dispatcher
coroutine coalesces adjacent requests (up to ``max_batch``, waiting at
most ``window_s`` for stragglers) into one batch, and the batch is
executed on a shared :class:`~concurrent.futures.ThreadPoolExecutor` --
the serving analogue of the paper's block size ``S``: many small
on-demand requests amortize into one off-loop hop, exactly as many
per-thread numbers amortize one kernel launch.

Backpressure is explicit everywhere:

* the global queue is bounded -- :meth:`BatchingExecutor.try_submit`
  returns ``None`` (the server answers ``BUSY``) instead of buffering
  without limit;
* per-session in-flight caps and the :class:`TokenBucket` rate limiter
  are enforced by the server *before* submission;
* every stage records through :mod:`repro.obs.metrics`
  (``repro_serve_queue_depth``, ``repro_serve_batch_size``,
  ``repro_serve_request_latency_seconds``, ...), so overload is visible
  on the existing Prometheus/JSONL exporters.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.serve.protocol import ServeError
from repro.serve.session import SessionStream
from repro.utils.checks import check_positive

__all__ = ["TokenBucket", "BatchRequest", "BatchingExecutor",
           "BATCH_SIZE_BUCKETS", "LATENCY_BUCKETS"]

#: Batch-size histogram bounds (requests per executed batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Request-latency histogram bounds (seconds, serving-flavoured).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0
)


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Thread-safe; tokens are *numbers*, so ``try_acquire(n)`` charges a
    fetch by its size.  ``rate=None`` disables limiting entirely (every
    acquire succeeds), which is the server default.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        clock=time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None, got {rate}")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 0.0))
        if rate is not None and self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        if self.rate is None:
            return True
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token balance (refilled to now; for introspection)."""
        if self.rate is None:
            return float("inf")
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            return self._tokens


@dataclass
class BatchRequest:
    """One FETCH or VARIATE in flight: stream, size, typed-or-raw, sink.

    ``dist is None`` is a raw word fetch resolving to a uint64 array;
    otherwise the request resolves to the session's
    ``(values, words_served_after)`` variate tuple.
    """

    session: SessionStream
    count: int
    future: "asyncio.Future"
    dist: Optional[str] = None
    params: Optional[dict] = None
    enqueued_at: float = field(default_factory=time.monotonic)


class BatchingExecutor:
    """Coalesces FETCH requests and runs them on a worker pool.

    Must be started (and closed) from within a running event loop; the
    worker threads hand results back with ``loop.call_soon_threadsafe``.

    Parameters
    ----------
    max_queue : int
        Global bound on queued-but-unexecuted requests; the overload
        valve.  When full, :meth:`try_submit` returns ``None``.
    max_batch : int
        Most requests coalesced into one worker-pool hop.
    window_s : float
        How long the dispatcher waits for stragglers once a batch has
        its first request.  ``0`` disables coalescing delay.
    workers : int
        Worker threads executing batches (sessions are locked
        individually, so concurrent batches are safe).
    """

    def __init__(
        self,
        max_queue: int = 256,
        max_batch: int = 64,
        window_s: float = 0.002,
        workers: int = 2,
    ):
        check_positive("max_queue", max_queue)
        check_positive("max_batch", max_batch)
        check_positive("workers", workers)
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        self.max_queue = int(max_queue)
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self.workers = int(workers)
        self._queue: Optional["asyncio.Queue[BatchRequest]"] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        # One slot per worker: the dispatcher must not move requests out
        # of the *bounded* queue into the executor's unbounded internal
        # queue faster than workers drain them -- that would turn the
        # global cap into a fiction.  While every worker is busy,
        # requests stay queued and overflow becomes BUSY.
        self._slots = asyncio.Semaphore(self.workers)
        self._closing = False
        self._dispatcher = self._loop.create_task(self._dispatch())

    async def aclose(self) -> None:
        """Stop dispatching; fail whatever is still queued."""
        self._closing = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            while not self._queue.empty():
                req = self._queue.get_nowait()
                if not req.future.done():
                    req.future.set_exception(
                        ServeError("server shutting down")
                    )
            self._observe_depth()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Submission (event-loop side)
    # ------------------------------------------------------------------

    def try_submit(
        self,
        session: SessionStream,
        count: int,
        dist: Optional[str] = None,
        params: Optional[dict] = None,
    ) -> Optional["asyncio.Future"]:
        """Enqueue a request, or return ``None`` when the queue is full.

        ``dist`` switches the request to the typed-variate path; raw
        word fetches and variate ops share the queue, the coalescing
        window, and the worker pool (one backpressure story for both).
        """
        if self._queue is None or self._loop is None or self._closing:
            raise ServeError("executor is not running")
        future: "asyncio.Future" = self._loop.create_future()
        req = BatchRequest(
            session=session, count=count, future=future,
            dist=dist, params=params,
        )
        try:
            self._queue.put_nowait(req)
        except asyncio.QueueFull:
            return None
        self._observe_depth()
        return future

    @property
    def queue_depth(self) -> int:
        return 0 if self._queue is None else self._queue.qsize()

    def _observe_depth(self) -> None:
        obs_metrics.gauge(
            "repro_serve_queue_depth", "FETCH requests queued, not yet run"
        ).set(self.queue_depth)

    # ------------------------------------------------------------------
    # Dispatch (event-loop side) and execution (worker threads)
    # ------------------------------------------------------------------

    async def _dispatch(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            await self._slots.acquire()
            batch = [await self._queue.get()]
            deadline = self._loop.time() + self.window_s
            while len(batch) < self.max_batch:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    # Window elapsed; sweep whatever is already queued.
                    while (
                        len(batch) < self.max_batch
                        and not self._queue.empty()
                    ):
                        batch.append(self._queue.get_nowait())
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self._observe_depth()
            obs_metrics.histogram(
                "repro_serve_batch_size", BATCH_SIZE_BUCKETS,
                "FETCH requests coalesced per worker-pool batch",
            ).observe(len(batch))
            obs_metrics.counter(
                "repro_serve_batches_total", "Batches run on the worker pool"
            ).inc()
            self._pool.submit(self._execute, batch, self._loop)

    def _execute(
        self, batch: List[BatchRequest], loop: asyncio.AbstractEventLoop
    ) -> None:
        latency = obs_metrics.histogram(
            "repro_serve_request_latency_seconds", LATENCY_BUCKETS,
            "FETCH latency from enqueue to values ready",
        )
        try:
            for req in batch:
                if req.future.cancelled():
                    # Client is gone; don't advance its stream for nothing.
                    continue
                try:
                    if req.dist is None:
                        values = req.session.generate(req.count)
                    else:
                        values = req.session.variates(
                            req.dist, req.count, req.params
                        )
                except BaseException as exc:  # noqa: BLE001 - worker boundary
                    loop.call_soon_threadsafe(_resolve, req.future, None, exc)
                    continue
                latency.observe(time.monotonic() - req.enqueued_at)
                loop.call_soon_threadsafe(_resolve, req.future, values, None)
        finally:
            loop.call_soon_threadsafe(self._release_slot)

    def _release_slot(self) -> None:
        if self._slots is not None:
            self._slots.release()


def _resolve(future: asyncio.Future, values, exc) -> None:
    """Settle ``future`` on the loop thread, tolerating cancellation."""
    if future.done():
        return
    if exc is not None:
        future.set_exception(exc)
    else:
        future.set_result(values)
