"""Request coalescing, cross-session round planning, and backpressure.

The event loop must never generate numbers itself: a ``FETCH`` becomes a
:class:`BatchRequest` on a **bounded global queue**, a dispatcher
coroutine coalesces adjacent requests (up to ``max_batch``, waiting at
most ``window_s`` for stragglers) into one batch, and the batch is
executed on a shared :class:`~concurrent.futures.ThreadPoolExecutor` --
the serving analogue of the paper's block size ``S``: many small
on-demand requests amortize into one off-loop hop, exactly as many
per-thread numbers amortize one kernel launch.

Execution is *actually* batched: the worker does not run one engine
round trip per request.  It locks every session in the batch (one total
order -- session id -- so concurrent batches cannot deadlock), asks each
session how many words it needs beyond its readahead buffer
(:meth:`~repro.serve.session.SessionStream.plan_fill`, raw counts plus
conservative variate word estimates), fuses every engine-backed
session's ``(stream, offset, count)`` span into **one**
:meth:`~repro.engine.sharded.ShardedEngine.fetch_spans` round (a
handful of capped worker messages), scatters the returned buffers into
the sessions' readahead buffers, and then serves each request from
buffer -- raw fetches as zero-copy views handed to the PR 6 framing
path, variates sampled on scatter through the same word stream.  Word
estimates are only a prefetch hint: a rejection-sampler overrun falls
back to a direct fetch at the exact absolute offset, so every served
byte is identical with coalescing/readahead on or off, and
``words_served`` stays the only resume coordinate.

Backpressure is explicit everywhere:

* the global queue is bounded -- :meth:`BatchingExecutor.try_submit`
  returns ``None`` (the server answers ``BUSY``) instead of buffering
  without limit;
* per-session in-flight caps and the :class:`TokenBucket` rate limiter
  are enforced by the server *before* submission;
* every stage records through :mod:`repro.obs.metrics`
  (``repro_serve_queue_depth``, ``repro_serve_batch_size``,
  ``repro_serve_request_latency_seconds``, ...), so overload is visible
  on the existing Prometheus/JSONL exporters.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.serve.protocol import ServeError
from repro.serve.session import SessionStream
from repro.utils.checks import check_positive

__all__ = ["TokenBucket", "BatchRequest", "BatchingExecutor",
           "ResponseCache", "BATCH_SIZE_BUCKETS", "LATENCY_BUCKETS",
           "FUSED_SPAN_BUCKETS"]

#: Batch-size histogram bounds (requests per executed batch).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Request-latency histogram bounds (seconds, serving-flavoured).
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0
)

#: Fused-span histogram bounds (sessions fused per engine round).
FUSED_SPAN_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: Conservative words-per-value estimate for planning a VARIATE's word
#: span (the samplers are rejection-based, so true consumption is
#: data-dependent; see :data:`repro.dist.SERVE_DISTRIBUTIONS`).  Only a
#: prefetch hint -- an overrun falls back to a direct fetch at the
#: exact offset, so estimates can never change served bytes.
_VARIATE_WORDS_PER_VALUE = {
    "uniform01": 1,
    "normal": 2,
    "exponential": 1,
    "integers": 1,
}


def _estimate_words(req: "BatchRequest") -> int:
    """Planner's word-span estimate for one request."""
    if req.dist is None:
        return req.count  # raw fetches are exact: one word per number
    per = _VARIATE_WORDS_PER_VALUE.get(req.dist, 2)
    # Rejection margin: a few percent plus a constant floor covers the
    # ziggurat (~1.5% rejects) and Lemire (~0% for sane ranges) tails.
    return per * req.count + (req.count >> 5) + 8


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    Thread-safe; tokens are *numbers*, so ``try_acquire(n)`` charges a
    fetch by its size.  ``rate=None`` disables limiting entirely (every
    acquire succeeds), which is the server default.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        clock=time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive or None, got {rate}")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 0.0))
        if rate is not None and self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        if self.rate is None:
            return True
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        """Current token balance (refilled to now; for introspection)."""
        if self.rate is None:
            return float("inf")
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            return self._tokens


class ResponseCache:
    """Byte-bounded LRU over engine span fetches.

    Keys are full stream coordinates -- ``(engine, seed, lanes, offset,
    count)`` -- so a hit is *definitionally* byte-identical to the
    engine fetch it replaces: streams are pure functions of their
    coordinates, and the engine id pins walk length/policy.  Replayed
    and overlapping-session workloads (many cursors walking the same
    stream region) skip the engine round-trip entirely.

    Both :meth:`put` and :meth:`get` copy: the wire path byteswaps
    served buffers **in place** on big-endian framing, so the cache
    must never share memory with anything it hands out.

    Thread-safe; sized in payload bytes, evicting least-recently-used
    entries once over budget.  An entry larger than the whole budget is
    simply not cached.
    """

    def __init__(self, max_bytes: int):
        check_positive("max_bytes", max_bytes)
        self.max_bytes = int(max_bytes)
        self._entries: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self._hits = obs_metrics.counter(
            "repro_serve_cache_hits_total",
            "Engine span fetches served from the response cache",
        )
        self._misses = obs_metrics.counter(
            "repro_serve_cache_misses_total",
            "Engine span fetches that missed the response cache",
        )

    def get(self, key: tuple) -> Optional[np.ndarray]:
        """A fresh copy of the cached buffer, or ``None`` on miss."""
        with self._lock:
            buf = self._entries.get(key)
            if buf is None:
                self._misses.inc()
                return None
            self._entries.move_to_end(key)
            self._hits.inc()
            return buf.copy()

    def put(self, key: tuple, words: np.ndarray) -> None:
        """Cache a *copy* of ``words``, evicting LRU entries over budget."""
        size = int(words.nbytes)
        if size > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
            self._entries[key] = words.copy()
            self._bytes += size
            while self._bytes > self.max_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= evicted.nbytes

    @property
    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"entries": len(self._entries), "bytes": self._bytes}


@dataclass
class BatchRequest:
    """One FETCH or VARIATE in flight: stream, size, typed-or-raw, sink.

    ``dist is None`` is a raw word fetch resolving to a uint64 array;
    otherwise the request resolves to the session's
    ``(values, words_served_after)`` variate tuple.

    ``future`` is attached *after* the request is accepted onto the
    queue (see :meth:`BatchingExecutor.try_submit`): a rejected request
    must never have owned a future, or the BUSY path would leak a
    forever-pending future on the loop.
    """

    session: SessionStream
    count: int
    future: Optional["asyncio.Future"] = None
    dist: Optional[str] = None
    params: Optional[dict] = None
    enqueued_at: float = field(default_factory=time.monotonic)


class BatchingExecutor:
    """Coalesces FETCH requests and runs them on a worker pool.

    Must be started (and closed) from within a running event loop; the
    worker threads hand results back with ``loop.call_soon_threadsafe``.

    Parameters
    ----------
    max_queue : int
        Global bound on queued-but-unexecuted requests; the overload
        valve.  When full, :meth:`try_submit` returns ``None``.
    max_batch : int
        Most requests coalesced into one worker-pool hop.
    window_s : float
        How long the dispatcher waits for stragglers once a batch has
        its first request.  ``0`` disables coalescing delay.
    workers : int
        Worker threads executing batches (sessions are locked
        individually, so concurrent batches are safe).
    cache_bytes : int
        Budget for the :class:`ResponseCache` over engine span fetches;
        ``0`` (the default) disables caching entirely.
    """

    def __init__(
        self,
        max_queue: int = 256,
        max_batch: int = 64,
        window_s: float = 0.002,
        workers: int = 2,
        cache_bytes: int = 0,
    ):
        check_positive("max_queue", max_queue)
        check_positive("max_batch", max_batch)
        check_positive("workers", workers)
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if cache_bytes < 0:
            raise ValueError(
                f"cache_bytes must be >= 0, got {cache_bytes}"
            )
        self.max_queue = int(max_queue)
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self.workers = int(workers)
        self._cache: Optional[ResponseCache] = (
            ResponseCache(cache_bytes) if cache_bytes else None
        )
        self._queue: Optional["asyncio.Queue[BatchRequest]"] = None
        self._pool: Optional[ThreadPoolExecutor] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._pool = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        # One slot per worker: the dispatcher must not move requests out
        # of the *bounded* queue into the executor's unbounded internal
        # queue faster than workers drain them -- that would turn the
        # global cap into a fiction.  While every worker is busy,
        # requests stay queued and overflow becomes BUSY.
        self._slots = asyncio.Semaphore(self.workers)
        self._closing = False
        self._dispatcher = self._loop.create_task(self._dispatch())

    async def aclose(self) -> None:
        """Stop dispatching; fail whatever is still queued."""
        self._closing = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if self._queue is not None:
            while not self._queue.empty():
                req = self._queue.get_nowait()
                if req.future is not None and not req.future.done():
                    req.future.set_exception(
                        ServeError("server shutting down")
                    )
            self._observe_depth()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Submission (event-loop side)
    # ------------------------------------------------------------------

    def try_submit(
        self,
        session: SessionStream,
        count: int,
        dist: Optional[str] = None,
        params: Optional[dict] = None,
    ) -> Optional["asyncio.Future"]:
        """Enqueue a request, or return ``None`` when the queue is full.

        ``dist`` switches the request to the typed-variate path; raw
        word fetches and variate ops share the queue, the coalescing
        window, and the worker pool (one backpressure story for both).
        """
        if self._queue is None or self._loop is None or self._closing:
            raise ServeError("executor is not running")
        req = BatchRequest(
            session=session, count=count, dist=dist, params=params,
        )
        try:
            self._queue.put_nowait(req)
        except asyncio.QueueFull:
            # No future exists yet, so the BUSY path leaks nothing.
            return None
        # Attach the future only once the request is actually queued.
        # try_submit runs synchronously on the loop thread, so the
        # dispatcher (a coroutine on the same loop) cannot observe the
        # request before the future is in place.
        future: "asyncio.Future" = self._loop.create_future()
        req.future = future
        self._observe_depth()
        return future

    @property
    def queue_depth(self) -> int:
        return 0 if self._queue is None else self._queue.qsize()

    def _observe_depth(self) -> None:
        obs_metrics.gauge(
            "repro_serve_queue_depth", "FETCH requests queued, not yet run"
        ).set(self.queue_depth)

    # ------------------------------------------------------------------
    # Dispatch (event-loop side) and execution (worker threads)
    # ------------------------------------------------------------------

    async def _dispatch(self) -> None:
        assert self._queue is not None and self._loop is not None
        while True:
            await self._slots.acquire()
            batch: List[BatchRequest] = []
            submitted = False
            try:
                batch.append(await self._queue.get())
                deadline = self._loop.time() + self.window_s
                while len(batch) < self.max_batch:
                    remaining = deadline - self._loop.time()
                    if remaining <= 0:
                        # Window elapsed; sweep whatever is queued.
                        while (
                            len(batch) < self.max_batch
                            and not self._queue.empty()
                        ):
                            batch.append(self._queue.get_nowait())
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(
                                self._queue.get(), remaining
                            )
                        )
                    except asyncio.TimeoutError:
                        break
                self._observe_depth()
                obs_metrics.histogram(
                    "repro_serve_batch_size", BATCH_SIZE_BUCKETS,
                    "FETCH requests coalesced per worker-pool batch",
                ).observe(len(batch))
                obs_metrics.counter(
                    "repro_serve_batches_total",
                    "Batches run on the worker pool",
                ).inc()
                self._pool.submit(self._execute, batch, self._loop)
                submitted = True
            finally:
                if not submitted:
                    # Cancelled mid-coalesce (aclose) or the pool
                    # refused the batch: these requests are off the
                    # queue, so nothing else can ever settle them --
                    # fail them here instead of leaving clients to
                    # hang until timeout.
                    for req in batch:
                        if req.future is not None and not req.future.done():
                            req.future.set_exception(
                                ServeError("server shutting down")
                            )
                    self._release_slot()

    # -- the cross-session round planner (worker thread) ---------------

    def _prefill(self, batch: List[BatchRequest],
                 sessions: List[SessionStream]) -> None:
        """Fuse the batch's engine demand into single multi-span rounds.

        Caller holds every session's lock.  Each session's estimated
        word demand beyond its buffer becomes one ``(stream, offset,
        count)`` span; all spans against the same engine go out as one
        :meth:`fetch_spans` call (the engine packs them into capped
        worker rounds), and each returned buffer lands in its session's
        readahead deque -- the serve step then slices zero-copy views
        out of it.  In-process sessions with readahead prefill from
        their own bank; a failed span is simply skipped here, and the
        serve step's direct fetch surfaces the error per request.
        """
        demand: Dict[int, int] = {}
        by_id: Dict[int, SessionStream] = {id(s): s for s in sessions}
        for req in batch:
            if req.future is not None and req.future.cancelled():
                continue
            key = id(req.session)
            demand[key] = demand.get(key, 0) + _estimate_words(req)
        engines: Dict[int, Tuple[object, List[Tuple[SessionStream, int]]]] \
            = {}
        prefill_words = 0
        for s in sessions:
            d = demand.get(id(s), 0)
            if d <= 0:
                continue
            if s.engine is not None:
                need = s.plan_fill(d)
                if need > 0:
                    engines.setdefault(id(s.engine), (s.engine, []))[1] \
                        .append((s, need))
                else:
                    obs_metrics.counter(
                        "repro_serve_readahead_hits_total",
                        "Session demands served entirely from readahead",
                    ).inc()
            elif s.readahead_max > 0:
                need = s.plan_fill(d)
                if need > 0:
                    s.fill_local(need)
                    prefill_words += need
                else:
                    obs_metrics.counter(
                        "repro_serve_readahead_hits_total",
                        "Session demands served entirely from readahead",
                    ).inc()
            # else: in-process, readahead off -- the direct draw path
            # already runs one fused in-process launch per request.
        for engine, fills in engines.values():
            # Consult the response cache first: streams are pure
            # functions of (seed, lanes, offset, count) under one
            # engine config, so a keyed hit IS the engine's answer.
            misses: List[Tuple[SessionStream, int, tuple]] = []
            for s, n in fills:
                key = (id(engine), s.seed, s.lanes, s.fill_offset(), n)
                cached = (
                    self._cache.get(key)
                    if self._cache is not None else None
                )
                if cached is not None:
                    s.push_readahead(cached)
                    prefill_words += cached.size
                else:
                    misses.append((s, n, key))
            if not misses:
                continue
            spans = [
                (s.seed, s.lanes, s.fill_offset(), n)
                for s, n, _ in misses
            ]
            obs_metrics.histogram(
                "repro_serve_fused_spans", FUSED_SPAN_BUCKETS,
                "Session spans fused into one engine round",
            ).observe(len(spans))
            results = engine.fetch_spans(spans)
            for (s, n, key), res in zip(misses, results):
                if isinstance(res, np.ndarray):
                    if self._cache is not None:
                        self._cache.put(key, res)
                    s.push_readahead(res)
                    prefill_words += res.size
                # An Exception here is deliberately dropped: the span's
                # session serves via a direct fetch below, which raises
                # the real error on the request(s) that hit it.
        if prefill_words:
            obs_metrics.counter(
                "repro_serve_prefill_words_total",
                "Words prefetched into session readahead buffers",
            ).inc(prefill_words)

    def _execute(
        self, batch: List[BatchRequest], loop: asyncio.AbstractEventLoop
    ) -> None:
        latency = obs_metrics.histogram(
            "repro_serve_request_latency_seconds", LATENCY_BUCKETS,
            "FETCH latency from enqueue to settled (any outcome)",
        )
        outcomes = {
            key: obs_metrics.counter(
                f"repro_serve_requests_{key}_total",
                f"FETCH/VARIATE requests settled with outcome={key}",
            )
            for key in ("ok", "error", "cancelled")
        }
        try:
            # One total lock order -- session id -- so two concurrent
            # batches touching overlapping session sets cannot deadlock
            # (and it nests consistently above the engine's ascending
            # shard-lock order inside fetch_spans).
            sessions = sorted(
                {id(r.session): r.session for r in batch}.values(),
                key=lambda s: (s.session_id, id(s)),
            )
            for s in sessions:
                s.lock.acquire()
            try:
                try:
                    self._prefill(batch, sessions)
                except BaseException:  # noqa: BLE001 - planner is advisory
                    # Planning is pure optimization: if it blows up
                    # (e.g. a dead engine), fall through and let each
                    # request surface its own error from the direct
                    # fetch path.
                    pass
                for req in batch:
                    if req.future is not None and req.future.cancelled():
                        # Client is gone; don't advance its stream.
                        outcomes["cancelled"].inc()
                        continue
                    try:
                        if req.dist is None:
                            values = req.session.generate_locked(req.count)
                        else:
                            values = req.session.variates_locked(
                                req.dist, req.count, req.params
                            )
                    except BaseException as exc:  # noqa: BLE001 - boundary
                        # Failures count toward latency too: a p99 that
                        # drops its slowest (failing) requests is a lie
                        # to the serve gate.
                        latency.observe(time.monotonic() - req.enqueued_at)
                        outcomes["error"].inc()
                        loop.call_soon_threadsafe(
                            _resolve, req.future, None, exc
                        )
                        continue
                    latency.observe(time.monotonic() - req.enqueued_at)
                    outcomes["ok"].inc()
                    loop.call_soon_threadsafe(
                        _resolve, req.future, values, None
                    )
            finally:
                for s in reversed(sessions):
                    s.lock.release()
        except BaseException as exc:  # noqa: BLE001 - never lose a batch
            for req in batch:
                loop.call_soon_threadsafe(_resolve, req.future, None, exc)
        finally:
            loop.call_soon_threadsafe(self._release_slot)

    def _release_slot(self) -> None:
        if self._slots is not None:
            self._slots.release()


def _resolve(future: Optional[asyncio.Future], values, exc) -> None:
    """Settle ``future`` on the loop thread, tolerating cancellation."""
    if future is None or future.done():
        return
    if exc is not None:
        future.set_exception(exc)
    else:
        future.set_result(values)
