"""Hybrid CPU+GPU orchestration: work units, throughput model, scheduler."""

from repro.hybrid.multiproc import multicore_generate, serial_equivalent
from repro.hybrid.scheduler import GenerationPlan, HybridScheduler
from repro.hybrid.throughput import (
    cpu_hybrid_time_ns,
    curand_time_ns,
    glibc_rand_time_ns,
    hybrid_time_ns,
    mt_time_ns,
    optimal_batch_size,
    stage_times_ns,
    utilization_report,
)
from repro.hybrid.workunits import DEVICE_MAPPING, WorkItem, WorkUnit

__all__ = [
    "multicore_generate",
    "serial_equivalent",
    "GenerationPlan",
    "HybridScheduler",
    "cpu_hybrid_time_ns",
    "curand_time_ns",
    "glibc_rand_time_ns",
    "hybrid_time_ns",
    "mt_time_ns",
    "optimal_batch_size",
    "stage_times_ns",
    "utilization_report",
    "DEVICE_MAPPING",
    "WorkItem",
    "WorkUnit",
]
