"""Multicore CPU generation -- the paper's OpenMP variant (Section IV-A).

"Our hybrid generator can also work on other multicore architectures ...
each core of the CPU runs threads which perform random walks on the
implicitly defined expander graph."  This module is that variant for
Python: independent walker banks (substreams of one master seed) run in
separate *processes* (sidestepping the GIL exactly as OpenMP sidesteps
nothing it needs to), and their outputs concatenate into one stream.

Determinism: the output for ``(seed, workers, n)`` is reproducible;
worker ``i`` generates the ``i``-th slice using substream ``i``, so the
values equal running the same substreams serially.

Failure handling: a worker that raises is retried once (a fresh
submission -- transient faults such as OOM kills or a flaky bit source
get a second chance) and, if it fails again, the run raises a
:class:`~repro.resilience.errors.WorkerFailedError` naming the worker,
the attempt count and the original exception -- never a bare pool
traceback, and never a silent concatenation of partial results.  Each
result collection is bounded by ``timeout`` so a wedged worker cannot
hang the caller.  A ``pool`` passed in by the caller is never closed or
terminated by this module.

NOTE: wall-clock speedup requires actual cores; on a single-core
container (such as the reproduction environment) the decomposition is
correct but not faster -- the serial-equivalence tests are the point.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Optional

import numpy as np

from repro.bitsource.base import BitSource
from repro.bitsource.counter import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG
from repro.core.streams import derive_seed
from repro.obs import metrics as obs_metrics
from repro.resilience.errors import WorkerFailedError
from repro.utils.checks import check_positive

__all__ = ["multicore_generate", "serial_equivalent"]

_DEFAULT_LANES = 1 << 14

#: Default per-worker result deadline (seconds).  Generous: its job is
#: turning a wedged worker into a diagnosable error, not racing slow
#: machines.  ``timeout=None`` waits forever.
DEFAULT_WORKER_TIMEOUT = 300.0


def _worker(args) -> np.ndarray:
    seed, count, lanes, walk_length, factory = args
    source: BitSource = (factory or SplitMix64Source)(seed)
    prng = ParallelExpanderPRNG(
        num_threads=lanes,
        bit_source=source,
        walk_length=walk_length,
    )
    return prng.generate(count)


def _slices(n: int, workers: int) -> list:
    base = n // workers
    rem = n % workers
    return [base + (1 if i < rem else 0) for i in range(workers)]


def _worker_failed(index: int, attempts: int,
                   exc: BaseException) -> WorkerFailedError:
    obs_metrics.counter(
        "repro_worker_failures_total",
        "Multiproc workers that failed past their retry",
    ).inc()
    if isinstance(exc, mp.TimeoutError):
        detail = "timed out"
    else:
        detail = f"raised {type(exc).__name__}: {exc}"
    return WorkerFailedError(
        f"multicore worker {index} {detail} after {attempts} attempt(s); "
        f"no partial results were returned",
        worker_index=index,
        attempts=attempts,
        cause=exc,
    )


def _run_inline(job, index: int, retries: int) -> np.ndarray:
    last: Optional[BaseException] = None
    for attempt in range(1, retries + 2):
        if attempt > 1:
            obs_metrics.counter(
                "repro_worker_retries_total", "Multiproc worker retries"
            ).inc()
        try:
            return _worker(job)
        except Exception as exc:  # noqa: BLE001 - reported via WorkerFailedError
            last = exc
    raise _worker_failed(index, retries + 1, last)


def multicore_generate(
    n: int,
    workers: int = 2,
    seed: int = 0,
    lanes: int = _DEFAULT_LANES,
    walk_length: int = 64,
    pool: Optional[mp.pool.Pool] = None,
    timeout: Optional[float] = DEFAULT_WORKER_TIMEOUT,
    retries: int = 1,
    bit_source_factory: Optional[Callable[[int], BitSource]] = None,
) -> np.ndarray:
    """Generate ``n`` numbers across ``workers`` processes.

    Each worker owns an independent substream (derived from ``seed``);
    results are concatenated worker-major.  Pass an existing ``pool`` to
    amortize process startup across calls (it is left open either way).

    ``timeout`` bounds each worker's result collection; ``retries`` says
    how many times a crashed worker is resubmitted (default once)
    before the run fails with a :class:`WorkerFailedError`.
    ``bit_source_factory`` (a picklable ``seed -> BitSource`` callable)
    overrides the per-worker feed -- how the chaos tests reach inside a
    worker.
    """
    check_positive("n", n)
    check_positive("workers", workers)
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    jobs = [
        (derive_seed(seed, i), count, lanes, walk_length, bit_source_factory)
        for i, count in enumerate(_slices(n, workers))
        if count > 0
    ]
    if workers == 1:
        return _run_inline(jobs[0], 0, retries)
    owned: Optional[mp.pool.Pool] = None
    if pool is None:
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() \
            else mp.get_context("spawn")
        owned = ctx.Pool(processes=min(workers, len(jobs)))
    use = pool if pool is not None else owned
    try:
        pending = [use.apply_async(_worker, (job,)) for job in jobs]
        parts = []
        for i, handle in enumerate(pending):
            try:
                parts.append(handle.get(timeout))
                continue
            except mp.TimeoutError as exc:
                # A wedged worker is not retried: the retry would double
                # the wait and the process is likely still stuck.
                raise _worker_failed(i, 1, exc)
            except Exception as exc:  # noqa: BLE001
                last = exc
            for attempt in range(2, retries + 2):
                obs_metrics.counter(
                    "repro_worker_retries_total", "Multiproc worker retries"
                ).inc()
                try:
                    parts.append(use.apply_async(_worker, (jobs[i],))
                                 .get(timeout))
                    break
                except mp.TimeoutError as exc:
                    raise _worker_failed(i, attempt, exc)
                except Exception as exc:  # noqa: BLE001
                    last = exc
            else:
                raise _worker_failed(i, retries + 1, last)
    finally:
        if owned is not None:
            owned.terminate()
            owned.join()
    # Defense in depth: a partial stream must never look like a result.
    if len(parts) != len(jobs) or sum(p.size for p in parts) != n:
        raise WorkerFailedError(
            f"internal error: expected {n} numbers from {len(jobs)} workers, "
            f"got {sum(p.size for p in parts)} from {len(parts)}"
        )
    return np.concatenate(parts)


def serial_equivalent(
    n: int,
    workers: int,
    seed: int = 0,
    lanes: int = _DEFAULT_LANES,
    walk_length: int = 64,
    bit_source_factory: Optional[Callable[[int], BitSource]] = None,
) -> np.ndarray:
    """The exact stream :func:`multicore_generate` produces, single-process.

    Used by tests to prove the parallel decomposition changes nothing.
    """
    parts = [
        _worker((derive_seed(seed, i), count, lanes, walk_length,
                 bit_source_factory))
        for i, count in enumerate(_slices(n, workers))
        if count > 0
    ]
    return np.concatenate(parts)
