"""Multicore CPU generation -- the paper's OpenMP variant (Section IV-A).

"Our hybrid generator can also work on other multicore architectures ...
each core of the CPU runs threads which perform random walks on the
implicitly defined expander graph."  This module is that variant for
Python: independent walker banks (substreams of one master seed) run in
separate *processes* (sidestepping the GIL exactly as OpenMP sidesteps
nothing it needs to), and their outputs concatenate into one stream.

Determinism: the output for ``(seed, workers, n)`` is reproducible;
worker ``i`` generates the ``i``-th slice using substream ``i``, so the
values equal running the same substreams serially.

NOTE: wall-clock speedup requires actual cores; on a single-core
container (such as the reproduction environment) the decomposition is
correct but not faster -- the serial-equivalence tests are the point.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Optional

import numpy as np

from repro.bitsource.counter import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG
from repro.core.streams import derive_seed
from repro.utils.checks import check_positive

__all__ = ["multicore_generate", "serial_equivalent"]

_DEFAULT_LANES = 1 << 14


def _worker(args) -> np.ndarray:
    seed, count, lanes, walk_length = args
    prng = ParallelExpanderPRNG(
        num_threads=lanes,
        bit_source=SplitMix64Source(seed),
        walk_length=walk_length,
    )
    return prng.generate(count)


def _slices(n: int, workers: int) -> list:
    base = n // workers
    rem = n % workers
    return [base + (1 if i < rem else 0) for i in range(workers)]


def multicore_generate(
    n: int,
    workers: int = 2,
    seed: int = 0,
    lanes: int = _DEFAULT_LANES,
    walk_length: int = 64,
    pool: Optional[mp.pool.Pool] = None,
) -> np.ndarray:
    """Generate ``n`` numbers across ``workers`` processes.

    Each worker owns an independent substream (derived from ``seed``);
    results are concatenated worker-major.  Pass an existing ``pool`` to
    amortize process startup across calls.
    """
    check_positive("n", n)
    check_positive("workers", workers)
    jobs = [
        (derive_seed(seed, i), count, lanes, walk_length)
        for i, count in enumerate(_slices(n, workers))
        if count > 0
    ]
    if workers == 1:
        return _worker(jobs[0])
    if pool is not None:
        parts = pool.map(_worker, jobs)
    else:
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() \
            else mp.get_context("spawn")
        with ctx.Pool(processes=workers) as owned:
            parts = owned.map(_worker, jobs)
    return np.concatenate(parts)


def serial_equivalent(
    n: int,
    workers: int,
    seed: int = 0,
    lanes: int = _DEFAULT_LANES,
    walk_length: int = 64,
) -> np.ndarray:
    """The exact stream :func:`multicore_generate` produces, single-process.

    Used by tests to prove the parallel decomposition changes nothing.
    """
    parts = [
        _worker((derive_seed(seed, i), count, lanes, walk_length))
        for i, count in enumerate(_slices(n, workers))
        if count > 0
    ]
    return np.concatenate(parts)
