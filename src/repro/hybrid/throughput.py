"""Closed-form timing of the hybrid pipeline and the baseline generators.

The discrete-event simulator (:mod:`repro.gpusim.pipeline`) and this
module compute the same quantity two ways; the test suite asserts they
agree.  The closed form is the classic three-stage pipeline recurrence
over iterations ``i = 1..S``::

    f_i = f_{i-1} + F              (CPU feeds serially)
    t_i = max(f_i, t_{i-1}) + X    (PCIe after its input and itself)
    g_i = max(t_i, g_{i-1}) + G    (GPU after its input and itself)

with ``g_0`` = the Algorithm-1 initialization pass.  Completion time is
``g_S``; buffer depth >= 1 cannot change it (a full buffer only ever
delays a producer, never the consumer that sets the critical path).

Also provided: simulated generation times for the comparison generators
of Figure 3 (GPU Mersenne Twister, CURAND) and Figure 6 (CPU-only hybrid
vs glibc ``rand()``), using :class:`~repro.gpusim.calibration.BaselineCosts`.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

from repro.gpusim.calibration import BaselineCosts, PipelineCosts
from repro.gpusim.device import CpuSpec
from repro.gpusim.pipeline import PipelineConfig
from repro.utils.checks import check_positive

__all__ = [
    "hybrid_time_ns",
    "stage_times_ns",
    "mt_time_ns",
    "curand_time_ns",
    "cpu_hybrid_time_ns",
    "glibc_rand_time_ns",
    "optimal_batch_size",
    "utilization_report",
]


def stage_times_ns(config: PipelineConfig) -> tuple:
    """Per-iteration (feed, transfer, generate, init) times in ns."""
    costs = config.costs
    T = config.num_threads
    feed = T * costs.feed_ns
    transfer = T * costs.transfer_ns + costs.transfer_latency_ns
    gen = T * costs.generate_ns_effective(T) + costs.launch_overhead_ns
    init = (
        T * costs.init_numbers_per_thread * costs.generate_ns_effective(T)
        + costs.launch_overhead_ns
    )
    return feed, transfer, gen, init


def hybrid_time_ns(config: PipelineConfig) -> float:
    """Completion time of the hybrid pipeline via the exact recurrence."""
    F, X, G, init = stage_times_ns(config)
    f = t = 0.0
    g = init
    for _ in range(config.iterations):
        f = f + F
        t = max(f, t) + X
        g = max(t, g) + G
    return g


def mt_time_ns(n: int, costs: Optional[BaselineCosts] = None) -> float:
    """Simulated time for the SDK Mersenne Twister to emit ``n`` numbers."""
    check_positive("n", n)
    c = costs or BaselineCosts()
    return c.mersenne_twister_setup_ns + n * c.mersenne_twister_ns


def curand_time_ns(n: int, costs: Optional[BaselineCosts] = None) -> float:
    """Simulated time for CURAND (device API) to emit ``n`` numbers."""
    check_positive("n", n)
    c = costs or BaselineCosts()
    return c.curand_setup_ns + n * c.curand_ns


def cpu_hybrid_time_ns(
    n: int,
    cpu: Optional[CpuSpec] = None,
    costs: Optional[BaselineCosts] = None,
) -> float:
    """The generator run CPU-only with OpenMP across all cores (Figure 6)."""
    check_positive("n", n)
    c = costs or BaselineCosts()
    cores = (cpu or CpuSpec.intel_i7_980()).num_cores
    return n * c.cpu_hybrid_single_core_ns / cores


def glibc_rand_time_ns(n: int, costs: Optional[BaselineCosts] = None) -> float:
    """Serial glibc ``rand()`` loop (Figure 6's baseline)."""
    check_positive("n", n)
    c = costs or BaselineCosts()
    return n * c.glibc_rand_ns


def optimal_batch_size(
    total_numbers: int,
    candidates: Iterable[int] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000),
    costs: Optional[PipelineCosts] = None,
) -> int:
    """Batch size minimizing predicted completion time (Figure 5's optimum)."""
    check_positive("total_numbers", total_numbers)
    costs = costs or PipelineCosts()
    best_s, best_t = None, math.inf
    for s in candidates:
        cfg = PipelineConfig(total_numbers=total_numbers, batch_size=s, costs=costs)
        t = hybrid_time_ns(cfg)
        if t < best_t:
            best_s, best_t = s, t
    return best_s


def utilization_report(config: PipelineConfig) -> dict:
    """Busy fractions per device over the pipeline's completion time."""
    F, X, G, init = stage_times_ns(config)
    total = hybrid_time_ns(config)
    iters = config.iterations
    return {
        "total_ns": total,
        "cpu_busy_fraction": iters * F / total,
        "pcie_busy_fraction": iters * X / total,
        "gpu_busy_fraction": (iters * G + init) / total,
        "throughput_gnumbers_s": config.total_numbers / total,
    }
