"""Batch scheduler: picks the block size and drives hybrid generation.

Combines the performance model (pick ``S`` near Figure 5's optimum for
the requested ``N``) with the functional generator (actually produce the
numbers).  This is the component an application embeds: it owns a
:class:`~repro.core.parallel.ParallelExpanderPRNG`, an optionally
asynchronous :class:`~repro.bitsource.buffered.BufferedFeed`, and reports
both real outputs and the simulated platform timing for the same plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.bitsource.base import BitSource
from repro.bitsource.buffered import DEFAULT_GET_TIMEOUT, BufferedFeed
from repro.bitsource.glibc import GlibcRandom
from repro.core.parallel import ParallelExpanderPRNG
from repro.gpusim.calibration import PipelineCosts
from repro.gpusim.pipeline import PipelineConfig, PipelineResult, simulate_pipeline
from repro.hybrid.throughput import optimal_batch_size
from repro.obs import metrics as obs_metrics
from repro.obs.report import RunReport
from repro.obs.trace import span
from repro.resilience.supervised import (
    RetryPolicy,
    SupervisedFeed,
    default_failover_chain,
)
from repro.utils.checks import check_positive

__all__ = ["GenerationPlan", "HybridScheduler"]


@dataclass(frozen=True)
class GenerationPlan:
    """A resolved decision on how to generate ``total_numbers``."""

    total_numbers: int
    batch_size: int
    num_threads: int
    iterations: int

    @classmethod
    def from_config(cls, config: PipelineConfig) -> "GenerationPlan":
        return cls(
            total_numbers=config.total_numbers,
            batch_size=config.batch_size,
            num_threads=config.num_threads,
            iterations=config.iterations,
        )


class HybridScheduler:
    """Plans and executes hybrid random-number generation.

    Parameters
    ----------
    seed : int
        Seed for the CPU feed, passed through to ``GlibcRandom``
        unchanged (glibc itself defines ``srand(0)`` as ``srand(1)``,
        and :class:`GlibcRandom` reproduces that bit-exactly).
    costs : PipelineCosts, optional
        Platform cost model used for planning/simulation.
    bit_source : BitSource, optional
        Feed override (default: glibc ``rand()``); wrapped in a
        :class:`BufferedFeed` to model the CPU->GPU queue.
    async_feed : bool
        Produce feed batches on a real background thread.
    max_threads : int
        Cap on simultaneously simulated walker lanes (memory bound).
    resilient : bool
        Supervise the feed: wrap the bit source in a
        :class:`~repro.resilience.supervised.SupervisedFeed` with the
        stock failover chain (or the ``failover`` sources given), so
        feed faults are retried and degraded instead of fatal.
    failover : sequence of BitSource, optional
        Fallback sources to switch through when the primary's retry
        budget is exhausted (implies ``resilient``).
    retry_policy : RetryPolicy, optional
        Retry budget/backoff for the supervised feed (implies
        ``resilient``).
    feed_timeout : float or None
        Consumer-wait deadline on the buffered feed; ``None`` waits
        forever (producer death is still detected immediately).
    shards : int, optional
        ``> 1`` executes plans on a :class:`repro.engine.ShardedEngine`
        pool of that many worker processes instead of one in-process
        bank.  Each shard owns an independent glibc-fed substream of
        ``seed`` (the engine's stream identity), so the sharded stream
        is reproducible for ``(seed, shards, lanes)`` but is a
        *different* sequence than the unsharded one.  Incompatible with
        ``bit_source`` (a live source object cannot be split across
        processes).
    """

    def __init__(
        self,
        seed: int = 1,
        costs: Optional[PipelineCosts] = None,
        bit_source: Optional[BitSource] = None,
        async_feed: bool = False,
        max_threads: int = 1 << 17,
        resilient: bool = False,
        failover: Optional[Sequence[BitSource]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        feed_timeout: Optional[float] = DEFAULT_GET_TIMEOUT,
        shards: Optional[int] = None,
    ):
        check_positive("max_threads", max_threads)
        if shards is not None:
            check_positive("shards", shards)
            if bit_source is not None:
                raise ValueError(
                    "shards is incompatible with bit_source: a live "
                    "source cannot be split across worker processes "
                    "(each shard feeds from its own seed substream)"
                )
        self.seed = seed
        self.shards = shards
        self._engine = None
        self.costs = costs or PipelineCosts()
        # Pass the seed through untouched: the glibc semantics for seed 0
        # (treated as 1) live inside GlibcRandom, not here.  The previous
        # ``seed or 1`` silently remapped 0 a second time and would have
        # masked any future source whose seed-0 stream is distinct.
        resilient = resilient or failover is not None or retry_policy is not None
        self.supervisor: Optional[SupervisedFeed] = None
        if resilient:
            if bit_source is None and failover is None:
                chain = default_failover_chain(seed)
            else:
                primary = bit_source if bit_source is not None \
                    else GlibcRandom(seed)
                chain = [primary, *(failover or [])]
            raw: BitSource = SupervisedFeed(
                chain, policy=retry_policy, jitter_seed=seed
            )
            self.supervisor = raw
        else:
            raw = bit_source if bit_source is not None else GlibcRandom(seed)
        self.feed = BufferedFeed(
            raw, batch_words=1 << 15, prefetch=2, async_producer=async_feed,
            get_timeout=feed_timeout,
        )
        self.max_threads = int(max_threads)
        self._prng: Optional[ParallelExpanderPRNG] = None

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(self, total_numbers: int, batch_size: Optional[int] = None
             ) -> GenerationPlan:
        """Choose a batch size (model-optimal unless given) and lay out work."""
        check_positive("total_numbers", total_numbers)
        with span("plan", total_numbers=total_numbers):
            s = batch_size or optimal_batch_size(total_numbers, costs=self.costs)
            config = PipelineConfig(
                total_numbers=total_numbers, batch_size=s, costs=self.costs
            )
            return GenerationPlan.from_config(config)

    def predict(self, plan: GenerationPlan) -> PipelineResult:
        """Simulated platform timing for ``plan`` (the paper's testbed)."""
        with span("predict", total_numbers=plan.total_numbers):
            config = PipelineConfig(
                total_numbers=plan.total_numbers,
                batch_size=plan.batch_size,
                costs=self.costs,
            )
            return simulate_pipeline(config)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def generate(self, plan: GenerationPlan) -> np.ndarray:
        """Actually produce the numbers for ``plan`` (values, not timing).

        Lane count is capped at ``max_threads``; more threads in the plan
        than lanes simply means lanes are reused round-robin, which
        cannot change the emitted stream's statistics.
        """
        out = np.empty(plan.total_numbers, dtype=np.uint64)
        self.generate_into(plan, out)
        return out

    def generate_into(self, plan: GenerationPlan, out: np.ndarray) -> None:
        """Zero-copy :meth:`generate`: fill ``out`` with ``plan``'s numbers.

        ``out`` must be a one-dimensional, C-contiguous, writeable
        ``uint64`` array of size ``plan.total_numbers``; rounds are
        written straight from walker state (or the shard rings) into it.
        """
        if out.size != plan.total_numbers:
            raise ValueError(
                f"out has {out.size} slots, plan produces "
                f"{plan.total_numbers} numbers"
            )
        lanes = min(plan.num_threads, self.max_threads)
        obs_metrics.gauge(
            "repro_scheduler_lanes", "Walker lanes used by the scheduler"
        ).set(lanes)
        if self.shards is not None and self.shards > 1:
            self._ensure_engine(lanes).generate_into(out)
            return
        if self._prng is None or self._prng.num_threads != lanes:
            self._prng = ParallelExpanderPRNG(
                num_threads=lanes, bit_source=self.feed
            )
        self._prng.generate_into(out, batch_size=plan.batch_size)

    def _ensure_engine(self, lanes: int):
        """The shard pool for ``lanes`` total lanes (built lazily, reused)."""
        from repro.engine import EngineConfig, ShardedEngine

        per_shard = max(1, lanes // self.shards)
        if self._engine is not None \
                and self._engine.config.lanes != per_shard:
            self._engine.close()
            self._engine = None
        if self._engine is None:
            self._engine = ShardedEngine(EngineConfig(
                seed=self.seed,
                shards=self.shards,
                lanes=per_shard,
                # The paper's feed, per shard: each worker seeds its own
                # GlibcRandom from the shard substream.
                source_factory=GlibcRandom,
                supervised=self.supervisor is not None,
            ))
        return self._engine

    def run(self, total_numbers: int, batch_size: Optional[int] = None):
        """Plan, simulate, and generate; returns (values, plan, prediction)."""
        plan = self.plan(total_numbers, batch_size)
        prediction = self.predict(plan)
        values = self.generate(plan)
        obs_metrics.counter(
            "repro_scheduler_runs_total", "Completed scheduler runs"
        ).inc()
        return values, plan, prediction

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def report(
        self,
        plan: Optional[GenerationPlan] = None,
        prediction: Optional[PipelineResult] = None,
    ) -> RunReport:
        """Structured run report: metrics + traced stages + feed stats.

        With a ``prediction`` attached the report's ``stage_shares()``
        compares the *measured* FEED/TRANSFER/GENERATE self-time shares
        against the :mod:`repro.gpusim` busy-time shares for the same
        plan -- the real-pipeline counterpart of Figure 4.
        """
        report = RunReport(meta={"component": "HybridScheduler"})
        report.add_feed_stats(self.feed.stats)
        if self.supervisor is not None:
            resilience = self.supervisor.stats.snapshot()
            resilience["health"] = self.supervisor.health.name
            resilience["active_source"] = self.supervisor.active_source.name
            report.add_section("resilience", resilience)
        if plan is not None:
            report.add_section("plan", {
                "total_numbers": plan.total_numbers,
                "batch_size": plan.batch_size,
                "num_threads": plan.num_threads,
                "iterations": plan.iterations,
            })
        if prediction is not None:
            report.add_prediction(prediction)
        return report

    def close(self) -> None:
        """Stop the background feed thread and the shard pool, if any."""
        self.feed.close()
        if self._engine is not None:
            self._engine.close()
            self._engine = None

    def __enter__(self) -> "HybridScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
