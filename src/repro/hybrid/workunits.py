"""The paper's three work units and their device mapping (Section IV-A).

The hybrid algorithm decomposes into FEED (produce raw bits), TRANSFER
(ship them over PCIe) and GENERATE (run walks).  The paper maps FEED to
the CPU and GENERATE to the GPU, leaving TRANSFER on the link; this
module states that mapping as data so schedulers and reports share it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["WorkUnit", "DEVICE_MAPPING", "WorkItem"]


class WorkUnit(enum.Enum):
    """A pipeline stage of the hybrid generator."""

    FEED = "FEED"
    TRANSFER = "TRANSFER"
    GENERATE = "GENERATE"


#: The natural mapping of Section IV-A: massively parallel GENERATE on the
#: GPU, serial bit production on the CPU.
DEVICE_MAPPING = {
    WorkUnit.FEED: "CPU",
    WorkUnit.TRANSFER: "PCIe",
    WorkUnit.GENERATE: "GPU",
}


@dataclass(frozen=True)
class WorkItem:
    """One iteration's worth of one work unit."""

    unit: WorkUnit
    iteration: int
    numbers: int

    def __post_init__(self):
        if self.iteration < 0:
            raise ValueError(f"iteration must be non-negative, got {self.iteration}")
        if self.numbers <= 0:
            raise ValueError(f"numbers must be positive, got {self.numbers}")

    @property
    def device(self) -> str:
        return DEVICE_MAPPING[self.unit]

    @property
    def label(self) -> str:
        return f"{self.unit.value} {self.iteration}"
