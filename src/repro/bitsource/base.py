"""Abstract interface for CPU-side random-bit feeds.

In the paper the multicore CPU continuously produces a *raw bit stream*
(``bin`` in Algorithms 1 and 2) that the GPU walkers consume 3 bits at a
time to pick expander neighbours.  A :class:`BitSource` is anything that
can produce that stream.

The canonical source is :class:`repro.bitsource.glibc.GlibcRandom` (the
paper uses glibc ``rand()``); faster or intentionally weaker sources are
provided for the ablation studies.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["BitSource", "UnseekableSourceError", "chunks_from_words"]


def chunks_from_words(words: np.ndarray) -> np.ndarray:
    """All 21 3-bit chunks of each 64-bit word, word-major order.

    The last bit of every word is discarded, matching the bit-slicing in
    Algorithm 1 line 5.  Strided extraction (one pass per chunk
    position) avoids the ``(n, 21)`` uint64 temporary of the broadcast
    formulation.
    """
    out = np.empty(words.size * 21, dtype=np.uint8)
    for i in range(21):
        out[i::21] = (words >> np.uint64(3 * i)).astype(np.uint8) & np.uint8(7)
    return out


class UnseekableSourceError(RuntimeError):
    """Raised when ``seek`` is called on a source that cannot jump ahead."""


class BitSource(abc.ABC):
    """Produces an endless stream of pseudo random bits.

    Subclasses implement :meth:`words64`; everything else derives from it.
    Sources are deterministic given their seed and are *not* thread-safe by
    themselves -- wrap one per thread, or use
    :class:`repro.bitsource.buffered.BufferedFeed`.
    """

    #: Short human-readable name used in benchmark tables.
    name: str = "bitsource"

    @abc.abstractmethod
    def words64(self, n: int) -> np.ndarray:
        """Return the next ``n`` raw 64-bit words as a ``uint64`` array."""

    @abc.abstractmethod
    def reseed(self, seed: int) -> None:
        """Reset the source to a deterministic state derived from ``seed``."""

    # ------------------------------------------------------------------
    # Jump-ahead (optional capability)
    # ------------------------------------------------------------------

    @property
    def seekable(self) -> bool:
        """Whether :meth:`seek` can reposition this source in O(log offset)."""
        return False

    def seek(self, word_offset: int) -> None:
        """Reposition so the next :meth:`words64` call returns the words a
        fresh source would return after drawing ``word_offset`` words.

        ``seek(k); words64(n)`` must equal ``words64(k + n)[k:]`` of a
        freshly reseeded source.  Offsets are absolute (counted from the
        seeded origin), so seeking backwards is allowed.  Sources that
        cannot jump raise :class:`UnseekableSourceError`.
        """
        raise UnseekableSourceError(
            f"{type(self).__name__} cannot seek to an arbitrary offset"
        )

    # ------------------------------------------------------------------
    # Derived conveniences
    # ------------------------------------------------------------------

    def bits(self, n: int) -> np.ndarray:
        """Return the next ``n`` bits as a uint8 array of 0/1 (MSB first)."""
        if n < 0:
            raise ValueError(f"bit count must be non-negative, got {n}")
        nwords = (n + 63) // 64
        words = self.words64(nwords)
        raw = np.unpackbits(words.astype(">u8").view(np.uint8))
        return raw[:n]

    def chunks3(self, n: int) -> np.ndarray:
        """Return ``n`` 3-bit values (0..7), each from 3 consecutive bits.

        A 64-bit word supplies 21 chunks (the last bit of each word is
        discarded), matching the bit-slicing in Algorithm 1 line 5.
        """
        if n < 0:
            raise ValueError(f"chunk count must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=np.uint8)
        nwords = (n + 20) // 21
        return chunks_from_words(self.words64(nwords))[:n]

    def uniform(self, n: int) -> np.ndarray:
        """``n`` floats uniform in [0, 1) using 53 bits per draw."""
        w = self.words64(n)
        return (w >> np.uint64(11)).astype(np.float64) * (1.0 / 9007199254740992.0)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} name={self.name!r}>"
