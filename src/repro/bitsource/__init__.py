"""CPU-side random-bit feeds (the paper's FEED work unit).

The hybrid generator consumes a raw bit stream produced on the CPU.  This
package provides the feed interface (:class:`BitSource`), the paper's
glibc ``rand()`` feed, faster and weaker alternatives for ablations, and
the buffered/asynchronous pipeline model.
"""

from repro.bitsource.base import BitSource
from repro.bitsource.buffered import BufferedFeed, FeedStats
from repro.bitsource.counter import RawCounterSource, SplitMix64Source, splitmix64
from repro.bitsource.glibc import AnsiCLcg, GlibcRandom, glibc_rand_sequence
from repro.bitsource.numpy_source import NumpyBitSource
from repro.bitsource.os_entropy import OsEntropySource

__all__ = [
    "BitSource",
    "BufferedFeed",
    "FeedStats",
    "GlibcRandom",
    "AnsiCLcg",
    "glibc_rand_sequence",
    "SplitMix64Source",
    "RawCounterSource",
    "splitmix64",
    "NumpyBitSource",
    "OsEntropySource",
]
