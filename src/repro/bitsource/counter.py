"""Counter-derived bit sources: one good (SplitMix64), one deliberately bad.

``SplitMix64Source`` is the repository's *fast CPU feed*: a strong, cheap,
fully vectorizable mixer of a 64-bit counter.  The paper notes
(Section IV-C) that its own generator running on the multicore CPU could
replace glibc ``rand()`` as the feed; SplitMix64 plays the same role here
when feed throughput matters more than strict paper fidelity.

``RawCounterSource`` emits the *unmixed* counter.  It is maximally
non-random and exists for the bit-source ablation: it shows how much of
the final quality the expander walk itself contributes when the feed has
structure.
"""

from __future__ import annotations

import numpy as np

from repro.bitsource.base import BitSource

__all__ = ["SplitMix64Source", "RawCounterSource", "splitmix64", "GOLDEN_GAMMA"]

_U64 = np.uint64

#: The SplitMix64 Weyl increment (2**64 / golden ratio, odd).
GOLDEN_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def _mix(z: np.ndarray) -> np.ndarray:
    """The SplitMix64 output finalizer (no Weyl step).

    Multiplications wrap mod 2**64 by design; the errstate guard silences
    NumPy's scalar-overflow warning for 0-d inputs.
    """
    with np.errstate(over="ignore"):
        z = (z ^ (z >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> _U64(27))) * _U64(0x94D049BB133111EB)
        return z ^ (z >> _U64(31))


def splitmix64(x: np.ndarray) -> np.ndarray:
    """One SplitMix64 draw seeded at ``x``: ``mix(x + gamma)``, vectorized.

    Equals the first output of the reference ``splitmix64.c`` stream whose
    state starts at ``x`` -- used throughout as a stateless 64-bit hash.
    """
    return _mix(np.asarray(x, dtype=_U64) + GOLDEN_GAMMA)


class SplitMix64Source(BitSource):
    """High-throughput feed: the canonical SplitMix64 output stream.

    Matches reference ``splitmix64.c``: draw ``i`` (1-based) from seed
    ``s`` is ``mix(s + i * gamma)``, so the whole stream vectorizes to one
    array expression per request.
    """

    name = "splitmix64"

    def __init__(self, seed: int = 0):
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._state = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)

    @property
    def seekable(self) -> bool:
        return True

    def seek(self, word_offset: int) -> None:
        """Jump to an absolute word offset: one Weyl-state multiply, O(1)."""
        if word_offset < 0:
            raise ValueError(f"word offset must be non-negative, got {word_offset}")
        self._state = np.uint64(
            (self._seed + word_offset * int(GOLDEN_GAMMA)) & (2**64 - 1)
        )

    def words64(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        steps = np.arange(1, n + 1, dtype=_U64) * GOLDEN_GAMMA
        out = _mix(self._state + steps)
        if n:
            # Advance the Weyl state by n steps (mod 2**64, exact).
            self._state = np.uint64(
                (int(self._state) + n * int(GOLDEN_GAMMA)) & (2**64 - 1)
            )
        return out


class RawCounterSource(BitSource):
    """Worst-case feed: sequential counter values, no mixing at all."""

    name = "raw-counter"

    def __init__(self, seed: int = 0):
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._counter = np.uint64(seed & 0xFFFFFFFFFFFFFFFF)

    @property
    def seekable(self) -> bool:
        return True

    def seek(self, word_offset: int) -> None:
        """Jump to an absolute word offset: counter arithmetic, O(1)."""
        if word_offset < 0:
            raise ValueError(f"word offset must be non-negative, got {word_offset}")
        self._counter = np.uint64((self._seed + word_offset) & (2**64 - 1))

    def words64(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        idx = self._counter + np.arange(1, n + 1, dtype=_U64)
        if n:
            self._counter = idx[-1]
        return idx
