"""Buffered, optionally asynchronous feed: the CPU->GPU bit pipeline.

On the paper's platform the CPU keeps producing random bits while the GPU
kernel runs, and PCIe transfers overlap with compute (Section II,
Figure 4).  Functionally this amounts to a bounded queue of bit batches
between producer (CPU FEED) and consumer (GPU GENERATE).

:class:`BufferedFeed` models exactly that queue:

* batches of ``batch_words`` 64-bit words are produced from an underlying
  :class:`~repro.bitsource.base.BitSource`;
* up to ``prefetch`` batches are kept in flight ("already transferred to
  device memory");
* with ``async_producer=True`` a real background thread plays the CPU,
  refilling the queue concurrently with the consumer -- an honest
  multicore analogue of the hybrid pipeline (NumPy releases the GIL in
  bulk operations);
* consumption statistics (:class:`FeedStats`) record how often the
  consumer found the queue empty -- the functional counterpart of the
  "GPU waits for CPU" regime right of the optimum in Figure 5.

The values produced are identical to draining the underlying source
directly; buffering changes *when* bits are produced, never *which*.

Failure semantics (the resilience contract): a consumer blocked on the
queue can never hang forever.  If the producer thread dies, its
exception is captured and re-raised in the consumer as a
:class:`~repro.resilience.errors.FeedFailedError`; if the producer is
alive but silent past ``get_timeout`` seconds, the consumer raises
:class:`~repro.resilience.errors.FeedTimeoutError`.  Shutdown and
reseed use a sentinel handshake with the producer so the thread is
always joined, and ``reseed`` on an async feed pauses and restarts the
producer instead of refusing.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.bitsource.base import BitSource
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.resilience.errors import FeedFailedError, FeedTimeoutError
from repro.utils.checks import check_positive

__all__ = ["BufferedFeed", "FeedStats", "DEFAULT_GET_TIMEOUT"]

#: Default consumer-wait deadline (seconds).  Generous -- its job is to
#: turn "wedged forever" into a diagnosable error, not to race healthy
#: producers.  Pass ``get_timeout=None`` for an unbounded wait (producer
#: death is still detected promptly via the exit sentinel).
DEFAULT_GET_TIMEOUT = 30.0

#: Queue poll period while a consumer waits or a shutdown handshakes.
_POLL_S = 0.05

#: Poison pill the producer enqueues on exit (normal or fatal) so a
#: blocked consumer wakes immediately instead of waiting out a timeout.
_SENTINEL = object()


@dataclass
class FeedStats:
    """Counters describing pipeline behaviour of a :class:`BufferedFeed`."""

    words_produced: int = 0
    words_consumed: int = 0
    refills: int = 0
    #: Times the consumer had to wait for a batch (queue empty on demand).
    stalls: int = 0
    #: Times the producer thread died with an exception.
    producer_failures: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict:
        """A plain-dict copy safe to hand to reports."""
        with self._lock:
            return {
                "words_produced": self.words_produced,
                "words_consumed": self.words_consumed,
                "refills": self.refills,
                "stalls": self.stalls,
                "producer_failures": self.producer_failures,
            }


class BufferedFeed(BitSource):
    """Bounded-queue feed between a producer source and walk consumers.

    Parameters
    ----------
    source : BitSource
        The CPU-side generator (e.g. :class:`~repro.bitsource.glibc.GlibcRandom`).
    batch_words : int
        Words per produced batch -- the transfer granularity.
    prefetch : int
        Maximum batches buffered ahead (queue depth).
    async_producer : bool
        If true, a daemon thread keeps the queue full; otherwise batches
        are produced synchronously on demand (each counted as a stall).
    get_timeout : float or None
        Deadline (seconds) for one consumer wait on an empty queue while
        the producer is alive; ``None`` waits forever.  A dead producer
        is detected immediately regardless of this value.
    """

    name = "buffered-feed"

    def __init__(
        self,
        source: BitSource,
        batch_words: int = 1 << 16,
        prefetch: int = 2,
        async_producer: bool = False,
        get_timeout: Optional[float] = DEFAULT_GET_TIMEOUT,
    ):
        check_positive("batch_words", batch_words)
        check_positive("prefetch", prefetch)
        if get_timeout is not None:
            check_positive("get_timeout", get_timeout)
        self.source = source
        self.batch_words = int(batch_words)
        self.prefetch = int(prefetch)
        self.get_timeout = get_timeout
        self.stats = FeedStats()
        self._queue: queue.Queue = queue.Queue(maxsize=prefetch)
        self._current = np.empty(0, dtype=np.uint64)
        self._pos = 0
        self._async = bool(async_producer)
        self._closed = False
        self._stop = threading.Event()
        self._producer: threading.Thread | None = None
        self._producer_error: Optional[BaseException] = None
        self._source_lock = threading.Lock()
        if self._async:
            self._start_producer()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def _make_batch(self) -> np.ndarray:
        with span("feed", words=self.batch_words):
            with self._source_lock:
                batch = self.source.words64(self.batch_words)
        with self.stats._lock:
            self.stats.words_produced += batch.size
            self.stats.refills += 1
        obs_metrics.counter(
            "repro_feed_refills_total", "Feed batches produced"
        ).inc()
        obs_metrics.counter(
            "repro_feed_words_produced_total", "64-bit words produced by the feed"
        ).inc(batch.size)
        return batch

    def _start_producer(self) -> None:
        """(Re)start the background producer with a fresh stop event."""
        stop = threading.Event()
        self._stop = stop
        self._producer_error = None
        self._producer = threading.Thread(
            target=self._produce_loop, args=(stop,),
            name="feed-producer", daemon=True,
        )
        self._producer.start()

    def _produce_loop(self, stop: threading.Event) -> None:
        try:
            while not stop.is_set():
                batch = self._make_batch()
                while not stop.is_set():
                    try:
                        self._queue.put(batch, timeout=_POLL_S)
                        break
                    except queue.Full:
                        continue
        except BaseException as exc:  # noqa: BLE001 - captured for consumer
            self._producer_error = exc
            with self.stats._lock:
                self.stats.producer_failures += 1
            obs_metrics.counter(
                "repro_feed_producer_failures_total",
                "Feed producer threads that died with an exception",
            ).inc()
        finally:
            # Always hand the consumer an exit sentinel, whether this is
            # a clean stop or a crash: a blocked get() wakes immediately.
            self._push_sentinel()

    def _push_sentinel(self) -> None:
        """Enqueue the exit sentinel, evicting a data batch if needed.

        The producer is exiting when this runs, so dropped batches can
        never be missed values -- the stream is over either way.
        """
        while True:
            try:
                self._queue.put_nowait(_SENTINEL)
                return
            except queue.Full:
                try:
                    self._queue.get_nowait()
                except queue.Empty:
                    pass

    def _stop_producer(self) -> None:
        """Sentinel handshake: stop, drain, and *join* the producer."""
        producer = self._producer
        self._producer = None
        if producer is None:
            return
        self._stop.set()
        # Drain until the producer's exit sentinel shows up.  This both
        # unblocks a producer stuck in put() and proves it left its
        # loop; the sentinel is pushed from the thread's finally block.
        while True:
            try:
                if self._queue.get(timeout=_POLL_S) is _SENTINEL:
                    break
            except queue.Empty:
                if not producer.is_alive():
                    break
        producer.join(timeout=5.0)
        if producer.is_alive():  # pragma: no cover - defensive
            raise RuntimeError("feed producer thread failed to join")

    def close(self) -> None:
        """Stop and join the producer thread (no-op for synchronous feeds)."""
        self._closed = True
        self._stop.set()
        self._stop_producer()

    def __enter__(self) -> "BufferedFeed":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Consumer side (BitSource API)
    # ------------------------------------------------------------------

    def _feed_failed(self) -> FeedFailedError:
        err = self._producer_error
        if err is not None:
            return FeedFailedError(
                f"feed producer died: {type(err).__name__}: {err}", cause=err
            )
        if self._closed:
            return FeedFailedError("feed is closed")
        return FeedFailedError("feed producer exited unexpectedly")

    def _wait_for_batch(self):
        """Block for the next item, bounded by deadline and producer life."""
        deadline = (
            None if self.get_timeout is None
            else time.monotonic() + self.get_timeout
        )
        while True:
            try:
                return self._queue.get(timeout=_POLL_S)
            except queue.Empty:
                producer = self._producer
                if producer is None or not producer.is_alive():
                    # Dead producer and an empty queue: the sentinel was
                    # already consumed (or never started) -- fail now.
                    raise self._feed_failed() from None
                if deadline is not None and time.monotonic() >= deadline:
                    obs_metrics.counter(
                        "repro_feed_deadline_exceeded_total",
                        "Consumer waits that hit the get_timeout deadline",
                    ).inc()
                    raise FeedTimeoutError(
                        f"no feed batch within {self.get_timeout:.3f}s "
                        f"(producer alive but silent)"
                    ) from None

    def _next_batch(self) -> np.ndarray:
        if self._async:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                with self.stats._lock:
                    self.stats.stalls += 1
                obs_metrics.counter(
                    "repro_feed_stalls_total", "Consumer waits on an empty queue"
                ).inc()
                item = self._wait_for_batch()
            if item is _SENTINEL:
                # Keep the pill in the queue so every later consumer
                # call fails fast instead of waiting out the deadline.
                self._push_sentinel()
                raise self._feed_failed()
            return item
        # Synchronous mode: every demand-refill is by definition a stall.
        try:
            return self._queue.get_nowait()
        except queue.Empty:
            with self.stats._lock:
                self.stats.stalls += 1
            obs_metrics.counter(
                "repro_feed_stalls_total", "Consumer waits on an empty queue"
            ).inc()
            return self._make_batch()

    def words64(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        # The consumer-side copy out of the queue is the functional
        # TRANSFER stage; demand refills (sync mode) nest a "feed" span
        # inside it, which stage accounting subtracts as child time.
        with span("transfer", words=n):
            out = np.empty(n, dtype=np.uint64)
            pos = 0
            while pos < n:
                avail = self._current.size - self._pos
                if avail == 0:
                    self._current = self._next_batch()
                    self._pos = 0
                    avail = self._current.size
                take = min(avail, n - pos)
                out[pos : pos + take] = self._current[self._pos : self._pos + take]
                self._pos += take
                pos += take
        with self.stats._lock:
            self.stats.words_consumed += n
        obs_metrics.counter(
            "repro_feed_words_consumed_total", "64-bit words drained by consumers"
        ).inc(n)
        obs_metrics.gauge(
            "repro_feed_queue_depth", "Feed batches buffered ahead of the consumer"
        ).set(self._queue.qsize())
        return out

    def reseed(self, seed: int) -> None:
        """Reseed the underlying source and drop all buffered batches.

        On an async feed the producer is paused (stopped and joined via
        the sentinel handshake) *before* any state is mutated, the
        source is reseeded, the queue is drained, and a fresh producer
        is started -- so the post-reseed stream is exactly what a newly
        constructed feed over the reseeded source would yield.  Must not
        race a concurrent ``words64`` from another thread (the usual
        single-consumer contract of a :class:`BitSource`).
        """
        if self._closed:
            raise FeedFailedError("cannot reseed a closed feed")
        if self._async:
            self._stop_producer()
        with self._source_lock:
            self.source.reseed(seed)
        try:
            while True:
                self._queue.get_nowait()
        except queue.Empty:
            pass
        self._current = np.empty(0, dtype=np.uint64)
        self._pos = 0
        if self._async:
            self._start_producer()

    @property
    def pending_words(self) -> int:
        """Words buffered and immediately available to the consumer."""
        pending = self._current.size - self._pos
        with self._queue.mutex:
            items = list(self._queue.queue)
        for item in items:
            if item is not _SENTINEL:
                pending += self.batch_words
        return pending
