"""Buffered, optionally asynchronous feed: the CPU->GPU bit pipeline.

On the paper's platform the CPU keeps producing random bits while the GPU
kernel runs, and PCIe transfers overlap with compute (Section II,
Figure 4).  Functionally this amounts to a bounded queue of bit batches
between producer (CPU FEED) and consumer (GPU GENERATE).

:class:`BufferedFeed` models exactly that queue:

* batches of ``batch_words`` 64-bit words are produced from an underlying
  :class:`~repro.bitsource.base.BitSource`;
* up to ``prefetch`` batches are kept in flight ("already transferred to
  device memory");
* with ``async_producer=True`` a real background thread plays the CPU,
  refilling the queue concurrently with the consumer -- an honest
  multicore analogue of the hybrid pipeline (NumPy releases the GIL in
  bulk operations);
* consumption statistics (:class:`FeedStats`) record how often the
  consumer found the queue empty -- the functional counterpart of the
  "GPU waits for CPU" regime right of the optimum in Figure 5.

The values produced are identical to draining the underlying source
directly; buffering changes *when* bits are produced, never *which*.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field

import numpy as np

from repro.bitsource.base import BitSource
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.checks import check_positive

__all__ = ["BufferedFeed", "FeedStats"]


@dataclass
class FeedStats:
    """Counters describing pipeline behaviour of a :class:`BufferedFeed`."""

    words_produced: int = 0
    words_consumed: int = 0
    refills: int = 0
    #: Times the consumer had to wait for a batch (queue empty on demand).
    stalls: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> dict:
        """A plain-dict copy safe to hand to reports."""
        with self._lock:
            return {
                "words_produced": self.words_produced,
                "words_consumed": self.words_consumed,
                "refills": self.refills,
                "stalls": self.stalls,
            }


class BufferedFeed(BitSource):
    """Bounded-queue feed between a producer source and walk consumers.

    Parameters
    ----------
    source : BitSource
        The CPU-side generator (e.g. :class:`~repro.bitsource.glibc.GlibcRandom`).
    batch_words : int
        Words per produced batch -- the transfer granularity.
    prefetch : int
        Maximum batches buffered ahead (queue depth).
    async_producer : bool
        If true, a daemon thread keeps the queue full; otherwise batches
        are produced synchronously on demand (each counted as a stall).
    """

    name = "buffered-feed"

    def __init__(
        self,
        source: BitSource,
        batch_words: int = 1 << 16,
        prefetch: int = 2,
        async_producer: bool = False,
    ):
        check_positive("batch_words", batch_words)
        check_positive("prefetch", prefetch)
        self.source = source
        self.batch_words = int(batch_words)
        self.prefetch = int(prefetch)
        self.stats = FeedStats()
        self._queue: queue.Queue[np.ndarray] = queue.Queue(maxsize=prefetch)
        self._current = np.empty(0, dtype=np.uint64)
        self._pos = 0
        self._async = bool(async_producer)
        self._stop = threading.Event()
        self._producer: threading.Thread | None = None
        self._source_lock = threading.Lock()
        if self._async:
            self._producer = threading.Thread(
                target=self._produce_loop, name="feed-producer", daemon=True
            )
            self._producer.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------

    def _make_batch(self) -> np.ndarray:
        with span("feed", words=self.batch_words):
            with self._source_lock:
                batch = self.source.words64(self.batch_words)
        with self.stats._lock:
            self.stats.words_produced += batch.size
            self.stats.refills += 1
        obs_metrics.counter(
            "repro_feed_refills_total", "Feed batches produced"
        ).inc()
        obs_metrics.counter(
            "repro_feed_words_produced_total", "64-bit words produced by the feed"
        ).inc(batch.size)
        return batch

    def _produce_loop(self) -> None:
        while not self._stop.is_set():
            batch = self._make_batch()
            while not self._stop.is_set():
                try:
                    self._queue.put(batch, timeout=0.05)
                    break
                except queue.Full:
                    continue

    def close(self) -> None:
        """Stop the producer thread (no-op for synchronous feeds)."""
        self._stop.set()
        if self._producer is not None:
            # Drain so a blocked put() can finish.
            try:
                while True:
                    self._queue.get_nowait()
            except queue.Empty:
                pass
            self._producer.join(timeout=2.0)
            self._producer = None

    def __enter__(self) -> "BufferedFeed":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Consumer side (BitSource API)
    # ------------------------------------------------------------------

    def _next_batch(self) -> np.ndarray:
        if self._async:
            try:
                return self._queue.get_nowait()
            except queue.Empty:
                with self.stats._lock:
                    self.stats.stalls += 1
                obs_metrics.counter(
                    "repro_feed_stalls_total", "Consumer waits on an empty queue"
                ).inc()
                return self._queue.get()
        # Synchronous mode: every demand-refill is by definition a stall.
        try:
            return self._queue.get_nowait()
        except queue.Empty:
            with self.stats._lock:
                self.stats.stalls += 1
            obs_metrics.counter(
                "repro_feed_stalls_total", "Consumer waits on an empty queue"
            ).inc()
            return self._make_batch()

    def words64(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        # The consumer-side copy out of the queue is the functional
        # TRANSFER stage; demand refills (sync mode) nest a "feed" span
        # inside it, which stage accounting subtracts as child time.
        with span("transfer", words=n):
            out = np.empty(n, dtype=np.uint64)
            pos = 0
            while pos < n:
                avail = self._current.size - self._pos
                if avail == 0:
                    self._current = self._next_batch()
                    self._pos = 0
                    avail = self._current.size
                take = min(avail, n - pos)
                out[pos : pos + take] = self._current[self._pos : self._pos + take]
                self._pos += take
                pos += take
        with self.stats._lock:
            self.stats.words_consumed += n
        obs_metrics.counter(
            "repro_feed_words_consumed_total", "64-bit words drained by consumers"
        ).inc(n)
        obs_metrics.gauge(
            "repro_feed_queue_depth", "Feed batches buffered ahead of the consumer"
        ).set(self._queue.qsize())
        return out

    def reseed(self, seed: int) -> None:
        """Reseed the underlying source and drop all buffered batches."""
        if self._async:
            raise RuntimeError(
                "cannot reseed an async BufferedFeed; close() it first"
            )
        with self._source_lock:
            self.source.reseed(seed)
        try:
            while True:
                self._queue.get_nowait()
        except queue.Empty:
            pass
        self._current = np.empty(0, dtype=np.uint64)
        self._pos = 0

    @property
    def pending_words(self) -> int:
        """Words buffered and immediately available to the consumer."""
        return (
            self._current.size - self._pos
        ) + self._queue.qsize() * self.batch_words
