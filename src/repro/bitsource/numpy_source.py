"""Adapter exposing ``numpy.random.Generator`` as a :class:`BitSource`.

Useful as a high-quality reference feed (PCG64) in the bit-source
ablation, and as a convenient bridge for users who already manage NumPy
generators.
"""

from __future__ import annotations

import numpy as np

from repro.bitsource.base import BitSource

__all__ = ["NumpyBitSource"]


class NumpyBitSource(BitSource):
    """Wrap a :class:`numpy.random.Generator` (default PCG64) as a feed."""

    name = "numpy-pcg64"

    def __init__(self, seed: int = 0):
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._rng = np.random.Generator(np.random.PCG64(seed))

    def words64(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        return self._rng.integers(
            0, 2**64, size=n, dtype=np.uint64, endpoint=False
        )
