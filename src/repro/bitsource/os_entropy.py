"""Operating-system entropy as a (non-deterministic) bit source.

Used to seed generators with fresh entropy.  ``reseed`` is accepted but
ignored -- the OS pool cannot be rewound -- so this source is unsuitable
for reproducible experiments and is excluded from the quality batteries.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bitsource.base import BitSource

__all__ = ["OsEntropySource"]


class OsEntropySource(BitSource):
    """``os.urandom``-backed feed; every call returns fresh entropy."""

    name = "os-entropy"

    def __init__(self):
        pass

    def reseed(self, seed: int) -> None:
        """No-op: OS entropy is not seedable."""

    def words64(self, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        raw = os.urandom(8 * n)
        return np.frombuffer(raw, dtype="<u8").astype(np.uint64)
