"""Reimplementation of glibc ``rand()`` -- the paper's CPU feed generator.

The paper's FEED work unit calls ANSI C ``rand()`` which, on the Fedora 14
system used (Section IV-A), is glibc's **TYPE_3 additive-feedback
generator**:

* state: 31 lagged 32-bit words (34 including warm-up copies),
* recurrence ``r[i] = r[i-3] + r[i-31] (mod 2**32)``,
* output ``r[i] >> 1`` (a 31-bit value in ``0 .. 2**31 - 1``).

Seeding follows glibc ``srandom()``: 30 steps of the Park-Miller minimal
standard LCG (``x <- 16807 x mod 2**31 - 1``, computed with Schrage's
trick exactly as glibc does), then 310 warm-up outputs are discarded.
The implementation is verified against the well-known glibc sequence for
``seed = 1`` (1804289383, 846930886, ...) in the test suite.

Also provided is :class:`AnsiCLcg`, the K&R reference ``rand()`` (TYPE_0
LCG), which the paper's Table I/II place at the bottom of the quality
ranking.

The blocked FEED kernel
-----------------------
The additive-feedback recurrence is *linear* over ``Z / 2**32``: the 31
state words of one lag window are a fixed linear map ``C`` of the
previous window's 31 words.  Advancing ``k`` windows therefore collapses
to a single integer matrix-vector product against the stacked powers
``[C; C^2; ...; C^k]`` -- one NumPy call produces ``31 * k`` raw words
instead of ``k`` Python-level window updates of three tiny cumulative
sums each.  ``C`` is built by pushing unit vectors through the scalar
window update (:func:`_advance_window`), so the blocked kernel agrees
with the reference implementation by construction; the golden-vector and
equivalence tests then pin it word-for-word.  Pass ``blocked=False`` to
keep the window-at-a-time reference path (the benchmark harness measures
both variants in one run).
"""

from __future__ import annotations

from repro.backend import host_np as np

from repro.bitsource.base import BitSource

__all__ = ["GlibcRandom", "AnsiCLcg", "glibc_rand_sequence"]

_U32 = np.uint32
_U64 = np.uint64

_DEG = 31  # r[i-31]
_SEP = 3  # r[i-3]
_WARMUP = 310  # glibc discards 10 * 31 outputs after seeding

#: Lag windows (31 raw words each) the blocked kernel advances per
#: matrix-vector product: 128 windows = 3968 words per NumPy call, and
#: the stacked-power matrix stays under 500 KiB.
BLOCK_WINDOWS = 128


def _advance_window(prev: np.ndarray) -> np.ndarray:
    """One lag window: the next 31 raw words from the previous 31.

    ``new[i] = new[i-3] + prev[i]`` with carry-in ``new[j-3] =
    prev[28 + j]`` -- three cumulative sums, one per residue class
    mod 3.  This is the reference window update; the blocked kernel is
    derived from it and verified against it.
    """
    new = np.empty(_DEG, dtype=_U32)
    for j in range(_SEP):
        idx = np.arange(j, _DEG, _SEP)
        csum = np.cumsum(prev[idx], dtype=_U32)
        new[idx] = csum + prev[_DEG - _SEP + j]
    return new


_POW2_WINDOW_MAPS: list = []  # _POW2_WINDOW_MAPS[j] = C**(2**j)


def _window_pow2(j: int) -> np.ndarray:
    """``C**(2**j)`` mod ``2**32``, memoized across all instances.

    The window map ``C`` is seed-independent, so its repeated squarings
    are a process-wide table (31x31 uint32 each, ~4 KiB per entry).
    Memoizing them is what makes seek latency *flat* in the offset: a
    cold process pays the squarings once, after which any seek is just
    popcount(exponent) matrix-vector products.
    """
    while len(_POW2_WINDOW_MAPS) <= j:
        if not _POW2_WINDOW_MAPS:
            _POW2_WINDOW_MAPS.append(_stacked_window_powers()[:_DEG].copy())
        else:
            sq = np.empty((_DEG, _DEG), dtype=_U32)
            np.matmul(_POW2_WINDOW_MAPS[-1], _POW2_WINDOW_MAPS[-1], out=sq)
            _POW2_WINDOW_MAPS.append(sq)
    return _POW2_WINDOW_MAPS[j]


def _window_map_power(exponent: int) -> np.ndarray:
    """``C**exponent`` mod ``2**32`` by square-and-multiply.

    ``C`` is the 31x31 window map; uint32 matmul wraps mod ``2**32``
    natively, so each of the O(log exponent) products is exact.  Seeks
    apply :func:`_window_pow2` factors directly to the ring *vector*
    instead (31x matvec is far cheaper than matmul); this full-matrix
    form remains for verification and for composing new tables.
    """
    result = np.eye(_DEG, dtype=_U32)
    j = 0
    while exponent:
        if exponent & 1:
            nxt = np.empty((_DEG, _DEG), dtype=_U32)
            np.matmul(_window_pow2(j), result, out=nxt)
            result = nxt
        exponent >>= 1
        j += 1
    return result


_STACKED_POWERS: np.ndarray = None  # built lazily, shared by all instances


def _stacked_window_powers() -> np.ndarray:
    """``[C; C^2; ...; C^K]`` mod ``2**32`` as one ``(31 K, 31)`` matrix.

    ``C`` is the linear window map, extracted column-by-column from
    :func:`_advance_window` on unit vectors.  All arithmetic is uint32
    with native wraparound, which is exactly reduction mod ``2**32``.
    """
    global _STACKED_POWERS
    if _STACKED_POWERS is None:
        c = np.empty((_DEG, _DEG), dtype=_U32)
        unit = np.zeros(_DEG, dtype=_U32)
        for j in range(_DEG):
            unit[j] = 1
            c[:, j] = _advance_window(unit)
            unit[j] = 0
        powers = np.empty((_DEG * BLOCK_WINDOWS, _DEG), dtype=_U32)
        powers[:_DEG] = c
        for b in range(1, BLOCK_WINDOWS):
            np.matmul(c, powers[_DEG * (b - 1) : _DEG * b],
                      out=powers[_DEG * b : _DEG * (b + 1)])
        _STACKED_POWERS = powers
    return _STACKED_POWERS


def _srandom_state(seed: int) -> np.ndarray:
    """Replicate glibc ``srandom_r`` for TYPE_3: the initial 34-word table."""
    seed = seed & 0xFFFFFFFF
    if seed == 0:
        seed = 1
    r = np.zeros(_DEG + _SEP, dtype=np.int64)
    r[0] = seed
    # Park-Miller via Schrage: hi = s / 127773, lo = s % 127773,
    # word = 16807 * lo - 2836 * hi  (+ 2147483647 if negative).
    s = int(seed)
    for i in range(1, _DEG):
        hi, lo = divmod(s, 127773)
        word = 16807 * lo - 2836 * hi
        if word < 0:
            word += 2147483647
        r[i] = word
        s = word
    for i in range(_DEG, _DEG + _SEP):
        r[i] = r[i - _DEG]
    return r.astype(_U32)


class GlibcRandom(BitSource):
    """glibc TYPE_3 ``random()`` as a :class:`BitSource` and a scalar RNG.

    Scalar access (:meth:`rand`) matches C ``rand()`` output exactly.
    Bulk access uses the blocked kernel by default: up to
    :data:`BLOCK_WINDOWS` lag windows (31 raw words each) advance per
    integer matrix-vector product, with the block count sized from the
    request.  ``blocked=False`` selects the window-at-a-time reference
    path (three cumulative sums per 31 outputs); both produce the
    identical word stream.
    """

    name = "glibc-rand"
    #: RAND_MAX for this generator (outputs are 31-bit).
    RAND_MAX = 2**31 - 1

    def __init__(self, seed: int = 1, blocked: bool = True):
        self._blocked = bool(blocked)
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        table = _srandom_state(seed)
        #   maintain a ring of the last 31 raw words r[t-31..t-1]
        self._ring = table[_SEP:].copy()  # r[3..33] == last 31 values
        self._pending = np.empty(0, dtype=_U32)
        # Warm up exactly like glibc: discard 310 outputs (10 windows).
        self._raw(_WARMUP)

    def _advance_block(self) -> np.ndarray:
        """Produce the next 31 raw state words (before the >> 1 output step)."""
        new = _advance_window(self._ring)
        self._ring = new
        return new

    def _raw(self, n: int) -> np.ndarray:
        """Next ``n`` raw 32-bit state words (output = raw >> 1)."""
        out = np.empty(n, dtype=_U32)
        have = min(n, self._pending.size)
        if have:
            out[:have] = self._pending[:have]
            self._pending = self._pending[have:]
        pos = have
        while pos < n:
            if self._blocked:
                k = min(-(-(n - pos) // _DEG), BLOCK_WINDOWS)
                block = _stacked_window_powers()[: _DEG * k] @ self._ring
                self._ring = block[-_DEG:].copy()
            else:
                block = self._advance_block()
            take = min(n - pos, block.size)
            out[pos : pos + take] = block[:take]
            if take < block.size:
                self._pending = block[take:]
            pos += take
        return out

    # -- jump-ahead ----------------------------------------------------

    @property
    def seekable(self) -> bool:
        return True

    def seek_raw(self, n_outputs: int) -> None:
        """Jump so the next raw word is output ``n_outputs`` since seeding.

        Window ``k`` of the lag recurrence is ``C**k`` applied to the
        seeded ring (window 0), so an arbitrary offset costs one
        O(log n) matrix power plus at most one reference window update
        for the partial window -- independent of ``n_outputs``.
        """
        if n_outputs < 0:
            raise ValueError(f"raw offset must be non-negative, got {n_outputs}")
        ring0 = _srandom_state(self._seed)[_SEP:]
        full, rem = divmod(n_outputs, _DEG)
        # Apply C**full to the ring as a chain of memoized pow2 factors:
        # popcount(full) matrix-vector products, never a fresh matmul,
        # so the cost is flat in the offset once the table is warm.
        ring = ring0.copy()
        j = 0
        while full:
            if full & 1:
                nxt = np.empty(_DEG, dtype=_U32)
                np.matmul(_window_pow2(j), ring, out=nxt)
                ring = nxt
            full >>= 1
            j += 1
        if rem:
            ring = _advance_window(ring)
            self._pending = ring[rem:].copy()
        else:
            self._pending = np.empty(0, dtype=_U32)
        self._ring = ring

    def seek(self, word_offset: int) -> None:
        """Jump to an absolute :meth:`words64` offset in O(log offset).

        Each 64-bit word consumes three raw outputs, and seeding discards
        ``_WARMUP`` raw warm-up outputs before the stream starts.
        """
        if word_offset < 0:
            raise ValueError(f"word offset must be non-negative, got {word_offset}")
        self.seek_raw(_WARMUP + 3 * word_offset)

    # -- scalar C-compatible API --------------------------------------

    def rand(self) -> int:
        """Exactly C ``rand()``: the next 31-bit value as a Python int."""
        return int(self._raw(1)[0] >> _U32(1))

    def rand_array(self, n: int) -> np.ndarray:
        """The next ``n`` C ``rand()`` outputs as ``uint32`` (31-bit values)."""
        return self._raw(n) >> _U32(1)

    # -- BitSource API -------------------------------------------------

    def words64(self, n: int) -> np.ndarray:
        """Pack pairs of 31-bit outputs plus 2 extra bits into 64-bit words.

        Each word consumes three ``rand()`` outputs: two full 31-bit values
        and the low 2 bits of a third, i.e. 64 fresh bits per word.
        """
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=_U64)
        vals = self.rand_array(3 * n).astype(_U64).reshape(n, 3)
        return (
            (vals[:, 0] << _U64(33))
            | (vals[:, 1] << _U64(2))
            | (vals[:, 2] & _U64(3))
        )


class AnsiCLcg(BitSource):
    """The K&R / ANSI C reference ``rand()``: a 15-bit-output LCG.

    ``state <- state * 1103515245 + 12345 (mod 2**31)``; output
    ``(state >> 16) & 0x7FFF``.  Deliberately weak -- the bottom row of the
    paper's quality tables.
    """

    name = "ansi-c-lcg"
    RAND_MAX = 32767

    _A = 1103515245
    _C = 12345
    _MASK = (1 << 31) - 1
    _BLOCK = 4096
    #: Largest precomputed jump table: one vectorized expression covers
    #: requests up to 2**16 outputs before the Python loop re-enters.
    _MAX_BLOCK = 1 << 16

    def __init__(self, seed: int = 1):
        # Precompute A^i and the LCG increment series for a whole block so
        # bulk generation runs one vectorized expression per block:
        #   x_i = A^i x_0 + C (A^{i-1} + ... + 1)   (mod 2**31).
        # The tables start at _BLOCK entries and double on demand (capped
        # at _MAX_BLOCK) when a request wants a larger block.
        a_pows = np.empty(self._BLOCK, dtype=_U64)
        c_terms = np.empty(self._BLOCK, dtype=_U64)
        a, c = 1, 0
        mod = 1 << 31
        for i in range(self._BLOCK):
            a = (a * self._A) % mod
            c = (c * self._A + self._C) % mod
            a_pows[i] = a
            c_terms[i] = c
        self._a_pows = a_pows
        self._c_terms = c_terms
        self.reseed(seed)

    def _ensure_block(self, size: int) -> None:
        """Grow the jump tables to cover blocks of ``size`` (capped).

        Affine composition extends them vectorized: with ``f^k(x) =
        a_k x + c_k``, ``a_{j+k} = a_j a_k`` and ``c_{j+k} = a_j c_k +
        c_j`` (mod ``2**31``).  Products of two 31-bit values stay below
        ``2**62``, so uint64 arithmetic is exact.
        """
        size = min(size, self._MAX_BLOCK)
        cur = self._a_pows.size
        while cur < size:
            mask = _U64(self._MASK)
            a_cur = self._a_pows[cur - 1]
            c_cur = self._c_terms[cur - 1]
            self._a_pows = np.concatenate(
                [self._a_pows, (self._a_pows * a_cur) & mask]
            )
            self._c_terms = np.concatenate(
                [self._c_terms, (self._a_pows[:cur] * c_cur + self._c_terms)
                 & mask]
            )
            cur = self._a_pows.size

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._state = np.uint64(seed & 0x7FFFFFFF)

    @property
    def seekable(self) -> bool:
        return True

    def seek(self, word_offset: int) -> None:
        """Jump to an absolute :meth:`words64` offset in O(log offset).

        With ``f(x) = A x + C mod 2**31``, the k-step map is the affine
        composition ``f^k(x) = a_k x + c_k`` where ``a_{j+k} = a_j a_k``
        and ``c_{j+k} = a_j c_k + c_j`` -- computed by square-and-multiply
        in exact Python integers.  Each word consumes five outputs.
        """
        if word_offset < 0:
            raise ValueError(f"word offset must be non-negative, got {word_offset}")
        mod = 1 << 31
        k = 5 * word_offset
        ra, rc = 1, 0
        ba, bc = self._A % mod, self._C % mod
        while k:
            if k & 1:
                ra, rc = (ba * ra) % mod, (ba * rc + bc) % mod
            k >>= 1
            if k:
                ba, bc = (ba * ba) % mod, (ba * bc + bc) % mod
        self._state = np.uint64((ra * (self._seed & 0x7FFFFFFF) + rc) % mod)

    def rand(self) -> int:
        """The next ANSI C ``rand()`` value (0..32767)."""
        self._state = (
            self._state * _U64(self._A) + _U64(self._C)
        ) & _U64(0x7FFFFFFF)
        return int((self._state >> _U64(16)) & _U64(0x7FFF))

    def rand_array(self, n: int) -> np.ndarray:
        """Vectorized generation of ``n`` outputs, one block per step.

        The block is sized from the request (up to ``_MAX_BLOCK`` states
        per vectorized jump).  ``A^i x_0`` never exceeds ``2**62`` so the
        blocked jump stays exact in ``uint64`` arithmetic.
        """
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=_U32)
        self._ensure_block(n)
        out = np.empty(n, dtype=_U32)
        mask = _U64(self._MASK)
        pos = 0
        while pos < n:
            take = min(self._a_pows.size, n - pos)
            states = (
                self._a_pows[:take] * self._state + self._c_terms[:take]
            ) & mask
            self._state = states[-1]
            out[pos : pos + take] = (
                (states >> _U64(16)) & _U64(0x7FFF)
            ).astype(_U32)
            pos += take
        return out

    def words64(self, n: int) -> np.ndarray:
        """Pack five 15-bit outputs (74 bits, truncated) into each word."""
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=_U64)
        vals = self.rand_array(5 * n).astype(_U64).reshape(n, 5)
        out = np.zeros(n, dtype=_U64)
        for j in range(5):
            out = (out << _U64(15)) | vals[:, j]
        return out  # 75 bits folded into 64: the first value keeps 4 bits


def glibc_rand_sequence(seed: int, n: int) -> list[int]:
    """First ``n`` outputs of glibc ``rand()`` for ``seed`` (reference helper).

    Equivalent to ``srand(seed)`` followed by ``n`` calls to ``rand()`` on a
    glibc system.
    """
    gen = GlibcRandom(seed)
    return [int(v) for v in gen.rand_array(n)]
