"""Reimplementation of glibc ``rand()`` -- the paper's CPU feed generator.

The paper's FEED work unit calls ANSI C ``rand()`` which, on the Fedora 14
system used (Section IV-A), is glibc's **TYPE_3 additive-feedback
generator**:

* state: 31 lagged 32-bit words (34 including warm-up copies),
* recurrence ``r[i] = r[i-3] + r[i-31] (mod 2**32)``,
* output ``r[i] >> 1`` (a 31-bit value in ``0 .. 2**31 - 1``).

Seeding follows glibc ``srandom()``: 30 steps of the Park-Miller minimal
standard LCG (``x <- 16807 x mod 2**31 - 1``, computed with Schrage's
trick exactly as glibc does), then 310 warm-up outputs are discarded.
The implementation is verified against the well-known glibc sequence for
``seed = 1`` (1804289383, 846930886, ...) in the test suite.

Also provided is :class:`AnsiCLcg`, the K&R reference ``rand()`` (TYPE_0
LCG), which the paper's Table I/II place at the bottom of the quality
ranking.
"""

from __future__ import annotations

import numpy as np

from repro.bitsource.base import BitSource

__all__ = ["GlibcRandom", "AnsiCLcg", "glibc_rand_sequence"]

_U32 = np.uint32
_U64 = np.uint64

_DEG = 31  # r[i-31]
_SEP = 3  # r[i-3]
_WARMUP = 310  # glibc discards 10 * 31 outputs after seeding


def _srandom_state(seed: int) -> np.ndarray:
    """Replicate glibc ``srandom_r`` for TYPE_3: the initial 34-word table."""
    seed = seed & 0xFFFFFFFF
    if seed == 0:
        seed = 1
    r = np.zeros(_DEG + _SEP, dtype=np.int64)
    r[0] = seed
    # Park-Miller via Schrage: hi = s / 127773, lo = s % 127773,
    # word = 16807 * lo - 2836 * hi  (+ 2147483647 if negative).
    s = int(seed)
    for i in range(1, _DEG):
        hi, lo = divmod(s, 127773)
        word = 16807 * lo - 2836 * hi
        if word < 0:
            word += 2147483647
        r[i] = word
        s = word
    for i in range(_DEG, _DEG + _SEP):
        r[i] = r[i - _DEG]
    return r.astype(_U32)


class GlibcRandom(BitSource):
    """glibc TYPE_3 ``random()`` as a :class:`BitSource` and a scalar RNG.

    Scalar access (:meth:`rand`) matches C ``rand()`` output exactly.
    Bulk access is vectorized: the lag-3/lag-31 recurrence is advanced 31
    outputs at a time using three cumulative sums (one per residue class
    mod 3), which keeps the Python-level loop 31x shorter.
    """

    name = "glibc-rand"
    #: RAND_MAX for this generator (outputs are 31-bit).
    RAND_MAX = 2**31 - 1

    def __init__(self, seed: int = 1):
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        table = _srandom_state(seed)
        # Warm up exactly like glibc: discard 310 outputs.
        #   maintain a ring of the last 31 raw words r[t-31..t-1]
        self._ring = table[_SEP:].copy()  # r[3..33] == last 31 values
        self._pending = np.empty(0, dtype=_U32)
        burn = _WARMUP
        while burn > 0:
            block = self._advance_block()
            take = min(burn, block.size)
            burn -= take
            if take < block.size:
                self._pending = block[take:]

    def _advance_block(self) -> np.ndarray:
        """Produce the next 31 raw state words (before the >> 1 output step)."""
        prev = self._ring  # r[t-31] .. r[t-1]
        new = np.empty(_DEG, dtype=_U32)
        # new[i] = new[i-3] + prev[i]; carry-in new[j-3] = prev[28 + j].
        for j in range(_SEP):
            idx = np.arange(j, _DEG, _SEP)
            csum = np.cumsum(prev[idx], dtype=_U32)
            new[idx] = csum + prev[_DEG - _SEP + j]
        self._ring = new
        return new

    def _raw(self, n: int) -> np.ndarray:
        """Next ``n`` raw 32-bit state words (output = raw >> 1)."""
        out = np.empty(n, dtype=_U32)
        have = min(n, self._pending.size)
        if have:
            out[:have] = self._pending[:have]
            self._pending = self._pending[have:]
        pos = have
        while pos < n:
            block = self._advance_block()
            take = min(n - pos, block.size)
            out[pos : pos + take] = block[:take]
            if take < block.size:
                self._pending = block[take:]
            pos += take
        return out

    # -- scalar C-compatible API --------------------------------------

    def rand(self) -> int:
        """Exactly C ``rand()``: the next 31-bit value as a Python int."""
        return int(self._raw(1)[0] >> _U32(1))

    def rand_array(self, n: int) -> np.ndarray:
        """The next ``n`` C ``rand()`` outputs as ``uint32`` (31-bit values)."""
        return self._raw(n) >> _U32(1)

    # -- BitSource API -------------------------------------------------

    def words64(self, n: int) -> np.ndarray:
        """Pack pairs of 31-bit outputs plus 2 extra bits into 64-bit words.

        Each word consumes three ``rand()`` outputs: two full 31-bit values
        and the low 2 bits of a third, i.e. 64 fresh bits per word.
        """
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=_U64)
        vals = self.rand_array(3 * n).astype(_U64).reshape(n, 3)
        return (
            (vals[:, 0] << _U64(33))
            | (vals[:, 1] << _U64(2))
            | (vals[:, 2] & _U64(3))
        )


class AnsiCLcg(BitSource):
    """The K&R / ANSI C reference ``rand()``: a 15-bit-output LCG.

    ``state <- state * 1103515245 + 12345 (mod 2**31)``; output
    ``(state >> 16) & 0x7FFF``.  Deliberately weak -- the bottom row of the
    paper's quality tables.
    """

    name = "ansi-c-lcg"
    RAND_MAX = 32767

    _A = 1103515245
    _C = 12345
    _MASK = (1 << 31) - 1
    _BLOCK = 4096

    def __init__(self, seed: int = 1):
        # Precompute A^i and the LCG increment series for a whole block so
        # bulk generation runs one vectorized expression per 4096 outputs:
        #   x_i = A^i x_0 + C (A^{i-1} + ... + 1)   (mod 2**31).
        a_pows = np.empty(self._BLOCK, dtype=_U64)
        c_terms = np.empty(self._BLOCK, dtype=_U64)
        a, c = 1, 0
        mod = 1 << 31
        for i in range(self._BLOCK):
            a = (a * self._A) % mod
            c = (c * self._A + self._C) % mod
            a_pows[i] = a
            c_terms[i] = c
        self._a_pows = a_pows
        self._c_terms = c_terms
        self.reseed(seed)

    def reseed(self, seed: int) -> None:
        self._seed = int(seed)
        self._state = np.uint64(seed & 0x7FFFFFFF)

    def rand(self) -> int:
        """The next ANSI C ``rand()`` value (0..32767)."""
        self._state = (
            self._state * _U64(self._A) + _U64(self._C)
        ) & _U64(0x7FFFFFFF)
        return int((self._state >> _U64(16)) & _U64(0x7FFF))

    def rand_array(self, n: int) -> np.ndarray:
        """Vectorized generation of ``n`` outputs, 4096 states per step.

        ``A^i x_0`` never exceeds ``2**62`` so the blocked jump stays exact
        in ``uint64`` arithmetic.
        """
        if n < 0:
            raise ValueError(f"count must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=_U32)
        out = np.empty(n, dtype=_U32)
        mask = _U64(self._MASK)
        pos = 0
        while pos < n:
            take = min(self._BLOCK, n - pos)
            states = (
                self._a_pows[:take] * self._state + self._c_terms[:take]
            ) & mask
            self._state = states[-1]
            out[pos : pos + take] = (
                (states >> _U64(16)) & _U64(0x7FFF)
            ).astype(_U32)
            pos += take
        return out

    def words64(self, n: int) -> np.ndarray:
        """Pack five 15-bit outputs (74 bits, truncated) into each word."""
        if n < 0:
            raise ValueError(f"word count must be non-negative, got {n}")
        if n == 0:
            return np.empty(0, dtype=_U64)
        vals = self.rand_array(5 * n).astype(_U64).reshape(n, 5)
        out = np.zeros(n, dtype=_U64)
        for j in range(5):
            out = (out << _U64(15)) | vals[:, j]
        return out  # 75 bits folded into 64: the first value keeps 4 bits


def glibc_rand_sequence(seed: int, n: int) -> list[int]:
    """First ``n`` outputs of glibc ``rand()`` for ``seed`` (reference helper).

    Equivalent to ``srand(seed)`` followed by ``n`` calls to ``rand()`` on a
    glibc system.
    """
    gen = GlibcRandom(seed)
    return [int(v) for v in gen.rand_array(n)]
