#!/usr/bin/env python
"""Backend purity lint: kernel modules must not import numpy directly.

The hot kernels are required to run unchanged on any registered array
backend (see ``repro.backend``).  The one structural rule that keeps
them portable is *no direct numpy/scipy imports*: host-side array use
goes through the pinned ``repro.backend.host_np`` re-export, device
work through ``Backend.xp``.  This script AST-walks the kernel modules
and fails (exit 1) on any ``import numpy``/``from numpy import ...``
(or scipy), including aliased and submodule forms.

Run from the repo root::

    python tools/lint_backend.py

CI runs it in the lint step; add new kernel modules to
``KERNEL_MODULES`` when they join the backend-portable surface.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: Modules whose array work must route through ``repro.backend``.
KERNEL_MODULES = (
    "src/repro/core/walk.py",
    "src/repro/core/generator.py",
    "src/repro/dist/transforms.py",
)

#: Import roots forbidden inside kernel modules.
FORBIDDEN_ROOTS = ("numpy", "scipy")


def _violations(path: Path) -> list:
    tree = ast.parse(path.read_text(), filename=str(path))
    bad = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in FORBIDDEN_ROOTS:
                    bad.append((node.lineno, f"import {alias.name}"))
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if node.level == 0 and root in FORBIDDEN_ROOTS:
                names = ", ".join(a.name for a in node.names)
                bad.append(
                    (node.lineno, f"from {node.module} import {names}")
                )
    return bad


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    failed = False
    for rel in KERNEL_MODULES:
        path = repo / rel
        if not path.exists():
            print(f"lint_backend: missing kernel module {rel}")
            failed = True
            continue
        for lineno, stmt in _violations(path):
            print(
                f"{rel}:{lineno}: forbidden direct import ({stmt}); "
                f"use 'from repro.backend import host_np as np' or "
                f"the backend's .xp namespace"
            )
            failed = True
    if failed:
        return 1
    print(
        f"lint_backend: OK ({len(KERNEL_MODULES)} kernel modules "
        f"backend-clean)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
