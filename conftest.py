"""Root pytest configuration: the per-test hang guard.

Every test gets a default timeout (see ``timeout`` in
``pyproject.toml``) so a regression that wedges a queue or a thread
fails fast instead of freezing the whole run.  When ``pytest-timeout``
is installed (CI) it does the enforcement; offline, the SIGALRM-based
fallback below covers the main thread, which is where every
consumer-side hang in this repo would occur.

This lives in the repository root (not ``tests/conftest.py``) because
ini options can only be registered from an initial conftest, and the
benchmarks directory is collected without loading ``tests/``.
"""

import signal
import threading

import pytest

try:
    import pytest_timeout  # noqa: F401 - presence check only

    HAVE_PYTEST_TIMEOUT = True
except ImportError:
    HAVE_PYTEST_TIMEOUT = False


if not HAVE_PYTEST_TIMEOUT:

    def pytest_addoption(parser):
        # Same ini option name pytest-timeout declares, so the
        # `timeout = N` setting in pyproject.toml works either way.
        parser.addini("timeout", "default per-test timeout in seconds "
                                 "(fallback enforcement)", default="0")

    def pytest_configure(config):
        config.addinivalue_line(
            "markers",
            "timeout(seconds): override the per-test timeout",
        )

    def _timeout_for(item) -> float:
        marker = item.get_closest_marker("timeout")
        if marker is not None and marker.args:
            return float(marker.args[0])
        try:
            return float(item.config.getini("timeout") or 0)
        except (TypeError, ValueError):
            return 0.0

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        limit = _timeout_for(item)
        usable = (
            limit > 0
            and hasattr(signal, "SIGALRM")
            and threading.current_thread() is threading.main_thread()
        )
        if not usable:
            yield
            return

        def _expired(signum, frame):
            raise TimeoutError(
                f"test exceeded the {limit:g}s fallback timeout "
                f"(install pytest-timeout for full enforcement)"
            )

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, limit)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)
