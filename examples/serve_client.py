"""The RNG service end to end: server, concurrent clients, observability.

Boots an in-process ``repro.serve`` server (its own event loop on a
daemon thread), connects three concurrent clients -- each with its own
named session and therefore its own independent, reproducible expander
stream -- and prints per-session statistics plus the serve-side metrics
collected by ``repro.obs``.

Run:  python examples/serve_client.py

The same server is reachable from other processes: ``repro serve
--port 8731`` in one terminal, ``repro fetch --port 8731 -n 10`` in
another.
"""

import threading

import numpy as np

from repro import obs
from repro.serve import ServeClient, ServeConfig, serve_background


def client_main(host, port, name, results):
    """One worker: fetch on demand, in its own thread, from its own stream."""
    with ServeClient(host, port, session=name) as client:
        values = client.fetch(1000)          # numpy uint64, on demand
        floats = client.random(1000)         # uniform [0, 1)
        status = client.status()
        results[name] = {
            "first": int(values[0]),
            "mean_u01": float(floats.mean()),
            "stream_index": client.stream_index,
            "words_served": status["session"]["words_served"],
            "health": status["session"]["health"],
        }


def main() -> None:
    # Metrics on, so the serve-side counters/histograms are collected.
    with obs.observed() as (registry, _tracer):
        config = ServeConfig(master_seed=2012, workers=2)
        with serve_background(config) as server:
            print(f"server on {server.host}:{server.port} "
                  f"(master seed {config.master_seed})\n")

            # Three concurrent clients, three independent streams.
            results: dict = {}
            threads = [
                threading.Thread(
                    target=client_main,
                    args=(server.host, server.port, name, results),
                )
                for name in ("alice", "bob", "carol")
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            print("per-session results (independent, reproducible streams):")
            for name, r in sorted(results.items()):
                print(f"  {name:6} stream {r['stream_index']:#018x}  "
                      f"first={r['first']:#018x}  "
                      f"mean={r['mean_u01']:.4f}  "
                      f"served={r['words_served']}  health={r['health']}")

            # Reconnecting with the same session id resumes the stream;
            # a fresh server with the same master seed would replay it.
            with ServeClient(server.host, server.port, session="alice") as c:
                more = c.fetch(5)
            print(f"\nalice, reconnected, continues: "
                  f"{[hex(int(v)) for v in more[:3]]} ...")

            overlap = set(np.array([r["first"] for r in results.values()]))
            assert len(overlap) == len(results), "streams must be disjoint"

        # Server is down; the metrics it recorded remain in the registry.
        print("\nserve-side metrics (via repro.obs):")
        for name, value in sorted(registry.snapshot().items()):
            if name.startswith("repro_serve_") and isinstance(value, (int, float)):
                print(f"  {name:36} {value}")


if __name__ == "__main__":
    main()
