"""A classic Monte Carlo integration driven by the hybrid PRNG.

Estimates pi by dart-throwing and a 5-dimensional Gaussian integral by
sampling, exercising the bulk-uniform API the way the paper's Monte
Carlo application does -- each batch size is decided *during* the run
(adaptive sampling), which needs an on-demand generator.

Run:  python examples/monte_carlo_pi.py
"""

import numpy as np

from repro.baselines import HybridPRNG


def estimate_pi(gen: HybridPRNG, target_sem: float = 1.2e-3) -> tuple:
    """Adaptive dart-throwing: sample until the standard error is small.

    The total sample count is unknown in advance -- the on-demand
    property in action.
    """
    inside = 0
    total = 0
    batch = 50_000
    while True:
        u = gen.uniform(2 * batch).reshape(batch, 2)
        inside += int(((u[:, 0] - 0.5) ** 2 + (u[:, 1] - 0.5) ** 2 <= 0.25).sum())
        total += batch
        p = inside / total
        sem = 4 * np.sqrt(p * (1 - p) / total)
        if sem < target_sem:
            return 4 * p, sem, total
        batch = min(2 * batch, 1_000_000)


def gaussian_integral(gen: HybridPRNG, n: int = 400_000, dim: int = 5) -> float:
    """E[exp(-|x|^2/2)] over the unit cube, by plain Monte Carlo."""
    u = gen.uniform(n * dim).reshape(n, dim)
    return float(np.exp(-0.5 * (u**2).sum(axis=1)).mean())


def main() -> None:
    gen = HybridPRNG(seed=2024, num_threads=1 << 15)

    pi_hat, sem, total = estimate_pi(gen)
    print(f"pi estimate : {pi_hat:.5f} +- {sem:.5f} "
          f"(true {np.pi:.5f}, {total} samples, adaptively chosen)")

    ref = float(np.power(np.sqrt(np.pi / 2) * 0.682689492137, 5))
    got = gaussian_integral(gen)
    print(f"5-D Gaussian cube integral: {got:.5f} (analytic {ref:.5f})")

    err_pi = abs(pi_hat - np.pi)
    print(f"abs error vs pi: {err_pi:.5f} "
          f"({'OK' if err_pi < 5 * sem else 'SUSPICIOUS'})")


if __name__ == "__main__":
    main()
