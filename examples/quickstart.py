"""Quickstart: the on-demand expander-walk PRNG in five minutes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ExpanderWalkPRNG, ParallelExpanderPRNG, srand, rand, random
from repro.bitsource import GlibcRandom, SplitMix64Source
from repro.gpusim import PipelineConfig, simulate_pipeline


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A single on-demand stream (one GPU thread's view).
    # ------------------------------------------------------------------
    prng = ExpanderWalkPRNG(seed=42)  # glibc rand() feed, walk length 64
    print("on-demand 64-bit numbers:")
    for _ in range(5):
        print(f"  {prng.get_next_rand():#018x}")
    print(f"uniform floats: {[round(prng.random(), 4) for _ in range(4)]}")
    print(f"dice rolls    : {[prng.randint(1, 7) for _ in range(8)]}")
    print(f"feed bits consumed so far: {prng.bits_consumed}")

    # ------------------------------------------------------------------
    # 2. Massively parallel generation (the GPU kernel's view).
    # ------------------------------------------------------------------
    bank = ParallelExpanderPRNG(
        num_threads=4096,                 # one lane per GPU thread
        bit_source=SplitMix64Source(7),   # fast CPU feed for the demo
    )
    values = bank.generate(1_000_000)
    print(f"\nbulk generation: {values.size} numbers, "
          f"mean/2^64 = {values.astype(np.float64).mean() / 2**64:.4f}")

    # ------------------------------------------------------------------
    # 3. The thread-safe module-level API (the rand() replacement).
    # ------------------------------------------------------------------
    srand(1234)
    print(f"\nmodule API: rand() = {rand():#x}, random() = {random():.6f}")

    # ------------------------------------------------------------------
    # 4. What would this cost on the paper's CPU+GPU platform?
    # ------------------------------------------------------------------
    result = simulate_pipeline(
        PipelineConfig(total_numbers=100_000_000, batch_size=100)
    )
    print(
        f"\nsimulated Tesla C1060 + i7 980 platform, 100M numbers:\n"
        f"  time        : {result.time_ms:.1f} ms\n"
        f"  throughput  : {result.throughput_gnumbers_s:.4f} GNumbers/s"
        f"  (paper: 0.07)\n"
        f"  CPU idle    : {result.cpu_idle_fraction:.1%}"
        f"   GPU idle: {result.gpu_idle_fraction:.1%}"
    )

    # ------------------------------------------------------------------
    # 5. The paper-faithful configuration: glibc rand() as the bit feed.
    # ------------------------------------------------------------------
    paper = ParallelExpanderPRNG(num_threads=1024, bit_source=GlibcRandom(1))
    u = paper.random(10_000)
    print(f"\npaper-faithful feed: 10k uniforms, mean = {u.mean():.4f}")


if __name__ == "__main__":
    main()
