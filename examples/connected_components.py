"""Graph connected components by random-mate contraction.

The third on-demand-randomness workload, from the same hybrid-algorithms
line as the paper's list ranking ([3] covers both problems): each
contraction round flips one coin per *live* component, a count nobody
can predict -- so a batch generator must over-provision while the hybrid
PRNG supplies exactly what is needed.

Run:  python examples/connected_components.py [n_vertices] [n_edges]
"""

import sys
import time

import numpy as np

from repro.apps.connectivity import connected_components, random_graph_edges
from repro.apps.listranking.hybrid import OnDemandBits
from repro.bitsource import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG


def main(n: int = 200_000, m: int = 300_000) -> None:
    rng = np.random.Generator(np.random.PCG64(21))
    print(f"random graph: {n} vertices, {m} edges")
    edges = random_graph_edges(n, m, rng)

    prng = ParallelExpanderPRNG(num_threads=1 << 14,
                                bit_source=SplitMix64Source(4))
    provider = OnDemandBits(prng)

    t0 = time.perf_counter()
    res = connected_components(n, edges, provider)
    dt = time.perf_counter() - t0

    print(f"components found : {res.num_components}")
    print(f"contraction rounds: {res.rounds}")
    print(f"wall time        : {dt * 1e3:.0f} ms")
    print(f"coin flips used  : {res.total_bits} "
          f"(per round: {res.bits_requested})")
    upper_bound = n * res.rounds
    print(f"a pre-generated supply would need {upper_bound} flips "
          f"({upper_bound / max(res.total_bits, 1):.1f}x the on-demand cost)")

    # Cross-check against a deterministic union-find.
    parent = np.arange(n)

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for a, b in edges:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    refs = len({find(v) for v in range(n)})
    print(f"union-find cross-check: {refs} components "
          f"({'OK' if refs == res.num_components else 'MISMATCH'})")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200_000
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 300_000
    main(n, m)
