"""Probability amplification with expander walks + checkpointing.

Demonstrates the two library extensions beyond the paper's core:

1. ``repro.core.amplification`` -- the Motwani-Raghavan connection the
   paper cites (Section IV-C): amplify a randomized primality test using
   walk-correlated seeds at a fraction of the fresh-bit cost of
   independent trials.
2. ``repro.core.state`` -- checkpoint a generator mid-campaign and
   resume bit-for-bit.

Run:  python examples/amplification.py
"""

import json

from repro.bitsource import SplitMix64Source
from repro.core import (
    ExpanderWalkPRNG,
    amplify,
    capture_state,
    restore_state,
    walk_seeds,
)


def fermat_witness(n: int, seed: int) -> bool:
    """True if ``seed`` exposes ``n`` as composite (Fermat test)."""
    a = 2 + (seed % (n - 3))
    return pow(a, n - 1, n) != 1


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Amplified compositeness testing.
    # ------------------------------------------------------------------
    composite = 52_387 * 50_021          # a semiprime without small factors
    prime = 2_147_483_647                # Mersenne prime M31

    for label, n in [("composite", composite), ("prime", prime)]:
        res = amplify(
            lambda s, n=n: fermat_witness(n, s),
            k=40,
            source=SplitMix64Source(99),
            mode="any",
        )
        verdict = "composite" if res.decision else "probably prime"
        print(f"{label:9s} n={n}: {verdict:15s} "
              f"witnesses={res.votes_true}/{res.trials}  "
              f"bits used={res.bits_used} "
              f"(vs {res.bits_independent} independent, "
              f"saving {res.bit_savings:.0%})")

    # ------------------------------------------------------------------
    # 2. The raw seed machinery: bit cost of walk-correlated seeds.
    # ------------------------------------------------------------------
    for k in (10, 100, 1000):
        _, bits = walk_seeds(k, source=SplitMix64Source(1))
        print(f"k={k:5d} walk seeds: {bits:6d} bits "
              f"(independent would need {64 * k})")

    # ------------------------------------------------------------------
    # 3. Checkpoint / resume.
    # ------------------------------------------------------------------
    gen = ExpanderWalkPRNG(bit_source=SplitMix64Source(5))
    gen.next_batch(3)
    snapshot = json.dumps(capture_state(gen))     # -> store anywhere
    ahead = [gen.get_next_rand() for _ in range(3)]

    resumed = ExpanderWalkPRNG(bit_source=SplitMix64Source(0))
    restore_state(resumed, json.loads(snapshot))
    replayed = [resumed.get_next_rand() for _ in range(3)]
    print(f"\ncheckpoint resume exact: {ahead == replayed} "
          f"({len(snapshot)} bytes of JSON state)")


if __name__ == "__main__":
    main()
