"""Application I: hybrid list ranking with on-demand randomness.

Reproduces the Section V experiment end to end on a laptop-sized list:
ranks a random linked list with the three-phase algorithm, compares the
on-demand bit supply against the pre-generated upper-bound strategy of
[3], and prints the simulated Figure 7 timings.

Run:  python examples/list_ranking.py [n_nodes]
"""

import sys
import time

import numpy as np

from repro.apps.listranking import (
    OnDemandBits,
    PregeneratedBits,
    phase1_times_ms,
    random_list,
    rank_list_hybrid,
    serial_ranks,
    wyllie_ranks,
)
from repro.bitsource import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG


def main(n: int = 200_000) -> None:
    rng = np.random.Generator(np.random.PCG64(11))
    print(f"building a random list of {n} nodes ...")
    lst = random_list(n, rng)
    truth = serial_ranks(lst)

    # --- baseline: Wyllie pointer jumping ------------------------------
    t0 = time.perf_counter()
    wy = wyllie_ranks(lst)
    t_wyllie = time.perf_counter() - t0
    assert np.array_equal(wy, truth)
    print(f"Wyllie pointer jumping        : {t_wyllie * 1e3:8.1f} ms  (correct)")

    # --- three-phase with on-demand hybrid PRNG bits -------------------
    prng = ParallelExpanderPRNG(num_threads=1 << 14,
                                bit_source=SplitMix64Source(3))
    ondemand = OnDemandBits(prng)
    t0 = time.perf_counter()
    res = rank_list_hybrid(lst, ondemand)
    t_hybrid = time.perf_counter() - t0
    assert np.array_equal(res.ranks, truth)
    print(f"3-phase (on-demand PRNG bits) : {t_hybrid * 1e3:8.1f} ms  (correct)")
    print(f"  reduced {n} -> {res.reduced_size} nodes "
          f"in {res.trace.rounds} rounds; "
          f"{ondemand.bits_produced} random bits consumed")

    # --- three-phase with pre-generated upper-bound bits ---------------
    src = np.random.Generator(np.random.PCG64(5))
    pregen = PregeneratedBits(lambda k: src.random(k), initial_bound=n)
    res2 = rank_list_hybrid(lst, pregen)
    assert np.array_equal(res2.ranks, truth)
    print(f"3-phase (pre-generated bits)  : produced {pregen.bits_produced} bits,"
          f" used {pregen.bits_used}"
          f" -> {pregen.waste / pregen.bits_used:.0%} waste avoided by on-demand")

    # --- the paper's Figure 7 on the simulated platform ----------------
    print("\nsimulated Phase I times on the paper's platform (128M nodes):")
    times = phase1_times_ms(128_000_000)
    for label in ("Pure GPU MT", "Hybrid (glibc rand)", "Hybrid (our PRNG)"):
        print(f"  {label:22s}: {times[label]:10.1f} ms")
    gain = 1 - times["Hybrid (our PRNG)"] / times["Hybrid (glibc rand)"]
    print(f"  on-demand improvement over pre-generated: {gain:.0%} "
          "(paper: ~40%)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 200_000)
