"""Application II: Monte Carlo photon migration through layered tissue.

Reproduces the Section VI experiment on a laptop scale: simulates photon
packets through the three-layer skin model with the hybrid PRNG and with
the original implementation's MWC generator, compares the physical
outputs (they must agree -- the RNG only changes sampling noise), and
prints the simulated Figure 8 platform timings.

Run:  python examples/photon_migration.py [n_photons]
"""

import sys
import time

from repro.apps.photon import (
    MCPhotonMigration,
    photon_times_ms,
    three_layer_skin,
)
from repro.baselines import HybridPRNG, Mwc


def run_one(label: str, rng, model, n: int) -> dict:
    sim = MCPhotonMigration(model, rng, batch_size=min(n, 65_536))
    t0 = time.perf_counter()
    result = sim.run(n)
    dt = time.perf_counter() - t0
    f = result.fractions()
    print(f"\n{label}  ({dt * 1e3:.0f} ms, "
          f"{result.uniforms_consumed} uniforms consumed)")
    print(f"  specular reflectance : {f['specular']:.4f}")
    print(f"  diffuse reflectance  : {f['diffuse_reflectance']:.4f}")
    print(f"  absorbed             : {f['absorbed']:.4f}")
    print(f"  transmitted          : {f['transmittance']:.4f}")
    print(f"  energy balance error : {result.tally.energy_balance_error():.2e}")
    return f


def main(n: int = 100_000) -> None:
    model = three_layer_skin()
    print(f"three-layer tissue model, {model.total_thickness:.2f} cm total, "
          f"{n} photon packets")

    f_mwc = run_one("Original (MWC per-thread RNG)",
                    Mwc(seed=3, lanes=256), model, n)
    f_hyb = run_one("Hybrid PRNG (on-demand feed)",
                    HybridPRNG(seed=3, num_threads=1 << 14), model, n)

    drift = max(
        abs(f_mwc[k] - f_hyb[k])
        for k in ("diffuse_reflectance", "absorbed", "transmittance")
    )
    print(f"\nmax physics drift between RNGs: {drift:.4f} "
          "(sampling noise only)")

    print("\nsimulated GPU times on the paper's platform (Figure 8):")
    for m in (1, 16, 64, 256):
        t = photon_times_ms(int(m * 1e6))
        print(f"  {m:4d}M photons: Original {t['Original (MWC)']:9.1f} ms   "
              f"Hybrid {t['Hybrid PRNG']:9.1f} ms   "
              f"speedup {t['speedup']:.2f}x")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 100_000)
