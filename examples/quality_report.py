"""Run the statistical quality batteries on any registered generator.

Reproduces Table II (DIEHARD) and a chosen Crush battery for one
generator, printing the full per-test report.

Run:  python examples/quality_report.py ["Hybrid PRNG"|"CURAND"|...] [scale]
"""

import sys
import time

from repro.baselines import available_generators, make_generator
from repro.baselines.hybrid_adapter import HybridPRNG
from repro.quality.crush import run_smallcrush
from repro.quality.diehard import run_diehard


def main(name: str = "Hybrid PRNG", scale: float = 0.5) -> None:
    if name not in available_generators():
        print(f"unknown generator {name!r}; available:")
        for g in available_generators():
            print(f"  {g}")
        raise SystemExit(1)

    if name == "Hybrid PRNG":
        gen = HybridPRNG(seed=1, num_threads=1 << 16)
    else:
        gen = make_generator(name, seed=1)

    print(f"generator : {gen.name}")
    print(f"scale     : {scale} (1.0 = full battery sizes)\n")

    t0 = time.perf_counter()
    diehard = run_diehard(gen, scale=scale,
                          progress=lambda t: print(f"  running {t} ..."))
    print(f"\n{diehard.summary_table()}")
    print(f"DIEHARD wall time: {time.perf_counter() - t0:.1f}s\n")

    gen.reseed(1)
    t0 = time.perf_counter()
    crush = run_smallcrush(gen, scale=scale,
                           progress=lambda t: print(f"  running {t} ..."))
    print(f"\n{crush.summary_table()}")
    print(f"SmallCrush wall time: {time.perf_counter() - t0:.1f}s")


if __name__ == "__main__":
    name = sys.argv[1] if len(sys.argv) > 1 else "Hybrid PRNG"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    main(name, scale)
