"""Golden stream vectors: literal expected values, pinned forever.

The repo-wide stream contract guarantees streams are pure functions of
identity (seed, lanes, walk length, policy) -- but nothing stopped a
*coordinated* change from silently shifting every emitted value at once
(it happened once: PR 5's notes admit emitted values changed repo-wide
with no golden tests to catch it).  These tests pin the canonical
streams as literals:

* the first 16 ``GlibcRandom.words64`` words for seed 1 (the glibc
  reference seed), and
* the first 64 numbers emitted by a 16-lane bank, seed 0, under each of
  the three neighbour-selection policies,

checked against every kernel variant (fused/reference walk x
blocked/reference feed).  Any future change to these values -- however
self-consistent -- is a hard failure that must be an explicit,
documented decision.

``mod`` and ``lazy`` share a golden vector by construction: on 3-bit
chunks both policies fix 0..6 and map 7 to 0 (``7 % 7 == 0``), so they
are the same chunk-to-neighbour map and only *diverge* on feeds wider
than 3 bits per draw (which nothing emits).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, backend_names
from repro.bitsource.glibc import GlibcRandom
from repro.core.parallel import ParallelExpanderPRNG


def backend_params():
    """Every registered array backend; unavailable ones skip cleanly.

    The walk kernel is pure integer arithmetic, so a *correct* backend
    is bit-identical to the golden literals -- running the same pinned
    vectors on every backend is the enforcement of that rule.
    """
    avail = available_backends()
    return [
        pytest.param(
            name,
            marks=() if avail.get(name) else pytest.mark.skip(
                reason=f"backend {name!r} not available here"
            ),
        )
        for name in backend_names()
    ]

GOLDEN_WORDS64_SEED1 = np.array([
    0xd7168acec9ec8f19, 0xcc6690e7d2c37147,
    0x55d12895895563b1, 0x8dd0f99af46d62eb,
    0x5d6283e506dc7bef, 0xea8bc28d457c01f2,
    0x244010a936c49fe3, 0x3e2dd3d04643379d,
    0x281c1eeccd48956a, 0x1bdae4c7ff7308cf,
    0x834f8993ada01e6a, 0x4bc8ba65466d4037,
    0x7e5b7463f20f9163, 0xc577b2b50db18495,
    0x6675620bc8768c5c, 0x5a3ab5d39d8e1178,
], dtype=np.uint64)

GOLDEN_REJECT = np.array([
    0x80cebc1bd59063f6, 0x8cdc1810619c4ee5,
    0x0969cd2f354213df, 0x9eba43d201e13cb3,
    0x7a255b377f9dacf9, 0xee0f7bee24299053,
    0x0cf9a5de8e22238f, 0x5d9c5123d399a84d,
    0x67e5214b71a5d454, 0xf2e9cc5fb6d26b71,
    0x1f13b51fa0c7a623, 0x8bb16454442c7e5f,
    0xb38b8003f630a429, 0x5be1ea4c20f86af6,
    0x123449dc0fcd9345, 0x62db4f3b65186f43,
    0x806fa83e0b256b96, 0x7c78de7708c0bda7,
    0xa2528e06cbe698f7, 0x7d86619126559d67,
    0x8f6a46979586f3d5, 0x9e181c745e9ae3ca,
    0x6c10b4436cefb674, 0x131da0e169ee6f0c,
    0xe80dcfbf18be6c14, 0x4ee16b85403ec411,
    0x3ef5d91f7673c8ed, 0xd454f32998ce0c11,
    0x2bad52169d6604f6, 0x3ed63c11fbadbf56,
    0xfa32bd47776e081a, 0x12cce3cb7459276b,
    0xd2d43420cc153a21, 0x07642a2e0db7a91b,
    0xaf2b398a0c3fae3e, 0x94a48f1248a86370,
    0xb7176fed8b794a65, 0xbabe2590c5625752,
    0x08953da41a0995b0, 0x329f57cc72cb3dc1,
    0xd80c330a00193fff, 0xbfd14d9a1ca9f949,
    0xba2aaa51add58965, 0x50b43d881982e75d,
    0x89e67671c5b9ca77, 0xd64b88f4cdff03e9,
    0xa0b52395299bf2b4, 0xbe06ab3fec6b4524,
    0x47130a3d6d066e78, 0x18a398939b065867,
    0xaca39b0ac13ae242, 0x815c7a98733dcbeb,
    0xaf9108bf253642ec, 0x3685136fe453ceb9,
    0x45993a21d112e28c, 0x9a963624df83f7eb,
    0x7deb95aa3d899c08, 0x2e6c66281d3cc6ed,
    0xfdb9f73cf6eb91ed, 0x0ade9b68b93a09cc,
    0x0a94b67b966f8264, 0xd5af49fa78c80dc2,
    0x86e73a4899d78a44, 0x088d34709216f70f,
], dtype=np.uint64)

GOLDEN_MOD = np.array([
    0x0471a1b84303b90e, 0xb0fd2e581312822b,
    0xa7774c01f554d59c, 0x23b59b2155753a11,
    0xce0a41fa77785a04, 0xb817e0ac4dda57b1,
    0x84b608ac1138e94f, 0x1b124c94188998f1,
    0x97ce3ff83c0d4f58, 0x5902eb579b35d635,
    0x26deb69145397b1c, 0x61ec4c658dd8e32d,
    0x18f9658b12b0f890, 0xa53ed7f16d3d87ef,
    0xd408532dac1359a7, 0x5d06f221dbe62c0f,
    0xd7c5d83ad08dec13, 0x7fd60ea8481c132b,
    0x1201f5f43180cee7, 0xb9bd9fe3f6ac03f4,
    0x915cf787ad145ed7, 0x46855e2abaeb6483,
    0xc8f62ea55f0fc247, 0xf05ade1416efc81a,
    0x03bdf1bb559e91de, 0xa415196e567cfb45,
    0x701142f6a5ce4a31, 0x63dd464a42ee77ae,
    0x34262f77bbb34856, 0x5168f8286b876563,
    0x031b6e307a7e058b, 0x56cec4ebf3b31cc6,
    0x9a0c3c1958648b0a, 0xc1d1493100670407,
    0xd24db693d22fa8e4, 0xfd239aa5fb81b123,
    0x216d1f3d021a31bd, 0x4416e6da7a69b91d,
    0x01d71471399a3de7, 0xf9041fcf8aa91f2a,
    0x33963524ca3faedc, 0xe31da911920efb6e,
    0xb5cd863419a7227e, 0xd03860c9d09210f0,
    0xa718b2e0ae0525d7, 0x51a55a7a2810ef52,
    0x230348ad678c230a, 0xb6a26f240fef6f15,
    0x420037a98ad88959, 0xff1dee7e9ae950ad,
    0x08501635c8fb7f37, 0xb58796a0e31dd4cd,
    0x5fc2a1cd4658c50f, 0x33d686b6292fe8c7,
    0x65fcffc033f1727a, 0x84e0e8a9e2f7c102,
    0x569b3b91fc5f89cb, 0x5bf657e318bca739,
    0x027baabc3620a7dd, 0x484a44e71f107f87,
    0xa67ab5f257069e37, 0xbe6791080f20da33,
    0xe4288965aa1a5e7e, 0xfee8793ecca1a68b,
], dtype=np.uint64)

GOLDEN_LAZY = GOLDEN_MOD  # same 3-bit chunk map; see module docstring

GOLDEN_POLICY_VECTORS = {
    "reject": GOLDEN_REJECT,
    "mod": GOLDEN_MOD,
    "lazy": GOLDEN_LAZY,
}

#: First outputs of glibc's scalar rand() for srand(1) -- the published
#: reference sequence the words64 stream is built from.
GLIBC_RAND_SEED1 = [1804289383, 846930886, 1681692777, 1714636915, 1957747793]


class TestGoldenFeed:
    @pytest.mark.parametrize("blocked", [True, False])
    def test_words64_seed1(self, blocked):
        got = GlibcRandom(1, blocked=blocked).words64(16)
        np.testing.assert_array_equal(got, GOLDEN_WORDS64_SEED1)

    def test_scalar_rand_seed1(self):
        src = GlibcRandom(1)
        assert [src.rand() for _ in GLIBC_RAND_SEED1] == GLIBC_RAND_SEED1


class TestGoldenStreams:
    @pytest.mark.parametrize("backend", backend_params())
    @pytest.mark.parametrize("policy", sorted(GOLDEN_POLICY_VECTORS))
    @pytest.mark.parametrize("fused", [True, False])
    @pytest.mark.parametrize("blocked", [True, False])
    def test_policy_stream(self, policy, fused, blocked, backend):
        prng = ParallelExpanderPRNG(
            num_threads=16,
            bit_source=GlibcRandom(0, blocked=blocked),
            policy=policy,
            fused=fused,
            backend=backend,
        )
        np.testing.assert_array_equal(
            prng.generate(64), GOLDEN_POLICY_VECTORS[policy]
        )

    def test_golden_vectors_are_not_trivial(self):
        """Guard against a check that silently compares empty or zeroed
        arrays (e.g. after a bad edit to the literals)."""
        assert GOLDEN_WORDS64_SEED1.size == 16
        for vec in GOLDEN_POLICY_VECTORS.values():
            assert vec.size == 64
            assert np.count_nonzero(vec) == 64
        assert not np.array_equal(GOLDEN_REJECT, GOLDEN_MOD)
