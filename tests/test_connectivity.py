"""Tests for random-mate connected components."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.connectivity import CCResult, connected_components, random_graph_edges
from repro.apps.listranking.hybrid import OnDemandBits
from repro.bitsource import SplitMix64Source
from repro.core.parallel import ParallelExpanderPRNG


def np_bits(seed=0):
    rng = np.random.Generator(np.random.PCG64(seed))
    return lambda k: (rng.random(k) < 0.5).astype(np.uint8)


def reference_labels(n, edges):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(map(tuple, edges))
    labels = np.empty(n, dtype=np.int64)
    for comp in nx.connected_components(g):
        rep = min(comp)
        for v in comp:
            labels[v] = rep
    return labels


def same_partition(a, b):
    """Two labelings describe the same partition."""
    seen = {}
    for x, y in zip(a.tolist(), b.tolist()):
        if x in seen:
            if seen[x] != y:
                return False
        else:
            seen[x] = y
    return len(set(seen.values())) == len(seen)


class TestCorrectness:
    def test_path_graph(self):
        edges = np.array([[i, i + 1] for i in range(9)])
        res = connected_components(10, edges, np_bits(1))
        assert res.num_components == 1

    def test_disjoint_cliques(self):
        edges = []
        for base in (0, 5, 10):
            for i in range(5):
                for j in range(i + 1, 5):
                    edges.append([base + i, base + j])
        res = connected_components(15, np.array(edges), np_bits(2))
        assert res.num_components == 3
        assert same_partition(res.labels, reference_labels(15, edges))

    def test_isolated_vertices(self):
        res = connected_components(7, np.empty((0, 2), dtype=np.int64),
                                   np_bits(3))
        assert res.num_components == 7
        assert res.rounds == 0

    def test_self_loops_ignored(self):
        edges = np.array([[0, 0], [1, 1], [0, 1]])
        res = connected_components(3, edges, np_bits(4))
        assert res.num_components == 2

    @given(
        st.integers(min_value=2, max_value=120),
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, n, m, seed):
        rng = np.random.Generator(np.random.PCG64(seed))
        edges = random_graph_edges(n, m, rng)
        res = connected_components(n, edges, np_bits(seed + 1))
        ref = reference_labels(n, edges)
        assert same_partition(res.labels, ref)

    def test_labels_are_roots(self):
        rng = np.random.Generator(np.random.PCG64(8))
        edges = random_graph_edges(50, 80, rng)
        res = connected_components(50, edges, np_bits(9))
        # Every label must label itself (be a representative).
        assert np.array_equal(res.labels[res.labels], res.labels)


class TestOnDemandUsage:
    def test_with_hybrid_prng(self):
        prng = ParallelExpanderPRNG(num_threads=512,
                                    bit_source=SplitMix64Source(7))
        provider = OnDemandBits(prng)
        rng = np.random.Generator(np.random.PCG64(10))
        edges = random_graph_edges(2000, 3000, rng)
        res = connected_components(2000, edges, provider)
        assert same_partition(res.labels, reference_labels(2000, edges))
        assert provider.bits_produced == res.total_bits

    def test_bits_demand_shrinks(self):
        rng = np.random.Generator(np.random.PCG64(11))
        edges = random_graph_edges(5000, 20_000, rng)
        res = connected_components(5000, edges, np_bits(12))
        assert res.rounds >= 2
        assert res.bits_requested[-1] <= res.bits_requested[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            connected_components(0, np.empty((0, 2)), np_bits(1))
        with pytest.raises(ValueError, match="out of range"):
            connected_components(3, np.array([[0, 5]]), np_bits(1))

    def test_result_type(self):
        res = connected_components(4, np.array([[0, 1]]), np_bits(1))
        assert isinstance(res, CCResult)
        assert res.total_bits == sum(res.bits_requested)
